"""Tests for repro.graph.io: serialization round trips."""

import numpy as np
import pytest

from repro.graph.bipartite import BipartiteGraph
from repro.graph.capacity import CapacitatedBipartiteGraph, WeightedBipartiteGraph
from repro.graph.edgelist import Graph
from repro.graph.generators import bipartite_gnp, gnp
from repro.graph.io import dumps_edgelist, load_npz, loads_edgelist, save_npz
from repro.graph.weights import WeightedGraph


class TestNpzRoundTrip:
    def test_plain(self, tmp_path, rng):
        g = gnp(40, 0.2, rng)
        path = tmp_path / "g.npz"
        save_npz(path, g)
        g2 = load_npz(path)
        assert type(g2) is Graph
        assert g2 == g

    def test_bipartite(self, tmp_path, rng):
        g = bipartite_gnp(10, 20, 0.3, rng)
        path = tmp_path / "b.npz"
        save_npz(path, g)
        g2 = load_npz(path)
        assert isinstance(g2, BipartiteGraph)
        assert g2.n_left == 10 and g2.n_right == 20
        assert g2 == g

    def test_weighted(self, tmp_path):
        wg = WeightedGraph(4, np.array([[0, 1], [2, 3]]), np.array([2.0, 5.0]))
        path = tmp_path / "w.npz"
        save_npz(path, wg)
        wg2 = load_npz(path)
        assert isinstance(wg2, WeightedGraph)
        np.testing.assert_allclose(wg2.weights, wg.weights)

    def test_empty_graph(self, tmp_path):
        g = Graph(7)
        path = tmp_path / "e.npz"
        save_npz(path, g)
        assert load_npz(path) == g

    def test_weighted_bipartite(self, tmp_path, rng):
        base = bipartite_gnp(8, 12, 0.3, rng)
        g = WeightedBipartiteGraph(
            8, 12, base.edges, weights=rng.uniform(0.1, 1.0, base.n_edges),
            validated=True,
        )
        path = tmp_path / "wb.npz"
        save_npz(path, g)
        g2 = load_npz(path)
        assert isinstance(g2, WeightedBipartiteGraph)
        assert not isinstance(g2, CapacitatedBipartiteGraph)
        assert (g2.n_left, g2.n_right) == (8, 12)
        np.testing.assert_array_equal(g2.edges, g.edges)
        np.testing.assert_allclose(g2.weights, g.weights)

    def test_capacitated(self, tmp_path, rng):
        base = bipartite_gnp(6, 10, 0.4, rng)
        g = CapacitatedBipartiteGraph(
            6, 10, base.edges,
            weights=rng.uniform(0.1, 1.0, base.n_edges),
            capacities=rng.integers(1, 5, 6),
            validated=True,
        )
        path = tmp_path / "cap.npz"
        save_npz(path, g)
        g2 = load_npz(path)
        assert isinstance(g2, CapacitatedBipartiteGraph)
        np.testing.assert_array_equal(g2.edges, g.edges)
        np.testing.assert_allclose(g2.weights, g.weights)
        np.testing.assert_array_equal(g2.capacities, g.capacities)

    def test_schema_v1_files_still_load(self, tmp_path, rng):
        """A pre-versioning npz (no ``version`` key) loads unchanged."""
        g = bipartite_gnp(5, 9, 0.4, rng)
        path = tmp_path / "v1.npz"
        np.savez_compressed(
            path,
            kind=np.array([1]),
            shape=np.array([g.n_left, g.n_right], dtype=np.int64),
            edges=g.edges,
        )
        g2 = load_npz(path)
        assert isinstance(g2, BipartiteGraph)
        assert g2 == g

    def test_v2_files_carry_version_tag(self, tmp_path):
        g = Graph(3, np.array([[0, 1]]))
        path = tmp_path / "tag.npz"
        save_npz(path, g)
        with np.load(path) as data:
            assert int(data["version"][0]) == 2


class TestTextRoundTrip:
    def test_plain(self, rng):
        g = gnp(20, 0.2, rng)
        assert loads_edgelist(dumps_edgelist(g)) == g

    def test_bipartite(self, rng):
        g = bipartite_gnp(5, 7, 0.4, rng)
        g2 = loads_edgelist(dumps_edgelist(g))
        assert isinstance(g2, BipartiteGraph)
        assert g2 == g

    def test_header_required(self):
        with pytest.raises(ValueError, match="header"):
            loads_edgelist("0 1\n")

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown header"):
            loads_edgelist("# hypergraph 4\n")
