"""Tests for the weighted coreset extensions."""

import numpy as np
import pytest

from repro.core.weighted import (
    weight_class_index,
    weighted_matching_coreset_protocol,
    weighted_vertex_cover_protocol,
)
from repro.cover.verify import is_vertex_cover
from repro.graph.generators import bipartite_gnp
from repro.graph.weights import WeightedGraph
from repro.matching.verify import is_matching
from repro.matching.weighted import greedy_weighted_matching


def make_weighted(rng, n=200, p=0.02, spread=50.0):
    g = bipartite_gnp(n, n, p, rng)
    w = np.exp(rng.uniform(0, np.log(spread), size=g.n_edges))
    return WeightedGraph(g.n_vertices, g.edges, w, validated=True)


class TestWeightClassIndex:
    def test_geometric_buckets(self):
        idx = weight_class_index(np.array([1.0, 2.0, 4.0, 8.0]), epsilon=1.0)
        np.testing.assert_array_equal(idx, [0, 1, 2, 3])

    def test_consistency_across_machines(self):
        """Absolute bucketing: the same weight maps to the same class no
        matter which subset of edges a machine sees."""
        w = np.array([3.7, 12.1, 0.5])
        all_idx = weight_class_index(w, 0.5)
        solo_idx = np.array(
            [weight_class_index(w[i : i + 1], 0.5)[0] for i in range(3)]
        )
        np.testing.assert_array_equal(all_idx, solo_idx)

    def test_validation(self):
        with pytest.raises(ValueError):
            weight_class_index(np.array([1.0]), epsilon=0)
        with pytest.raises(ValueError):
            weight_class_index(np.array([0.0]), epsilon=1.0)


class TestWeightedMatchingProtocol:
    def test_valid_matching(self, rng):
        wg = make_weighted(rng)
        res = weighted_matching_coreset_protocol(wg, k=4, rng=rng)
        assert is_matching(wg, res.matching)
        assert res.weight == pytest.approx(wg.matching_weight(res.matching))

    def test_constant_factor_vs_central_greedy(self, rng):
        """central greedy ≥ OPT/2, protocol should land within a small
        constant of it on random inputs."""
        wg = make_weighted(rng)
        res = weighted_matching_coreset_protocol(wg, k=4, rng=rng)
        _, central = greedy_weighted_matching(wg)
        assert res.weight >= central / 6

    def test_ledger_populated(self, rng):
        wg = make_weighted(rng)
        res = weighted_matching_coreset_protocol(wg, k=3, rng=rng)
        assert res.ledger.total_bits() > 0
        assert res.ledger.k == 3

    def test_empty_graph(self):
        wg = WeightedGraph(10, np.zeros((0, 2), dtype=np.int64),
                           np.zeros(0), validated=True)
        res = weighted_matching_coreset_protocol(wg, k=2, rng=0)
        assert res.weight == 0.0

    def test_partition_graph_mismatch_rejected(self, rng):
        from repro.graph.partition import random_k_partition

        wg = make_weighted(rng)
        other = make_weighted(rng)
        part = random_k_partition(other, 2, rng)
        with pytest.raises(ValueError, match="partition"):
            weighted_matching_coreset_protocol(wg, k=2, rng=rng,
                                               partitioned=part)


class TestWeightedVCProtocol:
    def test_feasible(self, rng):
        g = bipartite_gnp(150, 150, 0.03, rng)
        weights = rng.uniform(1, 20, size=g.n_vertices)
        res = weighted_vertex_cover_protocol(g, weights, k=4, rng=rng)
        assert is_vertex_cover(g, res.cover)
        assert res.weight == pytest.approx(weights[res.cover].sum())

    def test_weight_validation(self, rng):
        g = bipartite_gnp(10, 10, 0.2, rng)
        with pytest.raises(ValueError, match="positive"):
            weighted_vertex_cover_protocol(
                g, np.zeros(g.n_vertices), k=2, rng=rng
            )
        with pytest.raises(ValueError, match="shape"):
            weighted_vertex_cover_protocol(g, np.ones(3), k=2, rng=rng)

    def test_reasonable_weight_vs_uniform_opt(self, rng):
        """With uniform weights the weighted protocol should track the
        unweighted coreset's quality."""
        from repro.cover.konig import konig_cover

        g = bipartite_gnp(150, 150, 0.03, rng)
        weights = np.ones(g.n_vertices)
        res = weighted_vertex_cover_protocol(g, weights, k=4, rng=rng)
        opt = konig_cover(g).shape[0]
        import math

        assert res.weight <= 6 * math.log2(g.n_vertices) * max(1, opt)
