"""Tests for the declarative experiment registry (ISSUE 3 tentpole).

The contract under test: every experiment id resolves through the
registry; every trial is a picklable module-level dataclass; and
process-level trial fan-out is bit-identical to a serial run for the same
seed, with the trials genuinely executing in worker processes.
"""

import os
import pickle
import time
from dataclasses import dataclass

import pytest

from repro.dist.executor import ProcessExecutor
from repro.experiments import trials as trials_mod
from repro.experiments.harness import run_trials
from repro.experiments.registry import (
    DuplicateExperimentError,
    ExperimentSpec,
    Trial,
    UnknownExperimentError,
    UnknownParameterError,
    all_experiments,
    experiment,
    experiment_ids,
    get_experiment,
)

EXPECTED_IDS = [f"e{i}" for i in range(1, 24)]

# One representative (tiny) instance of every trial class, for the pickle
# round-trip contract.  Kept explicit so a new field or class shows up here
# as a conscious edit, not a silent gap.
ALL_TRIALS = [
    trials_mod.E1Trial(n=200, k=4),
    trials_mod.E2Trial(k=4, width=8),
    trials_mod.E3Trial(n=200, k=4),
    trials_mod.E4Trial(k=4, n_stars=8),
    trials_mod.E5Trial(n=200, alpha=4.0, k=4, budget=16),
    trials_mod.E6Trial(n=200, alpha=4.0, k=4, budget=16),
    trials_mod.E7Trial(k=4, n_hidden=32),
    trials_mod.E8Trial(n=200, avg_degree=8.0, memory_cap_edges=2000),
    trials_mod.E9Trial(n=200, k=4, alpha=2.0),
    trials_mod.E10Trial(n=200, k=4, alpha=16.0),
    trials_mod.E11Trial(n=200),
    trials_mod.E12Trial(n=200, k=4, weight_spread=10.0, epsilon=0.5),
    trials_mod.E13Trial(n=200, k=4),
    trials_mod.E14Trial(n=200, k=4),
    trials_mod.E15Trial(n=200, k=4, variant="maximum+exact"),
    trials_mod.E16Trial(n=200, noise_degree=3.0),
    trials_mod.E17Trial(n=200, k=4, opt_bound=8),
    trials_mod.E18Trial(n=200, k=4, family="gnp"),
    trials_mod.E19Trial(n=200, k=4),
    trials_mod.E20Trial(n=200, k=4),
    trials_mod.E21Trial(n=200, avg_degree=8.0, executor="serial"),
    trials_mod.E22Trial(workload="ba", k=4, summarizer="greedy"),
    trials_mod.E23Trial(k=4, u=60, v=240),
]


class TestRegistryResolution:
    def test_all_ids_registered_in_paper_order(self):
        assert experiment_ids() == EXPECTED_IDS

    def test_ids_unique_and_resolvable(self):
        specs = all_experiments()
        assert len({s.id for s in specs}) == len(specs)
        for exp_id in experiment_ids():
            spec = get_experiment(exp_id)
            assert isinstance(spec, ExperimentSpec)
            assert spec.id == exp_id
            assert spec.title.upper().startswith(exp_id.upper() + ":")
            assert spec.columns and spec.grid and "n_trials" in spec.grid

    def test_lookup_is_case_insensitive(self):
        assert get_experiment("E1") is get_experiment("e1")

    def test_unknown_id_raises(self):
        with pytest.raises(UnknownExperimentError, match="e99"):
            get_experiment("e99")

    def test_duplicate_id_rejected(self):
        with pytest.raises(DuplicateExperimentError, match="'e1'"):
            @experiment("e1", title="dup", description="d", columns=["a"],
                        grid={"n_trials": 1}, seed=0)
            def _dup(spec, *, n_trials, seed, executor):  # pragma: no cover
                raise AssertionError

    def test_unknown_parameter_rejected(self):
        with pytest.raises(UnknownParameterError, match="nope"):
            get_experiment("e1").run(nope=3)

    def test_override_coercion_follows_default_types(self):
        spec = get_experiment("e1")
        assert spec.coerce("n_values", "600,1200") == (600, 1200)
        assert spec.coerce("n_trials", "5") == 5
        assert spec.coerce("general_graphs", "true") is True
        e5 = get_experiment("e5")
        assert e5.coerce("budget_factors", "0.5,2") == (0.5, 2.0)
        e15 = get_experiment("e15")
        assert e15.coerce("variants", "send-everything") == ("send-everything",)
        with pytest.raises(UnknownParameterError):
            spec.coerce("bogus", "1")

    def test_decorated_wrapper_keeps_legacy_call_style(self):
        from repro.experiments import tables

        t = tables.e11_induced_matching(n_values=(400,), n_trials=1, seed=3)
        assert t.rows and t.name.startswith("E11")
        assert tables.e11_induced_matching.spec is get_experiment("e11")


class TestTrialPickling:
    def test_every_trial_round_trips_through_pickle(self):
        for trial in ALL_TRIALS:
            clone = pickle.loads(pickle.dumps(trial))
            assert clone == trial, type(trial).__name__

    def test_trial_params_are_plain_data(self):
        for trial in ALL_TRIALS:
            params = trial.params()
            assert isinstance(params, dict) and params


# --------------------------------------------------------------------- #
# process-level fan-out: bit-identical and genuinely parallel
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class PidTrial(Trial):
    """Report the worker's PID (with a pause so several workers drain)."""

    sleep_s: float = 0.2

    def __call__(self, seed):
        time.sleep(self.sleep_s)
        return {"pid": float(os.getpid())}


class TestProcessFanOut:
    def test_e1_processes_bit_identical_to_serial(self):
        spec = get_experiment("e1")
        serial = spec.run(n_values=(400,), k_values=(4,), n_trials=3,
                          executor="serial")
        procs = spec.run(n_values=(400,), k_values=(4,), n_trials=3,
                         executor="processes")
        assert serial.rows == procs.rows

    def test_e8_processes_bit_identical_to_serial(self):
        spec = get_experiment("e8")
        serial = spec.run(n=400, n_trials=2, executor="serial")
        procs = spec.run(n=400, n_trials=2, executor="processes")
        assert serial.rows == procs.rows

    def test_trials_run_in_multiple_worker_processes(self):
        m = run_trials(PidTrial(), 8, seed=0,
                       executor=ProcessExecutor(max_workers=4))
        pids = set(m["pid"].astype(int).tolist())
        assert os.getpid() not in pids  # never the parent process
        assert len(pids) > 1  # distinct worker PIDs

    def test_closure_trials_still_fine_on_serial_and_threads(self):
        for backend in ("serial", "threads"):
            m = run_trials(lambda s: {"x": 1.0}, 2, seed=0,
                           executor=backend)
            assert m["x"].tolist() == [1.0, 1.0]
