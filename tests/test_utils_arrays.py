"""Tests for repro.utils.arrays."""

import numpy as np
import pytest

from repro.utils.arrays import (
    canonical_edges,
    dedupe_edges,
    edge_keys,
    isin_mask,
    unique_vertices,
)


class TestCanonicalEdges:
    def test_orients(self):
        out = canonical_edges(np.array([[5, 2], [1, 3]]))
        np.testing.assert_array_equal(out, [[2, 5], [1, 3]])

    def test_does_not_mutate_input(self):
        e = np.array([[5, 2]])
        canonical_edges(e)
        np.testing.assert_array_equal(e, [[5, 2]])

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            canonical_edges(np.array([1, 2, 3]))


class TestEdgeKeys:
    def test_orientation_invariant(self):
        a = edge_keys(np.array([[1, 4]]), 10)
        b = edge_keys(np.array([[4, 1]]), 10)
        assert a[0] == b[0] == 14

    def test_distinct_edges_distinct_keys(self):
        edges = np.array([[0, 1], [0, 2], [1, 2]])
        assert len(set(edge_keys(edges, 3).tolist())) == 3


class TestDedupeEdges:
    def test_removes_duplicates_and_reversals(self):
        edges = np.array([[0, 1], [1, 0], [0, 1], [2, 3]])
        out = dedupe_edges(edges, 4)
        assert out.shape == (2, 2)

    def test_removes_self_loops(self):
        out = dedupe_edges(np.array([[2, 2], [0, 1]]), 3)
        np.testing.assert_array_equal(out, [[0, 1]])

    def test_empty(self):
        out = dedupe_edges(np.zeros((0, 2), dtype=np.int64), 5)
        assert out.shape == (0, 2)


class TestIsinMask:
    def test_membership_orientation_invariant(self):
        edges = np.array([[0, 1], [2, 3]])
        other = np.array([[1, 0]])
        mask = isin_mask(edges, other, 4)
        np.testing.assert_array_equal(mask, [True, False])

    def test_empty_cases(self):
        e = np.array([[0, 1]])
        assert isin_mask(np.zeros((0, 2)), e, 2).shape == (0,)
        np.testing.assert_array_equal(
            isin_mask(e, np.zeros((0, 2)), 2), [False]
        )


class TestUniqueVertices:
    def test_sorted_unique(self):
        out = unique_vertices(np.array([[3, 1], [1, 2]]))
        np.testing.assert_array_equal(out, [1, 2, 3])

    def test_empty(self):
        assert unique_vertices(np.zeros((0, 2))).shape == (0,)
