"""Determinism contracts: same seed ⇒ bit-identical results, everywhere.

Reproducibility is a first-class deliverable of this library (every number
in EXPERIMENTS.md must be regenerable), so these tests pin the contract at
each layer rather than trusting it transitively.
"""

import numpy as np
import pytest


def tables_equal(a, b) -> bool:
    return a.columns == b.columns and a.rows == b.rows


class TestGeneratorDeterminism:
    @pytest.mark.parametrize("maker", [
        lambda s: __import__("repro.graph.generators", fromlist=["gnp"]
                             ).gnp(60, 0.1, s),
        lambda s: __import__("repro.graph.generators",
                             fromlist=["bipartite_gnp"]
                             ).bipartite_gnp(30, 30, 0.1, s),
        lambda s: __import__("repro.graph.generators",
                             fromlist=["power_law_bipartite"]
                             ).power_law_bipartite(40, 40, 3.0, rng=s),
    ])
    def test_same_seed_same_graph(self, maker):
        assert maker(77) == maker(77)

    def test_different_seed_different_graph(self):
        from repro.graph.generators import gnp

        assert gnp(60, 0.2, 1) != gnp(60, 0.2, 2)

    def test_hard_distributions(self):
        from repro.lowerbounds.dmatching import sample_dmatching
        from repro.lowerbounds.dvc import sample_dvc

        a = sample_dmatching(400, 4, 4, 5)
        b = sample_dmatching(400, 4, 4, 5)
        assert a.graph == b.graph
        np.testing.assert_array_equal(a.hidden_matching, b.hidden_matching)

        c = sample_dvc(400, 4, 4, 5)
        d = sample_dvc(400, 4, 4, 5)
        assert c.graph == d.graph and c.e_star == d.e_star


class TestProtocolDeterminism:
    def test_full_pipeline_bit_identical(self):
        from repro.core.protocols import (
            matching_coreset_protocol,
            vertex_cover_coreset_protocol,
        )
        from repro.dist.coordinator import run_simultaneous
        from repro.graph.generators import skewed_bipartite
        from repro.graph.partition import random_k_partition

        def run():
            g = skewed_bipartite(150, 150, 8, 60, 0.01, rng=3)
            part = random_k_partition(g, 5, 4)
            rm = run_simultaneous(matching_coreset_protocol(), part, 5)
            rv = run_simultaneous(vertex_cover_coreset_protocol(k=5), part, 6)
            return rm, rv

        (rm1, rv1), (rm2, rv2) = run(), run()
        np.testing.assert_array_equal(rm1.output, rm2.output)
        np.testing.assert_array_equal(rv1.output, rv2.output)
        assert rm1.total_bits == rm2.total_bits
        for m1, m2 in zip(rm1.messages, rm2.messages):
            np.testing.assert_array_equal(m1.edges, m2.edges)

    def test_grouped_protocol_deterministic(self):
        from repro.core.protocols import grouped_vertex_cover_protocol
        from repro.dist.coordinator import run_simultaneous
        from repro.graph.generators import bipartite_gnp
        from repro.graph.partition import random_k_partition

        g = bipartite_gnp(100, 100, 0.05, 7)
        part = random_k_partition(g, 4, 8)
        a = run_simultaneous(grouped_vertex_cover_protocol(4, 32.0), part, 9)
        b = run_simultaneous(grouped_vertex_cover_protocol(4, 32.0), part, 9)
        np.testing.assert_array_equal(a.output, b.output)

    def test_mapreduce_deterministic(self):
        from repro.core.mapreduce_algos import mapreduce_matching
        from repro.graph.generators import bipartite_gnp

        g = bipartite_gnp(80, 80, 0.05, 2)
        a = mapreduce_matching(g, k=5, rng=10)
        b = mapreduce_matching(g, k=5, rng=10)
        np.testing.assert_array_equal(a.matching, b.matching)
        assert a.job.n_rounds == b.job.n_rounds


class TestExperimentDeterminism:
    def test_table_reproducible(self):
        from repro.experiments import tables

        a = tables.e11_induced_matching(n_values=(1000,), n_trials=2, seed=42)
        b = tables.e11_induced_matching(n_values=(1000,), n_trials=2, seed=42)
        assert tables_equal(a, b)

    def test_different_seed_changes_measurements(self):
        from repro.experiments import tables

        a = tables.e11_induced_matching(n_values=(1000,), n_trials=2, seed=1)
        b = tables.e11_induced_matching(n_values=(1000,), n_trials=2, seed=2)
        assert a.rows != b.rows

    def test_weighted_protocol_reproducible(self):
        from repro.core.weighted import weighted_matching_coreset_protocol
        from repro.graph.generators import bipartite_gnp
        from repro.graph.weights import WeightedGraph

        g = bipartite_gnp(60, 60, 0.08, 3)
        rng = np.random.default_rng(4)
        wg = WeightedGraph(g.n_vertices, g.edges,
                           rng.uniform(1, 9, g.n_edges), validated=True)
        a = weighted_matching_coreset_protocol(wg, k=3, rng=11)
        b = weighted_matching_coreset_protocol(wg, k=3, rng=11)
        assert a.weight == b.weight
        np.testing.assert_array_equal(a.matching, b.matching)


class TestExecutorTortureSuite:
    """serial ≡ threads ≡ processes ≡ remote, bit for bit.

    The cross-backend contract (docs/PARALLELISM.md §§1, 7) exercised the
    expensive way: whole experiment tables (E1, E8) and whole `repro
    solve` runs compared across every backend — including the remote
    executor, whose workers are separate processes joined over sockets —
    plus the two zero-copy transfer strategies (`shared` locally, the
    RemotePieceCache remotely) against plain pickle.
    """

    OTHER_BACKENDS = ["threads", "processes", "remote"]

    def _resolve(self, backend):
        if backend == "remote":
            from repro.dist.remote import RemoteExecutor

            return RemoteExecutor(max_workers=2, connect_timeout=60)
        return backend

    @pytest.mark.parametrize("backend", OTHER_BACKENDS)
    def test_e1_table_identical_across_backends(self, backend):
        from repro.experiments.registry import get_experiment

        spec = get_experiment("e1")
        kw = dict(seed=5, n_values=(600,), k_values=(4,), n_trials=2)
        baseline = spec.run(executor="serial", **kw)
        ex = self._resolve(backend)
        try:
            other = spec.run(executor=ex, **kw)
        finally:
            if backend == "remote":
                ex.close()
        assert tables_equal(baseline, other)

    @pytest.mark.parametrize("backend", OTHER_BACKENDS)
    def test_e8_table_identical_across_backends(self, backend):
        from repro.experiments.registry import get_experiment

        spec = get_experiment("e8")
        kw = dict(seed=7, n=400, n_trials=2)
        baseline = spec.run(executor="serial", **kw)
        ex = self._resolve(backend)
        try:
            other = spec.run(executor=ex, **kw)
        finally:
            if backend == "remote":
                ex.close()
        assert tables_equal(baseline, other)

    def test_repro_solve_identical_across_backends(self, tmp_path,
                                                   monkeypatch):
        import json

        from repro.cli import main

        # The CLI exports --executor/--workers into the environment;
        # registering the vars with monkeypatch first guarantees those
        # writes are undone at teardown.
        monkeypatch.setenv("REPRO_EXECUTOR", "serial")
        monkeypatch.setenv("REPRO_WORKERS", "2")

        def solve_with(backend, spec="planted:n=800"):
            out = tmp_path / f"{backend}.json"
            rc = main(["solve", spec, "--problem", "matching",
                       "--solver", "coreset", "--k", "4", "--seed", "3",
                       "--executor", backend, "--workers", "2",
                       "--json", str(out)])
            assert rc == 0
            doc = json.loads(out.read_text())
            doc.pop("wall_time_s")  # the only non-deterministic field
            return doc

        baseline = solve_with("serial")
        for backend in self.OTHER_BACKENDS:
            assert solve_with(backend) == baseline, backend

    def test_shared_local_vs_remote_cache_transfer(self):
        from repro.core.protocols import matching_coreset_protocol
        from repro.dist.coordinator import run_simultaneous
        from repro.dist.executor import ProcessExecutor
        from repro.dist.remote import RemoteExecutor
        from repro.graph.generators import planted_matching_gnp
        from repro.graph.partition import random_k_partition

        graph, _ = planted_matching_gnp(800, 800, p=3.0 / 1600, rng=0)
        part = random_k_partition(graph, k=4, rng=1)
        proto = matching_coreset_protocol()

        serial = run_simultaneous(proto, part, rng=2)
        with ProcessExecutor(max_workers=2) as px:
            shared = run_simultaneous(proto, part, rng=2, executor=px,
                                      transfer="shared")
        with RemoteExecutor(max_workers=2, connect_timeout=60,
                            cache_min_bytes=0) as rx:
            cached = run_simultaneous(proto, part, rng=2, executor=rx)
            assert rx.piece_cache.stats()["pieces_stored"] > 0

        np.testing.assert_array_equal(serial.output, shared.output)
        np.testing.assert_array_equal(serial.output, cached.output)
        assert serial.total_bits == shared.total_bits == cached.total_bits
        for a, b, c in zip(serial.messages, shared.messages,
                           cached.messages):
            np.testing.assert_array_equal(a.edges, b.edges)
            np.testing.assert_array_equal(a.edges, c.edges)


class TestStreamDeterminism:
    def test_orders_reproducible(self):
        from repro.graph.generators import bipartite_gnp
        from repro.streaming import random_order

        g = bipartite_gnp(50, 50, 0.1, 6)
        np.testing.assert_array_equal(random_order(g, 13), random_order(g, 13))

    def test_two_phase_deterministic_given_order(self):
        from repro.graph.generators import bipartite_gnp
        from repro.streaming import TwoPhaseStreamingMatcher, random_order

        g = bipartite_gnp(60, 60, 0.08, 6)
        order = random_order(g, 14)
        a = TwoPhaseStreamingMatcher(g.n_vertices).run(g, order)
        b = TwoPhaseStreamingMatcher(g.n_vertices).run(g, order)
        np.testing.assert_array_equal(a, b)
