"""Tests for the D_VC hard distribution."""

import numpy as np
import pytest

from repro.dist.coordinator import run_simultaneous
from repro.cover.verify import is_vertex_cover
from repro.graph.partition import random_k_partition
from repro.graph.validation import check_bipartite
from repro.lowerbounds.dvc import (
    budget_limited_cover_protocol,
    covers_estar,
    sample_dvc,
)


class TestSampler:
    def test_structure(self, rng):
        inst = sample_dvc(1000, alpha=5, k=4, rng=rng)
        ok, msg = check_bipartite(inst.graph)
        assert ok, msg
        assert inst.set_a.shape[0] == 200
        assert inst.v_star in inst.set_a
        assert inst.graph.has_edge(*inst.e_star)

    def test_estar_endpoints(self, rng):
        inst = sample_dvc(500, alpha=5, k=4, rng=rng)
        v, r = inst.e_star
        assert 0 <= v < 500  # left side
        assert 500 <= r < 1000  # right side

    def test_small_cover_exists(self, rng):
        inst = sample_dvc(400, alpha=4, k=4, rng=rng)
        cover = np.concatenate([inst.set_a, [inst.e_star[1]]])
        assert is_vertex_cover(inst.graph, cover)
        assert inst.optimal_size_upper_bound == inst.set_a.shape[0] + 1

    def test_edges_only_from_a_plus_estar(self, rng):
        inst = sample_dvc(600, alpha=6, k=4, rng=rng)
        lefts = np.unique(inst.graph.edges[:, 0])
        allowed = set(inst.set_a.tolist()) | {inst.e_star[0]}
        assert set(lefts.tolist()) <= allowed

    def test_ea_density(self, rng):
        """|E_A| concentrates around (n/α)·n·k/2n = nk/2α."""
        n, alpha, k = 4000, 8, 8
        inst = sample_dvc(n, alpha, k, rng=rng)
        expected = n * k / (2 * alpha)
        assert 0.7 * expected < inst.graph.n_edges < 1.3 * expected

    def test_degree_one_lemma42(self, rng):
        """Lemma 4.2: Θ(n/α) vertices of L have degree exactly one in each
        machine's piece."""
        n, alpha, k = 4000, 8, 8
        inst = sample_dvc(n, alpha, k, rng=rng)
        part = random_k_partition(inst.graph, k, rng)
        for i in range(0, k, 3):
            piece = part.piece(i)
            deg_left = piece.degrees[:n]
            count = int((deg_left == 1).sum())
            assert n / (8 * alpha) < count < 2 * n / alpha

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            sample_dvc(100, alpha=0.9, k=2, rng=rng)


class TestCoversEstar:
    def test_detection(self, rng):
        inst = sample_dvc(200, alpha=4, k=2, rng=rng)
        assert covers_estar(inst, np.array([inst.e_star[0]]))
        assert covers_estar(inst, np.array([inst.e_star[1]]))
        others = np.setdiff1d(np.arange(400), np.array(inst.e_star))
        assert not covers_estar(inst, others[:5])


class TestBudgetProtocol:
    def test_full_budget_feasible(self, rng):
        inst = sample_dvc(1000, alpha=5, k=4, rng=rng)
        part = random_k_partition(inst.graph, 4, rng)
        proto = budget_limited_cover_protocol(10**9, 10**9, k=4)
        res = run_simultaneous(proto, part, rng)
        assert is_vertex_cover(inst.graph, res.output)
        assert covers_estar(inst, res.output)

    def test_small_budget_fails_often(self, rng):
        """The Theorem 4 shape: with budget ≪ n/α the output usually misses
        e* (checked over several trials to be robust)."""
        n, alpha, k = 2000, 8, 4
        misses = 0
        trials = 6
        for t in range(trials):
            inst = sample_dvc(n, alpha, k, rng=rng)
            part = random_k_partition(inst.graph, k, rng)
            proto = budget_limited_cover_protocol(5, 5, k=k)
            res = run_simultaneous(proto, part, rng)
            misses += not covers_estar(inst, res.output)
        assert misses >= trials // 2

    def test_budget_respected(self, rng):
        inst = sample_dvc(1000, alpha=5, k=4, rng=rng)
        part = random_k_partition(inst.graph, 4, rng)
        proto = budget_limited_cover_protocol(3, 2, k=4)
        res = run_simultaneous(proto, part, rng)
        for m in res.messages:
            assert m.n_edges <= 3
            assert m.n_fixed_vertices <= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            budget_limited_cover_protocol(-1, 0, k=2)
