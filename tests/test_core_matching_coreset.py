"""Tests for the Theorem 1 matching coreset and its subsampled variant."""

import numpy as np
import pytest

from repro.core.matching_coreset import (
    matching_coreset_message,
    maximum_matching_coreset,
    subsampled_matching_coreset,
)
from repro.graph.generators import bipartite_gnp, gnp
from repro.matching.verify import is_matching


class TestMaximumMatchingCoreset:
    def test_is_maximum_matching_of_piece(self, rng):
        from repro.matching.api import matching_number

        g = bipartite_gnp(30, 30, 0.08, rng)
        c = maximum_matching_coreset(g)
        assert is_matching(g, c)
        assert c.shape[0] == matching_number(g)

    def test_size_at_most_half_n(self, rng):
        g = gnp(40, 0.3, rng)
        assert maximum_matching_coreset(g).shape[0] <= 20

    def test_algorithm_choice_respected(self, rng):
        g = bipartite_gnp(20, 20, 0.1, rng)
        a = maximum_matching_coreset(g, algorithm="hopcroft_karp")
        b = maximum_matching_coreset(g, algorithm="blossom")
        assert a.shape[0] == b.shape[0]


class TestSubsampled:
    def test_alpha_one_is_full(self, rng):
        g = bipartite_gnp(30, 30, 0.1, rng)
        full = maximum_matching_coreset(g)
        sub = subsampled_matching_coreset(g, alpha=1.0, rng=rng)
        assert sub.shape[0] == full.shape[0]

    def test_expected_reduction(self, rng):
        g = bipartite_gnp(200, 200, 0.02, rng)
        full_size = maximum_matching_coreset(g).shape[0]
        sizes = [
            subsampled_matching_coreset(g, alpha=4.0, rng=rng).shape[0]
            for _ in range(20)
        ]
        mean = np.mean(sizes)
        assert 0.5 * full_size / 4 < mean < 2.0 * full_size / 4

    def test_subset_of_a_matching(self, rng):
        g = bipartite_gnp(40, 40, 0.1, rng)
        sub = subsampled_matching_coreset(g, alpha=2.0, rng=rng)
        assert is_matching(g, sub)

    def test_alpha_below_one_rejected(self, rng):
        with pytest.raises(ValueError):
            subsampled_matching_coreset(gnp(5, 0.5, rng), alpha=0.5, rng=rng)


class TestMessageAdapter:
    def test_message_contents(self, rng):
        g = bipartite_gnp(20, 20, 0.1, rng)
        msg = matching_coreset_message(g, 3, np.random.default_rng(0))
        assert msg.sender == 3
        assert msg.n_fixed_vertices == 0
        assert is_matching(g, msg.edges)

    def test_subsampled_message(self, rng):
        g = bipartite_gnp(50, 50, 0.1, rng)
        msg = matching_coreset_message(
            g, 0, np.random.default_rng(0), alpha=4.0
        )
        full = maximum_matching_coreset(g)
        assert msg.n_edges <= full.shape[0]
