"""Tests for the remote executor: wire protocol, piece cache, and wiring.

Fault injection lives in test_remote_faults.py and the cross-backend
determinism torture suite in test_determinism.py; this file covers the
sunny-day contract — input-order results, lazy pool start, the
fetch-and-pin piece cache, external ``repro worker`` processes, and the
resolution plumbing (``resolve_executor`` / CLI / env).
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from chaos import boom, square, worker_pid
from repro.dist.executor import (
    UnpicklableTaskError,
    available_backends,
    resolve_executor,
)
from repro.dist.remote import (
    RemoteExecutor,
    RemotePieceCache,
    _FrameReader,
    _dump_task,
    _parse_address,
)

@pytest.fixture(autouse=True)
def no_chaos():
    """Chaos env must never leak into the sunny-day tests."""
    assert not any(k.startswith("REPRO_CHAOS") for k in os.environ), \
        "chaos environment leaked from another test"
    yield


def _executor(**kw):
    kw.setdefault("max_workers", 2)
    kw.setdefault("connect_timeout", 60)
    return RemoteExecutor(**kw)


# --------------------------------------------------------------------- #
# map semantics
# --------------------------------------------------------------------- #
class TestMap:
    def test_results_in_input_order(self, remote_executor):
        assert remote_executor.map(square, list(range(16))) == [
            x * x for x in range(16)
        ]

    def test_empty_task_list(self, remote_executor):
        assert remote_executor.map(square, []) == []

    def test_tasks_run_in_worker_processes(self, remote_executor):
        pids = set(remote_executor.map(worker_pid, range(8)))
        assert os.getpid() not in pids

    def test_singleton_map_runs_inline(self):
        with _executor() as ex:
            assert ex.map(square, [7]) == [49]
            assert ex._pool is None  # no fleet for one task
            assert ex.pools_created == 0

    def test_singleton_map_still_checks_pickling(self):
        with _executor() as ex:
            with pytest.raises(UnpicklableTaskError, match="not picklable"):
                ex.map(square, [lambda: None])

    def test_unpicklable_task_raises_before_shipping(self, remote_executor):
        with pytest.raises(UnpicklableTaskError, match="not picklable"):
            remote_executor.map(square, [1, lambda: None, 3])

    def test_task_exception_propagates(self, remote_executor):
        with pytest.raises(ValueError, match="exploded on purpose"):
            remote_executor.map(boom, [1, 2, 3])
        # A task error must not poison the pool.
        assert remote_executor.map(square, [4]) == [16]

    def test_pool_is_reused_across_barriers(self):
        with _executor() as ex:
            ex.map(square, range(8))
            pool = ex._pool
            assert pool is not None
            ex.map(square, range(8))
            assert ex._pool is pool
            assert ex.pools_created == 1

    def test_idle_gap_does_not_retire_workers(self):
        # Regression: an idle worker's heartbeats queue unread while its
        # handler thread waits for work, so silence must be measured from
        # task dispatch — an idle gap longer than the heartbeat window
        # between barriers must not falsely retire live workers.
        import time

        with _executor() as ex:
            assert ex.map(square, range(4)) == [x * x for x in range(4)]
            pool = ex._pool
            before = list(pool._workers)
            ex.heartbeat_window = 1.0  # shrink so the test stays fast
            time.sleep(2.0)  # idle strictly longer than the window
            assert ex.map(square, range(4)) == [x * x for x in range(4)]
            # A false retirement would drop (and kill) the original
            # _WorkerConn objects and respawn replacements.
            assert list(pool._workers) == before
            assert ex.pools_created == 1


# --------------------------------------------------------------------- #
# the piece cache
# --------------------------------------------------------------------- #
class TestPieceCache:
    def test_register_dedupes_by_content(self, tiny_graph):
        cache = RemotePieceCache(min_bytes=0)
        d1 = cache.register(tiny_graph)
        d2 = cache.register(tiny_graph)
        assert d1 == d2
        assert len(cache) == 1
        assert cache.stats()["store_hits"] == 1

    def test_small_graphs_ship_inline(self, tiny_graph):
        cache = RemotePieceCache(min_bytes=1 << 20)
        payload = _dump_task(square, tiny_graph, cache)
        assert len(cache) == 0  # below the threshold: plain pickle
        assert len(payload) > 100

    def test_repeated_barriers_ship_bytes_once(self):
        from repro.core.protocols import matching_coreset_protocol
        from repro.dist.coordinator import run_simultaneous
        from repro.graph.generators import bipartite_gnp
        from repro.graph.partition import random_k_partition

        g = bipartite_gnp(300, 300, 0.05, 1)
        part = random_k_partition(g, 4, 2)
        proto = matching_coreset_protocol()
        with _executor(cache_min_bytes=0) as ex:
            run_simultaneous(proto, part, rng=3, executor=ex)
            first = ex.piece_cache.stats()
            for rng in (4, 5, 6):
                run_simultaneous(proto, part, rng=rng, executor=ex)
            last = ex.piece_cache.stats()
        # Later barriers re-registered the same pieces (hits, no new
        # stores or bytes), and shipping is bounded by fetch-and-pin:
        # each of the 4 pieces crosses the wire at most once per worker,
        # no matter how many barriers run.
        assert last["pieces_stored"] == first["pieces_stored"] == 4
        assert last["store_hits"] > first["store_hits"]
        assert last["bytes_stored"] == first["bytes_stored"]
        assert last["fetches_served"] <= 4 * 2  # pieces × workers
        assert last["bytes_shipped"] <= 2 * last["bytes_stored"]

    def test_cached_run_matches_serial(self):
        from repro.core.protocols import matching_coreset_protocol
        from repro.dist.coordinator import run_simultaneous
        from repro.graph.generators import bipartite_gnp
        from repro.graph.partition import random_k_partition

        g = bipartite_gnp(300, 300, 0.05, 5)
        part = random_k_partition(g, 4, 6)
        proto = matching_coreset_protocol()
        serial = run_simultaneous(proto, part, rng=7)
        with _executor(cache_min_bytes=0) as ex:
            remote = run_simultaneous(proto, part, rng=7, executor=ex)
            assert ex.piece_cache.stats()["pieces_stored"] > 0
        np.testing.assert_array_equal(serial.output, remote.output)
        assert serial.total_bits == remote.total_bits


# --------------------------------------------------------------------- #
# external workers (the `repro worker` CLI)
# --------------------------------------------------------------------- #
class TestExternalWorkers:
    def test_start_returns_address_before_any_worker(self):
        with _executor(spawn_workers=0) as ex:
            host, port = ex.start()
            assert host == "127.0.0.1" and port > 0
            assert ex.start() == (host, port)  # idempotent
            assert ex.n_workers == 0

    def test_externally_launched_workers_serve_barriers(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        with _executor(spawn_workers=0) as ex:
            host, port = ex.start()
            procs = [
                subprocess.Popen(
                    [sys.executable, "-m", "repro", "worker",
                     "--connect", f"{host}:{port}", "--tag", f"t{i}"],
                    env=env, stdout=subprocess.DEVNULL,
                )
                for i in range(2)
            ]
            try:
                assert ex.map(square, range(10)) == [
                    x * x for x in range(10)
                ]
            finally:
                pass  # close() below shuts the workers down
        for proc in procs:
            assert proc.wait(timeout=10) == 0  # clean shutdown frame

    def test_worker_launched_before_coordinator_retries_connect(
            self, unused_port):
        # Fleet scripts start workers and coordinator concurrently, so a
        # worker that dials in before the bind must retry, not die.
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--connect", f"127.0.0.1:{unused_port}"],
            env=env, stdout=subprocess.DEVNULL,
        )
        try:
            with _executor(spawn_workers=0,
                           bind=f"127.0.0.1:{unused_port}") as ex:
                ex.start()
                assert ex.map(square, range(6)) == [
                    x * x for x in range(6)
                ]
        finally:
            assert proc.wait(timeout=10) == 0

    def test_worker_cli_rejects_bad_address(self):
        from repro.cli import main

        assert main(["worker", "--connect", "nonsense"]) == 2

    def test_worker_cli_fails_fast_when_no_coordinator(self, unused_port,
                                                       monkeypatch):
        from repro.cli import main

        # The connect-retry grace window (workers may race the
        # coordinator's bind) is cut short so the failure is fast.
        monkeypatch.setenv("REPRO_REMOTE_CONNECT_TIMEOUT", "0.2")
        assert main(["worker", "--connect",
                     f"127.0.0.1:{unused_port}"]) == 1


@pytest.fixture
def unused_port():
    import socket

    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


# --------------------------------------------------------------------- #
# resolution plumbing
# --------------------------------------------------------------------- #
class TestResolution:
    def test_remote_is_a_registered_backend(self):
        assert "remote" in available_backends()

    def test_resolve_by_name(self):
        ex = resolve_executor("remote", workers=2)
        try:
            assert isinstance(ex, RemoteExecutor)
            assert ex.max_workers == 2
        finally:
            ex.close()

    def test_resolve_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "remote")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        ex = resolve_executor()
        try:
            assert isinstance(ex, RemoteExecutor)
            assert ex.max_workers == 2
        finally:
            ex.close()

    def test_unknown_backend_error_lists_remote(self):
        with pytest.raises(ValueError, match="remote"):
            resolve_executor("gpu")

    def test_cli_accepts_executor_remote(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["solve", "planted:n=100", "--solver", "coreset",
             "--problem", "matching", "--executor", "remote"])
        assert args.executor == "remote"

    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_REMOTE_BIND", "127.0.0.1:7341")
        monkeypatch.setenv("REPRO_REMOTE_SPAWN", "0")
        monkeypatch.setenv("REPRO_REMOTE_TIMEOUT", "7.5")
        monkeypatch.setenv("REPRO_REMOTE_RETRIES", "5")
        monkeypatch.setenv("REPRO_REMOTE_CONNECT_TIMEOUT", "3")
        ex = RemoteExecutor(max_workers=2)
        try:
            assert ex.bind_address == ("127.0.0.1", 7341)
            assert ex.spawn_workers == 0
            assert ex.task_timeout == 7.5
            assert ex.retries == 5
            assert ex.connect_timeout == 3.0
        finally:
            ex.close()

    @pytest.mark.parametrize("kw", [
        dict(spawn_workers=-1),
        dict(task_timeout=0),
        dict(retries=-1),
        dict(bind="no-port-here"),
    ])
    def test_bad_configuration_rejected(self, kw):
        with pytest.raises(ValueError):
            RemoteExecutor(max_workers=2, **kw)


# --------------------------------------------------------------------- #
# protocol plumbing details
# --------------------------------------------------------------------- #
class TestWireProtocol:
    def test_parse_address(self):
        assert _parse_address("127.0.0.1:80") == ("127.0.0.1", 80)
        assert _parse_address("[::1]:80") == ("[::1]", 80)
        with pytest.raises(ValueError, match="HOST:PORT"):
            _parse_address("8080")
        with pytest.raises(ValueError, match="HOST:PORT"):
            _parse_address("host:eighty")

    def test_frame_reader_reassembles_split_frames(self):
        import pickle
        import socket
        import struct

        a, b = socket.socketpair()
        try:
            payload = pickle.dumps(("hello", {"pid": 1}))
            data = struct.pack("!I", len(payload)) + payload
            reader = _FrameReader(b)
            a.sendall(data[:3])  # split inside the length prefix
            assert reader.recv(timeout=0.05) is None
            a.sendall(data[3:])
            assert reader.recv(timeout=1.0) == ("hello", {"pid": 1})
        finally:
            a.close()
            b.close()

    def test_frame_reader_raises_on_eof(self):
        import socket

        a, b = socket.socketpair()
        reader = _FrameReader(b)
        a.close()
        try:
            with pytest.raises(ConnectionError):
                reader.recv(timeout=1.0)
        finally:
            b.close()
