"""Tests for induced matchings, HVP, and the adversarial gadget."""

import math

import numpy as np
import pytest

from repro.graph.edgelist import Graph
from repro.graph.generators import bipartite_gnp
from repro.lowerbounds.adversary import (
    contrast_partitionings,
    decoy_gadget_instance,
)
from repro.lowerbounds.hvp import play_subsample_protocol, sample_hvp
from repro.lowerbounds.induced import (
    degree_one_left_fraction_theory,
    induced_matching,
    induced_matching_density_exact,
    induced_matching_density_theory,
)
from repro.matching.verify import is_matching


class TestInducedMatching:
    def test_definition(self):
        # Path 0-1-2 plus isolated edge 3-4: only (3,4) is induced.
        g = Graph(5, [(0, 1), (1, 2), (3, 4)])
        m = induced_matching(g)
        assert m.tolist() == [[3, 4]]

    def test_empty(self):
        assert induced_matching(Graph(3)).shape == (0, 2)

    def test_is_matching(self, rng):
        g = bipartite_gnp(200, 200, 1 / 200, rng)
        m = induced_matching(g)
        assert is_matching(g, m)

    def test_density_converges_to_exact(self, rng):
        n = 20000
        g = bipartite_gnp(n, n, 1.0 / n, rng)
        density = induced_matching(g).shape[0] / n
        assert abs(density - induced_matching_density_exact()) < 0.02
        assert density > induced_matching_density_theory()

    def test_constants(self):
        assert induced_matching_density_exact() == pytest.approx(1 / math.e**2)
        assert induced_matching_density_theory() == pytest.approx(1 / math.e**3)
        assert degree_one_left_fraction_theory() == pytest.approx(1 / math.e)


class TestHVP:
    def test_instance_structure(self, rng):
        inst = sample_hvp(1000, 300, rng)
        assert inst.u_star not in set(inst.bob_t.tolist())
        assert inst.u_star in set(inst.alice_set.tolist())
        # S ⊆ T: everything in Alice's set except u* is in T.
        s = np.setdiff1d(inst.alice_set, [inst.u_star])
        assert np.isin(s, inst.bob_t).all()

    def test_sigma_is_permutation(self, rng):
        inst = sample_hvp(100, 30, rng)
        assert np.sort(inst.sigma).tolist() == list(range(100))

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            sample_hvp(10, 10, rng)

    def test_full_budget_always_succeeds(self, rng):
        inst = sample_hvp(500, 200, rng)
        ok, size = play_subsample_protocol(inst, 10**6, rng)
        assert ok
        assert size >= 1

    def test_success_rate_scales_linearly(self, rng):
        """P[success] ≈ b / |alice_set| — the Ω(n/α) message shape."""
        trials = 150
        hits = {10: 0, 100: 0}
        for t in range(trials):
            inst = sample_hvp(600, 300, rng)
            for b in hits:
                ok, _ = play_subsample_protocol(inst, b, rng)
                hits[b] += ok
        # |alice_set| ≈ 100; b=100 nearly always succeeds, b=10 ≈ 10%.
        assert hits[100] / trials > 0.85
        assert hits[10] / trials < 0.35

    def test_zero_budget_fails(self, rng):
        inst = sample_hvp(100, 40, rng)
        ok, size = play_subsample_protocol(inst, 0, rng)
        assert not ok and size == 0


class TestDecoyGadget:
    def test_instance_shapes(self, rng):
        inst = decoy_gadget_instance(n_hidden=40, k=4, rng=rng)
        assert inst.graph.n_vertices == 2 * 40 + 2 * 10
        assert inst.graph.n_edges == 3 * 40
        assert inst.hidden_matching.shape == (40, 2)
        assert inst.optimum == 40 + 10  # N + s

    def test_adversarial_partition_valid(self, rng):
        from repro.graph.validation import check_partition

        inst = decoy_gadget_instance(48, 4, rng)
        ok, msg = check_partition(inst.adversarial)
        assert ok, msg

    def test_each_gadget_whole_on_one_machine(self, rng):
        """Every hidden edge must share its machine with both its decoys —
        that is what forces the bad maximum matching."""
        inst = decoy_gadget_instance(24, 3, rng)
        part = inst.adversarial
        n = inst.graph.n_vertices
        for i in range(3):
            piece = part.piece(i)
            hidden_here = piece.edges[
                (piece.edges[:, 0] < 24) & (piece.edges[:, 1] < 48)
            ]
            for a, b in hidden_here.tolist():
                # a's decoy and b's decoy are present in the same piece.
                assert (piece.degrees[a] == 2) and (piece.degrees[b] == 2)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            decoy_gadget_instance(10, 1, rng)
        with pytest.raises(ValueError):
            decoy_gadget_instance(10, 3, rng)  # not a multiple

    def test_contrast_shape(self, rng):
        c = contrast_partitionings(n_hidden=48, k=6, rng=rng)
        assert c.adversarial_ratio > 2.5
        assert c.random_ratio < 1.5
        assert c.adversarial_ratio == pytest.approx((6 + 1) / 2, rel=0.2)
