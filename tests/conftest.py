"""Shared fixtures and oracles for the test suite.

networkx is used here (and only here + in a few oracle helpers) as an
independent reference implementation; the library itself never imports it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.bipartite import BipartiteGraph
from repro.graph.edgelist import Graph


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_graph():
    """A 6-vertex graph with a known maximum matching of size 3."""
    return Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])


@pytest.fixture(scope="session")
def remote_executor():
    """One RemoteExecutor (2 local workers) shared by the sunny-day remote
    tests, so each test doesn't pay the worker spawn-and-connect cost.

    Fault-injection tests build their own executors — chaos must never
    touch a shared pool."""
    from repro.dist.remote import RemoteExecutor

    with RemoteExecutor(max_workers=2, connect_timeout=60) as ex:
        yield ex


@pytest.fixture
def tiny_bipartite():
    """K_{3,3} minus one edge; MM = 3."""
    edges = [(0, 3), (0, 4), (0, 5), (1, 3), (1, 4), (2, 3), (2, 5)]
    return BipartiteGraph(3, 3, edges)


# ------------------------------------------------------------------ #
# networkx oracles
# ------------------------------------------------------------------ #
def nx_graph(g: Graph):
    import networkx as nx

    G = nx.Graph()
    G.add_nodes_from(range(g.n_vertices))
    G.add_edges_from(map(tuple, g.edges.tolist()))
    return G


def nx_matching_number(g: Graph) -> int:
    import networkx as nx

    if isinstance(g, BipartiteGraph):
        if g.n_edges == 0:
            return 0
        G = nx_graph(g)
        return len(nx.bipartite.maximum_matching(G, top_nodes=range(g.n_left))) // 2
    G = nx_graph(g)
    return len(nx.max_weight_matching(G, maxcardinality=True))


def nx_min_vertex_cover_bipartite(g: BipartiteGraph) -> int:
    """König via networkx: |min VC| = |max matching| on bipartite graphs."""
    return nx_matching_number(g)
