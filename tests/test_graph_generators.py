"""Tests for repro.graph.generators."""

import numpy as np
import pytest

from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import (
    bipartite_gnm,
    bipartite_gnp,
    bipartite_star_forest,
    complete_bipartite,
    complete_graph,
    gnp,
    hidden_matching_with_hubs,
    layered_maximal_trap,
    path_graph,
    planted_matching_gnp,
    random_left_regular,
    random_perfect_matching,
    skewed_bipartite,
    star_forest,
)
from repro.graph.validation import check_bipartite, check_graph


class TestGnp:
    def test_edge_count_concentrates(self, rng):
        n, p = 200, 0.1
        g = gnp(n, p, rng)
        expected = p * n * (n - 1) / 2
        assert 0.8 * expected < g.n_edges < 1.2 * expected

    def test_extremes(self, rng):
        assert gnp(50, 0.0, rng).n_edges == 0
        assert gnp(20, 1.0, rng).n_edges == 20 * 19 // 2

    def test_valid_structure(self, rng):
        g = gnp(100, 0.05, rng)
        ok, msg = check_graph(g)
        assert ok, msg

    def test_pair_unranking_bijective(self, rng):
        """p=1 must produce every pair exactly once (unranking is exact)."""
        g = gnp(40, 1.0, rng)
        assert g.n_edges == 40 * 39 // 2

    def test_bad_probability_raises(self, rng):
        with pytest.raises(ValueError):
            gnp(10, 1.5, rng)

    def test_reproducible(self):
        assert gnp(50, 0.2, 7) == gnp(50, 0.2, 7)


class TestBipartiteGnp:
    def test_edge_count(self, rng):
        g = bipartite_gnp(100, 150, 0.05, rng)
        expected = 0.05 * 100 * 150
        assert 0.7 * expected < g.n_edges < 1.3 * expected
        ok, msg = check_bipartite(g)
        assert ok, msg

    def test_full(self, rng):
        assert bipartite_gnp(10, 12, 1.0, rng).n_edges == 120

    def test_gnm_exact_count(self, rng):
        g = bipartite_gnm(20, 30, 100, rng)
        assert g.n_edges == 100

    def test_gnm_too_many_raises(self, rng):
        with pytest.raises(ValueError):
            bipartite_gnm(3, 3, 10, rng)


class TestMatchingGenerators:
    def test_perfect_matching_is_perfect(self, rng):
        g = random_perfect_matching(30, 40, rng=rng)
        assert g.n_edges == 30
        assert g.degrees.max() == 1

    def test_sized_matching(self, rng):
        g = random_perfect_matching(30, 40, size=10, rng=rng)
        assert g.n_edges == 10

    def test_oversize_raises(self, rng):
        with pytest.raises(ValueError):
            random_perfect_matching(5, 5, size=6, rng=rng)

    def test_planted_guarantee(self, rng):
        from repro.matching.api import matching_number

        g, planted = planted_matching_gnp(50, 50, 0.02, rng=rng)
        assert planted.shape == (50, 2)
        assert matching_number(g) == 50  # planted perfect matching survives

    def test_left_regular_degrees(self, rng):
        g = random_left_regular(20, 100, degree=5, rng=rng)
        np.testing.assert_array_equal(g.degrees[:20], [5] * 20)

    def test_left_regular_degree_too_big(self, rng):
        with pytest.raises(ValueError):
            random_left_regular(5, 4, degree=5, rng=rng)


class TestStructured:
    def test_star_forest(self):
        g = star_forest(3, 4)
        assert g.n_vertices == 15
        assert g.n_edges == 12
        assert g.degrees[:3].tolist() == [4, 4, 4]
        assert (g.degrees[3:] == 1).all()

    def test_bipartite_star_forest(self):
        g = bipartite_star_forest(3, 5)
        assert isinstance(g, BipartiteGraph)
        assert g.n_left == 3
        assert g.n_edges == 15
        assert (g.degrees[3:] == 1).all()

    def test_star_forest_validation(self):
        with pytest.raises(ValueError):
            star_forest(-1, 2)
        with pytest.raises(ValueError):
            bipartite_star_forest(2, 0)

    def test_skewed_has_hubs(self, rng):
        g = skewed_bipartite(100, 100, hub_count=5, hub_degree=50,
                             leaf_p=0.01, rng=rng)
        assert (g.degrees[:100] >= 50).sum() >= 5

    def test_path_and_complete(self):
        assert path_graph(5).n_edges == 4
        assert path_graph(1).n_edges == 0
        assert complete_graph(6).n_edges == 15
        assert complete_bipartite(3, 4).n_edges == 12


class TestTrapInstances:
    def test_layered_trap_optimum(self, rng):
        from repro.matching.api import matching_number

        g, opt = layered_maximal_trap(4, 10, rng)
        assert matching_number(g) == opt == 20

    def test_hub_instance_shape(self, rng):
        g, n_pairs, n_hubs = hidden_matching_with_hubs(4, 16, rng=rng)
        assert n_pairs == 64
        assert n_hubs == 32
        assert g.n_left == 64
        assert g.n_right == 64 + 32
        # Hidden matching present: l_j -- r_j.
        for j in (0, 17, 63):
            assert g.has_edge(j, 64 + j)

    def test_hub_instance_mm_at_least_hidden(self, rng):
        from repro.matching.api import matching_number

        g, n_pairs, _ = hidden_matching_with_hubs(2, 8, rng=rng)
        assert matching_number(g) >= n_pairs

    def test_hub_instance_validation(self, rng):
        with pytest.raises(ValueError):
            hidden_matching_with_hubs(0, 5, rng=rng)
        with pytest.raises(ValueError):
            hidden_matching_with_hubs(2, 5, hub_slack=0, rng=rng)


class TestDegreeSequenceBipartite:
    def test_realized_degrees_bounded_by_targets(self, rng):
        from repro.graph.generators import degree_sequence_bipartite

        targets = np.array([3, 0, 5, 1, 2])
        g = degree_sequence_bipartite(targets, 40, rng=rng)
        assert isinstance(g, BipartiteGraph)
        left_deg = np.bincount(g.edges[:, 0], minlength=5)
        assert (left_deg <= targets).all()
        assert left_deg[1] == 0

    def test_right_weights_skew_attachment(self):
        from repro.graph.generators import degree_sequence_bipartite

        w = np.zeros(20)
        w[3] = 1.0  # all mass on one right vertex
        g = degree_sequence_bipartite(np.full(10, 4), 20, w, rng=0)
        # duplicates collapse: each left vertex keeps one edge, all to 3
        assert g.n_edges == 10
        assert (g.edges[:, 1] == 10 + 3).all()

    def test_deterministic_and_seed_sensitive(self):
        from repro.graph.generators import degree_sequence_bipartite

        targets = np.arange(1, 30)
        a = degree_sequence_bipartite(targets, 50, rng=8)
        b = degree_sequence_bipartite(targets, 50, rng=8)
        c = degree_sequence_bipartite(targets, 50, rng=9)
        assert a == b
        assert a != c

    def test_validation(self, rng):
        from repro.graph.generators import degree_sequence_bipartite

        with pytest.raises(ValueError, match="1-D"):
            degree_sequence_bipartite(np.zeros((2, 2)), 5, rng=rng)
        with pytest.raises(ValueError, match="non-negative"):
            degree_sequence_bipartite(np.array([-1]), 5, rng=rng)
        with pytest.raises(ValueError, match="shape"):
            degree_sequence_bipartite(np.array([2]), 5, np.ones(4), rng=rng)
        assert degree_sequence_bipartite(np.zeros(0), 5, rng=rng).n_edges == 0


class TestGeneratorSeedingConsistency:
    """Every generator must accept int seeds and np.random.Generator
    interchangeably (``as_generator``), never touching global numpy state."""

    def test_int_seed_equals_generator(self):
        from repro.graph.generators import clustered_bipartite, power_law_bipartite

        for fn, args in (
            (power_law_bipartite, (60, 60, 4.0)),
            (clustered_bipartite, (4, 12, 0.4, 0.01)),
            (bipartite_gnp, (30, 30, 0.2)),
        ):
            via_int = fn(*args, rng=31)
            via_gen = fn(*args, rng=np.random.default_rng(31))
            assert via_int == via_gen, fn.__name__

    def test_no_global_state_pollution(self):
        from repro.graph.generators import power_law_bipartite

        np.random.seed(0)
        before = np.random.get_state()[1].copy()
        power_law_bipartite(50, 50, 3.0, rng=5)
        after = np.random.get_state()[1]
        np.testing.assert_array_equal(before, after)
