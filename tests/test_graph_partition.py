"""Tests for repro.graph.partition."""

import numpy as np
import pytest

from repro.graph.edgelist import Graph
from repro.graph.generators import gnp
from repro.graph.partition import (
    PartitionedGraph,
    adversarial_degree_partition,
    partition_by_assignment,
    random_k_partition,
)
from repro.graph.validation import check_partition


class TestPartitionedGraph:
    def test_validates_assignment_shape(self):
        g = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError, match="shape"):
            PartitionedGraph(g, 2, np.array([0]))

    def test_validates_machine_ids(self):
        g = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError, match="machine ids"):
            PartitionedGraph(g, 2, np.array([0, 5]))

    def test_validates_k(self):
        g = Graph(2, [(0, 1)])
        with pytest.raises(ValueError):
            PartitionedGraph(g, 0, np.array([0]))

    def test_piece_index_range(self):
        g = Graph(2, [(0, 1)])
        p = PartitionedGraph(g, 2, np.array([1]))
        with pytest.raises(IndexError):
            p.piece(2)

    def test_pieces_partition_edges(self, rng):
        g = gnp(50, 0.2, rng)
        p = random_k_partition(g, 7, rng)
        sizes = p.piece_sizes()
        assert sizes.sum() == g.n_edges
        ok, msg = check_partition(p)
        assert ok, msg

    def test_pieces_keep_full_vertex_set(self, rng):
        g = gnp(30, 0.1, rng)
        p = random_k_partition(g, 4, rng)
        for piece in p.pieces():
            assert piece.n_vertices == g.n_vertices


class TestRandomKPartition:
    def test_k1_gives_whole_graph(self, rng):
        g = gnp(20, 0.3, rng)
        p = random_k_partition(g, 1, rng)
        assert p.piece(0) == g

    def test_balanced_in_expectation(self, rng):
        g = gnp(120, 0.5, rng)  # ~3570 edges
        k = 6
        p = random_k_partition(g, k, rng)
        sizes = p.piece_sizes()
        expected = g.n_edges / k
        assert (np.abs(sizes - expected) < 0.3 * expected).all()

    def test_reproducible(self, rng):
        g = gnp(30, 0.2, 3)
        a = random_k_partition(g, 4, 9).assignment
        b = random_k_partition(g, 4, 9).assignment
        np.testing.assert_array_equal(a, b)

    def test_bad_k_raises(self, rng):
        with pytest.raises(ValueError):
            random_k_partition(gnp(5, 0.5, rng), 0, rng)

    def test_each_edge_exactly_once(self, rng):
        """The defining property of a random k-partitioning."""
        g = gnp(40, 0.3, rng)
        p = random_k_partition(g, 5, rng)
        seen = np.zeros(g.n_edges, dtype=int)
        for i in range(p.k):
            seen[p.assignment == i] += 1
        assert (seen == 1).all()


class TestExplicitPartitions:
    def test_partition_by_assignment_infers_k(self):
        g = Graph(4, [(0, 1), (2, 3), (0, 2)])
        p = partition_by_assignment(g, [0, 2, 1])
        assert p.k == 3

    def test_degree_partition_valid(self, rng):
        g = gnp(40, 0.2, rng)
        p = adversarial_degree_partition(g, 4)
        ok, msg = check_partition(p)
        assert ok, msg

    def test_degree_partition_empty_graph(self):
        p = adversarial_degree_partition(Graph(5), 3)
        assert p.piece_sizes().sum() == 0

    def test_degree_partition_is_deterministic(self, rng):
        g = gnp(30, 0.2, 5)
        a = adversarial_degree_partition(g, 4).assignment
        b = adversarial_degree_partition(g, 4).assignment
        np.testing.assert_array_equal(a, b)
