"""Statistical tests of the paper's quantitative guarantees.

Each test pins one theorem/lemma/claim to a measurable assertion at a fixed
seed — these are the strongest "did we reproduce the paper" checks in the
suite (benchmarks rerun them at larger scale).
"""

import math

import numpy as np
import pytest

from repro.core.greedy_match import greedy_match
from repro.core.protocols import (
    matching_coreset_protocol,
    vertex_cover_coreset_protocol,
)
from repro.cover import is_vertex_cover, konig_cover
from repro.dist.coordinator import run_simultaneous
from repro.graph.generators import planted_matching_gnp, skewed_bipartite
from repro.graph.partition import random_k_partition
from repro.matching.api import maximum_matching
from repro.utils.rng import spawn_generators


class TestTheorem1:
    """Maximum matching is an O(1)-approximate randomized coreset."""

    def test_ratio_at_most_9_over_trials(self):
        gens = spawn_generators(101, 10)
        worst = 0.0
        for g_rng in gens:
            graph, _ = planted_matching_gnp(500, 500, 0.004, rng=g_rng)
            part = random_k_partition(graph, 8, g_rng)
            res = run_simultaneous(matching_coreset_protocol(), part, g_rng)
            opt = maximum_matching(graph).shape[0]
            worst = max(worst, opt / max(1, res.output.shape[0]))
        assert worst <= 9
        assert worst <= 3  # empirical: far better than the proof constant

    def test_ratio_flat_in_k(self):
        """The guarantee is independent of k (for k ≤ O(MM/log n))."""
        ratios = {}
        for k in (4, 32):
            gens = spawn_generators(202 + k, 5)
            rs = []
            for g_rng in gens:
                graph, _ = planted_matching_gnp(600, 600, 0.004, rng=g_rng)
                part = random_k_partition(graph, k, g_rng)
                res = run_simultaneous(
                    matching_coreset_protocol(), part, g_rng
                )
                opt = maximum_matching(graph).shape[0]
                rs.append(opt / max(1, res.output.shape[0]))
            ratios[k] = np.mean(rs)
        assert ratios[32] < 3
        assert ratios[4] < 3


class TestTheorem2:
    """Peeling gives an O(log n)-approximate randomized coreset for VC."""

    def test_log_ratio_and_size(self):
        gens = spawn_generators(303, 6)
        for g_rng in gens:
            n = 1200
            graph = skewed_bipartite(n // 2, n // 2, 30, 200, 0.008, g_rng)
            k = 8
            part = random_k_partition(graph, k, g_rng)
            res = run_simultaneous(
                vertex_cover_coreset_protocol(k=k), part, g_rng
            )
            assert is_vertex_cover(graph, res.output)
            opt = konig_cover(graph).shape[0]
            assert res.output.shape[0] <= 2 * math.log2(n) * max(1, opt)
            # Size bound: each message ≤ O(n log n) edges.
            for m in res.messages:
                assert m.n_edges <= 8 * n * math.log2(n)

    def test_union_of_fixed_sets_small(self):
        """The heart of Theorem 2's analysis (Lemma 3.6): the union of all
        machines' peeled sets is O(log n)·VC, not k·O(log n)·VC."""
        gens = spawn_generators(404, 4)
        for g_rng in gens:
            n = 1600
            graph = skewed_bipartite(n // 2, n // 2, 40, 300, 0.008, g_rng)
            k = 8
            part = random_k_partition(graph, k, g_rng)
            from repro.core.vc_coreset import vc_coreset

            fixed_sets = [
                vc_coreset(part.piece(i), k=k).fixed_vertices
                for i in range(k)
            ]
            union = np.unique(np.concatenate(fixed_sets)) if any(
                f.size for f in fixed_sets
            ) else np.zeros(0)
            per_machine_mean = np.mean([f.shape[0] for f in fixed_sets])
            opt = konig_cover(graph).shape[0]
            assert union.shape[0] <= 2 * math.log2(n) * max(1, opt)
            # Overlap: union is much smaller than the sum (machines peel the
            # same vertices) whenever peeling happened at all.
            total = sum(f.shape[0] for f in fixed_sets)
            if total > 4 * k:
                assert union.shape[0] < 0.5 * total


class TestClaim33:
    """|M*_{<i}| concentrates at ((i-1)/k)·MM(G)."""

    def test_prefix_concentration(self):
        gens = spawn_generators(505, 5)
        k = 10
        for g_rng in gens:
            graph, _ = planted_matching_gnp(800, 800, 0.003, rng=g_rng)
            part = random_k_partition(graph, k, g_rng)
            opt = maximum_matching(graph)
            _, trace = greedy_match(part, reference_optimum=opt)
            mm = opt.shape[0]
            for i, prefix in enumerate(trace.optimal_assigned_prefix):
                ideal = i / k * mm
                assert abs(prefix - ideal) <= 0.08 * mm + 5


class TestLemma32:
    """While |M| ≤ MM/9, each of the first k/3 steps gains Ω(MM/k)."""

    def test_early_gains(self):
        gens = spawn_generators(606, 5)
        k = 12
        for g_rng in gens:
            graph, _ = planted_matching_gnp(800, 800, 0.003, rng=g_rng)
            part = random_k_partition(graph, k, g_rng)
            mm = maximum_matching(graph).shape[0]
            _, trace = greedy_match(part)
            for step in range(k // 3):
                if trace.sizes[step] <= mm / 9:
                    # Lemma 3.2's bound is (1-6c-o(1))/k·MM with c=1/9;
                    # assert a conservative MM/(3k).
                    assert trace.gains[step] >= mm / (3 * k)


class TestRemark52:
    """Subsampled matchings: α-approximation with Õ(nk/α²) communication."""

    def test_alpha_sweep(self):
        from repro.core.protocols import subsampled_matching_protocol

        gens = spawn_generators(707, 4)
        n, k = 1600, 8
        for alpha in (2.0, 4.0):
            outs = []
            bits = []
            for g_rng in gens:
                graph, _ = planted_matching_gnp(
                    n // 2, n // 2, 3.0 / n, rng=g_rng
                )
                part = random_k_partition(graph, k, g_rng)
                res = run_simultaneous(
                    subsampled_matching_protocol(alpha), part, g_rng
                )
                opt = maximum_matching(graph).shape[0]
                outs.append(opt / max(1, res.output.shape[0]))
                bits.append(res.total_bits)
            assert np.mean(outs) <= 3 * alpha
            # Bits fall off with α: compare against the α=1 protocol.
        # Monotonicity of communication in alpha:
        res_bits = {}
        for alpha in (1.0, 4.0):
            graph, _ = planted_matching_gnp(n // 2, n // 2, 3.0 / n, rng=1)
            part = random_k_partition(graph, k, 2)
            from repro.core.protocols import subsampled_matching_protocol

            res = run_simultaneous(
                subsampled_matching_protocol(alpha), part, 3
            )
            res_bits[alpha] = res.total_bits
        assert res_bits[4.0] < res_bits[1.0] / 2
