"""Tests for the random-arrival streaming module."""

import numpy as np
import pytest

from repro.graph.edgelist import Graph
from repro.graph.generators import bipartite_gnp, path_graph, planted_matching_gnp
from repro.matching.api import maximum_matching
from repro.matching.verify import is_matching, is_maximal_matching
from repro.streaming import (
    StreamingGreedyMatcher,
    TwoPhaseStreamingMatcher,
    adversarial_order,
    random_order,
)


class TestOrders:
    def test_random_order_is_permutation(self, rng):
        g = bipartite_gnp(30, 30, 0.1, rng)
        order = random_order(g, rng)
        assert np.sort(order).tolist() == list(range(g.n_edges))

    def test_adversarial_order_optimal_edges_last(self, rng):
        g = bipartite_gnp(40, 40, 0.08, rng)
        opt = maximum_matching(g)
        order = adversarial_order(g, opt, rng)
        assert np.sort(order).tolist() == list(range(g.n_edges))
        # The last |opt| stream positions are exactly the optimal edges.
        from repro.utils.arrays import isin_mask

        tail = g.edges[order[-opt.shape[0]:]]
        assert isin_mask(tail, opt, g.n_vertices).all()


class TestGreedyMatcher:
    def test_output_maximal_any_order(self, rng):
        g = bipartite_gnp(50, 50, 0.08, rng)
        for order in (random_order(g, rng),
                      np.arange(g.n_edges, dtype=np.int64)):
            m = StreamingGreedyMatcher(g.n_vertices).run(g, order)
            assert is_maximal_matching(g, m)

    def test_half_approximation_even_adversarial(self, rng):
        g, _ = planted_matching_gnp(200, 200, 0.01, rng=rng)
        opt = maximum_matching(g)
        order = adversarial_order(g, opt, rng)
        m = StreamingGreedyMatcher(g.n_vertices).run(g, order)
        assert m.shape[0] >= opt.shape[0] / 2

    def test_offer_semantics(self):
        sm = StreamingGreedyMatcher(4)
        assert sm.offer(0, 1)
        assert not sm.offer(1, 2)  # 1 taken
        assert sm.offer(2, 3)
        assert not sm.offer(0, 0)  # self loop
        assert sm.size == 2

    def test_memory_is_linear(self):
        assert StreamingGreedyMatcher(1000).memory_words == 1000

    def test_worst_case_half_tight(self):
        """P3 path with the middle edge first: greedy gets 1, opt 2."""
        g = path_graph(4)  # edges (0,1),(1,2),(2,3)
        order = np.array([1, 0, 2])  # middle edge first
        m = StreamingGreedyMatcher(4).run(g, order)
        assert m.shape[0] == 1
        assert maximum_matching(g, "blossom").shape[0] == 2


class TestTwoPhaseMatcher:
    def test_valid_matching(self, rng):
        g, _ = planted_matching_gnp(300, 300, 0.005, rng=rng)
        order = random_order(g, rng)
        m = TwoPhaseStreamingMatcher(g.n_vertices).run(g, order)
        assert is_matching(g, m)

    def test_beats_or_ties_greedy_on_random_order(self, rng):
        """Statistical: over several trials the two-phase matcher's mean
        is strictly above greedy's mean on random arrival."""
        gains = []
        for t in range(5):
            g, _ = planted_matching_gnp(400, 400, 0.004, rng=rng)
            order = random_order(g, rng)
            greedy = StreamingGreedyMatcher(g.n_vertices).run(g, order)
            two = TwoPhaseStreamingMatcher(g.n_vertices).run(g, order)
            gains.append(two.shape[0] - greedy.shape[0])
        assert np.mean(gains) > 0

    def test_never_below_half(self, rng):
        g, _ = planted_matching_gnp(200, 200, 0.01, rng=rng)
        opt = maximum_matching(g)
        for order in (random_order(g, rng),
                      adversarial_order(g, opt, rng)):
            m = TwoPhaseStreamingMatcher(g.n_vertices).run(g, order)
            # Phase-1 matching is maximal on the prefix + phase 2 only
            # grows/augments, so ≥ greedy-on-prefix; empirically ≥ 0.5 opt.
            assert m.shape[0] >= opt.shape[0] * 0.45

    def test_augmentation_correctness_small(self):
        """Hand-built 3-augmentation: path x-u-v-y with (u,v) early."""
        g = Graph(4, [(1, 2), (0, 1), (2, 3)])
        # canonical edges sorted: (0,1),(1,2),(2,3); order: (1,2) first.
        order = np.array([1, 0, 2])
        m = TwoPhaseStreamingMatcher(4, phase1_fraction=0.34).run(g, order)
        assert is_matching(g, m)
        assert m.shape[0] == 2  # augmented through the wings

    def test_fraction_validation(self, rng):
        g = path_graph(3)
        with pytest.raises(ValueError):
            TwoPhaseStreamingMatcher(3, phase1_fraction=1.5).run(
                g, np.arange(g.n_edges)
            )

    def test_memory_is_linear(self):
        assert TwoPhaseStreamingMatcher(500).memory_words == 1500
