"""Tests for repro.dist.message and repro.dist.ledger."""

import numpy as np
import pytest

from repro.dist.ledger import CommunicationLedger
from repro.dist.message import Message
from repro.utils.bits import edge_bits, vertex_bits


class TestMessage:
    def test_defaults_empty(self):
        m = Message(sender=0)
        assert m.n_edges == 0
        assert m.n_fixed_vertices == 0
        assert m.bit_size(100) == 0

    def test_bit_size(self):
        m = Message(sender=1, edges=np.array([[0, 1], [2, 3]]),
                    fixed_vertices=np.array([4]), aux_bits=3)
        n = 1000
        assert m.bit_size(n) == 2 * edge_bits(n) + vertex_bits(n) + 3

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="shape"):
            Message(sender=0, edges=np.array([[1, 2, 3]]))

    def test_negative_aux_rejected(self):
        with pytest.raises(ValueError):
            Message(sender=0, aux_bits=-1)

    def test_cost_breakdown(self):
        m = Message(sender=0, edges=np.array([[0, 1]]),
                    fixed_vertices=np.array([2, 3]))
        c = m.cost()
        assert c.edge_count == 1
        assert c.vertex_count == 2


class TestLedger:
    def test_per_player_accounting(self):
        led = CommunicationLedger(n_vertices=1024, k=3)
        led.record(Message(sender=0, edges=np.array([[0, 1]])))
        led.record(Message(sender=2, fixed_vertices=np.array([5])))
        led.record(Message(sender=0, aux_bits=7))
        per = led.per_player_bits()
        assert per.shape == (3,)
        assert per[0] == edge_bits(1024) + 7
        assert per[1] == 0
        assert per[2] == vertex_bits(1024)
        assert led.total_bits() == per.sum()
        assert led.max_player_bits() == per.max()

    def test_sender_range_checked(self):
        led = CommunicationLedger(n_vertices=10, k=2)
        with pytest.raises(ValueError, match="sender"):
            led.record(Message(sender=5))

    def test_edge_and_vertex_totals(self):
        led = CommunicationLedger(n_vertices=10, k=2)
        led.record(Message(sender=0, edges=np.array([[0, 1], [2, 3]])))
        led.record(Message(sender=1, fixed_vertices=np.array([1, 2, 3])))
        assert led.total_edges() == 2
        assert led.total_fixed_vertices() == 3

    def test_summary_keys(self):
        led = CommunicationLedger(n_vertices=10, k=2)
        led.record(Message(sender=0, edges=np.array([[0, 1]])))
        s = led.summary()
        for key in ("k", "total_bits", "max_player_bits", "mean_player_bits",
                    "total_edges", "total_fixed_vertices"):
            assert key in s

    def test_empty_ledger(self):
        led = CommunicationLedger(n_vertices=10, k=2)
        assert led.total_bits() == 0
        assert led.max_player_bits() == 0
