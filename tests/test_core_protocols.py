"""Tests for the end-to-end simultaneous protocols."""

import numpy as np
import pytest

from repro.core.protocols import (
    GroupingSetup,
    grouped_vertex_cover_protocol,
    matching_coreset_protocol,
    subsampled_matching_protocol,
    vertex_cover_coreset_protocol,
)
from repro.cover import is_vertex_cover, konig_cover
from repro.dist.coordinator import run_simultaneous
from repro.graph.generators import bipartite_gnp, gnp, skewed_bipartite
from repro.graph.partition import random_k_partition
from repro.matching.api import matching_number
from repro.matching.verify import is_matching


class TestMatchingProtocol:
    def test_output_valid_and_large(self, rng):
        g = bipartite_gnp(200, 200, 0.01, rng)
        part = random_k_partition(g, 4, rng)
        res = run_simultaneous(matching_coreset_protocol(), part, rng)
        assert is_matching(g, res.output)
        assert res.output.shape[0] >= matching_number(g) / 9

    def test_general_graph(self, rng):
        g = gnp(100, 0.04, rng)
        part = random_k_partition(g, 4, rng)
        res = run_simultaneous(matching_coreset_protocol(), part, rng)
        assert is_matching(g, res.output)

    def test_communication_at_most_nk_edges(self, rng):
        g = bipartite_gnp(100, 100, 0.05, rng)
        k = 6
        part = random_k_partition(g, k, rng)
        res = run_simultaneous(matching_coreset_protocol(), part, rng)
        # Each player sends ≤ n/2 edges (a matching).
        assert res.ledger.total_edges() <= k * g.n_vertices // 2

    def test_mixed_algorithms_property(self, rng):
        """Theorem 1 is algorithm-independent: machines using different
        max-matching algorithms still compose to a valid, large matching."""
        from repro.core.compose import compose_matching
        from repro.matching.api import maximum_matching

        g = bipartite_gnp(150, 150, 0.015, rng)
        part = random_k_partition(g, 4, rng)
        algs = ["hopcroft_karp", "blossom", "augmenting", "hopcroft_karp"]
        coresets = [
            maximum_matching(part.piece(i), algorithm=algs[i])
            for i in range(4)
        ]
        m = compose_matching(g.n_vertices, coresets, template=g)
        assert is_matching(g, m)
        assert m.shape[0] >= matching_number(g) / 9


class TestSubsampledProtocol:
    def test_bits_decrease_with_alpha(self, rng):
        g = bipartite_gnp(300, 300, 0.01, rng)
        part = random_k_partition(g, 4, rng)
        bits = {}
        for alpha in (1.0, 4.0):
            res = run_simultaneous(
                subsampled_matching_protocol(alpha), part, rng
            )
            bits[alpha] = res.total_bits
        assert bits[4.0] < bits[1.0]

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            subsampled_matching_protocol(0.5)

    def test_output_valid(self, rng):
        g = bipartite_gnp(100, 100, 0.03, rng)
        part = random_k_partition(g, 4, rng)
        res = run_simultaneous(subsampled_matching_protocol(3.0), part, rng)
        assert is_matching(g, res.output)


class TestVCProtocol:
    def test_feasible(self, rng):
        g = skewed_bipartite(300, 300, 15, 100, 0.005, rng)
        part = random_k_partition(g, 4, rng)
        res = run_simultaneous(vertex_cover_coreset_protocol(k=4), part, rng)
        assert is_vertex_cover(g, res.output)

    def test_ratio_within_log(self, rng):
        import math

        g = skewed_bipartite(400, 400, 20, 150, 0.005, rng)
        part = random_k_partition(g, 4, rng)
        res = run_simultaneous(vertex_cover_coreset_protocol(k=4), part, rng)
        opt = konig_cover(g).shape[0]
        assert res.output.shape[0] <= 4 * math.log2(g.n_vertices) * max(1, opt)

    def test_deterministic_summaries(self, rng):
        """Peeling is deterministic: same partition, same messages."""
        g = skewed_bipartite(200, 200, 10, 80, 0.01, rng)
        part = random_k_partition(g, 3, rng)
        p = vertex_cover_coreset_protocol(k=3)
        a = run_simultaneous(p, part, 1)
        b = run_simultaneous(p, part, 2)  # different seed, same messages
        for ma, mb in zip(a.messages, b.messages):
            np.testing.assert_array_equal(ma.edges, mb.edges)
            np.testing.assert_array_equal(ma.fixed_vertices, mb.fixed_vertices)


class TestGroupedVCProtocol:
    def test_feasible_across_alphas(self, rng):
        g = skewed_bipartite(400, 400, 20, 150, 0.01, rng)
        part = random_k_partition(g, 4, rng)
        for alpha in (8.0, 32.0, 128.0):
            res = run_simultaneous(
                grouped_vertex_cover_protocol(k=4, alpha=alpha), part, rng
            )
            assert is_vertex_cover(g, res.output), f"alpha={alpha}"

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            grouped_vertex_cover_protocol(k=2, alpha=0.5)

    def test_internal_edges_covered(self, rng):
        """Regression: edges contracted to self-loops must still be covered
        (the forced-group mechanism)."""
        from repro.graph.edgelist import Graph
        from repro.graph.partition import partition_by_assignment

        # A single edge between two vertices that will share a group when
        # group size is large.
        g = Graph(10, [(0, 1)])
        part = partition_by_assignment(g, [0], k=2)
        res = run_simultaneous(
            grouped_vertex_cover_protocol(k=2, alpha=1000.0), part, rng
        )
        assert is_vertex_cover(g, res.output)


class TestGroupingSetup:
    def test_groups_near_equal(self, rng):
        setup = GroupingSetup(100, 7, np.random.default_rng(0))
        counts = np.bincount(setup.mapping, minlength=setup.n_groups)
        assert counts.max() - counts.min() <= 1

    def test_expand_inverts_mapping(self):
        setup = GroupingSetup(20, 4, np.random.default_rng(1))
        members = setup.expand(np.array([2]))
        assert (setup.mapping[members] == 2).all()
        # Everything mapped to 2 is in members.
        assert members.shape[0] == (setup.mapping == 2).sum()

    def test_group_size_validation(self):
        with pytest.raises(ValueError):
            GroupingSetup(10, 0, np.random.default_rng(0))
