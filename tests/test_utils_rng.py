"""Tests for repro.utils.rng: seed coercion and stream independence."""

import numpy as np
import pytest

from repro.utils.rng import (
    as_generator,
    sample_distinct_pairs,
    spawn_generators,
    spawn_seeds,
)


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_generator(7).integers(0, 1 << 30, size=10)
        b = as_generator(7).integers(0, 1 << 30, size=10)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_seedsequence_accepted(self):
        ss = np.random.SeedSequence(42)
        a = as_generator(ss).integers(0, 1 << 30, size=5)
        b = as_generator(np.random.SeedSequence(42)).integers(0, 1 << 30, size=5)
        np.testing.assert_array_equal(a, b)


class TestSpawn:
    def test_spawn_count(self):
        assert len(spawn_seeds(0, 5)) == 5
        assert len(spawn_generators(0, 3)) == 3

    def test_spawn_zero(self):
        assert spawn_seeds(0, 0) == []

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError, match="negative"):
            spawn_seeds(0, -1)

    def test_children_are_independent_streams(self):
        gens = spawn_generators(123, 2)
        a = gens[0].integers(0, 1 << 30, size=100)
        b = gens[1].integers(0, 1 << 30, size=100)
        assert not np.array_equal(a, b)

    def test_same_seed_same_family(self):
        a = [g.integers(0, 1 << 30) for g in spawn_generators(9, 4)]
        b = [g.integers(0, 1 << 30) for g in spawn_generators(9, 4)]
        assert a == b

    def test_spawn_from_generator_advances(self):
        g = np.random.default_rng(5)
        fam1 = [x.integers(0, 1 << 30) for x in spawn_generators(g, 2)]
        fam2 = [x.integers(0, 1 << 30) for x in spawn_generators(g, 2)]
        assert fam1 != fam2  # repeated spawning yields fresh families


class TestSampleDistinctPairs:
    def test_shape_and_distinctness(self, rng):
        pairs = sample_distinct_pairs(np.arange(10), 500, rng)
        assert pairs.shape == (500, 2)
        assert (pairs[:, 0] != pairs[:, 1]).all()

    def test_values_from_universe(self, rng):
        uni = np.array([3, 7, 11, 20])
        pairs = sample_distinct_pairs(uni, 100, rng)
        assert np.isin(pairs, uni).all()

    def test_small_universe_raises(self, rng):
        with pytest.raises(ValueError, match="two elements"):
            sample_distinct_pairs([1], 3, rng)

    def test_two_element_universe_is_uniformish(self, rng):
        pairs = sample_distinct_pairs([0, 1], 400, rng)
        frac = (pairs[:, 0] == 0).mean()
        assert 0.35 < frac < 0.65
