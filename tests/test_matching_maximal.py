"""Tests for repro.matching.maximal."""

import numpy as np
import pytest

from repro.graph.edgelist import Graph
from repro.graph.generators import gnp, path_graph
from repro.matching.maximal import complete_to_maximal, greedy_maximal_matching
from repro.matching.verify import is_matching, is_maximal_matching


class TestGreedyMaximal:
    @pytest.mark.parametrize("order", ["input", "random", "adversarial_key"])
    def test_output_is_maximal(self, order, rng):
        g = gnp(60, 0.1, rng)
        m = greedy_maximal_matching(g, order=order, rng=rng)
        assert is_maximal_matching(g, m)

    def test_empty_graph(self):
        m = greedy_maximal_matching(Graph(5))
        assert m.shape == (0, 2)

    def test_input_order_deterministic(self, rng):
        g = gnp(40, 0.2, 3)
        a = greedy_maximal_matching(g, order="input")
        b = greedy_maximal_matching(g, order="input")
        np.testing.assert_array_equal(a, b)

    def test_random_order_reproducible_with_seed(self):
        g = gnp(40, 0.2, 3)
        a = greedy_maximal_matching(g, order="random", rng=11)
        b = greedy_maximal_matching(g, order="random", rng=11)
        np.testing.assert_array_equal(a, b)

    def test_priority_overrides(self):
        # Path 0-1-2: priority makes greedy take (1,2) first.
        g = path_graph(3)
        pri = np.array([1.0, 0.0])  # edges are (0,1), (1,2) in canonical order
        m = greedy_maximal_matching(g, priority=pri)
        assert m.tolist() == [[1, 2]]

    def test_priority_shape_checked(self):
        with pytest.raises(ValueError):
            greedy_maximal_matching(path_graph(3), priority=np.array([1.0]))

    def test_two_approximation(self, rng):
        """Maximal matching is ≥ MM/2 — check on random graphs."""
        from repro.matching.api import matching_number

        for _ in range(5):
            g = gnp(50, 0.08, rng)
            m = greedy_maximal_matching(g, order="random", rng=rng)
            assert m.shape[0] >= matching_number(g) / 2

    def test_unknown_order_raises(self, rng):
        with pytest.raises(ValueError):
            greedy_maximal_matching(gnp(5, 0.5, rng), order="bogus")  # type: ignore


class TestCompleteToMaximal:
    def test_extends_to_maximal(self, rng):
        g = gnp(50, 0.1, rng)
        partial = greedy_maximal_matching(g, order="random", rng=rng)[:2]
        full = complete_to_maximal(g, partial, order="input")
        assert is_maximal_matching(g, full)
        # Original edges preserved.
        from repro.utils.arrays import isin_mask

        assert isin_mask(partial, full, g.n_vertices).all()

    def test_empty_partial(self, rng):
        g = gnp(30, 0.2, rng)
        full = complete_to_maximal(g, np.zeros((0, 2), dtype=np.int64))
        assert is_maximal_matching(g, full)

    def test_already_maximal_unchanged_size(self, rng):
        g = gnp(30, 0.2, rng)
        m = greedy_maximal_matching(g, order="input")
        full = complete_to_maximal(g, m)
        assert full.shape[0] == m.shape[0]

    def test_rejects_invalid_partial(self, rng):
        g = gnp(10, 0.5, rng)
        with pytest.raises(ValueError, match="not a matching"):
            complete_to_maximal(g, np.array([[0, 1], [1, 2]]))

    def test_partial_valid_matching_property(self, rng):
        g = gnp(40, 0.15, rng)
        partial = greedy_maximal_matching(g, order="random", rng=rng)[:3]
        full = complete_to_maximal(g, partial)
        assert is_matching(g, full)
