"""Tests for the baselines: filtering, bad coresets, naive."""

import numpy as np
import pytest

from repro.baselines.bad_coresets import (
    blocking_maximal_protocol,
    maximal_matching_coreset_protocol,
    min_vc_coreset_protocol,
)
from repro.baselines.filtering import filtering_matching
from repro.baselines.naive import (
    send_everything_protocol,
    single_machine_cover,
    single_machine_matching,
)
from repro.cover.verify import is_vertex_cover
from repro.dist.coordinator import run_simultaneous
from repro.graph.generators import (
    bipartite_gnp,
    bipartite_star_forest,
    gnp,
    hidden_matching_with_hubs,
)
from repro.graph.partition import random_k_partition
from repro.matching.api import matching_number
from repro.matching.verify import is_matching, is_maximal_matching


class TestFiltering:
    def test_two_approximation(self, rng):
        g = bipartite_gnp(150, 150, 0.05, rng)
        res = filtering_matching(g, memory_edges=max(50, g.n_edges // 10),
                                 rng=rng)
        assert is_matching(g, res.matching)
        assert is_maximal_matching(g, res.matching)
        assert res.matching_size >= matching_number(g) / 2

    def test_rounds_grow_as_memory_shrinks(self, rng):
        g = bipartite_gnp(200, 200, 0.1, rng)
        large = filtering_matching(g, memory_edges=g.n_edges, rng=rng)
        small = filtering_matching(g, memory_edges=g.n_edges // 20, rng=rng)
        assert large.n_rounds == 1  # fits immediately
        assert small.n_rounds > large.n_rounds

    def test_memory_respected(self, rng):
        g = bipartite_gnp(150, 150, 0.08, rng)
        mem = g.n_edges // 10
        res = filtering_matching(g, memory_edges=mem, rng=rng)
        # Peak sample concentrates near mem/2; allow slack.
        assert res.peak_central_edges <= 2 * mem

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            filtering_matching(gnp(10, 0.3, rng), memory_edges=0, rng=rng)

    def test_max_rounds_guard(self, rng):
        g = bipartite_gnp(100, 100, 0.5, rng)
        with pytest.raises(RuntimeError, match="converge"):
            filtering_matching(g, memory_edges=1, rng=rng, max_rounds=2)

    def test_general_graph(self, rng):
        g = gnp(120, 0.08, rng)
        res = filtering_matching(g, memory_edges=g.n_edges // 5, rng=rng)
        assert is_maximal_matching(g, res.matching)


class TestMaximalCoreset:
    def test_messages_are_maximal_matchings(self, rng):
        g = bipartite_gnp(60, 60, 0.05, rng)
        part = random_k_partition(g, 4, rng)
        proto = maximal_matching_coreset_protocol(order="random")
        res = run_simultaneous(proto, part, rng)
        for i, msg in enumerate(res.messages):
            assert is_maximal_matching(part.piece(i), msg.edges)

    def test_output_is_matching(self, rng):
        g = bipartite_gnp(60, 60, 0.05, rng)
        part = random_k_partition(g, 4, rng)
        proto = maximal_matching_coreset_protocol(order="random")
        res = run_simultaneous(proto, part, rng)
        assert is_matching(g, res.output)


class TestBlockingMaximal:
    def test_blocking_message_is_maximal(self, rng):
        g, n_pairs, _ = hidden_matching_with_hubs(4, 16, rng=rng)
        part = random_k_partition(g, 4, rng)
        proto = blocking_maximal_protocol(hub_boundary=2 * n_pairs)
        res = run_simultaneous(proto, part, rng)
        for i, msg in enumerate(res.messages):
            assert is_maximal_matching(part.piece(i), msg.edges), \
                f"machine {i} message is not a maximal matching"

    def test_omega_k_failure(self, rng):
        """The §1.2 separation: ratio ≥ k/4 for the blocking coreset."""
        k = 8
        g, n_pairs, _ = hidden_matching_with_hubs(k, 32, rng=rng)
        part = random_k_partition(g, k, rng)
        proto = blocking_maximal_protocol(hub_boundary=2 * n_pairs)
        res = run_simultaneous(proto, part, rng)
        ratio = n_pairs / max(1, res.output.shape[0])
        assert ratio >= k / 4


class TestMinVCCoreset:
    def test_output_always_feasible(self, rng):
        g = bipartite_star_forest(20, 8)
        part = random_k_partition(g, 8, rng)
        res = run_simultaneous(min_vc_coreset_protocol(), part, rng)
        assert is_vertex_cover(g, res.output)

    def test_omega_k_failure_on_stars(self, rng):
        k = 16
        g = bipartite_star_forest(40, k)
        part = random_k_partition(g, k, rng)
        res = run_simultaneous(min_vc_coreset_protocol(True), part, rng)
        ratio = res.output.shape[0] / 40  # OPT = 40 centers
        assert ratio > k / 8

    def test_messages_are_minimum_covers(self, rng):
        from repro.cover.konig import konig_cover

        g = bipartite_star_forest(10, 4)
        part = random_k_partition(g, 4, rng)
        res = run_simultaneous(min_vc_coreset_protocol(True), part, rng)
        for i, msg in enumerate(res.messages):
            piece = part.piece(i)
            assert is_vertex_cover(piece, msg.fixed_vertices)
            assert msg.n_fixed_vertices == konig_cover(piece).shape[0]


class TestNaive:
    def test_send_everything_exact_matching(self, rng):
        g = bipartite_gnp(50, 50, 0.06, rng)
        part = random_k_partition(g, 4, rng)
        res = run_simultaneous(send_everything_protocol("matching"), part, rng)
        assert res.output.shape[0] == matching_number(g)

    def test_send_everything_cover(self, rng):
        g = bipartite_gnp(50, 50, 0.06, rng)
        part = random_k_partition(g, 4, rng)
        res = run_simultaneous(
            send_everything_protocol("vertex_cover"), part, rng
        )
        assert is_vertex_cover(g, res.output)

    def test_unknown_problem(self):
        with pytest.raises(ValueError):
            send_everything_protocol("tsp")

    def test_single_machine_helpers(self, rng):
        g = bipartite_gnp(30, 30, 0.1, rng)
        assert single_machine_matching(g).shape[0] == matching_number(g)
        assert is_vertex_cover(g, single_machine_cover(g))
