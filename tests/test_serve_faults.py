"""``repro serve`` under faults: crashing workers, dying clients, SIGTERM.

These run the **processes** executor — the deployment shape, where solver
code lives in a worker pool and graphs ship as shared-memory handles —
and drive the same env-triggered chaos hooks as the remote-executor
suite (``repro.dist.faults``).

Choreography matters (see :func:`chaos.serve_harness`): the pool spawns
when the server is constructed and workers inherit the environment at
fork, so :func:`chaos.chaos` must be armed *around* the harness and the
block kept open through the recovery assertions — replacement workers
carry the armed env too, and only the already-claimed latch file keeps
them clean.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from chaos import chaos, run_async, serve_harness
from repro.serve import ServeClient, ServeClientError

REPO = Path(__file__).resolve().parents[1]
DEMO = (("demo", "planted:n=300,p=0.03", 11),)
PROC = dict(executor="processes", workers=2)


# --------------------------------------------------------------------- #
# worker crashes
# --------------------------------------------------------------------- #
class TestWorkerCrash:
    def test_killed_worker_is_a_500_and_the_server_recovers(self, tmp_path):
        """One worker dies mid-solve: the in-flight request gets a
        structured ``worker_pool_broken`` 500, the server stays up, and
        the *next* request runs verified on a fresh pool."""
        with chaos(tmp_path, kill=True):
            async def main():
                async with serve_harness(graphs=DEMO,
                                         **PROC) as (server, client):
                    with pytest.raises(ServeClientError) as err:
                        await client.solve("demo", solver="matching.coreset",
                                           seed=0, k=4)
                    health = await client.healthz()
                    # Recovery: latch already claimed, replacements clean.
                    doc = await client.solve("demo",
                                             solver="matching.coreset",
                                             seed=0, k=4)
                    stats = await client.stats()
                    return (err.value, health, doc, stats,
                            server.executor.pools_created)

            exc, health, doc, stats, pools = run_async(main())
        assert exc.status == 500
        assert exc.code == "worker_pool_broken"
        assert "batch_size" in exc.doc["error"]
        assert health["ok"]
        assert doc["result"]["verified"]
        assert doc["solver"] == "matching.coreset"
        assert stats["batcher"]["pool_breaks"] == 1
        assert pools == 2  # original + the replacement spawned on recovery

    def test_concurrent_batch_fails_together_then_all_recover(self, tmp_path):
        """A crash takes down the whole in-flight batch (one barrier, one
        structured failure each) — and a full follow-up wave succeeds."""
        with chaos(tmp_path, kill=True):
            async def main():
                async with serve_harness(graphs=DEMO, batch_window_ms=20.0,
                                         **PROC) as (_, client):
                    first = await asyncio.gather(*(
                        client.solve("demo", solver="matching.coreset",
                                     seed=s, k=4)
                        for s in range(4)
                    ), return_exceptions=True)
                    second = await asyncio.gather(*(
                        client.solve("demo", solver="matching.coreset",
                                     seed=s, k=4)
                        for s in range(4)
                    ))
                    return first, second

            first, second = run_async(main())
        broken = [e for e in first
                  if isinstance(e, ServeClientError)
                  and e.code == "worker_pool_broken"]
        assert broken, "the kill never surfaced as worker_pool_broken"
        for e in first:  # nothing hung, nothing leaked an odd exception
            assert isinstance(e, (dict, ServeClientError))
        for doc in second:
            assert doc["result"]["verified"]

    def test_solver_error_is_structured_not_a_pool_break(self, tmp_path):
        """A *solver* raise (bad runtime param that passes prechecks) is a
        ``solve_failed`` 500 naming the solver — the pool survives and the
        same connection pattern keeps working."""
        async def main():
            async with serve_harness(graphs=DEMO, **PROC) as (server, client):
                with pytest.raises(ServeClientError) as err:
                    await client.solve(
                        "demo", solver="matching.subsampled_coreset",
                        seed=0, k=4, params={"alpha": -2.0},
                    )
                doc = await client.solve(
                    "demo", solver="matching.subsampled_coreset",
                    seed=0, k=4,
                )
                return err.value, doc, server.executor.pools_created

        exc, doc, pools = run_async(main())
        assert exc.status == 500
        assert exc.code == "solve_failed"
        assert exc.doc["error"]["solver"] == "matching.subsampled_coreset"
        assert "alpha" in exc.doc["error"]["message"]
        assert doc["result"]["verified"]
        assert pools == 1  # a raise is not a crash: same pool throughout


# --------------------------------------------------------------------- #
# unpin while solving
# --------------------------------------------------------------------- #
class TestUnpinUnderLoad:
    def test_unregister_with_requests_in_flight(self, tmp_path):
        """DELETE /graphs/demo while six slowed solves are in flight:
        every in-flight request completes verified (the pin is leased),
        the graph is gone afterwards, and the id is reusable."""
        with chaos(tmp_path, slow_ms=150, latch=False):
            async def main():
                async with serve_harness(graphs=DEMO, batch_window_ms=20.0,
                                         **PROC) as (_, client):
                    inflight = [asyncio.ensure_future(
                        client.solve("demo", solver="matching.coreset",
                                     seed=s, k=4))
                        for s in range(6)]
                    await asyncio.sleep(0.05)  # let them reach the pool
                    gone = await client.unregister_graph("demo")
                    docs = await asyncio.gather(*inflight)
                    remaining = await client.graphs()
                    health = await client.healthz()
                    info = await client.register_graph(
                        "demo", "gnp:n=80,p=0.1", seed=1)
                    return gone, docs, remaining, health, info

            gone, docs, remaining, health, info = run_async(main())
        assert gone["unregistered"]["id"] == "demo"
        for doc in docs:
            assert doc["result"]["verified"]
        assert remaining == []
        assert health == {"ok": True, "graphs": 0}
        assert info["n_vertices"] == 80  # the id was fully released


# --------------------------------------------------------------------- #
# protocol-level abuse
# --------------------------------------------------------------------- #
class TestWireAbuse:
    def test_malformed_request_line_is_a_400(self):
        async def main():
            async with serve_harness(graphs=DEMO, **PROC) as (_, client):
                reader, writer = await asyncio.open_connection(
                    client.host, client.port)
                writer.write(b"THIS IS NOT HTTP\r\n\r\n")
                await writer.drain()
                status, doc, _headers = await ServeClient._read_response(reader)
                writer.close()
                await writer.wait_closed()
                return status, doc, await client.healthz()

        status, doc, health = run_async(main())
        assert status == 400
        assert doc["error"]["code"] == "bad_request"
        assert health["ok"]

    @pytest.mark.parametrize("content_length", ["999999999", "banana"])
    def test_oversized_or_invalid_length_is_a_413(self, content_length):
        async def main():
            async with serve_harness(graphs=DEMO) as (_, client):
                reader, writer = await asyncio.open_connection(
                    client.host, client.port)
                writer.write(
                    b"POST /solve HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Length: %s\r\n\r\n"
                    % content_length.encode())
                await writer.drain()
                status, doc, _headers = await ServeClient._read_response(reader)
                writer.close()
                await writer.wait_closed()
                return status, doc, await client.healthz()

        status, doc, health = run_async(main())
        assert status == 413
        assert doc["error"]["code"] == "bad_request"
        assert health["ok"]

    def test_client_hangup_mid_request_leaves_the_server_up(self):
        async def main():
            async with serve_harness(graphs=DEMO) as (_, client):
                _, writer = await asyncio.open_connection(
                    client.host, client.port)
                writer.write(b"POST /solve HTTP/1.1\r\n"
                             b"Content-Length: 500\r\n\r\n{\"gra")
                await writer.drain()
                writer.close()  # vanish mid-body
                await writer.wait_closed()
                await asyncio.sleep(0.05)
                return await client.solve("demo",
                                          solver="matching.greedy_maximal",
                                          seed=0)

        assert run_async(main())["result"]["verified"]


# --------------------------------------------------------------------- #
# lifecycle
# --------------------------------------------------------------------- #
class TestLifecycle:
    def test_cli_boot_serve_sigterm_exits_cleanly(self):
        """The CLI process boots, pins the preload graph, serves a real
        solve, and a SIGTERM drains and exits 0."""
        env = {**os.environ, "PYTHONPATH": str(REPO / "src")}
        env.pop("REPRO_EXECUTOR", None)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--graph", "demo=planted:n=300", "--seed", "11"],
            cwd=REPO, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True,
        )
        try:
            port = None
            preloaded = False
            for _ in range(50):
                line = proc.stdout.readline()
                if not line:
                    break
                if line.startswith("pinned graph 'demo'"):
                    preloaded = True
                if "listening on" in line:
                    port = int(line.split(":")[-1].split()[0])
                    break
            assert preloaded and port, "server never announced readiness"

            async def drive():
                client = ServeClient(port=port)
                await client.wait_ready()
                return await client.solve("demo", problem="matching",
                                          seed=0, k=4)

            doc = run_async(drive())
            assert doc["result"]["verified"]

            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert "draining and shutting down" in out
