"""Tests for repro.graph.bipartite.BipartiteGraph."""

import numpy as np
import pytest

from repro.graph.bipartite import BipartiteGraph
from repro.graph.validation import check_bipartite


class TestConstruction:
    def test_sides(self):
        g = BipartiteGraph(3, 4, [(0, 3), (2, 6)])
        assert g.n_left == 3
        assert g.n_right == 4
        assert g.n_vertices == 7

    def test_from_pairs(self):
        g = BipartiteGraph.from_pairs(3, 4, [0, 2], [0, 3])
        assert g.has_edge(0, 3)
        assert g.has_edge(2, 6)

    def test_from_pairs_validates_ranges(self):
        with pytest.raises(ValueError):
            BipartiteGraph.from_pairs(3, 4, [3], [0])
        with pytest.raises(ValueError):
            BipartiteGraph.from_pairs(3, 4, [0], [4])
        with pytest.raises(ValueError, match="equal length"):
            BipartiteGraph.from_pairs(3, 4, [0, 1], [0])

    def test_cross_side_enforced(self):
        with pytest.raises(ValueError, match="left side to the right"):
            BipartiteGraph(3, 3, [(0, 1)])  # both endpoints on the left
        with pytest.raises(ValueError, match="left side to the right"):
            BipartiteGraph(3, 3, [(3, 4)])  # both on the right

    def test_negative_sides_raise(self):
        with pytest.raises(ValueError):
            BipartiteGraph(-1, 3)


class TestSideHelpers:
    def test_vertex_arrays(self):
        g = BipartiteGraph(2, 3)
        np.testing.assert_array_equal(g.left_vertices, [0, 1])
        np.testing.assert_array_equal(g.right_vertices, [2, 3, 4])

    def test_is_left(self):
        g = BipartiteGraph(2, 3)
        assert g.is_left(1)
        assert not g.is_left(2)
        np.testing.assert_array_equal(
            g.is_left(np.array([0, 2, 4])), [True, False, False]
        )

    def test_local_right(self):
        g = BipartiteGraph(2, 3)
        assert g.local_right(2) == 0
        assert g.local_right(4) == 2


class TestDerived:
    def test_subgraph_preserves_split(self, tiny_bipartite):
        mask = np.zeros(tiny_bipartite.n_edges, dtype=bool)
        mask[:2] = True
        sub = tiny_bipartite.subgraph_from_mask(mask)
        assert isinstance(sub, BipartiteGraph)
        assert sub.n_left == tiny_bipartite.n_left
        ok, msg = check_bipartite(sub)
        assert ok, msg

    def test_union_preserves_split(self, tiny_bipartite):
        u = tiny_bipartite.union(BipartiteGraph(3, 3, [(1, 5)]))
        assert isinstance(u, BipartiteGraph)
        assert u.n_edges == tiny_bipartite.n_edges + 1

    def test_without_vertices_preserves_split(self, tiny_bipartite):
        h = tiny_bipartite.without_vertices([0])
        assert isinstance(h, BipartiteGraph)
        assert h.degrees[0] == 0

    def test_validation_helper(self, tiny_bipartite):
        ok, msg = check_bipartite(tiny_bipartite)
        assert ok, msg
