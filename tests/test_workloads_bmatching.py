"""Tests for b-matching primitives and the capacitated solver surface."""

import numpy as np
import pytest

from repro.graph.capacity import CapacitatedBipartiteGraph
from repro.graph.generators import bipartite_gnp
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.solve import RunContext, solve
from repro.solve.capabilities import rank_candidates, resolve_capability
from repro.solve.registry import SolverCapabilityError
from repro.workloads import build_workload
from repro.workloads.bmatching import (
    b_matching_weight,
    edge_indices,
    exact_b_matching,
    greedy_b_matching,
    verify_b_matching,
)


def _capacitated(n_left, n_right, p, caps, seed=0):
    base = bipartite_gnp(n_left, n_right, p, rng=seed)
    return CapacitatedBipartiteGraph(
        n_left, n_right, base.edges,
        capacities=np.asarray(caps, dtype=np.int64), validated=True,
    )


class TestVerify:
    def test_feasible_and_empty(self):
        g = build_workload("ba_adwords", rng=0, u=30, v=90)
        assert verify_b_matching(g, np.zeros(0, dtype=np.int64))
        assert verify_b_matching(g, greedy_b_matching(g))

    def test_rejects_right_reuse(self):
        g = _capacitated(2, 1, 1.0, [5, 5])  # both lefts to the one right
        assert g.n_edges == 2
        assert not verify_b_matching(g, np.array([0, 1]))

    def test_rejects_capacity_violation(self):
        g = _capacitated(1, 3, 1.0, [2])  # one left, capacity 2, 3 edges
        assert g.n_edges == 3
        assert not verify_b_matching(g, np.array([0, 1, 2]))
        assert verify_b_matching(g, np.array([0, 2]))

    def test_rejects_duplicates_and_bad_indices(self):
        g = _capacitated(2, 2, 1.0, [2, 2])
        assert not verify_b_matching(g, np.array([0, 0]))
        assert not verify_b_matching(g, np.array([g.n_edges]))
        assert not verify_b_matching(g, np.array([-1]))


class TestEdgeIndices:
    def test_round_trip(self):
        g = build_workload("ba_adwords", rng=1, u=20, v=60)
        idx = greedy_b_matching(g)
        np.testing.assert_array_equal(edge_indices(g, g.edges[idx]), idx)

    def test_missing_edge_raises(self):
        edges = np.array([[0, 2], [1, 3]])
        g = CapacitatedBipartiteGraph(
            2, 2, edges, capacities=np.array([1, 1]), validated=True
        )
        with pytest.raises(ValueError, match="not present"):
            edge_indices(g, np.array([[0, 3]]))


class TestGreedyAndExact:
    def test_both_feasible_and_ordered(self):
        for seed in range(4):
            g = build_workload("ba_adwords", rng=seed, u=40, v=160)
            gm = greedy_b_matching(g)
            em = exact_b_matching(g)
            assert verify_b_matching(g, gm)
            assert verify_b_matching(g, em)
            assert em.size >= gm.size
            assert em.size <= g.b_matching_upper_bound()
            # greedy can't be worse than half the optimum (maximal)
            assert 2 * gm.size >= em.size

    def test_unit_capacities_match_hopcroft_karp(self):
        for seed in range(5):
            base = bipartite_gnp(25, 25, 0.12, rng=seed)
            g = CapacitatedBipartiteGraph(
                base.n_left, base.n_right, base.edges, validated=True
            )
            assert exact_b_matching(g).size == hopcroft_karp(base).shape[0]

    def test_known_small_instance(self):
        # one advertiser with budget 3 and 3 impressions: all 3 go to it
        g = _capacitated(1, 3, 1.0, [3])
        assert exact_b_matching(g).size == 3
        assert greedy_b_matching(g).size == 3

    def test_capacity_actually_binds(self):
        # budget 1 forces exactly one of the 3 edges
        g = _capacitated(1, 3, 1.0, [1])
        assert exact_b_matching(g).size == 1

    def test_greedy_prefers_heavy_edges(self):
        edges = np.array([[0, 1], [0, 2]])
        g = CapacitatedBipartiteGraph(
            1, 2, edges, weights=np.array([0.1, 9.0]),
            capacities=np.array([1]), validated=True,
        )
        idx = greedy_b_matching(g)
        assert b_matching_weight(g, idx) == 9.0

    def test_empty_graph(self):
        g = CapacitatedBipartiteGraph(3, 3, capacities=np.array([1, 1, 1]))
        assert exact_b_matching(g).size == 0
        assert greedy_b_matching(g).size == 0


class TestSolverSurface:
    def test_facade_runs_and_verifies(self):
        g = build_workload("ba_adwords", rng=2, u=30, v=120)
        exact = solve(g, "matching.b_exact")
        greedy = solve(g, "matching.b_greedy")
        assert exact.verified and greedy.verified
        assert exact.value >= greedy.value
        assert greedy.stats["weight"] > 0

    def test_b_coreset_all_strategies_feasible(self):
        g = build_workload("ba_adwords", rng=2, u=30, v=120)
        opt = solve(g, "matching.b_exact").value
        for strategy in ("random", "degree_sorted", "community"):
            res = solve(g, "matching.b_coreset", RunContext(seed=0, k=3),
                        strategy=strategy)
            assert res.verified, strategy
            assert res.value <= opt

    def test_capacitated_input_refuses_plain_solver(self):
        g = build_workload("ba_adwords", rng=0, u=10, v=30)
        with pytest.raises(SolverCapabilityError, match="ignores capacities"):
            solve(g, "matching.maximum")

    def test_plain_input_refuses_capacitated_solver(self):
        base = bipartite_gnp(10, 10, 0.3, rng=0)
        with pytest.raises(SolverCapabilityError):
            solve(base, "matching.b_exact")

    def test_capability_resolution_is_capacity_aware(self):
        g = build_workload("ba_adwords", rng=0, u=10, v=30)
        spec = resolve_capability("matching", graph=g)
        assert spec.capacitated
        base = bipartite_gnp(10, 10, 0.3, rng=0)
        names = [s.name for s in rank_candidates("matching", graph=base)]
        assert names and not any(n.startswith("matching.b_") for n in names)

    def test_deterministic_across_contexts(self):
        g = build_workload("ba_adwords", rng=5, u=25, v=100)
        a = solve(g, "matching.b_coreset", RunContext(seed=11, k=4))
        b = solve(g, "matching.b_coreset", RunContext(seed=11, k=4))
        np.testing.assert_array_equal(a.certificate, b.certificate)
