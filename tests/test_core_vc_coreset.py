"""Tests for the Theorem 2 VC-Coreset peeling algorithm."""

import math

import numpy as np
import pytest

from repro.core.vc_coreset import peeling_levels, vc_coreset
from repro.cover.verify import is_vertex_cover
from repro.graph.edgelist import Graph
from repro.graph.generators import bipartite_gnp, skewed_bipartite


class TestPeelingLevels:
    def test_monotone_in_n(self):
        assert peeling_levels(10**6, 4) >= peeling_levels(10**3, 4)

    def test_monotone_in_k(self):
        assert peeling_levels(10**5, 2) >= peeling_levels(10**5, 64)

    def test_definition(self):
        n, k = 100_000, 10
        delta = peeling_levels(n, k)
        assert n / (k * 2**delta) <= 4 * math.log2(n)
        if delta > 1:
            assert n / (k * 2 ** (delta - 1)) > 4 * math.log2(n)

    def test_small_graph_no_peeling(self):
        assert peeling_levels(10, 100) == 1

    def test_degenerate(self):
        assert peeling_levels(0, 1) == 1
        assert peeling_levels(1, 1) == 1


class TestVCCoreset:
    def test_cover_property(self, rng):
        """fixed ∪ (any cover of residual) covers the piece — Theorem 2's
        feasibility argument, per machine."""
        from repro.cover.two_approx import matching_based_cover

        g = skewed_bipartite(500, 500, hub_count=20, hub_degree=200,
                             leaf_p=0.004, rng=rng)
        result = vc_coreset(g, k=4)
        residual_cover = matching_based_cover(result.residual, rng=rng)
        combined = np.unique(
            np.concatenate([result.fixed_vertices, residual_cover])
        )
        assert is_vertex_cover(g, combined)

    def test_residual_subgraph_of_piece(self, rng):
        from repro.utils.arrays import isin_mask

        g = bipartite_gnp(100, 100, 0.05, rng)
        result = vc_coreset(g, k=2)
        if result.residual.n_edges:
            assert isin_mask(result.residual.edges, g.edges,
                             g.n_vertices).all()

    def test_fixed_vertices_have_high_degree(self, rng):
        """Every peeled vertex had degree ≥ the last threshold at peel time,
        so in the original piece its degree is at least that threshold."""
        g = skewed_bipartite(400, 400, hub_count=10, hub_degree=300,
                             leaf_p=0.002, rng=rng)
        result = vc_coreset(g, k=2)
        if result.fixed_vertices.size:
            min_threshold = min(result.trace.thresholds)
            assert (g.degrees[result.fixed_vertices] >= min_threshold).all()

    def test_residual_max_degree_bounded(self, rng):
        """After peeling, residual degrees are below the last threshold."""
        g = skewed_bipartite(600, 600, hub_count=30, hub_degree=300,
                             leaf_p=0.004, rng=rng)
        result = vc_coreset(g, k=1)
        if result.trace.levels:
            last_threshold = result.trace.thresholds[-1]
            if result.residual.n_edges:
                assert result.residual.degrees.max() <= last_threshold * 2

    def test_no_peeling_when_delta_one(self):
        g = Graph(10, [(0, 1), (2, 3)])
        result = vc_coreset(g, k=100)
        assert result.fixed_vertices.shape == (0,)
        assert result.residual == g

    def test_empty_piece(self):
        result = vc_coreset(Graph(50), k=4)
        assert result.size_vertices == 0
        assert result.residual.n_edges == 0

    def test_trace_consistency(self, rng):
        g = skewed_bipartite(400, 400, hub_count=10, hub_degree=200,
                             leaf_p=0.01, rng=rng)
        result = vc_coreset(g, k=2)
        t = result.trace
        assert t.levels == len(t.peeled_counts) == len(t.residual_edges)
        assert sum(t.peeled_counts) == result.size_vertices
        # Thresholds halve each level.
        for a, b in zip(t.thresholds, t.thresholds[1:]):
            assert b == pytest.approx(a / 2)

    def test_k_validation(self, rng):
        with pytest.raises(ValueError):
            vc_coreset(Graph(5), k=0)

    def test_global_n_parameter(self, rng):
        """Peeling thresholds use the global n, not the piece size."""
        g = bipartite_gnp(50, 50, 0.2, rng)
        a = vc_coreset(g, n=100, k=1)
        b = vc_coreset(g, n=100_000, k=1)
        # A huge global n means huge thresholds: nothing peeled.
        assert b.size_vertices == 0
        assert a.size_vertices >= b.size_vertices

    def test_residual_size_bound(self, rng):
        """Theorem 2: the residual has O(n log n) edges.  We check the
        explicit form: ≤ n · 8·log2(n) (max degree ≤ 2·4·log n after the
        last peel, counting each edge once)."""
        n = 1000
        g = skewed_bipartite(n // 2, n // 2, hub_count=50, hub_degree=400,
                             leaf_p=0.05, rng=rng)
        result = vc_coreset(g, k=1)
        assert result.residual.n_edges <= n * 8 * math.log2(n)
