"""Tests for repro.graph.weights."""

import numpy as np
import pytest

from repro.graph.weights import WeightedGraph, weight_classes


def make_wg():
    edges = np.array([[0, 1], [1, 2], [2, 3], [0, 3]])
    weights = np.array([1.0, 10.0, 100.0, 3.0])
    return WeightedGraph(4, edges, weights)


class TestWeightedGraph:
    def test_weights_aligned_to_canonical_order(self):
        # Supply edges in reversed orientation and scrambled order.
        edges = np.array([[3, 2], [1, 0]])
        weights = np.array([5.0, 7.0])
        wg = WeightedGraph(4, edges, weights)
        assert wg.matching_weight(np.array([[2, 3]])) == 5.0
        assert wg.matching_weight(np.array([[0, 1]])) == 7.0

    def test_duplicate_edges_first_weight_wins(self):
        wg = WeightedGraph(3, np.array([[0, 1], [1, 0]]), np.array([2.0, 9.0]))
        assert wg.n_edges == 1
        assert wg.total_weight() == 2.0

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedGraph(3, np.array([[0, 1]]), np.array([0.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            WeightedGraph(3, np.array([[0, 1]]), np.array([1.0, 2.0]))

    def test_total_weight(self):
        assert make_wg().total_weight() == pytest.approx(114.0)

    def test_subgraph_carries_weights(self):
        wg = make_wg()
        sub = wg.subgraph_from_mask(wg.weights > 5)
        assert sub.n_edges == 2
        assert sub.total_weight() == pytest.approx(110.0)

    def test_matching_weight_rejects_foreign_edges(self):
        with pytest.raises(ValueError, match="not present"):
            make_wg().matching_weight(np.array([[1, 3]]))

    def test_matching_weight_empty(self):
        assert make_wg().matching_weight(np.zeros((0, 2))) == 0.0


class TestWeightClasses:
    def test_classes_partition_edges(self):
        wg = make_wg()
        classes = weight_classes(wg, epsilon=1.0)
        total = sum(c.graph.n_edges for c in classes)
        assert total == wg.n_edges

    def test_heaviest_first(self):
        classes = weight_classes(make_wg(), epsilon=1.0)
        assert all(
            classes[i].index > classes[i + 1].index
            for i in range(len(classes) - 1)
        )

    def test_weights_within_class_bounds(self):
        wg = make_wg()
        for c in weight_classes(wg, epsilon=1.0):
            w = wg.weights[c.edge_indices]
            assert (w >= c.lo - 1e-9).all()
            assert (w < c.hi * (1 + 1e-9)).all()

    def test_number_of_classes_logarithmic(self, rng):
        n_edges = 200
        edges = np.stack(
            [np.arange(n_edges), np.arange(n_edges) + n_edges], axis=1
        )
        weights = np.exp(rng.uniform(0, np.log(1000), size=n_edges))
        wg = WeightedGraph(2 * n_edges, edges, weights, validated=True)
        classes = weight_classes(wg, epsilon=1.0)
        assert len(classes) <= np.log2(1000) + 2

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            weight_classes(make_wg(), epsilon=0.0)

    def test_empty_graph(self):
        wg = WeightedGraph(3, np.zeros((0, 2), dtype=np.int64),
                           np.zeros(0), validated=True)
        assert weight_classes(wg) == []
