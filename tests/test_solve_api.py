"""Registry invariants of the unified solver facade (``repro.solve``).

Three contracts, asserted for *every* registered solver (not a curated
subset — the parametrization iterates the registry, so a newly registered
solver is automatically held to them):

* **pickle** — specs and contexts ship to worker processes;
* **determinism** — the same ``RunContext`` seed reproduces the
  certificate bit for bit, serial and across the ``processes`` backend;
* **verification** — every certificate passes the problem's verifier, and
  every solve matches its legacy entry point bit for bit when that entry
  point is called with the same derived generators (the port is a
  re-plumbing, not a re-implementation).
"""

import pickle

import numpy as np
import pytest

from repro.graph.bipartite import BipartiteGraph
from repro.graph.edgelist import Graph
from repro.solve import (
    RunContext,
    SolverCapabilityError,
    UnknownSolverError,
    all_solvers,
    get_solver,
    load_graph,
    solve,
    solver_ids,
    solvers_for,
)
from repro.utils.rng import spawn_generators

SEED = 1234
K = 4


# --------------------------------------------------------------------- #
# shared inputs
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def bipartite():
    from repro.graph.generators import planted_matching_gnp

    graph, _ = planted_matching_gnp(200, 200, p=3.0 / 400,
                                    rng=np.random.default_rng(5))
    return graph


@pytest.fixture(scope="module")
def small_general():
    from repro.graph.generators import gnp

    return gnp(36, 0.12, rng=np.random.default_rng(6))


@pytest.fixture(scope="module")
def capacitated():
    from repro.workloads import build_workload

    return build_workload("ba_adwords", rng=9, u=60, v=240)


@pytest.fixture(scope="module")
def weighted():
    from repro.graph.generators import bipartite_gnp
    from repro.graph.weights import WeightedGraph

    base = bipartite_gnp(150, 150, p=4.0 / 300,
                         rng=np.random.default_rng(7))
    weights = np.exp(np.random.default_rng(8).uniform(
        0, np.log(50.0), size=base.n_edges))
    return WeightedGraph(base.n_vertices, base.edges, weights, validated=True)


def _graph_for(spec, bipartite, small_general, weighted, capacitated):
    """The natural test input for a solver's capability tags."""
    if spec.capacitated:
        return capacitated
    if spec.weighted:
        return weighted
    if spec.name == "vertex_cover.exact":
        return small_general  # branch-and-bound: keep it tiny
    return bipartite


def _ctx():
    return RunContext(seed=SEED, k=K)


# --------------------------------------------------------------------- #
# registry surface
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_at_least_ten_solvers(self):
        assert len(solver_ids()) >= 10

    def test_every_problem_and_model_covered(self):
        combos = {(s.problem, s.model) for s in all_solvers()}
        for problem in ("matching", "vertex_cover"):
            for model in ("offline", "coreset", "mapreduce"):
                assert (problem, model) in combos
        assert ("matching", "streaming") in combos

    def test_capability_metadata_complete(self):
        for spec in all_solvers():
            caps = spec.capabilities()
            assert caps["name"] == spec.name
            assert caps["problem"] in ("matching", "vertex_cover")
            assert caps["model"] in ("offline", "coreset", "mapreduce",
                                     "streaming")
            assert caps["guarantee"] and caps["description"]
            assert spec.name.startswith(spec.problem + ".")

    def test_short_name_resolution(self):
        assert get_solver("blossom").name == "matching.blossom"
        assert get_solver("Matching.Coreset").name == "matching.coreset"

    def test_ambiguous_short_name_rejected(self):
        # Both problems register a "coreset" suffix.
        with pytest.raises(UnknownSolverError, match="ambiguous"):
            get_solver("coreset")

    def test_unknown_solver_rejected(self):
        with pytest.raises(UnknownSolverError, match="unknown solver"):
            get_solver("matching.does_not_exist")

    def test_solvers_for_filters(self):
        for spec in solvers_for(problem="matching"):
            assert spec.problem == "matching"
        for spec in solvers_for(model="streaming"):
            assert spec.model == "streaming"
        assert solvers_for(problem="matching", model="offline")

    def test_duplicate_registration_rejected(self):
        from repro.solve.registry import DuplicateSolverError, solver

        with pytest.raises(DuplicateSolverError):
            solver("matching.maximum", problem="matching", model="offline",
                   guarantee="exact", description="dup")(lambda g, c: None)


# --------------------------------------------------------------------- #
# pickling (the process-backend precondition)
# --------------------------------------------------------------------- #
class TestPickling:
    @pytest.mark.parametrize("name", solver_ids())
    def test_spec_pickles(self, name):
        spec = get_solver(name)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.name == spec.name
        assert clone.fn is spec.fn  # module-level adapter, not a closure

    def test_run_context_pickles(self):
        ctx = RunContext(seed=3, k=8, executor="processes", workers=2,
                         transfer="shared")
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone == ctx


# --------------------------------------------------------------------- #
# per-solver contracts
# --------------------------------------------------------------------- #
class TestEverySolver:
    @pytest.mark.parametrize("name", solver_ids())
    def test_certificate_verifies_and_is_deterministic(
        self, name, bipartite, small_general, weighted, capacitated
    ):
        spec = get_solver(name)
        graph = _graph_for(spec, bipartite, small_general, weighted,
                           capacitated)
        first = solve(graph, name, _ctx())
        again = solve(graph, name, _ctx())

        # The facade's own verification ran and passed ...
        assert first.verified
        # ... and the verifiers agree when called directly.
        if spec.capacitated:
            from repro.workloads.bmatching import edge_indices, verify_b_matching

            assert verify_b_matching(
                graph, edge_indices(graph, first.certificate)
            )
            assert first.certificate.shape[1] == 2
        elif spec.problem == "matching":
            from repro.matching.verify import is_matching

            assert is_matching(graph, first.certificate)
            assert first.certificate.shape[1] == 2
        else:
            from repro.cover.verify import is_vertex_cover

            assert is_vertex_cover(graph, first.certificate)
            assert first.certificate.ndim == 1

        # Same seed, same bits.
        np.testing.assert_array_equal(first.certificate, again.certificate)
        assert first.value == again.value

        # Value convention: the spec's declared objective, never inferred
        # from stats keys.
        if spec.objective == "weight":
            assert first.value == pytest.approx(first.stats["weight"])
        else:
            assert spec.objective == "size"
            assert first.value == first.size

    _EXECUTOR_AWARE = [
        "matching.coreset",
        "matching.subsampled_coreset",
        "matching.send_everything",
        "matching.mapreduce",
        "vertex_cover.coreset",
        "vertex_cover.grouped_coreset",
        "vertex_cover.send_everything",
        "vertex_cover.mapreduce",
    ]

    @pytest.mark.parametrize("name", _EXECUTOR_AWARE)
    def test_serial_vs_processes_bit_identical(self, name, bipartite):
        serial = solve(bipartite, name, RunContext(seed=SEED, k=K))
        procs = solve(
            bipartite, name,
            RunContext(seed=SEED, k=K, executor="processes", workers=2),
        )
        np.testing.assert_array_equal(serial.certificate, procs.certificate)
        assert serial.value == procs.value

    # Every solver whose engine moves pieces honours ctx.transfer — the
    # coreset solvers via run_simultaneous, the MapReduce solvers via the
    # simulator — with bit-identical outputs across modes.
    @pytest.mark.parametrize(
        "name", ["matching.coreset", "matching.mapreduce",
                 "vertex_cover.mapreduce"]
    )
    def test_shared_transfer_bit_identical(self, name, bipartite):
        pickle_mode = solve(
            bipartite, name,
            RunContext(seed=SEED, k=K, executor="processes", workers=2,
                       transfer="pickle"),
        )
        shared = solve(
            bipartite, name,
            RunContext(seed=SEED, k=K, executor="processes", workers=2,
                       transfer="shared"),
        )
        np.testing.assert_array_equal(pickle_mode.certificate,
                                      shared.certificate)


# --------------------------------------------------------------------- #
# legacy equivalence: solve(...) == the old entry point, bit for bit
# --------------------------------------------------------------------- #
def _protocol_output(protocol, graph):
    """The legacy coreset-model calling convention (partition, then run)."""
    from repro.dist.coordinator import run_simultaneous
    from repro.graph.partition import random_k_partition

    p_rng, r_rng = spawn_generators(SEED, 2)
    part = random_k_partition(graph, K, p_rng)
    return run_simultaneous(protocol, part, r_rng).output


def _legacy_maximum(graph):
    from repro.matching.api import maximum_matching

    return maximum_matching(graph)


def _legacy_hopcroft_karp(graph):
    from repro.matching.api import maximum_matching

    return maximum_matching(graph, algorithm="hopcroft_karp")


def _legacy_blossom(graph):
    from repro.matching.api import maximum_matching

    return maximum_matching(graph, algorithm="blossom")


def _legacy_augmenting(graph):
    from repro.matching.api import maximum_matching

    return maximum_matching(graph, algorithm="augmenting")


def _legacy_greedy_maximal(graph):
    from repro.matching.api import maximal_matching

    (rng,) = spawn_generators(SEED, 1)
    return maximal_matching(graph, rng=rng, order="random")


def _legacy_matching_coreset(graph):
    from repro.core.protocols import matching_coreset_protocol

    return _protocol_output(matching_coreset_protocol(combiner="exact"),
                            graph)


def _legacy_subsampled(graph):
    from repro.core.protocols import subsampled_matching_protocol

    return _protocol_output(subsampled_matching_protocol(4.0), graph)


def _legacy_send_everything_matching(graph):
    from repro.baselines.naive import send_everything_protocol

    return _protocol_output(send_everything_protocol("matching"), graph)


def _legacy_weighted_matching(graph):
    from repro.core.weighted import weighted_matching_coreset_protocol

    (rng,) = spawn_generators(SEED, 1)
    return weighted_matching_coreset_protocol(graph, k=K, epsilon=1.0,
                                              rng=rng).matching


def _legacy_mapreduce_matching(graph):
    from repro.core.mapreduce_algos import mapreduce_matching

    (rng,) = spawn_generators(SEED, 1)
    return mapreduce_matching(graph, k=K, rng=rng).matching


def _legacy_filtering(graph):
    from repro.baselines.filtering import filtering_matching

    (rng,) = spawn_generators(SEED, 1)
    return filtering_matching(
        graph, memory_edges=max(64, graph.n_edges // 8), rng=rng
    ).matching


def _legacy_streaming_greedy(graph):
    from repro.streaming import StreamingGreedyMatcher, random_order

    (rng,) = spawn_generators(SEED, 1)
    return StreamingGreedyMatcher(graph.n_vertices).run(
        graph, random_order(graph, rng))


def _legacy_streaming_two_phase(graph):
    from repro.streaming import TwoPhaseStreamingMatcher, random_order

    (rng,) = spawn_generators(SEED, 1)
    return TwoPhaseStreamingMatcher(graph.n_vertices).run(
        graph, random_order(graph, rng))


def _legacy_two_approx(graph):
    from repro.cover import matching_based_cover

    return matching_based_cover(graph)


def _legacy_greedy_cover(graph):
    from repro.cover import greedy_cover

    return greedy_cover(graph)


def _legacy_konig(graph):
    from repro.cover import konig_cover

    return konig_cover(graph)


def _legacy_exact_cover(graph):
    from repro.cover import exact_cover

    return exact_cover(graph)


def _legacy_lp_cover(graph):
    from repro.cover import lp_cover

    return lp_cover(graph)


def _legacy_vc_coreset(graph):
    from repro.core.protocols import vertex_cover_coreset_protocol

    return _protocol_output(vertex_cover_coreset_protocol(k=K), graph)


def _legacy_grouped_vc(graph):
    from repro.core.protocols import grouped_vertex_cover_protocol

    return _protocol_output(grouped_vertex_cover_protocol(k=K, alpha=4.0),
                            graph)


def _legacy_send_everything_cover(graph):
    from repro.baselines.naive import send_everything_protocol

    return _protocol_output(send_everything_protocol("vertex_cover"), graph)


def _legacy_weighted_vc(graph):
    from repro.core.weighted import weighted_vertex_cover_protocol

    (rng,) = spawn_generators(SEED, 1)
    ones = np.ones(graph.n_vertices, dtype=np.float64)
    return weighted_vertex_cover_protocol(graph, ones, k=K, epsilon=1.0,
                                          rng=rng).cover


def _legacy_mapreduce_vc(graph):
    from repro.core.mapreduce_algos import mapreduce_vertex_cover

    (rng,) = spawn_generators(SEED, 1)
    return mapreduce_vertex_cover(graph, k=K, rng=rng).cover


def _legacy_b_greedy(graph):
    from repro.workloads.bmatching import greedy_b_matching

    return graph.edges[greedy_b_matching(graph)]


def _legacy_b_exact(graph):
    from repro.workloads.bmatching import exact_b_matching

    return graph.edges[exact_b_matching(graph)]


def _legacy_b_coreset(graph):
    # Reference composition outside the facade: greedy per random piece,
    # exact on the union — mirroring the adapter step for step.
    from repro.workloads.bmatching import (
        edge_indices,
        exact_b_matching,
        greedy_b_matching,
    )
    from repro.workloads.partitions import partition_workload

    partition_rng, _run_rng = _ctx().generators(2)
    part = partition_workload(graph, K, "random", partition_rng)
    union_mask = np.zeros(graph.n_edges, dtype=bool)
    for i in range(part.k):
        piece = graph.subgraph_from_mask(part.assignment == i)
        local = greedy_b_matching(piece)
        if local.size:
            union_mask[edge_indices(graph, piece.edges[local])] = True
    union = graph.subgraph_from_mask(union_mask)
    return union.edges[exact_b_matching(union)]


_LEGACY = {
    "matching.maximum": _legacy_maximum,
    "matching.hopcroft_karp": _legacy_hopcroft_karp,
    "matching.blossom": _legacy_blossom,
    "matching.augmenting": _legacy_augmenting,
    "matching.greedy_maximal": _legacy_greedy_maximal,
    "matching.coreset": _legacy_matching_coreset,
    "matching.subsampled_coreset": _legacy_subsampled,
    "matching.send_everything": _legacy_send_everything_matching,
    "matching.weighted_coreset": _legacy_weighted_matching,
    "matching.mapreduce": _legacy_mapreduce_matching,
    "matching.b_greedy": _legacy_b_greedy,
    "matching.b_exact": _legacy_b_exact,
    "matching.b_coreset": _legacy_b_coreset,
    "matching.filtering": _legacy_filtering,
    "matching.streaming_greedy": _legacy_streaming_greedy,
    "matching.streaming_two_phase": _legacy_streaming_two_phase,
    "vertex_cover.two_approx": _legacy_two_approx,
    "vertex_cover.greedy": _legacy_greedy_cover,
    "vertex_cover.konig": _legacy_konig,
    "vertex_cover.exact": _legacy_exact_cover,
    "vertex_cover.lp": _legacy_lp_cover,
    "vertex_cover.coreset": _legacy_vc_coreset,
    "vertex_cover.grouped_coreset": _legacy_grouped_vc,
    "vertex_cover.send_everything": _legacy_send_everything_cover,
    "vertex_cover.weighted_coreset": _legacy_weighted_vc,
    "vertex_cover.mapreduce": _legacy_mapreduce_vc,
}


class TestLegacyEquivalence:
    def test_every_solver_has_a_legacy_mapping(self):
        assert set(_LEGACY) == set(solver_ids())

    @pytest.mark.parametrize("name", sorted(_LEGACY))
    def test_bit_for_bit(self, name, bipartite, small_general, weighted,
                         capacitated):
        spec = get_solver(name)
        graph = _graph_for(spec, bipartite, small_general, weighted,
                           capacitated)
        result = solve(graph, name, _ctx())
        expected = _LEGACY[name](graph)
        np.testing.assert_array_equal(
            result.certificate, np.asarray(expected, dtype=np.int64),
            err_msg=f"{name} diverged from its legacy entry point",
        )


# --------------------------------------------------------------------- #
# capability and error handling
# --------------------------------------------------------------------- #
class TestCapabilities:
    def test_bipartite_only_rejects_general(self, small_general):
        with pytest.raises(SolverCapabilityError, match="BipartiteGraph"):
            solve(small_general, "matching.hopcroft_karp", _ctx())

    def test_weighted_rejects_unweighted(self, bipartite):
        with pytest.raises(SolverCapabilityError, match="edge weights"):
            solve(bipartite, "matching.weighted_coreset", _ctx())

    def test_capacitated_rejects_uncapacitated(self, bipartite):
        # Weighted but budget-less: the weighted gate passes, the
        # capacitated gate must still refuse.
        from repro.graph.capacity import WeightedBipartiteGraph

        g = WeightedBipartiteGraph(
            bipartite.n_left, bipartite.n_right, bipartite.edges,
            weights=np.ones(bipartite.n_edges), validated=True,
        )
        with pytest.raises(SolverCapabilityError,
                           match="CapacitatedBipartiteGraph"):
            solve(g, "matching.b_exact", _ctx())

    def test_plain_solver_rejects_capacitated(self, capacitated):
        with pytest.raises(SolverCapabilityError, match="ignores capacities"):
            solve(capacitated, "matching.maximum", _ctx())

    def test_missing_k_rejected(self, bipartite):
        with pytest.raises(SolverCapabilityError, match="RunContext.k"):
            solve(bipartite, "matching.coreset", RunContext(seed=0))

    def test_unknown_param_rejected(self, bipartite):
        with pytest.raises(ValueError, match="no parameter"):
            solve(bipartite, "matching.coreset", _ctx(), bogus=1)

    def test_verify_skip(self, bipartite):
        res = solve(bipartite, "matching.maximum", _ctx(), verify=False)
        assert not res.verified
        assert res.stats["verify_skipped"]

    def test_param_override_changes_behavior(self, bipartite):
        loose = solve(bipartite, "matching.subsampled_coreset",
                      _ctx(), alpha=1.0)
        tight = solve(bipartite, "matching.subsampled_coreset",
                      _ctx(), alpha=16.0)
        assert loose.stats["total_edges"] >= tight.stats["total_edges"]


class TestRunContext:
    def test_invalid_k(self):
        with pytest.raises(ValueError, match="k must be"):
            RunContext(k=0)

    def test_invalid_workers(self):
        with pytest.raises(ValueError, match="workers"):
            RunContext(workers=0)

    def test_with_options(self):
        ctx = RunContext(seed=1, k=4)
        assert ctx.with_options(k=8).k == 8
        assert ctx.with_options(k=8).seed == 1

    def test_frozen(self):
        with pytest.raises(Exception):
            RunContext().k = 3  # type: ignore[misc]

    def test_seedsequence_seed_is_not_mutated(self, bipartite):
        # SeedSequence.spawn is stateful; the context must not advance the
        # caller's object, or two solves with one context would diverge.
        seq = np.random.SeedSequence(42)
        ctx = RunContext(seed=seq, k=K)
        first = solve(bipartite, "matching.coreset", ctx)
        second = solve(bipartite, "matching.coreset", ctx)
        np.testing.assert_array_equal(first.certificate, second.certificate)
        assert seq.n_children_spawned == 0

    def test_seedsequence_pool_size_is_preserved(self):
        # The stateless re-derivation must keep the full sequence identity;
        # a non-default pool_size changes the spawned streams.
        seq = np.random.SeedSequence(7, pool_size=8)
        ctx = RunContext(seed=seq, k=K)
        derived = [g.bit_generator.state for g in ctx.generators(2)]
        expected = [
            np.random.default_rng(s).bit_generator.state
            for s in np.random.SeedSequence(7, pool_size=8).spawn(2)
        ]
        assert derived == expected

    def test_generator_seed_is_not_consumed(self, bipartite):
        gen = np.random.default_rng(42)
        state_before = gen.bit_generator.state
        ctx = RunContext(seed=gen, k=K)
        first = solve(bipartite, "matching.coreset", ctx)
        second = solve(bipartite, "matching.coreset", ctx)
        np.testing.assert_array_equal(first.certificate, second.certificate)
        assert gen.bit_generator.state == state_before


class TestResult:
    def test_to_dict_roundtrips_json(self, bipartite):
        import json

        res = solve(bipartite, "matching.coreset", _ctx())
        doc = json.loads(json.dumps(res.to_dict()))
        assert doc["solver"] == "matching.coreset"
        assert doc["verified"] is True
        assert "certificate" not in doc
        with_cert = res.to_dict(include_certificate=True)
        assert len(with_cert["certificate"]) == res.size


# --------------------------------------------------------------------- #
# graph specs
# --------------------------------------------------------------------- #
class TestLoadGraph:
    def test_generator_specs(self):
        g = load_graph("planted:n=200", rng=0)
        assert isinstance(g, BipartiteGraph)
        assert g.n_vertices == 200
        assert isinstance(load_graph("gnp:n=100", rng=0), Graph)

    def test_generation_is_seeded(self):
        a = load_graph("planted:n=200,p=0.02", rng=3)
        b = load_graph("planted:n=200,p=0.02", rng=3)
        np.testing.assert_array_equal(a.edges, b.edges)

    def test_file_roundtrip(self, tmp_path, bipartite):
        from repro.graph.io import save_npz

        path = tmp_path / "g.npz"
        save_npz(path, bipartite)
        loaded = load_graph(str(path))
        np.testing.assert_array_equal(loaded.edges, bipartite.edges)

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="neither an existing file"):
            load_graph("no_such_generator:n=10")

    def test_bad_kwargs_rejected(self):
        with pytest.raises(ValueError, match="planted"):
            load_graph("planted:bogus=3")
