"""Tests for the sweep subsystem: grid planning, content-hash cell ids,
resumable execution, manifest bookkeeping, and failure isolation."""

import json

import pytest

from repro.cli import main
from repro.experiments.artifacts import load_artifact
from repro.sweep import (
    GridCell,
    GridError,
    ManifestError,
    SweepResult,
    build_manifest,
    cell_artifact_path,
    load_manifest,
    plan_grid,
    run_sweep,
    save_manifest,
)

TINY_E1 = ["n_values=200", "k_values=2", "n_trials=1"]


def _tiny_cells(extra=(), seeds=None):
    return plan_grid(["e1"], TINY_E1 + list(extra), seeds)


class TestGridPlanning:
    def test_cross_product_counts(self):
        cells = plan_grid(
            ["e1"], ["n_values=200,400", "k_values=2,4", "n_trials=1"],
            seeds=[0, 1])
        assert len(cells) == 2 * 2 * 2
        assert len({c.cell_id for c in cells}) == len(cells)

    def test_values_coerced_like_single_run_cli(self):
        (cell,) = _tiny_cells()
        overrides = cell.overrides_dict()
        # Tuple-typed params get one-element tuples, ints stay ints.
        assert overrides["n_values"] == (200,)
        assert overrides["k_values"] == (2,)
        assert overrides["n_trials"] == 1

    def test_semicolon_builds_tuple_axis_values(self):
        (cell,) = plan_grid(
            ["e1"], ["n_values=200;400", "k_values=2", "n_trials=1"])
        assert cell.overrides_dict()["n_values"] == (200, 400)

    def test_cell_id_stable_across_set_order(self):
        a = plan_grid(["e1"], TINY_E1)
        b = plan_grid(["e1"], list(reversed(TINY_E1)))
        assert {c.cell_id for c in a} == {c.cell_id for c in b}

    def test_cell_id_sensitive_to_every_input(self):
        base = _tiny_cells()[0]
        other_seed = _tiny_cells(seeds=[7])[0]
        other_value = plan_grid(
            ["e1"], ["n_values=400", "k_values=2", "n_trials=1"])[0]
        other_exp = plan_grid(["e8"], ["n=200", "n_trials=1"])[0]
        ids = {base.cell_id, other_seed.cell_id, other_value.cell_id,
               other_exp.cell_id}
        assert len(ids) == 4

    def test_qualified_axis_scopes_to_one_experiment(self):
        cells = plan_grid(
            ["e1", "e8"],
            ["n_trials=1", "e1.n_values=200", "e1.k_values=2", "e8.n=200"])
        by_exp = {c.experiment: c.overrides_dict() for c in cells}
        assert len(cells) == 2
        assert by_exp["e1"]["n_values"] == (200,)
        assert "n_values" not in by_exp["e8"]
        assert by_exp["e8"]["n"] == 200

    def test_qualifier_outside_sweep_rejected(self):
        with pytest.raises(GridError, match="not part of this sweep"):
            plan_grid(["e1"], ["e8.n=200"])

    def test_unqualified_key_must_exist_everywhere(self):
        # n_values is an E1 parameter only; applying it sweep-wide to
        # e1+e8 must fail loudly instead of silently shrinking the grid.
        with pytest.raises(GridError, match="no parameter"):
            plan_grid(["e1", "e8"], ["n_values=200"])

    def test_unknown_parameter_rejected(self):
        with pytest.raises(GridError, match="bogus"):
            plan_grid(["e1"], ["bogus=1"])

    def test_bad_value_rejected(self):
        with pytest.raises(GridError, match="bad value"):
            plan_grid(["e1"], ["k_values=nope"])

    def test_malformed_set_rejected(self):
        with pytest.raises(GridError, match="KEY=VALUE"):
            plan_grid(["e1"], ["n_values"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(GridError, match="unknown experiment"):
            plan_grid(["e99"], [])

    def test_duplicate_experiment_rejected(self):
        with pytest.raises(GridError, match="twice"):
            plan_grid(["e1", "e1"], [])

    def test_duplicate_seed_rejected(self):
        with pytest.raises(GridError, match="duplicate seed"):
            plan_grid(["e1"], TINY_E1, seeds=[3, 3])

    def test_no_axes_is_one_default_cell(self):
        cells = plan_grid(["e1"], [])
        assert len(cells) == 1
        assert cells[0].overrides == ()
        assert cells[0].seed is None


class TestManifest:
    def _record(self, cell_id="abc", status="done"):
        return {"cell_id": cell_id, "experiment": "e1", "overrides": {},
                "seed": None, "status": status, "artifact": None,
                "error": None, "wall_time_s": 0.1}

    def test_round_trip(self, tmp_path):
        doc = build_manifest([self._record()], grid={"experiments": ["e1"]})
        path = save_manifest(doc, tmp_path / "manifest.json")
        loaded = load_manifest(path)
        assert loaded["kind"] == "sweep_manifest"
        assert loaded["counts"] == {"done": 1}
        assert loaded["cells"][0]["cell_id"] == "abc"
        assert "git_commit" in loaded and "created_at" in loaded

    def test_merge_keeps_cells_outside_current_grid(self):
        previous = build_manifest(
            [self._record("old", "done")], grid={})
        doc = build_manifest([self._record("new", "failed")], grid={},
                             previous=previous)
        assert {c["cell_id"] for c in doc["cells"]} == {"old", "new"}
        assert doc["counts"] == {"done": 1, "failed": 1}

    def test_merge_replaces_rerun_cells(self):
        previous = build_manifest([self._record("x", "failed")], grid={})
        doc = build_manifest([self._record("x", "done")], grid={},
                             previous=previous)
        assert [c["status"] for c in doc["cells"]] == ["done"]

    def test_unknown_schema_version_rejected(self, tmp_path):
        doc = build_manifest([], grid={})
        doc["schema_version"] = 99
        path = save_manifest(doc, tmp_path / "m.json")
        with pytest.raises(ManifestError, match="schema_version"):
            load_manifest(path)

    def test_malformed_rejected(self, tmp_path):
        bad = tmp_path / "m.json"
        bad.write_text("truncated {")
        with pytest.raises(ManifestError, match="cannot read"):
            load_manifest(bad)
        bad.write_text('{"kind": "something_else", "schema_version": 1}')
        with pytest.raises(ManifestError, match="not a sweep manifest"):
            load_manifest(bad)


class TestRunner:
    def test_first_run_executes_everything(self, tmp_path):
        cells = _tiny_cells()
        result = run_sweep(cells, tmp_path)
        assert isinstance(result, SweepResult)
        assert result.exit_code == 0
        assert len(result.done) == 1 and not result.skipped
        artifact = cell_artifact_path(tmp_path, cells[0])
        assert artifact.exists()
        doc = load_artifact(artifact)
        assert doc["sweep_cell"]["cell_id"] == cells[0].cell_id
        assert doc["experiment"] == "e1"
        manifest = load_manifest(result.manifest_path)
        (entry,) = manifest["cells"]
        assert entry["status"] == "done"
        assert entry["artifact"] == f"cells/{artifact.name}"
        assert entry["wall_time_s"] > 0

    def test_rerun_executes_zero_cells(self, tmp_path):
        cells = _tiny_cells()
        run_sweep(cells, tmp_path)
        again = run_sweep(cells, tmp_path)
        assert again.executed == []
        assert len(again.skipped) == len(cells)
        assert again.exit_code == 0
        assert load_manifest(again.manifest_path)["counts"] == {"skipped": 1}

    def test_deleted_cell_reruns_bit_identical(self, tmp_path):
        cells = plan_grid(
            ["e1"], ["n_values=200", "k_values=2,4", "n_trials=2"],
            seeds=[5])
        run_sweep(cells, tmp_path)
        paths = [cell_artifact_path(tmp_path, c) for c in cells]
        first_pass = [json.loads(p.read_text()) for p in paths]
        paths[0].unlink()

        again = run_sweep(cells, tmp_path)
        # Exactly the deleted cell re-executed; its twin stayed cached.
        assert [r["cell_id"] for r in again.executed] == [cells[0].cell_id]
        assert [r["cell_id"] for r in again.skipped] == [cells[1].cell_id]
        second = json.loads(paths[0].read_text())
        # Bit-identical per seed: everything except the wall-clock stamp.
        for key in ("table", "per_trial", "seed", "params", "sweep_cell"):
            assert second[key] == first_pass[0][key], key

    def test_corrupt_artifact_self_heals(self, tmp_path):
        cells = _tiny_cells()
        run_sweep(cells, tmp_path)
        path = cell_artifact_path(tmp_path, cells[0])
        path.write_text(path.read_text()[:40])  # truncate mid-document
        again = run_sweep(cells, tmp_path)
        assert len(again.done) == 1 and not again.skipped
        assert load_artifact(path)["experiment"] == "e1"

    def test_force_reruns_cached_cells(self, tmp_path):
        cells = _tiny_cells()
        run_sweep(cells, tmp_path)
        again = run_sweep(cells, tmp_path, force=True)
        assert len(again.done) == 1 and not again.skipped

    def test_failing_cell_isolated(self, tmp_path):
        # n_trials=0 raises inside run_trials: the cell must fail alone.
        cells = plan_grid(
            ["e1"], ["n_values=200", "k_values=2", "n_trials=0,1"])
        result = run_sweep(cells, tmp_path)
        assert result.exit_code == 1
        assert len(result.failed) == 1 and len(result.done) == 1
        (failure,) = result.failed
        assert "ValueError" in failure["error"]
        assert failure["artifact"] is None
        # The failed cell left no artifact, so a rerun retries exactly it
        # (and fails again: same inputs), while the good cell is cached.
        again = run_sweep(cells, tmp_path)
        assert [r["cell_id"] for r in again.executed] == [failure["cell_id"]]
        assert len(again.skipped) == 1
        statuses = {c["cell_id"]: c["status"]
                    for c in load_manifest(result.manifest_path)["cells"]}
        assert sorted(statuses.values()) == ["failed", "skipped"]

    @staticmethod
    def _flaky_runs(monkeypatch, fail_first):
        """Patch ExperimentSpec.run to raise on the first N calls."""
        from repro.experiments.registry import get_experiment

        spec_cls = type(get_experiment("e1"))
        real_run = spec_cls.run
        calls = {"n": 0}

        def run(self, **kwargs):
            calls["n"] += 1
            if calls["n"] <= fail_first:
                raise RuntimeError(f"transient fault #{calls['n']}")
            return real_run(self, **kwargs)

        monkeypatch.setattr(spec_cls, "run", run)
        return calls

    def test_retry_failed_recovers_a_transient_fault(self, tmp_path,
                                                     monkeypatch):
        calls = self._flaky_runs(monkeypatch, fail_first=1)
        result = run_sweep(_tiny_cells(), tmp_path, executor="serial",
                           retry_failed=2)
        assert result.exit_code == 0
        (record,) = result.executed
        assert record["status"] == "done"
        assert record["attempts"] == 2  # one raise, one success — not 3
        assert record["error"] is None
        assert calls["n"] == 2
        assert (tmp_path / record["artifact"]).exists()
        # The attempt count flows into the manifest verbatim.
        (entry,) = load_manifest(result.manifest_path)["cells"]
        assert entry["attempts"] == 2 and entry["status"] == "done"

    def test_retry_failed_exhausted_records_the_last_error(
            self, tmp_path, monkeypatch):
        self._flaky_runs(monkeypatch, fail_first=99)  # never recovers
        result = run_sweep(_tiny_cells(), tmp_path, executor="serial",
                           retry_failed=1)
        assert result.exit_code == 1
        (record,) = result.executed
        assert record["status"] == "failed"
        assert record["attempts"] == 2  # the initial run + 1 retry
        assert "transient fault #2" in record["error"]  # last, not first
        assert record["artifact"] is None

    def test_default_is_a_single_attempt(self, tmp_path, monkeypatch):
        calls = self._flaky_runs(monkeypatch, fail_first=1)
        result = run_sweep(_tiny_cells(), tmp_path, executor="serial")
        assert result.exit_code == 1
        (record,) = result.executed
        assert record["attempts"] == 1
        assert calls["n"] == 1
        # ...and cached cells report attempts=0 on resume (nothing ran).
        again = run_sweep(_tiny_cells(), tmp_path, executor="serial",
                          retry_failed=2)
        assert again.exit_code == 0
        assert again.done[0]["attempts"] == 1  # recovered on first try
        cached = run_sweep(_tiny_cells(), tmp_path, executor="serial")
        assert cached.skipped[0]["attempts"] == 0

    def test_negative_retry_failed_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="retry_failed"):
            run_sweep(_tiny_cells(), tmp_path, retry_failed=-1)

    def test_manifest_accumulates_across_grids(self, tmp_path):
        run_sweep(_tiny_cells(), tmp_path)
        second = plan_grid(
            ["e1"], ["n_values=200", "k_values=4", "n_trials=1"])
        result = run_sweep(second, tmp_path)
        manifest = load_manifest(result.manifest_path)
        assert len(manifest["cells"]) == 2  # old cell retained, new added

    def test_processes_backend_bit_identical_to_serial(self, tmp_path):
        cells = plan_grid(
            ["e1"], ["n_values=200", "k_values=2,4", "n_trials=2"])
        run_sweep(cells, tmp_path / "serial", executor="serial")
        run_sweep(cells, tmp_path / "procs", executor="processes")
        for cell in cells:
            a = json.loads(
                cell_artifact_path(tmp_path / "serial", cell).read_text())
            b = json.loads(
                cell_artifact_path(tmp_path / "procs", cell).read_text())
            for key in ("table", "per_trial", "seed", "params"):
                assert a[key] == b[key], (cell.cell_id, key)


class TestSweepCLI:
    ARGS = ["sweep", "e1", "--set", "n_values=200", "--set", "k_values=2",
            "--set", "n_trials=1"]

    def test_run_then_resume(self, tmp_path, capsys):
        assert main(self.ARGS + ["--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 executed, 0 skipped" in out
        assert main(self.ARGS + ["--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 executed, 1 skipped" in out

    def test_dry_run_executes_nothing(self, tmp_path, capsys):
        assert main(self.ARGS + ["--dir", str(tmp_path), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "1 cells planned" in out
        assert not (tmp_path / "manifest.json").exists()

    def test_failed_cell_exits_nonzero(self, tmp_path, capsys):
        assert main(["sweep", "e1", "--set", "n_values=200",
                     "--set", "k_values=2", "--set", "n_trials=0",
                     "--dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "1 failed" in out and "ValueError" in out

    def test_retry_failed_flag_rides_through(self, tmp_path, capsys,
                                             monkeypatch):
        TestRunner._flaky_runs(monkeypatch, fail_first=1)
        assert main(self.ARGS + ["--dir", str(tmp_path),
                                 "--retry-failed", "2"]) == 0
        out = capsys.readouterr().out
        assert "1 executed" in out and "0 failed" in out

    def test_negative_retry_failed_exits_2(self, tmp_path, capsys):
        assert main(self.ARGS + ["--dir", str(tmp_path),
                                 "--retry-failed", "-1"]) == 2
        assert "--retry-failed" in capsys.readouterr().err

    def test_bad_inputs_exit_2(self, tmp_path, capsys):
        base = ["--dir", str(tmp_path)]
        assert main(["sweep", "e99"] + base) == 2
        assert main(["sweep", "e1", "--set", "bogus=1"] + base) == 2
        assert main(["sweep", "e1", "--seeds", "x"] + base) == 2
        assert main(["sweep", "e1", "--seeds", ","] + base) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err and "bogus" in err
