"""Tests for the MapReduce simulator."""

import numpy as np
import pytest

from repro.dist.mapreduce import MapReduceSimulator, MemoryCapExceeded
from repro.graph.generators import gnp


def split_pieces(graph, k):
    return list(np.array_split(graph.edges, k))


# Route/compute helpers are module-level (not lambdas) so this file also
# passes under REPRO_EXECUTOR=processes, where they are pickled to workers.
def route_uniform4(i, e, r):
    return r.integers(0, 4, size=e.shape[0])


def route_wrong_shape(i, e, r):
    return np.zeros(1, dtype=np.int64)


def route_out_of_range(i, e, r):
    return np.full(e.shape[0], 7, dtype=np.int64)


def route_stay(i, e, r):
    return np.full(e.shape[0], i, np.int64)


def compute_half(i, e, r):
    return e[: e.shape[0] // 2]


def compute_identity(i, e, r):
    return e


class TestLoadAndState:
    def test_load_and_sizes(self, rng):
        g = gnp(30, 0.3, rng)
        sim = MapReduceSimulator(30, 3, rng=rng)
        sim.load(split_pieces(g, 3))
        assert sim.machine_sizes().sum() == g.n_edges

    def test_load_wrong_count(self, rng):
        sim = MapReduceSimulator(10, 2, rng=rng)
        with pytest.raises(ValueError, match="expected 2 pieces"):
            sim.load([np.zeros((0, 2))])

    def test_machine_graph(self, rng):
        g = gnp(20, 0.3, rng)
        sim = MapReduceSimulator(20, 2, rng=rng)
        sim.load(split_pieces(g, 2))
        mg = sim.machine_graph(0)
        assert mg.n_vertices == 20


class TestShuffleRound:
    def test_conserves_edges(self, rng):
        g = gnp(40, 0.2, rng)
        sim = MapReduceSimulator(40, 4, rng=rng)
        sim.load(split_pieces(g, 4))
        total_before = sim.machine_sizes().sum()
        sim.shuffle_round(route_uniform4)
        assert sim.machine_sizes().sum() == total_before
        assert sim.job.n_rounds == 1
        assert sim.job.rounds[0].kind == "shuffle"

    def test_route_shape_validated(self, rng):
        g = gnp(20, 0.3, rng)
        sim = MapReduceSimulator(20, 2, rng=rng)
        sim.load(split_pieces(g, 2))
        with pytest.raises(ValueError, match="one destination per edge"):
            sim.shuffle_round(route_wrong_shape)

    def test_route_range_validated(self, rng):
        g = gnp(20, 0.3, rng)
        sim = MapReduceSimulator(20, 2, rng=rng)
        sim.load(split_pieces(g, 2))
        with pytest.raises(ValueError, match="out of range"):
            sim.shuffle_round(route_out_of_range)

    def test_moved_count_excludes_local(self, rng):
        g = gnp(30, 0.3, rng)
        sim = MapReduceSimulator(30, 3, rng=rng)
        sim.load(split_pieces(g, 3))
        sim.shuffle_round(route_stay)
        assert sim.job.rounds[0].total_edges_moved == 0


class TestComputeRound:
    def test_local_compute(self, rng):
        g = gnp(30, 0.3, rng)
        sim = MapReduceSimulator(30, 3, rng=rng)
        sim.load(split_pieces(g, 3))
        sim.compute_round(compute_half)
        assert sim.job.rounds[-1].kind == "compute"

    def test_send_to_concentrates(self, rng):
        g = gnp(30, 0.3, rng)
        sim = MapReduceSimulator(30, 3, rng=rng)
        sim.load(split_pieces(g, 3))
        sim.compute_round(compute_identity, send_to=1)
        sizes = sim.machine_sizes()
        assert sizes[1] == g.n_edges
        assert sizes[0] == sizes[2] == 0

    def test_send_to_range_checked(self, rng):
        sim = MapReduceSimulator(10, 2, rng=rng)
        sim.load([np.zeros((0, 2), dtype=np.int64)] * 2)
        with pytest.raises(ValueError):
            sim.compute_round(compute_identity, send_to=9)


class TestMemoryCap:
    def test_violation_raises(self, rng):
        g = gnp(30, 0.5, rng)
        sim = MapReduceSimulator(30, 2, memory_cap_edges=5, rng=rng)
        with pytest.raises(MemoryCapExceeded):
            sim.load(split_pieces(g, 2))

    def test_cap_respected(self, rng):
        g = gnp(20, 0.2, rng)
        cap = g.n_edges  # loose cap
        sim = MapReduceSimulator(20, 2, memory_cap_edges=cap, rng=rng)
        sim.load(split_pieces(g, 2))
        sim.compute_round(compute_identity, send_to=0)  # still under cap

    def test_job_peak_tracking(self, rng):
        g = gnp(30, 0.3, rng)
        sim = MapReduceSimulator(30, 3, rng=rng)
        sim.load(split_pieces(g, 3))
        sim.compute_round(compute_identity, send_to=0)
        assert sim.job.peak_machine_edges == g.n_edges
        assert sim.job.total_shuffled_edges > 0
