"""Tests for structured run artifacts: save/load/diff and the registry
``archive_dir`` hook."""

import json

import numpy as np
import pytest

from repro.experiments.artifacts import (
    ARTIFACT_SCHEMA_VERSION,
    ArtifactError,
    diff_artifacts,
    load_artifact,
    run_artifact_doc,
    save_run_artifact,
)
from repro.experiments.harness import ExperimentTable


def _table(ratio=1.5, label="a"):
    t = ExperimentTable(
        name="T", description="d", columns=["graph", "n", "ratio"])
    t.add_row(graph=label, n=100, ratio=ratio)
    t.add_row(graph=label + "2", n=200, ratio=ratio * 2)
    return t


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        path = save_run_artifact(
            _table(), experiment="e1",
            params={"n_values": (100, 200), "n_trials": 3},
            seed=11, directory=tmp_path)
        doc = load_artifact(path)
        assert doc["schema_version"] == ARTIFACT_SCHEMA_VERSION
        assert doc["experiment"] == "e1"
        assert doc["seed"] == 11
        assert doc["params"]["n_values"] == [100, 200]
        assert doc["table"]["rows"][0]["ratio"] == 1.5
        assert "created_at" in doc

    def test_numpy_values_are_jsonable(self, tmp_path):
        t = ExperimentTable(name="T", description="d", columns=["x"])
        t.add_row(x=np.float64(2.25))
        path = save_run_artifact(
            t, experiment="e9", params={"k": np.int64(4)},
            seed=np.random.SeedSequence(3), directory=tmp_path)
        doc = json.loads(path.read_text())
        assert doc["params"]["k"] == 4
        assert doc["table"]["rows"][0]["x"] == 2.25

    def test_same_second_runs_get_distinct_files(self, tmp_path):
        paths = {
            save_run_artifact(_table(), experiment="e1", params={},
                              seed=1, directory=tmp_path)
            for _ in range(3)
        }
        assert len(paths) == 3

    def test_unknown_schema_version_rejected(self, tmp_path):
        path = save_run_artifact(_table(), experiment="e1", params={},
                                 seed=1, directory=tmp_path)
        doc = json.loads(path.read_text())
        doc["schema_version"] = 99
        path.write_text(json.dumps(doc))
        with pytest.raises(ArtifactError, match="schema_version"):
            load_artifact(path)

    def test_malformed_file_rejected(self, tmp_path):
        bad = tmp_path / "x.json"
        bad.write_text("not json {")
        with pytest.raises(ArtifactError, match="cannot read"):
            load_artifact(bad)


class TestDiff:
    def test_numeric_deltas_reported(self):
        old = run_artifact_doc(_table(1.5), experiment="e1",
                               params={}, seed=1)
        new = run_artifact_doc(_table(1.8), experiment="e1",
                               params={}, seed=1)
        text = diff_artifacts(old, new)
        assert "1.5 → 1.8" in text
        assert "+0.3" in text
        assert "rows differ" in text

    def test_identical_runs_report_no_diff(self):
        doc = run_artifact_doc(_table(), experiment="e1", params={}, seed=1)
        assert "no row-level differences" in diff_artifacts(doc, doc)

    def test_different_experiments_refused(self):
        a = run_artifact_doc(_table(), experiment="e1", params={}, seed=1)
        b = run_artifact_doc(_table(), experiment="e2", params={}, seed=1)
        with pytest.raises(ArtifactError, match="different experiments"):
            diff_artifacts(a, b)


class TestRegistryHook:
    def test_spec_run_archives(self, tmp_path):
        from repro.experiments.registry import get_experiment

        spec = get_experiment("e1")
        table = spec.run(n_values=(200,), k_values=(2,), n_trials=1,
                         archive_dir=tmp_path)
        path = table.artifact_path
        assert path.exists()
        doc = load_artifact(path)
        assert doc["experiment"] == "e1"
        assert doc["params"]["n_values"] == [200]
        assert doc["params"]["k_values"] == [2]
        assert len(doc["table"]["rows"]) == len(table.rows)

    def test_no_archive_by_default(self):
        from repro.experiments.registry import get_experiment

        table = get_experiment("e1").run(
            n_values=(200,), k_values=(2,), n_trials=1)
        assert not hasattr(table, "artifact_path")


def _metric_trial(seed):
    return {"v": float(np.random.default_rng(seed).random())}


def _failing_trial(seed):
    raise RuntimeError("boom")


class TestPerTrialMetrics:
    def test_sink_captures_each_run_trials_call(self):
        from repro.experiments.harness import (
            collect_trial_metrics,
            run_trials,
        )

        with collect_trial_metrics() as sink:
            first = run_trials(_metric_trial, 3, seed=0)
            run_trials(_metric_trial, 2, seed=1)
        assert len(sink) == 2
        assert sink[0]["v"] == first["v"].tolist()
        assert len(sink[1]["v"]) == 2
        # Outside the block nothing is captured.
        run_trials(_metric_trial, 2, seed=2)
        assert len(sink) == 2

    def test_sink_restored_after_exception(self):
        from repro.experiments import harness
        from repro.experiments.harness import (
            collect_trial_metrics,
            run_trials,
        )

        with pytest.raises(RuntimeError, match="boom"):
            with collect_trial_metrics():
                run_trials(_failing_trial, 1, seed=0)
        assert harness._trial_sink is None

    def test_nested_sinks_shadow(self):
        from repro.experiments.harness import (
            collect_trial_metrics,
            run_trials,
        )

        with collect_trial_metrics() as outer:
            run_trials(_metric_trial, 1, seed=0)
            with collect_trial_metrics() as inner:
                run_trials(_metric_trial, 1, seed=1)
            run_trials(_metric_trial, 1, seed=2)
        assert len(inner) == 1
        assert len(outer) == 2

    def test_spec_run_attaches_and_artifact_serializes(self, tmp_path):
        from repro.experiments.registry import get_experiment

        table = get_experiment("e1").run(
            n_values=(200, 400), k_values=(2,), n_trials=3,
            archive_dir=tmp_path,
        )
        # One run_trials call per grid cell, aligned with the rows.
        assert len(table.trial_metrics) == len(table.rows) == 2
        for row, metrics in zip(table.rows, table.trial_metrics):
            assert len(metrics["ratio"]) == 3
            assert row["ratio_mean"] == pytest.approx(
                float(np.mean(metrics["ratio"]))
            )
        doc = load_artifact(table.artifact_path)
        assert doc["schema_version"] == ARTIFACT_SCHEMA_VERSION
        assert doc["per_trial"] == table.trial_metrics

    def test_v1_artifact_without_per_trial_still_loads(self, tmp_path):
        path = save_run_artifact(
            _table(), experiment="e1", params={}, seed=1,
            directory=tmp_path,
        )
        doc = json.loads(path.read_text())
        doc["schema_version"] = 1
        del doc["per_trial"]
        path.write_text(json.dumps(doc))
        loaded = load_artifact(path)
        assert loaded["schema_version"] == 1
        assert "per_trial" not in loaded
        # And v1-vs-v2 runs of the same experiment still diff.
        other = save_run_artifact(
            _table(ratio=2.0), experiment="e1", params={}, seed=2,
            directory=tmp_path,
        )
        assert "ratio" in diff_artifacts(loaded, load_artifact(other))

    def test_diff_reports_columns_dropped_by_new_run(self, tmp_path):
        old = save_run_artifact(
            _table(), experiment="e1", params={}, seed=1,
            directory=tmp_path,
        )
        new_table = ExperimentTable(
            name="T", description="d", columns=["graph", "n"])
        new_table.add_row(graph="a", n=100)
        new_table.add_row(graph="a2", n=200)
        new = save_run_artifact(
            new_table, experiment="e1", params={}, seed=2,
            directory=tmp_path,
        )
        text = diff_artifacts(load_artifact(old), load_artifact(new))
        # "ratio" exists only in the old run; the diff must surface it.
        assert "ratio" in text

    def test_unknown_schema_version_rejected(self, tmp_path):
        path = save_run_artifact(
            _table(), experiment="e1", params={}, seed=1,
            directory=tmp_path,
        )
        doc = json.loads(path.read_text())
        doc["schema_version"] = 99
        path.write_text(json.dumps(doc))
        with pytest.raises(ArtifactError, match="schema_version"):
            load_artifact(path)


class TestReportIntegration:
    def test_collect_and_render(self, tmp_path):
        from repro.experiments.report import collect_artifacts, render_report

        save_run_artifact(_table(), experiment="e1", params={}, seed=1,
                          directory=tmp_path)
        (tmp_path / "e1_x.txt").write_text("== T ==\nbody\n")
        docs = collect_artifacts(tmp_path)
        assert len(docs) == 1
        from repro.experiments.report import collect_results

        text = render_report(collect_results(tmp_path), artifacts=docs)
        assert "## Run artifacts" in text
        assert "`e1`" in text

    def test_render_diff_via_cli(self, tmp_path, capsys):
        from repro.cli import main

        a = save_run_artifact(_table(1.5), experiment="e1", params={},
                              seed=1, directory=tmp_path)
        b = save_run_artifact(_table(1.8), experiment="e1", params={},
                              seed=1, directory=tmp_path)
        assert main(["report", "--diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "1.5 → 1.8" in out

    def test_cli_diff_rejects_mismatched_experiments(self, tmp_path, capsys):
        from repro.cli import main

        a = save_run_artifact(_table(), experiment="e1", params={},
                              seed=1, directory=tmp_path)
        b = save_run_artifact(_table(), experiment="e2", params={},
                              seed=1, directory=tmp_path)
        assert main(["report", "--diff", str(a), str(b)]) == 2
