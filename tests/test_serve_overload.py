"""``repro serve`` under overload: admission, deadlines, circuit breaker.

The PR 9 resilience contract, chaos-proven:

* **Sustained 2×-capacity load** sheds the excess with structured 429
  ``overloaded`` + ``Retry-After`` while every *admitted* request stays
  bit-identical to in-process :func:`repro.solve.solve` — overload must
  never change answers, only refuse some.
* **Deadlines** (``deadline_ms``) expire queued requests before they are
  ever dispatched and turn expired-in-flight requests into 504s without
  touching their batch-mates' results.
* **A worker kill-storm** drives the :class:`~repro.serve.resilience.
  ExecutorSupervisor` through open → half-open → closed with
  ``pools_created`` bounded (one pool per backed-off probe, not one per
  request), ``/readyz`` flipping unready → ready across the cycle.

Choreography (see :func:`chaos.serve_harness`): pool workers inherit the
chaos env at fork, so :func:`chaos.chaos` arms *around* the harness;
``latch=False`` makes every worker misbehave (storms), ``latch=True``
exactly one (single-fault recovery).  Disarming chaos *before* a probe
(the ``ExitStack`` pattern below) is what lets a replacement pool fork
clean and the probe succeed.
"""

from __future__ import annotations

import asyncio
import contextlib
import socket
import time

import pytest

from chaos import chaos, overload_burst, run_async, serve_harness
from repro.solve import RunContext, solve
from repro.solve.graphs import load_graph

from repro.serve import ServeClient, ServeClientError

GRAPH_SPEC = "planted:n=300,p=0.03"
GRAPH_SEED = 11
DEMO = (("demo", GRAPH_SPEC, GRAPH_SEED),)
PROC = dict(executor="processes", workers=2)


def reference(solver: str, seed: int, k=None, **params):
    """The in-process ground truth a served solve must reproduce."""
    graph = load_graph(GRAPH_SPEC, rng=GRAPH_SEED)
    return solve(graph, solver, RunContext(seed=seed, k=k), **params)


def assert_matches_reference(doc, ref):
    """Served result document == in-process SolveResult, bit for bit."""
    want = ref.to_dict(include_certificate=True)
    got = doc["result"]
    assert got["solver"] == want["solver"]
    assert got["value"] == want["value"]
    assert got["size"] == want["size"]
    assert got["verified"] is True
    got_stats = {k: v for k, v in got["stats"].items() if "time" not in k}
    want_stats = {k: v for k, v in want["stats"].items() if "time" not in k}
    assert got_stats == want_stats


# --------------------------------------------------------------------- #
# admission control
# --------------------------------------------------------------------- #
class TestAdmissionControl:
    def test_sustained_overload_sheds_429s_admitted_stay_correct(
            self, tmp_path):
        """2× the admission capacity arrives at once: exactly the cap is
        admitted, the rest get structured 429s with Retry-After, and every
        admitted result is bit-identical to in-process solve()."""
        with chaos(tmp_path, slow_ms=150, latch=False):
            async def main():
                async with serve_harness(
                    graphs=DEMO, batch_window_ms=20.0, max_inflight=4,
                    **PROC,
                ) as (server, client):
                    buckets = await overload_burst(client, "demo", 8)
                    statz = await client.statz()
                    return buckets, statz

            buckets, statz = run_async(main())
        assert len(buckets["ok"]) == 4
        assert len(buckets["overloaded"]) == 4
        assert not buckets["other"]
        for exc in buckets["overloaded"]:
            assert exc.status == 429
            assert exc.code == "overloaded"
            assert exc.doc["error"]["reason"] == "max_inflight"
            assert exc.retry_after is not None and exc.retry_after > 0
        # Overload changed scheduling, never answers.
        for doc in buckets["ok"]:
            assert_matches_reference(
                doc, reference("matching.greedy_maximal", doc["seed"]))
        adm = statz["admission"]
        assert adm["rejected_global"] == 4
        assert adm["rejected_total"] == 4
        assert adm["admitted_total"] == 4
        assert adm["max_inflight_seen"] == 4
        assert adm["inflight"] == 0  # every admit was released

    def test_per_graph_cap_isolates_a_hot_graph(self, tmp_path):
        """A per-graph cap sheds only the hot graph's excess: the other
        graph's requests are untouched."""
        with chaos(tmp_path, slow_ms=150, latch=False):
            async def main():
                async with serve_harness(
                    graphs=DEMO + (("alt", GRAPH_SPEC, GRAPH_SEED),),
                    batch_window_ms=20.0, max_inflight_per_graph=2,
                    **PROC,
                ) as (_, client):
                    hot, cold = await asyncio.gather(
                        overload_burst(client, "demo", 4),
                        overload_burst(client, "alt", 2),
                    )
                    statz = await client.statz()
                    return hot, cold, statz

            hot, cold, statz = run_async(main())
        assert len(hot["ok"]) == 2 and len(hot["overloaded"]) == 2
        assert len(cold["ok"]) == 2 and not cold["overloaded"]
        for exc in hot["overloaded"]:
            assert exc.doc["error"]["reason"] == "max_inflight_per_graph"
            assert exc.doc["error"]["graph"] == "demo"
        assert statz["admission"]["rejected_per_graph"] == 2

    def test_queue_bound_rejects_past_max_queue(self):
        """The batch queue never grows past --max-queue: excess submits
        get 429 queue_full while the queued ones complete normally."""
        async def main():
            async with serve_harness(
                graphs=DEMO, batch_window_ms=300.0, max_queue=3,
            ) as (server, client):
                buckets = await overload_burst(client, "demo", 8)
                statz = await client.statz()
                return buckets, statz, server.batcher.stats()

        buckets, statz, batch = run_async(main())
        assert len(buckets["ok"]) == 3
        assert len(buckets["overloaded"]) == 5
        for exc in buckets["overloaded"]:
            assert exc.doc["error"]["reason"] == "queue_full"
            assert exc.retry_after is not None
        for doc in buckets["ok"]:
            assert_matches_reference(
                doc, reference("matching.greedy_maximal", doc["seed"]))
        assert statz["queue"]["rejected_queue_full"] == 5
        assert batch["max_queue_seen"] <= 3


# --------------------------------------------------------------------- #
# request deadlines
# --------------------------------------------------------------------- #
class TestDeadlines:
    def test_expired_in_queue_is_never_dispatched(self):
        """A request whose deadline passes inside the batch window is
        dropped before the flush: 504, and zero batches dispatched."""
        async def main():
            async with serve_harness(
                graphs=DEMO, batch_window_ms=250.0,
            ) as (server, client):
                with pytest.raises(ServeClientError) as err:
                    await client.solve("demo",
                                       solver="matching.greedy_maximal",
                                       seed=0, deadline_ms=40)
                statz = await client.statz()
                return err.value, statz, server.batcher.stats()

        exc, statz, batch = run_async(main())
        assert exc.status == 504
        assert exc.code == "deadline_exceeded"
        assert exc.doc["error"]["deadline_ms"] == 40
        assert batch["expired_in_queue"] == 1
        assert batch["batches"] == 0  # the whole point: never dispatched
        assert statz["deadlines"]["expired_in_queue"] == 1

    def test_expired_in_flight_spares_its_batchmates(self, tmp_path):
        """One entry expires while its shared batch executes: it gets a
        504, its batch-mate's result is bit-identical and untouched."""
        with chaos(tmp_path, slow_ms=250, latch=False):
            async def main():
                async with serve_harness(
                    graphs=DEMO, batch_window_ms=30.0, **PROC,
                ) as (server, client):
                    tight, roomy = await asyncio.gather(
                        client.solve("demo",
                                     solver="matching.greedy_maximal",
                                     seed=1, deadline_ms=100),
                        client.solve("demo",
                                     solver="matching.greedy_maximal",
                                     seed=2),
                        return_exceptions=True,
                    )
                    return tight, roomy, server.batcher.stats()

            tight, roomy, batch = run_async(main())
        assert isinstance(tight, ServeClientError)
        assert tight.status == 504
        assert tight.code == "deadline_exceeded"
        assert isinstance(roomy, dict)
        assert roomy["batch_size"] == 2  # they shared the barrier
        assert_matches_reference(
            roomy, reference("matching.greedy_maximal", 2))
        assert batch["expired_in_flight"] == 1

    def test_default_and_cap_bound_every_request(self):
        """--default-deadline-ms covers clients that send none;
        --max-deadline-ms caps clients that ask for too much."""
        async def main():
            async with serve_harness(
                graphs=DEMO, batch_window_ms=200.0,
                default_deadline_ms=60.0, max_deadline_ms=80.0,
            ) as (_, client):
                outcomes = await asyncio.gather(
                    client.solve("demo", solver="matching.greedy_maximal",
                                 seed=0),
                    client.solve("demo", solver="matching.greedy_maximal",
                                 seed=1, deadline_ms=500000),
                    return_exceptions=True,
                )
                statz = await client.statz()
                return outcomes, statz

        (defaulted, capped), statz = run_async(main())
        assert isinstance(defaulted, ServeClientError)
        assert defaulted.status == 504
        assert defaulted.doc["error"]["deadline_ms"] == 60.0
        assert isinstance(capped, ServeClientError)
        assert capped.status == 504
        assert capped.doc["error"]["deadline_ms"] == 80.0  # not 500000
        assert statz["deadlines"]["expired_in_queue"] == 2

    def test_invalid_deadline_is_a_400(self):
        async def main():
            async with serve_harness(graphs=DEMO) as (_, client):
                outcomes = []
                for bad in (0, -5, "soon", True):
                    with pytest.raises(ServeClientError) as err:
                        await client.solve(
                            "demo", solver="matching.greedy_maximal",
                            seed=0, deadline_ms=bad)
                    outcomes.append(err.value)
                return outcomes

        for exc in run_async(main()):
            assert exc.status == 400
            assert exc.code == "bad_request"
            assert exc.doc["error"]["field"] == "deadline_ms"


# --------------------------------------------------------------------- #
# the circuit breaker, end to end
# --------------------------------------------------------------------- #
class TestBreaker:
    def test_kill_storm_opens_probes_reopen_then_recover(self, tmp_path):
        """The acceptance scenario: a kill-storm trips the breaker after
        `threshold` consecutive breaks; while open, requests shed with
        429 and create **no pools**; a half-open probe under fire reopens
        with doubled backoff; once the storm stops, the next probe closes
        the breaker and results are bit-identical again.  Pool creation
        stays bounded: one per re-warm/probe, never one per request."""
        async def main():
            stack = contextlib.ExitStack()
            stack.enter_context(chaos(tmp_path, kill=True, latch=False))
            try:
                async with serve_harness(
                    graphs=DEMO, breaker_threshold=2,
                    breaker_backoff_ms=400.0, step_down_after=0, **PROC,
                ) as (server, client):
                    errs = []
                    for _ in range(2):  # the storm: consecutive breaks
                        with pytest.raises(ServeClientError) as err:
                            await client.solve(
                                "demo", solver="matching.greedy_maximal",
                                seed=0)
                        errs.append(err.value)
                    # Breaker is now open: immediate shed, no pool churn.
                    pools_at_open = server.supervisor.pools_created_total
                    shed = []
                    for _ in range(5):
                        with pytest.raises(ServeClientError) as err:
                            await client.solve(
                                "demo", solver="matching.greedy_maximal",
                                seed=0)
                        shed.append(err.value)
                    open_statz = await client.statz()
                    pools_after_shed = server.supervisor.pools_created_total
                    # Backoff elapses; the probe batch runs INTO the still-
                    # armed storm → breaker reopens, backoff doubles.
                    await asyncio.sleep(0.45)
                    with pytest.raises(ServeClientError) as err:
                        await client.solve(
                            "demo", solver="matching.greedy_maximal", seed=0)
                    probe_err = err.value
                    reopen_statz = await client.statz()
                    # Storm over: disarm chaos, wait out the doubled
                    # backoff; the next probe forks a clean pool and wins.
                    stack.close()
                    await asyncio.sleep(0.85)
                    doc = await client.solve(
                        "demo", solver="matching.greedy_maximal", seed=5)
                    closed_statz = await client.statz()
                    ready, _ = await client.readyz()
                    return (errs, pools_at_open, shed, open_statz,
                            pools_after_shed, probe_err, reopen_statz,
                            doc, closed_statz, ready,
                            server.supervisor.pools_created_total)
            finally:
                stack.close()

        (errs, pools_at_open, shed, open_statz, pools_after_shed,
         probe_err, reopen_statz, doc, closed_statz, ready,
         pools_final) = run_async(main())
        for exc in errs:
            assert exc.status == 500
            assert exc.code == "worker_pool_broken"
        breaker = open_statz["breaker"]
        assert breaker["state"] == "open"
        assert breaker["opens_total"] == 1
        assert breaker["consecutive_breaks"] == 2
        for exc in shed:
            assert exc.status == 429
            assert exc.code == "overloaded"
            assert exc.doc["error"]["reason"] == "breaker_open"
            assert exc.retry_after is not None and exc.retry_after > 0
        # Shedding is free: zero pools created while open.
        assert pools_after_shed == pools_at_open
        assert breaker["rejected"] >= 5
        # The in-storm probe broke the replacement pool → reopened.
        assert probe_err.code == "worker_pool_broken"
        assert reopen_statz["breaker"]["state"] == "open"
        assert reopen_statz["breaker"]["opens_total"] == 2
        assert reopen_statz["breaker"]["retry_in_ms"] > 400  # doubled
        # Recovery: probe succeeded, breaker closed, answers correct.
        assert closed_statz["breaker"]["state"] == "closed"
        assert closed_statz["breaker"]["probes"] == 2
        assert ready is True
        assert_matches_reference(doc, reference("matching.greedy_maximal",
                                                5))
        # Bounded pool churn across the whole storm: boot + post-break
        # re-warm + two probes = 4, regardless of how many requests shed.
        assert pools_final == 4

    def test_readyz_flips_unready_then_ready_across_a_pool_break(
            self, tmp_path):
        """/readyz is the load-balancer view: ready at boot, unready the
        moment the breaker opens, ready again after the probe recovers.
        /healthz stays 200 throughout (liveness ≠ readiness)."""
        with chaos(tmp_path, kill=True):  # latch: exactly one kill
            async def main():
                async with serve_harness(
                    graphs=DEMO, breaker_threshold=1,
                    breaker_backoff_ms=300.0, **PROC,
                ) as (_, client):
                    ready_boot, _ = await client.readyz()
                    with pytest.raises(ServeClientError):
                        await client.solve(
                            "demo", solver="matching.greedy_maximal", seed=0)
                    ready_open, open_doc = await client.readyz()
                    health_open = await client.healthz()
                    await asyncio.sleep(0.35)
                    # Latch already claimed → the probe's fresh pool is
                    # clean and the probe solve succeeds.
                    doc = await client.solve(
                        "demo", solver="matching.greedy_maximal", seed=3)
                    ready_back, _ = await client.readyz()
                    statz = await client.statz()
                    return (ready_boot, ready_open, open_doc, health_open,
                            doc, ready_back, statz)

            (ready_boot, ready_open, open_doc, health_open, doc,
             ready_back, statz) = run_async(main())
        assert ready_boot is True
        assert ready_open is False
        assert any("breaker" in r for r in open_doc["reasons"])
        assert health_open["ok"] is True  # liveness unaffected
        assert_matches_reference(doc, reference("matching.greedy_maximal",
                                                3))
        assert ready_back is True
        assert statz["breaker"]["state"] == "closed"
        assert statz["breaker"]["opens_total"] == 1
        assert statz["breaker"]["probes"] == 1

    def test_readyz_respects_the_queue_watermark(self):
        """A backed-up batch queue flips /readyz before the queue bound
        is anywhere near — the early-warning seam for load balancers."""
        async def main():
            async with serve_harness(
                graphs=DEMO, batch_window_ms=400.0, ready_watermark=2,
            ) as (_, client):
                futs = [asyncio.ensure_future(client.solve(
                    "demo", solver="matching.greedy_maximal", seed=s))
                    for s in range(3)]
                await asyncio.sleep(0.1)  # queued, window still open
                ready_loaded, doc = await client.readyz()
                await asyncio.gather(*futs)
                ready_after, _ = await client.readyz()
                return ready_loaded, doc, ready_after

        ready_loaded, doc, ready_after = run_async(main())
        assert ready_loaded is False
        assert any("watermark" in r for r in doc["reasons"])
        assert ready_after is True


# --------------------------------------------------------------------- #
# the supervisor state machine, exactly (fake clock, no server)
# --------------------------------------------------------------------- #
class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class _FakeExecutor:
    """Just enough executor for supervisor unit tests."""

    def __init__(self, name="processes"):
        self.name = name
        self.pools_created = 0
        self.maps = 0
        self._closed = False

    def map(self, fn, tasks):
        self.maps += 1
        return [fn(t) for t in tasks]

    def close(self):
        self._closed = True


class TestSupervisorUnit:
    def _sup(self, executor=None, **kw):
        from repro.serve.resilience import ExecutorSupervisor

        clock = _Clock()
        kw.setdefault("threshold", 2)
        kw.setdefault("backoff_s", 1.0)
        kw.setdefault("max_backoff_s", 4.0)
        kw.setdefault("step_down_after", 0)
        sup = ExecutorSupervisor(executor or _FakeExecutor(),
                                 clock=clock, **kw)
        return sup, clock

    def test_closed_open_half_open_closed_cycle(self):
        from repro.serve import Overloaded

        sup, clock = self._sup()
        assert sup.on_dispatch() == "ok"
        assert sup.on_break() == "rewarm"  # isolated: PR 7 semantics
        assert sup.state == "closed"
        assert sup.on_break() == "opened"  # threshold=2 consecutive
        assert sup.state == "open"
        with pytest.raises(Overloaded) as err:
            sup.on_submit()
        assert 0 < err.value.retry_after_s <= 1.0
        with pytest.raises(Overloaded):
            sup.on_dispatch()
        clock.now = 1.1  # backoff elapsed
        sup.on_submit()  # allowed to queue now
        assert sup.on_dispatch() == "probe"
        assert sup.state == "half_open"
        assert sup.on_break() == "reopened"  # probe failed
        assert sup.state == "open"
        assert sup.retry_after_s() == pytest.approx(2.0)  # doubled
        clock.now = 3.2
        assert sup.on_dispatch() == "probe"
        sup.on_success()
        assert sup.state == "closed"
        assert sup.consecutive_breaks == 0
        assert sup.retry_after_s() == 0.0
        # Backoff reset: the next opening starts from 1s again.
        sup.on_break(), sup.on_break()
        assert sup.retry_after_s() == pytest.approx(1.0)

    def test_success_resets_the_consecutive_count(self):
        sup, _ = self._sup(threshold=3)
        sup.on_break(), sup.on_break()
        sup.on_success()  # a healthy barrier in between
        assert sup.on_break() == "rewarm"  # count restarted, not "opened"
        assert sup.state == "closed"

    def test_backoff_is_capped(self):
        sup, clock = self._sup(threshold=1, backoff_s=1.0, max_backoff_s=4.0)
        sup.on_break()
        for i in range(5):  # probe-fail repeatedly
            clock.now += 10.0
            assert sup.on_dispatch() == "probe"
            sup.on_break()
        assert sup.retry_after_s() <= 4.0

    def test_step_down_walks_remote_processes_serial(self):
        """The degradation chain: enough consecutive openings swap the
        backend for the next more conservative one, with a clean breaker
        each time, and `serial` is the floor."""
        sup, clock = self._sup(_FakeExecutor(name="remote"),
                               threshold=1, step_down_after=1)
        try:
            assert sup.on_break() == "opened"
            clock.now += 2.0
            assert sup.on_dispatch() == "probe"
            assert sup.on_break() == "stepped_down"
            assert sup.backend == "processes"
            assert sup.state == "closed"  # the new backend starts clean
            assert sup.step_downs == [("remote", "processes")]

            assert sup.on_break() == "opened"
            clock.now += 2.0
            assert sup.on_dispatch() == "probe"
            assert sup.on_break() == "stepped_down"
            assert sup.backend == "serial"
            assert sup.step_downs == [("remote", "processes"),
                                      ("processes", "serial")]

            # serial is the floor: the cycle keeps open/probing, no swap.
            assert sup.on_break() == "opened"
            clock.now += 2.0
            assert sup.on_dispatch() == "probe"
            assert sup.on_break() == "reopened"
            assert sup.backend == "serial"
        finally:
            sup.close()

    def test_pools_created_total_spans_step_downs(self):
        fake = _FakeExecutor(name="processes")
        fake.pools_created = 7
        sup, clock = self._sup(fake, threshold=1, step_down_after=1)
        try:
            sup.on_break()
            clock.now += 2.0
            sup.on_dispatch()
            assert sup.on_break() == "stepped_down"
            assert fake._closed  # the retired backend was released
            # The retired backend's pools still count toward the total.
            assert sup.pools_created_total >= 7
        finally:
            sup.close()

    def test_rewarm_marks_the_pool_warm(self):
        fake = _FakeExecutor()
        sup, _ = self._sup(fake)
        assert sup.pool_warm is False
        assert sup.ready() == (False, ["worker pool is not warm"])
        sup.rewarm()
        assert fake.maps == 1
        assert sup.pool_warm is True
        assert sup.ready() == (True, [])


# --------------------------------------------------------------------- #
# remote degradation observability (the PR 6 seam, surfaced)
# --------------------------------------------------------------------- #
class TestRemoteDegradationObservability:
    def test_remote_executor_stats_expose_the_fallback(self, monkeypatch):
        """RemoteExecutor.stats() records the remote→processes fallback:
        degraded flag, event count, and the fallback backend's stats."""
        from chaos import square
        from repro.dist.remote import RemoteDegradedWarning, RemoteExecutor

        monkeypatch.setenv("REPRO_REMOTE_SPAWN", "0")
        ex = RemoteExecutor(max_workers=2, connect_timeout=0.2)
        try:
            assert ex.stats()["degraded"] is False
            assert ex.stats()["fallback_events"] == 0
            with pytest.warns(RemoteDegradedWarning):
                assert ex.map(square, [1, 2, 3]) == [1, 4, 9]
            stats = ex.stats()
            assert stats["backend"] == "remote"
            assert stats["degraded"] is True
            assert stats["fallback_events"] == 1
            assert stats["fallback"]["backend"] == "processes"
        finally:
            ex.close()

    def test_statz_surfaces_remote_degradation_when_serving(
            self, monkeypatch):
        """Serving over --executor remote with no fleet: the boot warm-up
        degrades to processes, requests still serve bit-identically, and
        GET /statz shows the whole story."""
        from repro.dist.remote import RemoteDegradedWarning

        monkeypatch.setenv("REPRO_REMOTE_SPAWN", "0")
        monkeypatch.setenv("REPRO_REMOTE_CONNECT_TIMEOUT", "0.3")

        async def main():
            async with serve_harness(
                graphs=DEMO, executor="remote", workers=2,
            ) as (_, client):
                doc = await client.solve(
                    "demo", solver="matching.greedy_maximal", seed=4)
                statz = await client.statz()
                return doc, statz

        with pytest.warns(RemoteDegradedWarning):
            doc, statz = run_async(main())
        assert_matches_reference(doc, reference("matching.greedy_maximal",
                                                4))
        ex = statz["executor"]
        assert ex["backend"] == "remote"
        assert ex["degraded"] is True
        assert ex["fallback_events"] == 1
        assert ex["fallback"]["backend"] == "processes"
        assert statz["breaker"]["backend"] == "remote"
        assert statz["ready"] is True


# --------------------------------------------------------------------- #
# client retries
# --------------------------------------------------------------------- #
class TestClientRetries:
    def test_connect_retry_rides_out_a_late_server(self):
        """retries= with jittered backoff bridges a server that isn't
        listening yet — the reconnect loop tests used to hand-roll."""
        from repro.serve import ReproServer, ServeConfig

        async def main():
            probe = socket.socket()
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
            probe.close()
            client = ServeClient(port=port, retries=8, backoff=0.05)

            async def boot_late():
                await asyncio.sleep(0.4)
                server = ReproServer(ServeConfig(port=port))
                await server.start()
                return server

            boot = asyncio.ensure_future(boot_late())
            started = time.monotonic()
            doc = await client.healthz()
            waited = time.monotonic() - started
            server = await boot
            await server.aclose()
            return doc, waited

        doc, waited = run_async(main())
        assert doc["ok"] is True
        assert waited >= 0.3  # it really did wait through retries

    def test_zero_retries_keeps_the_old_contract(self):
        """Default retries=0: a dead port raises immediately."""
        async def main():
            probe = socket.socket()
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
            probe.close()
            await ServeClient(port=port).healthz()

        with pytest.raises(OSError):
            run_async(main())

    def test_429_retry_honors_the_advisory_delay(self, tmp_path):
        """A retrying client that hits an open breaker sleeps out the
        server's Retry-After and lands exactly on the successful probe."""
        with chaos(tmp_path, kill=True):  # latch: one kill, then clean
            async def main():
                async with serve_harness(
                    graphs=DEMO, breaker_threshold=1,
                    breaker_backoff_ms=300.0, **PROC,
                ) as (server, client):
                    with pytest.raises(ServeClientError):
                        await client.solve(
                            "demo", solver="matching.greedy_maximal", seed=0)
                    # Breaker is open.  A non-retrying probe proves it...
                    with pytest.raises(ServeClientError) as err:
                        await client.solve(
                            "demo", solver="matching.greedy_maximal", seed=6)
                    assert err.value.status == 429
                    # ...and a retrying client waits it out and succeeds.
                    patient = ServeClient(port=server.port, retries=4,
                                          backoff=0.05)
                    started = time.monotonic()
                    doc = await patient.solve(
                        "demo", solver="matching.greedy_maximal", seed=6)
                    waited = time.monotonic() - started
                    statz = await client.statz()
                    return err.value, doc, waited, statz

            exc, doc, waited, statz = run_async(main())
        assert exc.retry_after is not None and exc.retry_after > 0
        assert_matches_reference(doc, reference("matching.greedy_maximal",
                                                6))
        assert waited >= 0.1  # it slept on the advisory delay
        assert statz["breaker"]["state"] == "closed"
        assert statz["breaker"]["rejected"] >= 2


# --------------------------------------------------------------------- #
# drain: SIGTERM with a non-empty queue
# --------------------------------------------------------------------- #
class TestDrain:
    def test_drain_flushes_queued_requests_to_completion(self):
        """A healthy drain doesn't drop queued work: entries still inside
        the batch window are flushed early and answered; only *new* work
        is refused (503 shutting_down)."""
        async def main():
            async with serve_harness(
                graphs=DEMO, batch_window_ms=400.0,
            ) as (server, client):
                futs = [asyncio.ensure_future(client.solve(
                    "demo", solver="matching.greedy_maximal", seed=s))
                    for s in range(2)]
                await asyncio.sleep(0.1)  # queued; window is 400 ms
                await server.batcher.drain()
                docs = await asyncio.gather(*futs)
                with pytest.raises(ServeClientError) as err:
                    await client.solve(
                        "demo", solver="matching.greedy_maximal", seed=9)
                return docs, err.value

        docs, refused = run_async(main())
        for seed, doc in enumerate(docs):
            assert_matches_reference(
                doc, reference("matching.greedy_maximal", seed))
        assert refused.status == 503
        assert refused.code == "shutting_down"

    def test_drain_503s_queued_work_when_the_breaker_is_open(
            self, tmp_path):
        """Draining with the breaker open: queued requests can never be
        dispatched, so they get structured 503s instead of hanging until
        a probe that will never come."""
        with chaos(tmp_path, kill=True, latch=False):
            async def main():
                async with serve_harness(
                    graphs=DEMO + (("alt", GRAPH_SPEC, GRAPH_SEED),),
                    batch_window_ms=500.0, max_batch=2,
                    breaker_threshold=1, breaker_backoff_ms=20000.0,
                    **PROC,
                ) as (server, client):
                    # One request queued on 'alt' (window 500 ms: pending).
                    queued = asyncio.ensure_future(client.solve(
                        "alt", solver="matching.greedy_maximal", seed=0))
                    await asyncio.sleep(0.05)
                    # Two on 'demo' hit max_batch → immediate flush → the
                    # kill-storm breaks the pool → breaker opens.
                    broken = await asyncio.gather(
                        client.solve("demo",
                                     solver="matching.greedy_maximal",
                                     seed=1),
                        client.solve("demo",
                                     solver="matching.greedy_maximal",
                                     seed=2),
                        return_exceptions=True,
                    )
                    await server.aclose()  # SIGTERM path; idempotent
                    outcome = await asyncio.gather(
                        queued, return_exceptions=True)
                    return broken, outcome[0]

            broken, queued_outcome = run_async(main())
        for exc in broken:
            assert isinstance(exc, ServeClientError)
            assert exc.code == "worker_pool_broken"
        assert isinstance(queued_outcome, ServeClientError)
        assert queued_outcome.status == 503
        assert queued_outcome.code == "shutting_down"
