"""Hypothesis property-based tests on the core data structures and the
paper's structural invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.bipartite import BipartiteGraph
from repro.graph.edgelist import Graph
from repro.graph.partition import random_k_partition
from repro.graph.validation import check_graph, check_partition
from repro.utils.arrays import dedupe_edges, edge_keys, isin_mask

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# --------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------- #
@st.composite
def graphs(draw, max_n=30, max_m=80):
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ),
            min_size=m,
            max_size=m,
        )
    )
    return Graph(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2))


@st.composite
def bipartite_graphs(draw, max_side=20, max_m=60):
    nl = draw(st.integers(1, max_side))
    nr = draw(st.integers(1, max_side))
    m = draw(st.integers(0, max_m))
    left = draw(st.lists(st.integers(0, nl - 1), min_size=m, max_size=m))
    right = draw(st.lists(st.integers(0, nr - 1), min_size=m, max_size=m))
    return BipartiteGraph.from_pairs(nl, nr, left, right)


# --------------------------------------------------------------------- #
# graph substrate invariants
# --------------------------------------------------------------------- #
@SETTINGS
@given(graphs())
def test_graph_construction_invariants(g):
    ok, msg = check_graph(g)
    assert ok, msg
    assert int(g.degrees.sum()) == 2 * g.n_edges


@SETTINGS
@given(graphs())
def test_dedupe_idempotent(g):
    once = dedupe_edges(g.edges, g.n_vertices)
    twice = dedupe_edges(once, g.n_vertices)
    np.testing.assert_array_equal(once, twice)


@SETTINGS
@given(graphs())
def test_adjacency_roundtrip(g):
    """Edges reconstructed from CSR equal the original edge set."""
    rebuilt = []
    for v in range(g.n_vertices):
        for u in g.neighbors(v).tolist():
            if v < u:
                rebuilt.append((v, u))
    rebuilt_arr = np.asarray(sorted(rebuilt), dtype=np.int64).reshape(-1, 2)
    keys_a = set(edge_keys(g.edges, g.n_vertices).tolist()) if g.n_edges else set()
    keys_b = set(
        edge_keys(rebuilt_arr, g.n_vertices).tolist()
    ) if rebuilt_arr.size else set()
    assert keys_a == keys_b


@SETTINGS
@given(graphs(), st.integers(1, 6), st.integers(0, 2**31 - 1))
def test_partition_reassembly(g, k, seed):
    part = random_k_partition(g, k, seed)
    ok, msg = check_partition(part)
    assert ok, msg


@SETTINGS
@given(graphs())
def test_union_is_idempotent(g):
    assert g.union(g) == g


@SETTINGS
@given(graphs())
def test_without_all_vertices_empties(g):
    h = g.without_vertices(np.arange(g.n_vertices))
    assert h.n_edges == 0


# --------------------------------------------------------------------- #
# matching invariants
# --------------------------------------------------------------------- #
@SETTINGS
@given(bipartite_graphs())
def test_hk_equals_augmenting(g):
    from repro.matching.augmenting import augmenting_path_matching
    from repro.matching.hopcroft_karp import hopcroft_karp
    from repro.matching.verify import is_matching

    a = hopcroft_karp(g)
    b = augmenting_path_matching(g)
    assert is_matching(g, a)
    assert a.shape[0] == b.shape[0]


@SETTINGS
@given(bipartite_graphs())
def test_blossom_equals_hk_on_bipartite(g):
    from repro.matching.blossom import blossom_maximum_matching
    from repro.matching.hopcroft_karp import hopcroft_karp

    assert blossom_maximum_matching(g).shape[0] == hopcroft_karp(g).shape[0]


@SETTINGS
@given(graphs(), st.integers(0, 2**31 - 1))
def test_maximal_is_half_of_maximum(g, seed):
    from repro.matching.blossom import blossom_maximum_matching
    from repro.matching.maximal import greedy_maximal_matching

    maximal = greedy_maximal_matching(g, order="random", rng=seed)
    maximum = blossom_maximum_matching(g)
    assert maximal.shape[0] <= maximum.shape[0]
    assert 2 * maximal.shape[0] >= maximum.shape[0]


@SETTINGS
@given(bipartite_graphs())
def test_konig_duality(g):
    """König: min-VC size == max-matching size, and the cover is feasible."""
    from repro.cover.konig import konig_cover
    from repro.cover.verify import is_vertex_cover
    from repro.matching.hopcroft_karp import hopcroft_karp

    cover = konig_cover(g)
    assert is_vertex_cover(g, cover)
    assert cover.shape[0] == hopcroft_karp(g).shape[0]


@SETTINGS
@given(graphs())
def test_cover_at_least_matching(g):
    """Weak LP duality: any vertex cover ≥ any matching."""
    from repro.cover.two_approx import matching_based_cover
    from repro.cover.verify import is_vertex_cover
    from repro.matching.blossom import blossom_maximum_matching

    cover = matching_based_cover(g, rng=0)
    assert is_vertex_cover(g, cover)
    assert cover.shape[0] >= blossom_maximum_matching(g).shape[0]


# --------------------------------------------------------------------- #
# coreset pipeline invariants
# --------------------------------------------------------------------- #
@SETTINGS
@given(bipartite_graphs(max_side=15, max_m=40), st.integers(1, 5),
       st.integers(0, 2**31 - 1))
def test_matching_protocol_always_valid(g, k, seed):
    from repro.core.protocols import matching_coreset_protocol
    from repro.dist.coordinator import run_simultaneous
    from repro.matching.verify import is_matching

    part = random_k_partition(g, k, seed)
    res = run_simultaneous(matching_coreset_protocol(), part, seed)
    assert is_matching(g, res.output)


@SETTINGS
@given(bipartite_graphs(max_side=15, max_m=40), st.integers(1, 5),
       st.integers(0, 2**31 - 1))
def test_vc_protocol_always_feasible(g, k, seed):
    from repro.core.protocols import vertex_cover_coreset_protocol
    from repro.cover.verify import is_vertex_cover
    from repro.dist.coordinator import run_simultaneous

    part = random_k_partition(g, k, seed)
    res = run_simultaneous(vertex_cover_coreset_protocol(k=k), part, seed)
    assert is_vertex_cover(g, res.output)


@SETTINGS
@given(bipartite_graphs(max_side=15, max_m=40), st.integers(2, 5),
       st.integers(0, 2**31 - 1))
def test_grouped_vc_always_feasible(g, k, seed):
    from repro.core.protocols import grouped_vertex_cover_protocol
    from repro.cover.verify import is_vertex_cover
    from repro.dist.coordinator import run_simultaneous

    part = random_k_partition(g, k, seed)
    res = run_simultaneous(
        grouped_vertex_cover_protocol(k=k, alpha=8.0), part, seed
    )
    assert is_vertex_cover(g, res.output)


@SETTINGS
@given(graphs(max_n=20, max_m=40), st.integers(1, 4), st.integers(0, 2**31 - 1))
def test_vc_coreset_piece_cover_property(g, k, seed):
    """Per-piece invariant: fixed ∪ cover(residual) covers the piece."""
    from repro.core.vc_coreset import vc_coreset
    from repro.cover.two_approx import matching_based_cover
    from repro.cover.verify import is_vertex_cover

    part = random_k_partition(g, k, seed)
    for i in range(k):
        piece = part.piece(i)
        result = vc_coreset(piece, k=k)
        cover = np.unique(np.concatenate([
            result.fixed_vertices,
            matching_based_cover(result.residual, rng=seed),
        ])) if result.fixed_vertices.size or result.residual.n_edges else \
            np.zeros(0, dtype=np.int64)
        assert is_vertex_cover(piece, cover)


@SETTINGS
@given(st.integers(2, 40), st.integers(1, 39), st.integers(0, 2**31 - 1))
def test_hvp_protocol_never_lies(universe, t_size, seed):
    """If the subsample protocol reports success, u* really is in X."""
    from repro.lowerbounds.hvp import play_subsample_protocol, sample_hvp

    if t_size >= universe:
        t_size = universe - 1
    inst = sample_hvp(universe, t_size, seed)
    ok, size = play_subsample_protocol(inst, 3, seed)
    assert size <= 3 + 1
