"""Tests for the experiment harness and tiny-scale smoke runs of every
experiment table (the full-scale runs live in benchmarks/).

Trial helpers are module-level (never closures) so this file keeps passing
when the whole suite runs under ``REPRO_EXECUTOR=processes`` — the harness
now resolves its default backend from the environment, and the processes
backend pickles every trial into a worker.
"""

import json

import numpy as np
import pytest

from repro.experiments.harness import ExperimentTable, run_trials
from repro.experiments import tables


def _constant_trial(s):
    return {"x": 1.0, "y": 2.0}


def _uniform_trial(s):
    return {"v": float(np.random.default_rng(s).random())}


def _inconsistent_trial(s):
    # Child seeds carry their trial index in the spawn key, so the metric
    # set differs between trials on any backend (no shared state needed).
    return {"a": 1.0} if s.spawn_key[-1] == 0 else {"b": 1.0}


class TestHarness:
    def test_table_add_and_format(self):
        t = ExperimentTable("T", "desc", ["a", "b"])
        t.add_row(a=1, b=2.5)
        text = t.format()
        assert "T" in text and "2.5" in text
        assert t.column("a") == [1]

    def test_missing_column_rejected(self):
        t = ExperimentTable("T", "d", ["a", "b"])
        with pytest.raises(ValueError, match="missing"):
            t.add_row(a=1)

    def test_table_to_dict_and_json(self):
        t = ExperimentTable("T", "desc", ["a", "b"])
        t.add_row(a=np.int64(1), b=np.float64(2.5))
        doc = json.loads(t.to_json())
        assert doc["name"] == "T" and doc["columns"] == ["a", "b"]
        assert doc["rows"] == [{"a": 1, "b": 2.5}]

    def test_run_trials_stacks(self):
        out = run_trials(_constant_trial, 3, seed=0)
        np.testing.assert_array_equal(out["x"], [1, 1, 1])

    def test_run_trials_independent_seeds(self):
        out = run_trials(_uniform_trial, 4, 0)
        assert len(set(out["v"].tolist())) == 4

    def test_run_trials_reproducible(self):
        a = run_trials(_uniform_trial, 3, seed=5)
        b = run_trials(_uniform_trial, 3, seed=5)
        np.testing.assert_array_equal(a["v"], b["v"])

    def test_inconsistent_metrics_rejected(self):
        with pytest.raises(ValueError, match="inconsistent"):
            run_trials(_inconsistent_trial, 2, 0)

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError):
            run_trials(_constant_trial, 0, 0)


class TestExperimentShapes:
    """Tiny-scale runs asserting each experiment's *qualitative* claim.

    These are the paper's headline shapes, so they double as regression
    tests for the whole pipeline.
    """

    def test_e1_ratio_bounded(self):
        t = tables.e1_matching_coreset(n_values=(600,), k_values=(4,),
                                       n_trials=2)
        assert all(r <= 9 for r in t.column("ratio_max"))

    def test_e2_separation(self):
        t = tables.e2_maximal_coreset_bad(k_values=(4, 16), width=24,
                                          n_trials=2)
        bad = t.column("maximal_ratio")
        good = t.column("maximum_ratio")
        assert bad[1] > bad[0] * 2  # grows with k
        assert max(good) < 2  # Theorem 1 coreset flat

    def test_e3_log_bound(self):
        import math

        t = tables.e3_vc_coreset(n_values=(1000,), k_values=(4,), n_trials=2)
        assert all(t.column("feasible"))
        assert all(
            r <= 4 * math.log2(1000) for r in t.column("ratio_max")
        )

    def test_e4_separation(self):
        t = tables.e4_minvc_coreset_bad(k_values=(4, 16), n_stars=24,
                                        n_trials=2)
        bad = t.column("minvc_ratio")
        assert bad[1] > bad[0] * 1.5
        assert max(t.column("peeling_ratio")) < 4

    def test_e5_threshold(self):
        t = tables.e5_matching_size_lb(
            n=1500, alpha=5, k=5, budget_factors=(0.1, 20.0), n_trials=2
        )
        ratios = t.column("ratio_mean")
        assert ratios[0] > 5  # starved budget fails alpha
        assert ratios[1] < 5  # generous budget beats alpha

    def test_e6_threshold(self):
        t = tables.e6_vc_size_lb(
            n=1500, alpha=5, k=5, budget_factors=(0.02, 4.0), n_trials=3
        )
        feas = t.column("p_feasible")
        assert feas[0] < 0.5
        assert feas[1] == 1.0

    def test_e7_contrast(self):
        t = tables.e7_random_vs_adversarial(k_values=(6,), n_hidden_per_k=8,
                                            n_trials=2)
        row = t.rows[0]
        assert row["adversarial_ratio"] > 2 * row["random_ratio"]

    def test_e8_round_counts(self):
        t = tables.e8_mapreduce_rounds(n=600, n_trials=2)
        by_name = {r["algorithm"]: r for r in t.rows}
        assert by_name["coreset-2round"]["rounds_mean"] == 2
        assert by_name["coreset-prerandomized"]["rounds_mean"] == 1
        assert by_name["filtering[46]"]["rounds_mean"] >= 2
        assert by_name["filtering[46]"]["ratio_mean"] <= 2.1

    def test_e9_bits_scale(self):
        t = tables.e9_subsampled_matching(
            n=1600, k=4, alpha_values=(2.0, 8.0), n_trials=2
        )
        bits = t.column("total_bits_mean")
        assert bits[1] < bits[0] / 3  # superlinear decay in alpha

    def test_e10_feasible(self):
        t = tables.e10_grouped_vc(n=1200, k=4, alpha_values=(16.0,),
                                  n_trials=2)
        assert all(t.column("feasible"))

    def test_e11_constants(self):
        t = tables.e11_induced_matching(n_values=(4000,), n_trials=2)
        row = t.rows[0]
        assert abs(row["induced_density_mean"] - row["exact_theory"]) < 0.03
        assert row["induced_density_mean"] > row["lemma_a3_bound"]

    def test_e12_weight_ratio(self):
        t = tables.e12_weighted_matching(n=600, k=4, n_trials=2)
        assert all(r < 3 for r in t.column("weight_ratio"))

    def test_e13_below_naive(self):
        t = tables.e13_communication_scaling(n=800, k_values=(4,), n_trials=2)
        row = t.rows[0]
        assert row["matching_total_bits"] < row["naive_total_bits"]
        assert row["vc_total_bits"] <= row["naive_total_bits"]

    def test_e14_dynamics(self):
        t = tables.e14_greedymatch_dynamics(n=1000, k=6, n_trials=2)
        row = t.rows[0]
        assert row["prefix_deviation_max"] < 0.15
        assert row["final_ratio"] < 9

    def test_e15_all_variants_run(self):
        t = tables.e15_ablation(n=600, k=4, n_trials=2)
        assert len(t.rows) == 5
        by_name = {r["variant"]: r for r in t.rows}
        assert by_name["send-everything"]["ratio_mean"] == 1.0
