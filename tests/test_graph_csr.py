"""Tests for repro.graph.csr.CSRAdjacency."""

import numpy as np
import pytest

from repro.graph.csr import CSRAdjacency
from repro.graph.edgelist import Graph


class TestConstruction:
    def test_empty(self):
        adj = CSRAdjacency.from_edges(4, np.zeros((0, 2), dtype=np.int64))
        assert adj.n_vertices == 4
        assert adj.indices.shape == (0,)
        np.testing.assert_array_equal(adj.degrees, [0, 0, 0, 0])

    def test_symmetric(self):
        adj = CSRAdjacency.from_edges(3, np.array([[0, 1], [1, 2]]))
        np.testing.assert_array_equal(adj.neighbors(0), [1])
        np.testing.assert_array_equal(adj.neighbors(1), [0, 2])
        np.testing.assert_array_equal(adj.neighbors(2), [1])

    def test_rows_sorted(self, rng):
        from repro.graph.generators import gnp

        g = gnp(50, 0.2, rng)
        adj = g.adjacency
        for v in range(50):
            row = adj.neighbors(v)
            assert (np.diff(row) > 0).all()

    def test_total_directed_edges(self, rng):
        from repro.graph.generators import gnp

        g = gnp(30, 0.3, rng)
        assert g.adjacency.indices.shape[0] == 2 * g.n_edges


class TestAccessors:
    def test_degree_matches_graph_degrees(self, rng):
        from repro.graph.generators import gnp

        g = gnp(40, 0.15, rng)
        adj = g.adjacency
        np.testing.assert_array_equal(adj.degrees, g.degrees)
        for v in range(g.n_vertices):
            assert adj.degree(v) == g.degrees[v]

    def test_out_of_range_raises(self):
        adj = CSRAdjacency.from_edges(3, np.array([[0, 1]]))
        with pytest.raises(IndexError):
            adj.neighbors(3)
        with pytest.raises(IndexError):
            adj.degree(-1)

    def test_neighbors_view_readonly(self):
        g = Graph(3, [(0, 1)])
        row = g.neighbors(0)
        with pytest.raises(ValueError):
            row[0] = 7

    def test_consistency_with_dict_construction(self, rng):
        """Compare against a straightforward dict-of-sets adjacency."""
        from repro.graph.generators import gnp

        g = gnp(60, 0.1, rng)
        ref: dict[int, set] = {v: set() for v in range(60)}
        for u, v in g.edges.tolist():
            ref[u].add(v)
            ref[v].add(u)
        for v in range(60):
            assert set(g.neighbors(v).tolist()) == ref[v]
