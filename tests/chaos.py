"""Fault-injection helpers for the remote-executor chaos tests.

The worker loop in :mod:`repro.dist.remote` carries env-triggered hooks
(``REPRO_CHAOS_KILL`` / ``REPRO_CHAOS_HANG`` / ``REPRO_CHAOS_SLOW_MS``)
checked once per task.  This module is the test-side driver: it arms those
variables in the *coordinator's* environment — locally-spawned workers
inherit it — scoped to a ``with`` block so no chaos leaks into later
tests.

The latch is what makes the injected faults precise instead of chaotic:
``REPRO_CHAOS_LATCH`` points at a path workers claim with
``O_CREAT | O_EXCL``, so exactly one process fires the fault exactly once
— "kill one worker mid-round" means one kill, with every replacement
running clean.  Pass ``latch=False`` to make *every* worker misbehave
(the retry-exhaustion tests).

Also home to the module-level task functions the remote tests map: a
remote worker *imports* its task function (pickle-by-reference, like
spawn-based multiprocessing), so tasks must live in a module both sides
can import — this one.
"""

from __future__ import annotations

import asyncio
import os
import time
from contextlib import asynccontextmanager, contextmanager
from typing import Any, AsyncIterator, Iterator, Optional, Tuple

__all__ = [
    "chaos",
    "boom",
    "overload_burst",
    "run_async",
    "serve_harness",
    "sleep_ms",
    "square",
    "worker_pid",
]


@contextmanager
def chaos(
    tmp_path,
    *,
    kill: bool = False,
    hang: bool = False,
    slow_ms: Optional[int] = None,
    after: int = 1,
    latch: bool = True,
    hang_s: Optional[float] = None,
    exit_code: Optional[int] = None,
) -> Iterator[None]:
    """Arm the worker chaos hooks for the duration of the block.

    Parameters mirror the env protocol: ``kill`` makes the armed worker
    ``os._exit`` (``exit_code``, default 17) before executing its
    ``after``-th task; ``hang`` makes it sleep ``hang_s`` seconds
    (default: effectively forever) instead; ``slow_ms`` merely delays it.
    With ``latch=True`` (the default) the fault fires in exactly one
    worker process, once; the latch file lives under ``tmp_path``.
    """
    previous = {
        key: os.environ.get(key)
        for key in (
            "REPRO_CHAOS_KILL", "REPRO_CHAOS_HANG", "REPRO_CHAOS_SLOW_MS",
            "REPRO_CHAOS_AFTER", "REPRO_CHAOS_LATCH", "REPRO_CHAOS_HANG_S",
            "REPRO_CHAOS_EXIT",
        )
    }

    def _set(key: str, value: Optional[str]) -> None:
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value

    _set("REPRO_CHAOS_KILL", "1" if kill else None)
    _set("REPRO_CHAOS_HANG", "1" if hang else None)
    _set("REPRO_CHAOS_SLOW_MS", str(slow_ms) if slow_ms else None)
    _set("REPRO_CHAOS_AFTER", str(after))
    _set("REPRO_CHAOS_LATCH",
         str(tmp_path / "chaos.latch") if latch else None)
    _set("REPRO_CHAOS_HANG_S", str(hang_s) if hang_s is not None else None)
    _set("REPRO_CHAOS_EXIT",
         str(exit_code) if exit_code is not None else None)
    try:
        yield
    finally:
        for key, value in previous.items():
            _set(key, value)


# --------------------------------------------------------------------- #
# the serving test harness
# --------------------------------------------------------------------- #
def run_async(coro):
    """Drive one async test body (no pytest-asyncio in this toolchain)."""
    return asyncio.run(coro)


@asynccontextmanager
async def serve_harness(
    *, graphs: Tuple[Tuple[str, str, int], ...] = (), **config: Any
) -> AsyncIterator[Tuple[Any, Any]]:
    """Boot a :class:`~repro.serve.ReproServer` on an ephemeral port.

    Yields ``(server, client)`` and tears the server down afterwards.
    ``graphs`` preloads ``(graph_id, source_spec, seed)`` triples;
    ``config`` keywords go straight into
    :class:`~repro.serve.ServeConfig` (``port`` defaults to 0 → the OS
    picks a free port, so parallel test runs never collide).

    Order matters for chaos tests: the worker pool spawns inside this
    context manager's first line, so arm :func:`chaos` *around* the
    harness — pool workers inherit the armed environment — and keep the
    block open through recovery assertions (replacement workers carry
    the armed env too; only the claimed latch keeps them clean).
    """
    from repro.serve import ReproServer, ServeClient, ServeConfig

    server = ReproServer(ServeConfig(**config))
    await server.start()
    try:
        for graph_id, source, seed in graphs:
            server.add_graph(graph_id, source, seed=seed)
        yield server, ServeClient(port=server.port)
    finally:
        await server.aclose()


async def overload_burst(
    client: Any,
    graph_id: str,
    n: int,
    *,
    solver: str = "matching.greedy_maximal",
    k: Optional[int] = None,
    seed_of=None,
    **fields: Any,
):
    """The overload injector: fire ``n`` concurrent solves, classify.

    All ``n`` requests launch in one ``gather`` (near-simultaneous
    arrival — the sustained-overload shape the admission tests need) and
    every outcome is bucketed by the server's error taxonomy::

        {"ok": [result docs...], "overloaded": [ServeClientError...],
         "deadline_exceeded": [...], "worker_pool_broken": [...],
         "shutting_down": [...], "other": [anything unexpected]}

    ``seed_of(i)`` picks per-request seeds (default: ``i``), so callers
    can replay any admitted request through in-process ``solve()`` and
    assert bit-identical results.  Extra ``fields`` ride into every
    request body (``deadline_ms=...``, ``params=...``).
    """
    from repro.serve import ServeClientError

    def _seed(i: int) -> int:
        return seed_of(i) if seed_of is not None else i

    async def one(i: int):
        body: dict = {"solver": solver, "seed": _seed(i), **fields}
        if k is not None:
            body["k"] = k
        return await client.solve(graph_id, **body)

    outcomes = await asyncio.gather(*(one(i) for i in range(n)),
                                    return_exceptions=True)
    buckets: dict = {
        "ok": [], "overloaded": [], "deadline_exceeded": [],
        "worker_pool_broken": [], "shutting_down": [], "other": [],
    }
    for outcome in outcomes:
        if isinstance(outcome, dict):
            buckets["ok"].append(outcome)
        elif (isinstance(outcome, ServeClientError)
              and outcome.code in buckets):
            buckets[outcome.code].append(outcome)
        else:
            buckets["other"].append(outcome)
    return buckets


# --------------------------------------------------------------------- #
# picklable-by-reference task functions
# --------------------------------------------------------------------- #
def square(x):
    return x * x


def worker_pid(_):
    return os.getpid()


def boom(x):
    raise ValueError(f"task exploded on purpose: {x}")


def sleep_ms(ms):
    time.sleep(ms / 1000.0)
    return ms
