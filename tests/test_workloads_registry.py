"""Tests for repro.workloads: registry invariants, offline datasets,
partition strategies, and the cache.

Every test in this module runs with ``$REPRO_OFFLINE`` set **and** a
socket-level tripwire, so a workload builder that tries to touch the
network fails the suite rather than silently depending on connectivity.
"""

import pickle
import socket

import numpy as np
import pytest

from repro.graph.bipartite import BipartiteGraph
from repro.graph.capacity import CapacitatedBipartiteGraph, WeightedBipartiteGraph
from repro.workloads import (
    PARTITION_STRATEGIES,
    UnknownWorkloadError,
    all_workloads,
    build_workload,
    fetch_workload,
    get_workload,
    partition_workload,
    workload_ids,
)
from repro.workloads.cache import allow_network, cache_dir
from repro.workloads.datasets import dataset_edges, parse_edge_tsv
from repro.workloads.registry import KINDS


@pytest.fixture(autouse=True)
def offline_guard(monkeypatch, tmp_path):
    """Force offline mode, redirect the cache, and trip on any socket use."""
    monkeypatch.setenv("REPRO_OFFLINE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

    def _blocked(self, *args, **kwargs):
        raise AssertionError("workload code opened a network socket "
                             "while offline")

    monkeypatch.setattr(socket.socket, "connect", _blocked)


class TestRegistryInvariants:
    def test_registry_nonempty_and_kinds_valid(self):
        specs = all_workloads()
        assert len(specs) >= 6
        for spec in specs:
            assert spec.kind in KINDS
            assert spec.description
            assert isinstance(dict(spec.params), dict)

    def test_expected_names_present(self):
        names = set(workload_ids())
        assert {"gmission", "movielens", "ba", "ba_adwords",
                "power_law", "clustered"} <= names

    def test_every_spec_is_picklable(self):
        for spec in all_workloads():
            clone = pickle.loads(pickle.dumps(spec))
            assert clone.name == spec.name
            assert clone.fn is spec.fn  # module-level fn round-trips by ref

    def test_every_workload_is_deterministic_per_seed(self):
        for name in workload_ids():
            g1 = build_workload(name, rng=123)
            g2 = build_workload(name, rng=123)
            g3 = build_workload(name, rng=124)
            assert np.array_equal(g1.edges, g2.edges), name
            if hasattr(g1, "weights"):
                np.testing.assert_array_equal(g1.weights, g2.weights)
            # a different seed must actually change something on every
            # randomized family (dataset loaders at natural size are
            # seed-independent by design)
            if get_workload(name).kind == "synthetic":
                assert not (
                    g1.n_edges == g3.n_edges
                    and np.array_equal(g1.edges, g3.edges)
                ), name

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownWorkloadError, match="available"):
            build_workload("no_such_workload")

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="no parameter"):
            build_workload("ba", rng=0, bogus=3)

    def test_capacitated_flags_match_types(self):
        for spec in all_workloads():
            g = spec.build(rng=5)
            if spec.capacitated:
                assert isinstance(g, CapacitatedBipartiteGraph)
            if spec.weighted:
                assert hasattr(g, "weights")
            assert isinstance(g, BipartiteGraph)


class TestDatasets:
    def test_offline_uses_fixture(self):
        for name in ("gmission", "movielens"):
            data = dataset_edges(name)
            assert data.origin == "fixture"
            assert data.left.size > 100
            assert data.weight.min() > 0

    def test_parse_edge_tsv_formats(self):
        (l, r, w), nl, nr = parse_edge_tsv(
            "# comment\n1\t2\t0.5\n3\t2\t1.5\n"
        )
        assert nl == 2 and nr == 1
        np.testing.assert_allclose(w, [0.5, 1.5])
        (l2, r2, w2), _, _ = parse_edge_tsv("5::9::4.0::123456\n")
        assert w2[0] == 4.0  # movielens :: rows with trailing timestamp
        (l3, r3, w3), _, _ = parse_edge_tsv("0,1\n")
        assert w3[0] == 1.0  # missing weight defaults to 1

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="no edges"):
            parse_edge_tsv("# only comments\n")
        with pytest.raises(ValueError, match="unparsable"):
            parse_edge_tsv("justonefield\n")

    def test_natural_size_round_trip(self):
        data = dataset_edges("gmission")
        g = build_workload("gmission", rng=0)
        assert isinstance(g, WeightedBipartiteGraph)
        assert (g.n_left, g.n_right) == (data.n_left, data.n_right)

    def test_subsample_scaling(self):
        g = build_workload("gmission", rng=3, n_left=40)
        assert g.n_left == 40
        full = build_workload("gmission", rng=3)
        assert g.n_edges < full.n_edges

    def test_degree_replay_scaling(self):
        g = build_workload("movielens", rng=3, n_left=500)
        assert g.n_left == 500
        assert g.n_edges > build_workload("movielens", rng=3).n_edges
        # replay is seeded too
        g2 = build_workload("movielens", rng=3, n_left=500)
        assert np.array_equal(g.edges, g2.edges)
        np.testing.assert_array_equal(g.weights, g2.weights)


class TestCache:
    def test_allow_network_respects_env(self, monkeypatch):
        assert not allow_network()  # fixture sets REPRO_OFFLINE=1
        monkeypatch.setenv("REPRO_OFFLINE", "0")
        assert allow_network()
        monkeypatch.delenv("REPRO_OFFLINE")
        assert allow_network()

    def test_cache_dir_override(self, tmp_path):
        assert cache_dir() == tmp_path / "cache"

    def test_fetch_writes_and_reuses_npz(self):
        from repro.graph.io import load_npz

        path = fetch_workload("ba", seed=7)
        assert path.exists() and path.suffix == ".npz"
        mtime = path.stat().st_mtime_ns
        assert fetch_workload("ba", seed=7) == path
        assert path.stat().st_mtime_ns == mtime  # reused, not rebuilt
        g = load_npz(path)
        assert np.array_equal(g.edges, build_workload("ba", rng=7).edges)

    def test_fetch_capacitated_round_trips(self):
        from repro.graph.io import load_npz

        g = load_npz(fetch_workload("ba_adwords", seed=1))
        assert isinstance(g, CapacitatedBipartiteGraph)
        ref = build_workload("ba_adwords", rng=1)
        np.testing.assert_array_equal(g.capacities, ref.capacities)
        np.testing.assert_array_equal(g.weights, ref.weights)


class TestGraphSpecSyntax:
    def test_workload_spec_resolves(self):
        from repro.solve.graphs import load_graph

        g = load_graph("workload:ba:u=50,v=100,p=2", rng=4)
        assert isinstance(g, BipartiteGraph)
        assert (g.n_left, g.n_right) == (50, 100)

    def test_workload_spec_matches_direct_build(self):
        from repro.solve.graphs import load_graph

        via_spec = load_graph("workload:power_law:u=80,v=80", rng=9)
        direct = build_workload("power_law", rng=9, u=80, v=80)
        assert np.array_equal(via_spec.edges, direct.edges)

    def test_workload_spec_errors(self):
        from repro.solve.graphs import load_graph

        with pytest.raises(ValueError, match="needs a name"):
            load_graph("workload:", rng=0)
        with pytest.raises(UnknownWorkloadError):
            load_graph("workload:nope", rng=0)


class TestPartitionStrategies:
    def test_all_strategies_cover_all_edges(self):
        g = build_workload("power_law", rng=2)
        for strategy in PARTITION_STRATEGIES:
            part = partition_workload(g, 4, strategy, rng=5)
            assert part.assignment.shape == (g.n_edges,)
            assert part.assignment.min() >= 0
            assert part.assignment.max() < 4
            assert int(part.piece_sizes().sum()) == g.n_edges

    def test_adversarial_strategies_are_deterministic(self):
        g = build_workload("ba", rng=2)
        for strategy in ("degree_sorted", "community"):
            a = partition_workload(g, 4, strategy, rng=0).assignment
            b = partition_workload(g, 4, strategy, rng=999).assignment
            np.testing.assert_array_equal(a, b)

    def test_degree_sorted_concentrates_hubs(self):
        g = build_workload("power_law", rng=7)
        part = partition_workload(g, 4, "degree_sorted")
        left = g.edges[:, 0]
        degree = np.bincount(left, minlength=g.n_vertices)
        hub = int(np.argmax(degree))
        machines = np.unique(part.assignment[left == hub])
        # all of the top hub's edges land on one or two adjacent chunks
        assert machines.size <= 2

    def test_unknown_strategy_raises(self):
        g = build_workload("ba", rng=0, u=20, v=20, p=2.0)
        with pytest.raises(ValueError, match="unknown partition strategy"):
            partition_workload(g, 4, "zigzag")
