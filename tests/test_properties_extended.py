"""Second round of property-based tests: streaming, weighted graphs,
kernels — plus meta-tests tying the experiment suite together."""

from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.edgelist import Graph
from repro.graph.weights import WeightedGraph

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, max_n=25, max_m=60):
    n = draw(st.integers(2, max_n))
    m = draw(st.integers(0, max_m))
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=m, max_size=m,
        )
    )
    return Graph(n, np.asarray(pairs, dtype=np.int64).reshape(-1, 2))


@st.composite
def weighted_graphs(draw, max_n=20, max_m=40):
    g = draw(graphs(max_n, max_m))
    weights = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
            min_size=g.n_edges, max_size=g.n_edges,
        )
    )
    return WeightedGraph(
        g.n_vertices, g.edges, np.asarray(weights, dtype=np.float64),
        validated=True,
    )


# --------------------------------------------------------------------- #
# streaming invariants
# --------------------------------------------------------------------- #
@SETTINGS
@given(graphs(), st.integers(0, 2**31 - 1))
def test_streaming_greedy_always_maximal(g, seed):
    from repro.matching.verify import is_maximal_matching
    from repro.streaming import StreamingGreedyMatcher, random_order

    order = random_order(g, seed)
    m = StreamingGreedyMatcher(g.n_vertices).run(g, order)
    assert is_maximal_matching(g, m)


@SETTINGS
@given(graphs(), st.integers(0, 2**31 - 1),
       st.floats(min_value=0.1, max_value=0.9))
def test_two_phase_always_valid_matching(g, seed, frac):
    from repro.matching.verify import is_matching
    from repro.streaming import TwoPhaseStreamingMatcher, random_order

    order = random_order(g, seed)
    m = TwoPhaseStreamingMatcher(g.n_vertices, phase1_fraction=frac).run(
        g, order
    )
    assert is_matching(g, m)


@SETTINGS
@given(graphs(), st.integers(0, 2**31 - 1))
def test_two_phase_at_least_half(g, seed):
    from repro.matching.blossom import blossom_maximum_matching
    from repro.streaming import TwoPhaseStreamingMatcher, random_order

    order = random_order(g, seed)
    m = TwoPhaseStreamingMatcher(g.n_vertices).run(g, order)
    opt = blossom_maximum_matching(g).shape[0]
    # Phase 1 is maximal on the prefix; phase 2 only extends/augments.
    # The matching of the *whole* graph can still hide in the suffix, but
    # any output edge conflicts with ≤ 2 optimal edges:
    assert 2 * m.shape[0] + 2 >= opt  # +2 absorbs prefix boundary effects


# --------------------------------------------------------------------- #
# weighted graph invariants
# --------------------------------------------------------------------- #
@SETTINGS
@given(weighted_graphs())
def test_weight_classes_partition(wg):
    from repro.graph.weights import weight_classes

    classes = weight_classes(wg, epsilon=1.0)
    total = sum(c.graph.n_edges for c in classes)
    assert total == wg.n_edges


@SETTINGS
@given(weighted_graphs())
def test_greedy_weighted_never_exceeds_total(wg):
    from repro.matching.verify import is_matching
    from repro.matching.weighted import greedy_weighted_matching

    m, w = greedy_weighted_matching(wg)
    assert is_matching(wg, m)
    assert w <= wg.total_weight() + 1e-6


@SETTINGS
@given(weighted_graphs(max_n=12, max_m=16))
def test_greedy_weighted_half_of_exact(wg):
    from repro.matching.weighted import (
        exact_weighted_matching,
        greedy_weighted_matching,
    )

    _, greedy_w = greedy_weighted_matching(wg)
    _, opt_w = exact_weighted_matching(wg)
    assert greedy_w >= opt_w / 2 - 1e-9
    assert greedy_w <= opt_w + 1e-9


# --------------------------------------------------------------------- #
# kernel invariants
# --------------------------------------------------------------------- #
@SETTINGS
@given(graphs(max_n=18, max_m=40), st.integers(0, 6))
def test_matching_kernel_preserves_capped_mm(g, k_bound):
    from repro.core.kernel_coreset import matching_kernel
    from repro.matching.blossom import blossom_maximum_matching

    mm = blossom_maximum_matching(g).shape[0]
    kern = matching_kernel(g, k_bound)
    kern_mm = blossom_maximum_matching(kern).shape[0]
    assert kern_mm == min(mm, max(kern_mm, min(mm, k_bound))) or True
    # The precise guarantee: matchings up to the bound survive.
    assert kern_mm >= min(mm, k_bound)
    assert kern_mm <= mm


@SETTINGS
@given(graphs(max_n=18, max_m=40), st.integers(0, 8))
def test_vc_kernel_sound(g, k_bound):
    """forced ∪ cover(residual) always covers; forced ⊆ high degree."""
    from repro.core.kernel_coreset import vc_kernel
    from repro.cover.two_approx import matching_based_cover
    from repro.cover.verify import is_vertex_cover

    forced, residual = vc_kernel(g, k_bound)
    rest = matching_based_cover(residual, rng=0)
    cover = np.unique(np.concatenate([forced, rest])) if (
        forced.size or rest.size
    ) else np.zeros(0, dtype=np.int64)
    assert is_vertex_cover(g, cover)
    if forced.size:
        assert (g.degrees[forced] > k_bound).all()


# --------------------------------------------------------------------- #
# suite meta-tests
# --------------------------------------------------------------------- #
class TestSuiteConsistency:
    def test_every_experiment_has_a_benchmark(self):
        """Each registered experiment is regenerated by some bench_*.py
        file via the registry (DESIGN.md §4 contract)."""
        from repro.experiments.registry import experiment_ids

        bench_dir = Path(__file__).parent.parent / "benchmarks"
        bench_sources = "\n".join(
            p.read_text() for p in bench_dir.glob("bench_*.py")
        )
        for exp_id in experiment_ids():
            assert f'get_experiment("{exp_id}").run(' in bench_sources, (
                f"experiment {exp_id} has no benchmark invocation"
            )

    def test_every_experiment_reachable_from_cli(self):
        from repro.cli import main
        from repro.experiments import tables
        from repro.experiments.registry import experiment_ids

        ids = experiment_ids()
        assert len(ids) == len(tables.__all__)
        assert main(["list-experiments"]) == 0

    def test_design_doc_mentions_all_experiments(self):
        design = (Path(__file__).parent.parent / "DESIGN.md").read_text()
        for i in range(1, 22):
            assert f"E{i}" in design, f"E{i} missing from DESIGN.md"

    def test_examples_are_runnable_modules(self):
        """Every example compiles (no syntax/illegal-import errors)."""
        import py_compile

        examples = Path(__file__).parent.parent / "examples"
        scripts = sorted(examples.glob("*.py"))
        assert len(scripts) >= 3
        for script in scripts:
            py_compile.compile(str(script), doraise=True)
