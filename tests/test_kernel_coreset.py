"""Tests for the footnote-3 exact kernel coresets."""

import numpy as np
import pytest

from repro.core.kernel_coreset import (
    KernelBudgetExceeded,
    exact_matching_kernel_protocol,
    matching_kernel,
    vc_kernel,
)
from repro.dist.coordinator import run_simultaneous
from repro.graph.edgelist import Graph
from repro.graph.generators import (
    bipartite_gnp,
    complete_bipartite,
    planted_matching_gnp,
    star_forest,
)
from repro.graph.partition import (
    adversarial_degree_partition,
    random_k_partition,
)
from repro.matching.api import matching_number


class TestMatchingKernel:
    def test_preserves_small_matchings(self, rng):
        for _ in range(8):
            g = bipartite_gnp(150, 150, 0.001, rng)  # tiny MM
            mm = matching_number(g)
            kern = matching_kernel(g, opt_bound=mm)
            assert matching_number(kern) == mm

    def test_kernel_is_subgraph(self, rng):
        from repro.utils.arrays import isin_mask

        g = bipartite_gnp(60, 60, 0.1, rng)
        kern = matching_kernel(g, 3)
        if kern.n_edges:
            assert isin_mask(kern.edges, g.edges, g.n_vertices).all()

    def test_compresses_dense_graphs(self):
        g = complete_bipartite(50, 50)  # 2500 edges, MM = 50
        kern = matching_kernel(g, opt_bound=5)
        assert kern.n_edges < g.n_edges
        assert matching_number(kern) >= 5

    def test_k_zero(self):
        g = complete_bipartite(5, 5)
        kern = matching_kernel(g, 0)
        # cap = 2: still keeps some edges, trivially preserves size-0.
        assert kern.n_edges >= 1

    def test_empty_graph(self):
        g = Graph(5)
        assert matching_kernel(g, 3) == g

    def test_validation(self):
        with pytest.raises(ValueError):
            matching_kernel(Graph(3), -1)


class TestVCKernel:
    def test_buss_rule(self):
        g = star_forest(3, 20)  # centers have degree 20
        forced, residual = vc_kernel(g, opt_bound=10)
        assert set(forced.tolist()) == {0, 1, 2}
        assert residual.n_edges == 0

    def test_forced_in_every_small_cover(self, rng):
        """Every cover of size ≤ K must contain the forced vertices —
        checked via the exact solver on small instances."""
        from repro.cover.exact import exact_cover

        g = star_forest(2, 8)
        forced, _ = vc_kernel(g, opt_bound=4)
        opt = exact_cover(g)
        assert np.isin(forced, opt).all()

    def test_strict_certifies_large_vc(self, rng):
        g = bipartite_gnp(60, 60, 0.3, rng)  # VC far above 2
        with pytest.raises(KernelBudgetExceeded):
            vc_kernel(g, opt_bound=2, strict=True)

    def test_non_strict_never_raises(self, rng):
        g = bipartite_gnp(40, 40, 0.3, rng)
        forced, residual = vc_kernel(g, opt_bound=2, strict=False)
        assert residual.n_edges <= g.n_edges

    def test_validation(self):
        with pytest.raises(ValueError):
            vc_kernel(Graph(3), -2)


class TestExactKernelProtocol:
    def _instance(self, rng, opt=40, n=1500):
        graph, _ = planted_matching_gnp(opt, n, p=2.0 / opt, rng=rng)
        return graph, matching_number(graph)

    def test_exact_under_random_partition(self, rng):
        graph, mm = self._instance(rng)
        part = random_k_partition(graph, 6, rng)
        res = run_simultaneous(exact_matching_kernel_protocol(mm), part, rng)
        assert res.output.shape[0] == mm

    def test_exact_under_adversarial_partition(self, rng):
        """Unlike Theorem 1's coreset, kernels are partition-oblivious."""
        graph, mm = self._instance(rng)
        part = adversarial_degree_partition(graph, 6)
        res = run_simultaneous(exact_matching_kernel_protocol(mm), part, rng)
        assert res.output.shape[0] == mm

    def test_message_size_independent_of_n(self, rng):
        """Kernel size tracks K, not the (much larger) vertex count."""
        sizes = {}
        for n in (1000, 4000):
            graph, mm = self._instance(rng, opt=30, n=n)
            part = random_k_partition(graph, 4, rng)
            res = run_simultaneous(
                exact_matching_kernel_protocol(30), part, rng
            )
            sizes[n] = res.ledger.total_edges()
        assert sizes[4000] < 4 * sizes[1000]  # ~flat, certainly not ∝ n
