"""Tests for repro.matching.verify."""

import numpy as np
import pytest

from repro.graph.edgelist import Graph
from repro.matching.verify import (
    is_matching,
    is_maximal_matching,
    is_perfect_matching,
    matched_vertices,
    mate_array,
)


class TestMateArray:
    def test_basic(self):
        mate = mate_array(np.array([[0, 2], [1, 3]]), 5)
        assert mate.tolist() == [2, 3, 0, 1, -1]

    def test_empty(self):
        assert mate_array(np.zeros((0, 2)), 3).tolist() == [-1, -1, -1]

    def test_rejects_double_matching(self):
        with pytest.raises(ValueError, match="matched 2 times"):
            mate_array(np.array([[0, 1], [1, 2]]), 3)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            mate_array(np.array([[0, 9]]), 3)


class TestIsMatching:
    def test_valid(self, tiny_graph):
        assert is_matching(tiny_graph, np.array([[0, 1], [2, 3]]))

    def test_shared_endpoint(self, tiny_graph):
        assert not is_matching(tiny_graph, np.array([[0, 1], [1, 2]]))

    def test_non_edge(self, tiny_graph):
        assert not is_matching(tiny_graph, np.array([[0, 3]]))

    def test_self_loop(self, tiny_graph):
        assert not is_matching(tiny_graph, np.array([[1, 1]]))

    def test_out_of_range(self, tiny_graph):
        assert not is_matching(tiny_graph, np.array([[0, 99]]))

    def test_empty_always_valid(self, tiny_graph):
        assert is_matching(tiny_graph, np.zeros((0, 2)))


class TestIsMaximal:
    def test_maximal(self, tiny_graph):
        # (0,1),(2,3),(4,5) covers all vertices of the 6-cycle.
        assert is_maximal_matching(tiny_graph, np.array([[0, 1], [2, 3], [4, 5]]))

    def test_not_maximal(self, tiny_graph):
        assert not is_maximal_matching(tiny_graph, np.array([[0, 1]]))

    def test_invalid_not_maximal(self, tiny_graph):
        assert not is_maximal_matching(tiny_graph, np.array([[0, 1], [1, 2]]))

    def test_empty_on_empty_graph(self):
        assert is_maximal_matching(Graph(4), np.zeros((0, 2)))


class TestIsPerfect:
    def test_perfect_on_cycle(self, tiny_graph):
        assert is_perfect_matching(tiny_graph, np.array([[0, 1], [2, 3], [4, 5]]))

    def test_ignores_isolated_vertices(self):
        g = Graph(4, [(0, 1)])  # 2 and 3 isolated
        assert is_perfect_matching(g, np.array([[0, 1]]))

    def test_not_perfect(self, tiny_graph):
        assert not is_perfect_matching(tiny_graph, np.array([[0, 1], [2, 3]]))


class TestMatchedVertices:
    def test_sorted(self):
        out = matched_vertices(np.array([[5, 2], [0, 3]]))
        np.testing.assert_array_equal(out, [0, 2, 3, 5])
