"""The ``repro solve`` subcommand: listing, running, JSON output, errors."""

import json

import numpy as np
import pytest

from repro.cli import main


class TestList:
    def test_list_enumerates_at_least_ten(self, capsys):
        assert main(["solve", "--list"]) == 0
        out = capsys.readouterr().out
        assert "matching.coreset" in out
        assert "vertex_cover.coreset" in out
        count = int(out.strip().splitlines()[-1].split()[0])
        assert count >= 10

    def test_list_filters_by_problem(self, capsys):
        assert main(["solve", "--list", "--problem", "matching"]) == 0
        out = capsys.readouterr().out
        assert "matching.mapreduce" in out
        assert "vertex_cover" not in out


class TestRun:
    def test_short_solver_name_with_problem(self, capsys):
        code = main(["solve", "planted:n=300", "--problem", "matching",
                     "--solver", "coreset", "--k", "4", "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "solver: matching.coreset" in out
        assert "verified: True" in out

    def test_json_output_parses_and_verifies(self, capsys):
        code = main(["solve", "planted:n=300", "--solver",
                     "vertex_cover.coreset", "--k", "4", "--seed", "1",
                     "--json", "-"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["solver"] == "vertex_cover.coreset"
        assert doc["verified"] is True
        assert doc["problem"] == "vertex_cover"
        assert doc["graph"]["n_vertices"] == 300
        assert doc["solver_meta"]["model"] == "coreset"
        assert "certificate" not in doc

    def test_json_certificate_flag(self, capsys):
        code = main(["solve", "planted:n=200", "--solver",
                     "matching.maximum", "--seed", "0", "--certificate",
                     "--json", "-"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["certificate"]) == doc["size"]

    def test_seeded_runs_reproduce(self, capsys):
        argv = ["solve", "planted:n=300", "--solver", "matching.coreset",
                "--k", "4", "--seed", "9", "--json", "-",
                "--certificate"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["certificate"] == second["certificate"]

    def test_param_override(self, capsys):
        code = main(["solve", "planted:n=300", "--solver",
                     "matching.subsampled_coreset", "--k", "4",
                     "--param", "alpha=8", "--json", "-"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["stats"]["alpha"] == 8

    def test_graph_file_input(self, tmp_path, capsys):
        from repro.graph.generators import bipartite_gnp
        from repro.graph.io import save_npz

        path = tmp_path / "g.npz"
        save_npz(path, bipartite_gnp(60, 60, 0.05,
                                     rng=np.random.default_rng(0)))
        code = main(["solve", str(path), "--solver", "vertex_cover.konig"])
        assert code == 0
        assert "verified: True" in capsys.readouterr().out


class TestErrors:
    def test_missing_arguments(self, capsys):
        assert main(["solve"]) == 2
        assert "GRAPH and --solver" in capsys.readouterr().err

    def test_unknown_solver(self, capsys):
        assert main(["solve", "planted:n=100", "--solver", "nope"]) == 2
        assert "unknown solver" in capsys.readouterr().err

    def test_problem_solver_mismatch(self, capsys):
        assert main(["solve", "planted:n=100", "--problem", "vertex_cover",
                     "--solver", "matching.maximum"]) == 2
        assert "solves matching" in capsys.readouterr().err

    def test_missing_k_is_a_clean_error(self, capsys):
        assert main(["solve", "planted:n=100", "--solver",
                     "matching.coreset"]) == 2
        assert "RunContext.k" in capsys.readouterr().err

    def test_bad_graph_spec(self, capsys):
        assert main(["solve", "bogus:n=10", "--solver",
                     "matching.maximum"]) == 2
        assert "neither an existing file" in capsys.readouterr().err

    def test_bad_param_syntax(self, capsys):
        assert main(["solve", "planted:n=100", "--solver",
                     "matching.maximum", "--param", "oops"]) == 2
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_ambiguous_short_name(self, capsys):
        assert main(["solve", "planted:n=100", "--solver", "coreset"]) == 2
        assert "ambiguous" in capsys.readouterr().err

    def test_invalid_k_is_a_clean_error(self, capsys):
        assert main(["solve", "planted:n=100", "--solver",
                     "matching.coreset", "--k", "0"]) == 2
        assert "k must be" in capsys.readouterr().err

    def test_negative_seed_is_a_clean_error(self, capsys):
        assert main(["solve", "planted:n=100", "--solver",
                     "matching.maximum", "--seed", "-1"]) == 2
        assert capsys.readouterr().err.startswith("solve: ")

    def test_degenerate_graph_spec_is_a_clean_error(self, capsys):
        assert main(["solve", "planted:n=0", "--solver",
                     "matching.maximum"]) == 2
        assert "n >=" in capsys.readouterr().err
