"""Tests for the workload experiments (E22/E23) and the workloads CLI.

The headline assertion lives here: on real degree distributions, the
random k-partition produces a strictly better coreset ratio than the
adversarial partitions — the property the paper's Theorem 1 conditions
on, measured on data rather than gadget instances.
"""

import json

import pytest

from repro import cli
from repro.experiments.registry import experiment_ids, get_experiment
from repro.experiments.trials import E22Trial, E23Trial


@pytest.fixture(autouse=True)
def offline(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_OFFLINE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestE22:
    def test_registered(self):
        assert "e22" in experiment_ids()

    def test_random_beats_adversarial_on_real_distributions(self):
        """The acceptance property: on dataset-backed workloads the random
        partition's ratio beats (is lower than) every adversarial one."""
        table = get_experiment("e22").run(
            workloads=("gmission", "movielens"), n_trials=3,
        )
        assert table.rows
        beat_somewhere = False
        for row in table.rows:
            assert row["r_random"] >= 1.0
            if (row["r_random"] < row["r_degree_sorted"]
                    and row["r_random"] < row["r_community"]):
                beat_somewhere = True
        assert beat_somewhere
        # and the greedy summarizer specifically degrades under the
        # degree-sorted adversary on gmission (the §1.2 mechanism)
        greedy = [r for r in table.rows
                  if r["workload"] == "gmission" and r["summarizer"] == "greedy"]
        assert greedy and greedy[0]["adversarial_gap"] > 0

    def test_trial_metrics_shape(self):
        out = E22Trial(workload="gmission", k=4, summarizer="maximum")(seed=0)
        assert set(out) == {"opt", "ratio_random", "ratio_degree_sorted",
                            "ratio_community"}
        assert out["opt"] > 0
        assert all(v >= 1.0 for k, v in out.items() if k.startswith("ratio"))

    def test_trial_rejects_bad_summarizer(self):
        with pytest.raises(ValueError, match="summarizer"):
            E22Trial(workload="ba", k=4, summarizer="psychic")(seed=0)

    def test_trial_deterministic(self):
        a = E22Trial(workload="movielens", k=4, summarizer="greedy")(seed=7)
        b = E22Trial(workload="movielens", k=4, summarizer="greedy")(seed=7)
        assert a == b


class TestE23:
    def test_registered(self):
        assert "e23" in experiment_ids()

    def test_feasible_and_random_beats_adversarial(self):
        table = get_experiment("e23").run(k_values=(4,), n_trials=3)
        (row,) = table.rows
        assert row["feasible"] is True
        assert 1.0 <= row["r_random"] < row["r_degree_sorted"]
        assert 1.0 <= row["r_random"] < row["r_community"]

    def test_trial_metrics(self):
        out = E23Trial(k=4, u=60, v=240)(seed=0)
        assert out["feasible_random"] == 1.0
        assert out["feasible_degree_sorted"] == 1.0
        assert out["feasible_community"] == 1.0
        assert out["opt"] <= out["total_capacity"]


class TestWorkloadsCli:
    def test_list(self, capsys):
        assert cli.main(["workloads", "--list"]) == 0
        out = capsys.readouterr().out
        assert "gmission" in out and "ba_adwords" in out

    def test_list_json(self, capsys):
        assert cli.main(["workloads", "--list", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert any(d["name"] == "movielens" for d in doc)

    def test_info_json(self, capsys):
        assert cli.main(["workloads", "--info", "ba_adwords", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["capacitated"] is True
        assert doc["params"]["b_min"] == 1

    def test_info_unknown_exits_2(self, capsys):
        assert cli.main(["workloads", "--info", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_fetch(self, tmp_path, capsys):
        assert cli.main(["workloads", "--fetch", "ba", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "[cached:" in out and "ba.npz" in out

    def test_solve_uses_workload_spec(self, capsys):
        code = cli.main([
            "solve", "workload:ba:u=30,v=60,p=2",
            "--solver", "matching.maximum", "--seed", "1", "--json", "-",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["verified"] is True
        assert doc["graph"]["kind"] == "BipartiteGraph"

    def test_experiment_e22_json_offline(self, capsys):
        """ISSUE acceptance: `repro experiment e22 --json -` runs offline
        and its artifact shows random beating adversarial somewhere on a
        real-degree-distribution workload."""
        code = cli.main([
            "experiment", "e22", "--json", "-",
            "--set", "workloads=gmission,movielens",
            "--set", "summarizers=greedy",
            "--trials", "3",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert any(
            row["r_random"] < row["r_degree_sorted"]
            and row["r_random"] < row["r_community"]
            for row in doc["rows"]
        )

    def test_trials_are_picklable(self):
        import pickle

        t = E22Trial(workload="gmission", k=4, summarizer="greedy")
        assert pickle.loads(pickle.dumps(t)) == t
        t2 = E23Trial(k=4)
        assert pickle.loads(pickle.dumps(t2)) == t2
