"""Tests for the CLI and the report tool."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments.report import collect_results, render_report


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quickstart_defaults(self):
        args = build_parser().parse_args(["quickstart"])
        assert args.n == 4000 and args.k == 8

    def test_experiment_args(self):
        args = build_parser().parse_args(
            ["experiment", "e1", "--trials", "2", "--seed", "7"]
        )
        assert args.id == "e1" and args.trials == 2 and args.seed == 7


class TestCommands:
    def test_quickstart_runs(self, capsys):
        assert main(["quickstart", "--n", "400", "--k", "4"]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out

    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        assert "e1" in out and "e17" in out

    def test_experiment_runs_tiny(self, capsys):
        assert main(["experiment", "e11", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "E11" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "e99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_experiment_set_overrides(self, capsys):
        assert main(["experiment", "e11", "--trials", "1",
                     "--set", "n_values=400,800"]) == 0
        out = capsys.readouterr().out
        assert "400" in out and "800" in out

    def test_experiment_set_unknown_key(self, capsys):
        assert main(["experiment", "e11", "--set", "bogus=1"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err and "settable" in err

    def test_experiment_set_malformed(self, capsys):
        assert main(["experiment", "e11", "--set", "n_values"]) == 2
        err = capsys.readouterr().err
        assert "KEY=VALUE" in err

    def test_experiment_json_stdout(self, capsys):
        assert main(["experiment", "e11", "--trials", "1",
                     "--set", "n_values=400", "--json", "-"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert doc["name"].startswith("E11")
        assert doc["columns"] and doc["rows"]
        assert doc["rows"][0]["n"] == 400

    def test_experiment_json_file(self, tmp_path, capsys):
        target = tmp_path / "e11.json"
        assert main(["experiment", "e11", "--trials", "1",
                     "--set", "n_values=400", "--json", str(target)]) == 0
        out = capsys.readouterr().out
        assert "E11" in out  # text table still printed
        doc = json.loads(target.read_text())
        assert doc["rows"][0]["n"] == 400


class TestReport:
    def _make_results(self, tmp_path):
        d = tmp_path / "results"
        d.mkdir()
        (d / "e2_x.txt").write_text("== E2: demo ==\nbody2\n")
        (d / "e1_x.txt").write_text("== E1: demo ==\nbody1\n")
        (d / "e10_x.txt").write_text("== E10: demo ==\nbody10\n")
        return d

    def test_collect_ordering(self, tmp_path):
        results = collect_results(self._make_results(tmp_path))
        assert [r.stem for r in results] == ["e1_x", "e2_x", "e10_x"]
        assert results[0].title == "E1: demo"

    def test_render(self, tmp_path):
        results = collect_results(self._make_results(tmp_path))
        text = render_report(results)
        assert text.index("E1: demo") < text.index("E10: demo")
        assert "```" in text

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_results(tmp_path / "nope")

    def test_render_empty(self):
        assert "no archived results" in render_report([])

    def test_cli_report_to_file(self, tmp_path, capsys):
        d = self._make_results(tmp_path)
        out_file = tmp_path / "report.md"
        assert main(["report", "--results", str(d), "-o", str(out_file)]) == 0
        assert "E2: demo" in out_file.read_text()
