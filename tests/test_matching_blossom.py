"""Tests for the blossom algorithm against networkx on general graphs."""

import numpy as np
import pytest

from conftest import nx_matching_number
from repro.graph.edgelist import Graph
from repro.graph.generators import complete_graph, gnp, path_graph
from repro.matching.blossom import blossom_maximum_matching
from repro.matching.verify import is_matching, is_maximal_matching


class TestStructuredCases:
    def test_empty(self):
        assert blossom_maximum_matching(Graph(4)).shape == (0, 2)

    def test_single_edge(self):
        m = blossom_maximum_matching(Graph(2, [(0, 1)]))
        assert m.tolist() == [[0, 1]]

    def test_triangle(self):
        m = blossom_maximum_matching(complete_graph(3))
        assert m.shape[0] == 1

    def test_odd_cycle(self):
        # C5 has MM = 2; requires handling an odd cycle.
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        assert blossom_maximum_matching(g).shape[0] == 2

    def test_paths(self):
        assert blossom_maximum_matching(path_graph(4)).shape[0] == 2
        assert blossom_maximum_matching(path_graph(5)).shape[0] == 2
        assert blossom_maximum_matching(path_graph(6)).shape[0] == 3

    def test_petersen_graph(self):
        """Petersen graph has a perfect matching (size 5) but needs blossom
        reasoning to find it from bad greedy starts."""
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0),
                 (5, 7), (7, 9), (9, 6), (6, 8), (8, 5),
                 (0, 5), (1, 6), (2, 7), (3, 8), (4, 9)]
        g = Graph(10, edges)
        assert blossom_maximum_matching(g).shape[0] == 5

    def test_flower_blossom(self):
        """A triangle with a pendant path — the textbook blossom case."""
        # Triangle 0-1-2, path 2-3-4.
        g = Graph(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])
        assert blossom_maximum_matching(g).shape[0] == 2

    def test_two_triangles_bridge(self):
        # Triangles {0,1,2} and {3,4,5} joined by 2-3: perfect matching.
        g = Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
        assert blossom_maximum_matching(g).shape[0] == 3

    def test_complete_graphs(self):
        for n in (4, 5, 6, 7):
            assert blossom_maximum_matching(complete_graph(n)).shape[0] == n // 2

    def test_without_greedy_seed(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        assert blossom_maximum_matching(g, seed_greedy=False).shape[0] == 2


class TestAgainstNetworkx:
    @pytest.mark.parametrize("p", [0.05, 0.1, 0.25])
    def test_random_graphs(self, p, rng):
        for _ in range(6):
            g = gnp(30, p, rng)
            m = blossom_maximum_matching(g)
            assert is_matching(g, m)
            assert m.shape[0] == nx_matching_number(g)

    def test_sparse_odd_components(self, rng):
        """Many small odd components stress blossom contraction."""
        import networkx as nx

        for _ in range(4):
            g = gnp(40, 0.06, rng)
            assert blossom_maximum_matching(g).shape[0] == nx_matching_number(g)

    def test_maximality(self, rng):
        g = gnp(50, 0.08, rng)
        m = blossom_maximum_matching(g)
        assert is_maximal_matching(g, m)

    def test_isolated_vertices_untouched(self, rng):
        g = Graph(100, [(0, 1), (50, 51)])
        m = blossom_maximum_matching(g)
        assert m.shape[0] == 2
