"""Tests for repro.utils.bits: the communication cost model."""

import pytest

from repro.utils.bits import (
    BitCost,
    edge_bits,
    edges_bits,
    int_bits,
    vertex_bits,
    vertices_bits,
)


class TestVertexBits:
    def test_powers_of_two(self):
        assert vertex_bits(2) == 1
        assert vertex_bits(4) == 2
        assert vertex_bits(1024) == 10

    def test_non_powers_round_up(self):
        assert vertex_bits(3) == 2
        assert vertex_bits(1000) == 10
        assert vertex_bits(1025) == 11

    def test_one_vertex_floor(self):
        assert vertex_bits(1) == 1

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            vertex_bits(0)
        with pytest.raises(ValueError):
            vertex_bits(-5)


class TestEdgeBits:
    def test_edge_is_two_vertices(self):
        for n in (2, 100, 4096):
            assert edge_bits(n) == 2 * vertex_bits(n)

    def test_bulk_costs(self):
        assert edges_bits(10, 1024) == 10 * 20
        assert vertices_bits(7, 1024) == 70

    def test_negative_counts_raise(self):
        with pytest.raises(ValueError):
            edges_bits(-1, 16)
        with pytest.raises(ValueError):
            vertices_bits(-1, 16)

    def test_zero_count_is_free(self):
        assert edges_bits(0, 16) == 0


class TestIntBits:
    def test_values(self):
        assert int_bits(0) == 1
        assert int_bits(1) == 1
        assert int_bits(2) == 2
        assert int_bits(255) == 8
        assert int_bits(256) == 9

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            int_bits(-1)


class TestBitCost:
    def test_total(self):
        c = BitCost(edge_count=3, vertex_count=2, aux_bits=5)
        n = 1024
        assert c.total_bits(n) == 3 * 20 + 2 * 10 + 5

    def test_add(self):
        a = BitCost(1, 2, 3)
        b = BitCost(10, 20, 30)
        s = a + b
        assert (s.edge_count, s.vertex_count, s.aux_bits) == (11, 22, 33)

    def test_default_is_free(self):
        assert BitCost().total_bits(100) == 0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            BitCost().edge_count = 5  # type: ignore[misc]
