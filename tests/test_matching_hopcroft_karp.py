"""Tests for Hopcroft–Karp against independent oracles."""

import numpy as np
import pytest

from conftest import nx_matching_number
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import (
    bipartite_gnp,
    complete_bipartite,
    random_perfect_matching,
)
from repro.matching.augmenting import augmenting_path_matching
from repro.matching.hopcroft_karp import hopcroft_karp, hopcroft_karp_mates
from repro.matching.verify import is_matching, is_maximal_matching


class TestSmallCases:
    def test_empty(self):
        assert hopcroft_karp(BipartiteGraph(3, 3)).shape == (0, 2)

    def test_single_edge(self):
        g = BipartiteGraph(1, 1, [(0, 1)])
        m = hopcroft_karp(g)
        assert m.tolist() == [[0, 1]]

    def test_tiny_bipartite(self, tiny_bipartite):
        m = hopcroft_karp(tiny_bipartite)
        assert m.shape[0] == 3
        assert is_matching(tiny_bipartite, m)

    def test_complete_bipartite(self):
        g = complete_bipartite(4, 7)
        assert hopcroft_karp(g).shape[0] == 4

    def test_needs_augmentation(self):
        """A case where pure greedy init is suboptimal: the crown."""
        # l0-{r0,r1}, l1-{r0}: greedy may match l0-r0 and strand l1.
        g = BipartiteGraph(2, 2, [(0, 2), (0, 3), (1, 2)])
        assert hopcroft_karp(g).shape[0] == 2

    def test_path_alternation(self):
        # l0-r0, l1-r0, l1-r1, l2-r1 => MM=2
        g = BipartiteGraph(3, 2, [(0, 3), (1, 3), (1, 4), (2, 4)])
        assert hopcroft_karp(g).shape[0] == 2


class TestAgainstOracles:
    @pytest.mark.parametrize("p", [0.02, 0.08, 0.3])
    def test_size_matches_networkx(self, p, rng):
        for _ in range(5):
            g = bipartite_gnp(35, 45, p, rng)
            m = hopcroft_karp(g)
            assert is_matching(g, m)
            assert m.shape[0] == nx_matching_number(g)

    def test_size_matches_augmenting_path(self, rng):
        for _ in range(10):
            g = bipartite_gnp(30, 30, 0.1, rng)
            a = hopcroft_karp(g).shape[0]
            b = augmenting_path_matching(g).shape[0]
            assert a == b

    def test_perfect_matching_found(self, rng):
        g = random_perfect_matching(50, 50, rng=rng)
        assert hopcroft_karp(g).shape[0] == 50

    def test_output_is_maximal(self, rng):
        g = bipartite_gnp(40, 40, 0.1, rng)
        m = hopcroft_karp(g)
        assert is_maximal_matching(g, m)  # maximum => maximal


class TestMates:
    def test_mate_consistency(self, rng):
        g = bipartite_gnp(25, 30, 0.15, rng)
        ml, mr = hopcroft_karp_mates(g)
        for u in range(25):
            if ml[u] != -1:
                assert mr[ml[u]] == u
        for r in range(30):
            if mr[r] != -1:
                assert ml[mr[r]] == r

    def test_unmatched_marked(self):
        g = BipartiteGraph(2, 2, [(0, 2)])
        ml, mr = hopcroft_karp_mates(g)
        assert ml[1] == -1
        assert mr[1] == -1


class TestAugmentingOracle:
    """The slow matcher is itself tested against networkx."""

    def test_against_networkx(self, rng):
        for _ in range(5):
            g = bipartite_gnp(25, 25, 0.12, rng)
            m = augmenting_path_matching(g)
            assert is_matching(g, m)
            assert m.shape[0] == nx_matching_number(g)

    def test_empty(self):
        assert augmenting_path_matching(BipartiteGraph(2, 2)).shape == (0, 2)
