"""Tests for repro.graph.edgelist.Graph."""

import numpy as np
import pytest

from repro.graph.edgelist import Graph
from repro.graph.validation import check_graph


class TestConstruction:
    def test_empty(self):
        g = Graph(5)
        assert g.n_vertices == 5
        assert g.n_edges == 0
        assert g.degrees.tolist() == [0] * 5

    def test_dedupes_and_canonicalizes(self):
        g = Graph(4, [(1, 0), (0, 1), (3, 2), (2, 2)])
        assert g.n_edges == 2
        ok, msg = check_graph(g)
        assert ok, msg

    def test_edge_order_independent_equality(self):
        a = Graph(4, [(0, 1), (2, 3)])
        b = Graph(4, [(3, 2), (1, 0)])
        assert a == b
        assert hash(a) == hash(b)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError, match="endpoints"):
            Graph(3, [(0, 3)])
        with pytest.raises(ValueError, match="endpoints"):
            Graph(3, [(-1, 2)])

    def test_negative_vertex_count_raises(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_bad_edge_shape_raises(self):
        with pytest.raises(ValueError, match="shape"):
            Graph(3, np.array([[0, 1, 2]]))

    def test_edges_readonly(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.edges[0, 0] = 99


class TestAccessors:
    def test_degrees(self, tiny_graph):
        assert tiny_graph.degrees.tolist() == [2, 2, 2, 2, 2, 2]
        assert tiny_graph.max_degree == 2

    def test_neighbors_sorted(self):
        g = Graph(5, [(0, 4), (0, 2), (0, 1)])
        np.testing.assert_array_equal(g.neighbors(0), [1, 2, 4])
        np.testing.assert_array_equal(g.neighbors(3), [])

    def test_has_edge(self, tiny_graph):
        assert tiny_graph.has_edge(0, 1)
        assert tiny_graph.has_edge(1, 0)
        assert not tiny_graph.has_edge(0, 3)
        assert not tiny_graph.has_edge(2, 2)

    def test_non_isolated_vertices(self):
        g = Graph(6, [(1, 4)])
        np.testing.assert_array_equal(g.non_isolated_vertices, [1, 4])


class TestDerivedGraphs:
    def test_subgraph_from_mask(self, tiny_graph):
        mask = np.zeros(tiny_graph.n_edges, dtype=bool)
        mask[0] = True
        sub = tiny_graph.subgraph_from_mask(mask)
        assert sub.n_edges == 1
        assert sub.n_vertices == tiny_graph.n_vertices

    def test_subgraph_mask_shape_checked(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.subgraph_from_mask(np.zeros(3, dtype=bool))

    def test_subgraph_from_indices_unsorted_ok(self, tiny_graph):
        sub = tiny_graph.subgraph_from_indices(np.array([3, 0]))
        assert sub.n_edges == 2
        ok, msg = check_graph(sub)
        assert ok, msg

    def test_without_vertices(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        h = g.without_vertices([1])
        assert h.n_edges == 1
        assert h.has_edge(2, 3)

    def test_without_vertices_out_of_range(self):
        with pytest.raises(ValueError):
            Graph(3, [(0, 1)]).without_vertices([7])

    def test_union(self):
        a = Graph(4, [(0, 1)])
        b = Graph(4, [(0, 1), (2, 3)])
        u = a.union(b)
        assert u.n_edges == 2

    def test_union_mismatched_sizes_raises(self):
        with pytest.raises(ValueError):
            Graph(3).union(Graph(4))

    def test_union_of_partition_recovers_graph(self, rng):
        from repro.graph.generators import gnp
        from repro.graph.partition import random_k_partition

        g = gnp(40, 0.2, rng)
        part = random_k_partition(g, 5, rng)
        merged = Graph(g.n_vertices).union(*list(part.pieces()))
        assert merged == g

    def test_relabeled_contracts(self):
        g = Graph(4, [(0, 1), (2, 3), (0, 3)])
        mapping = np.array([0, 0, 1, 1])
        h = g.relabeled(mapping)
        # (0,1) -> self-loop dropped; (2,3) -> self-loop; (0,3) -> (0,1)
        assert h.n_vertices == 2
        assert h.n_edges == 1
        assert h.has_edge(0, 1)

    def test_relabeled_shape_checked(self):
        with pytest.raises(ValueError):
            Graph(3, [(0, 1)]).relabeled(np.array([0, 1]))


class TestEquality:
    def test_not_equal_different_n(self):
        assert Graph(3, [(0, 1)]) != Graph(4, [(0, 1)])

    def test_not_equal_to_other_type(self):
        assert Graph(2) != "graph"
