"""Tests for the simultaneous-protocol engine."""

import numpy as np
import pytest

from repro.dist.coordinator import (
    Coordinator,
    SimultaneousProtocol,
    run_simultaneous,
)
from repro.dist.machine import Machine
from repro.dist.message import Message
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import bipartite_gnp, gnp
from repro.graph.partition import random_k_partition


# Module-level summarizers (not closures) so this file also runs under
# REPRO_EXECUTOR=processes, which pickles them to worker processes.
def _echo_summarize(piece, machine_index, rng, public=None):
    return Message(sender=machine_index, edges=piece.edges)


def _union_combine(coordinator, messages):
    return coordinator.union_graph(messages)


def echo_protocol():
    """A protocol whose coreset is the whole piece (send-everything)."""
    return SimultaneousProtocol(name="echo", summarizer=_echo_summarize,
                                combine=_union_combine)


def _token_checking_summarize(piece, machine_index, rng, public=None):
    assert public == {"token": 42}
    return Message(sender=machine_index)


def _count_combine(coordinator, messages):
    return len(messages)


class TestRunSimultaneous:
    def test_one_message_per_machine(self, rng):
        g = gnp(30, 0.2, rng)
        part = random_k_partition(g, 5, rng)
        res = run_simultaneous(echo_protocol(), part, rng)
        assert len(res.messages) == 5
        assert sorted(m.sender for m in res.messages) == list(range(5))

    def test_union_reconstructs_graph(self, rng):
        g = gnp(30, 0.2, rng)
        part = random_k_partition(g, 4, rng)
        res = run_simultaneous(echo_protocol(), part, rng)
        assert res.output == g

    def test_total_bits_matches_ledger(self, rng):
        g = gnp(20, 0.3, rng)
        part = random_k_partition(g, 3, rng)
        res = run_simultaneous(echo_protocol(), part, rng)
        assert res.total_bits == res.ledger.total_bits()
        assert res.ledger.total_edges() == g.n_edges

    def test_reproducible_given_seed(self, rng):
        from repro.core.protocols import matching_coreset_protocol

        g = bipartite_gnp(30, 30, 0.1, 5)
        part = random_k_partition(g, 4, 6)
        p = matching_coreset_protocol()
        a = run_simultaneous(p, part, 7).output
        b = run_simultaneous(p, part, 7).output
        np.testing.assert_array_equal(a, b)

    def test_public_setup_invoked(self, rng):
        calls = []

        # The setup closure is fine under any backend: public_setup always
        # runs in the calling process, only the summarizer is shipped.
        def setup(graph, k, gen):
            calls.append(k)
            return {"token": 42}

        proto = SimultaneousProtocol("t", _token_checking_summarize,
                                     _count_combine, public_setup=setup)
        g = gnp(10, 0.3, rng)
        part = random_k_partition(g, 3, rng)
        res = run_simultaneous(proto, part, rng)
        assert res.output == 3
        assert calls == [3]


class TestCoordinator:
    def test_union_graph_bipartite_template(self, rng):
        g = bipartite_gnp(5, 5, 0.5, rng)
        coord = Coordinator(n_vertices=10, template=g)
        msgs = [Message(sender=0, edges=g.edges[:2])]
        u = coord.union_graph(msgs)
        assert isinstance(u, BipartiteGraph)

    def test_union_graph_empty_messages(self):
        coord = Coordinator(n_vertices=4)
        assert coord.union_graph([]).n_edges == 0

    def test_fixed_vertices_union(self):
        msgs = [
            Message(sender=0, fixed_vertices=np.array([3, 1])),
            Message(sender=1, fixed_vertices=np.array([1, 2])),
        ]
        np.testing.assert_array_equal(
            Coordinator.fixed_vertices(msgs), [1, 2, 3]
        )

    def test_fixed_vertices_empty(self):
        assert Coordinator.fixed_vertices([]).shape == (0,)


class TestMachine:
    def test_sender_mismatch_detected(self, rng):
        from repro.graph.edgelist import Graph

        def dishonest(piece, machine_index, rng, public=None):
            return Message(sender=machine_index + 1)

        m = Machine(index=0, piece=Graph(3), rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="sender"):
            m.summarize(dishonest)
