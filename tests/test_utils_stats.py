"""Tests for repro.utils.stats."""

import math

import numpy as np
import pytest

from repro.utils.stats import (
    RunningStat,
    confidence_interval,
    geometric_mean,
    summarize,
)


class TestRunningStat:
    def test_matches_numpy(self, rng):
        xs = rng.normal(5, 2, size=200)
        rs = RunningStat()
        rs.extend(xs)
        assert rs.count == 200
        assert rs.mean == pytest.approx(xs.mean())
        assert rs.std == pytest.approx(xs.std(ddof=1))
        assert rs.min == pytest.approx(xs.min())
        assert rs.max == pytest.approx(xs.max())

    def test_single_sample(self):
        rs = RunningStat()
        rs.add(3.0)
        assert rs.mean == 3.0
        assert rs.variance == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            RunningStat().mean

    def test_numerical_stability_large_offset(self):
        rs = RunningStat()
        base = 1e12
        for x in (base + 1, base + 2, base + 3):
            rs.add(x)
        assert rs.variance == pytest.approx(1.0)


class TestConfidenceInterval:
    def test_contains_mean(self, rng):
        xs = rng.normal(0, 1, size=50)
        lo, hi = confidence_interval(xs)
        assert lo <= xs.mean() <= hi

    def test_single_sample_degenerate(self):
        lo, hi = confidence_interval([4.0])
        assert lo == hi == 4.0

    def test_width_shrinks_with_n(self, rng):
        xs_small = rng.normal(0, 1, size=10)
        xs_big = np.tile(xs_small, 100)  # same variance structure, 100x n
        w_small = np.diff(confidence_interval(xs_small))[0]
        w_big = np.diff(confidence_interval(xs_big))[0]
        assert w_big < w_small

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            confidence_interval([])

    def test_bad_level_raises(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0, 2.0], level=1.5)

    def test_nondefault_level_wider_at_higher_confidence(self, rng):
        xs = rng.normal(0, 1, size=40)
        w90 = np.diff(confidence_interval(xs, 0.90))[0]
        w99 = np.diff(confidence_interval(xs, 0.99))[0]
        assert w99 > w90

    def test_coverage_statistical(self, rng):
        """~95% of intervals from N(0,1) samples should contain 0."""
        hits = 0
        trials = 300
        for _ in range(trials):
            xs = rng.normal(0, 1, size=30)
            lo, hi = confidence_interval(xs)
            hits += lo <= 0 <= hi
        assert hits / trials > 0.88


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.min == 1.0 and s.max == 3.0
        assert s.ci_low <= s.mean <= s.ci_high

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([2, 2, 2]) == pytest.approx(2.0)

    def test_ratio_invariance(self):
        """gm of ratios = ratio of gms — the property we use it for."""
        a = np.array([1.5, 2.0, 3.0])
        assert geometric_mean(a) * geometric_mean(1 / a) == pytest.approx(1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])
