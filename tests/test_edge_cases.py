"""Edge cases and failure injection across the whole stack.

These tests exercise the degenerate inputs (empty graphs, k larger than m,
single vertices) and the misuse paths (malformed messages, dishonest
summarizers, budget violations) that production code meets long before the
happy path does.
"""

import numpy as np
import pytest

from repro.core.protocols import (
    matching_coreset_protocol,
    vertex_cover_coreset_protocol,
)
from repro.cover.verify import is_vertex_cover
from repro.dist.coordinator import SimultaneousProtocol, run_simultaneous
from repro.dist.message import Message
from repro.graph.bipartite import BipartiteGraph
from repro.graph.edgelist import Graph
from repro.graph.partition import random_k_partition


# Misbehaving summarizers are module-level (not closures) so these tests
# also run under REPRO_EXECUTOR=processes, which pickles them to workers.
def _lying_summarizer(piece, machine_index, rng, public=None):
    return Message(sender=0)  # always claims to be machine 0


def _count_combine(coordinator, messages):
    return len(messages)


def _evil_summarizer(piece, machine_index, rng, public=None):
    return Message(sender=machine_index, edges=np.array([[0, 10**6]]))


def _union_combine(coordinator, messages):
    return coordinator.union_graph(messages)


def _flaky_matching_summarizer(piece, machine_index, rng, public=None):
    if machine_index == 0:
        return Message(sender=0)  # lost content
    return matching_coreset_protocol().summarizer(
        piece, machine_index, rng, public
    )


class TestDegenerateGraphs:
    def test_empty_graph_matching_protocol(self, rng):
        g = Graph(10)
        part = random_k_partition(g, 4, rng)
        res = run_simultaneous(matching_coreset_protocol(), part, rng)
        assert res.output.shape == (0, 2)
        assert res.total_bits == 0

    def test_empty_graph_vc_protocol(self, rng):
        g = BipartiteGraph(5, 5)
        part = random_k_partition(g, 3, rng)
        res = run_simultaneous(vertex_cover_coreset_protocol(k=3), part, rng)
        assert res.output.shape == (0,)

    def test_single_edge_many_machines(self, rng):
        g = BipartiteGraph(1, 1, [(0, 1)])
        part = random_k_partition(g, 16, rng)
        res = run_simultaneous(matching_coreset_protocol(), part, rng)
        assert res.output.tolist() == [[0, 1]]

    def test_k_exceeds_edge_count(self, rng):
        g = BipartiteGraph(4, 4, [(0, 4), (1, 5), (2, 6)])
        part = random_k_partition(g, 50, rng)
        res = run_simultaneous(matching_coreset_protocol(), part, rng)
        assert res.output.shape[0] == 3  # all three disjoint edges survive

    def test_zero_vertex_graph(self):
        g = Graph(0)
        assert g.n_edges == 0
        assert g.degrees.shape == (0,)

    def test_one_vertex_graph(self):
        g = Graph(1)
        from repro.matching.api import maximum_matching

        assert maximum_matching(g, "blossom").shape == (0, 2)

    def test_quickstart_tiny(self):
        from repro import quickstart_matching

        out = quickstart_matching(n=40, k=2, seed=0)
        assert out["ratio"] >= 1.0


class TestMalformedMessages:
    def test_wrong_sender_rejected(self, rng):
        proto = SimultaneousProtocol(
            "liar", _lying_summarizer, _count_combine
        )
        g = Graph(4, [(0, 1), (2, 3)])
        part = random_k_partition(g, 3, rng)
        with pytest.raises(ValueError, match="sender"):
            run_simultaneous(proto, part, rng)

    def test_bad_edges_shape_rejected(self):
        with pytest.raises(ValueError):
            Message(sender=0, edges=np.ones((2, 3)))

    def test_ledger_rejects_foreign_sender(self):
        from repro.dist.ledger import CommunicationLedger

        led = CommunicationLedger(n_vertices=4, k=2)
        with pytest.raises(ValueError):
            led.record(Message(sender=3))

    def test_coordinator_union_rejects_out_of_range_edges(self, rng):
        """A message naming vertices outside V must not silently pass."""
        proto = SimultaneousProtocol("evil", _evil_summarizer, _union_combine)
        g = Graph(4, [(0, 1)])
        part = random_k_partition(g, 1, rng)
        with pytest.raises(ValueError):
            run_simultaneous(proto, part, rng)


class TestProtocolRobustness:
    def test_machine_dropping_message_content(self, rng):
        """A machine sending nothing degrades quality but never breaks
        feasibility of the matching output."""
        base = matching_coreset_protocol()
        proto = SimultaneousProtocol(
            "flaky", _flaky_matching_summarizer, base.combine
        )
        from repro.graph.generators import bipartite_gnp
        from repro.matching.verify import is_matching

        g = bipartite_gnp(50, 50, 0.08, rng)
        part = random_k_partition(g, 4, rng)
        res = run_simultaneous(proto, part, rng)
        assert is_matching(g, res.output)

    def test_vc_protocol_with_empty_machines(self, rng):
        """Machines whose piece is empty send empty messages; the cover is
        still feasible."""
        from repro.graph.generators import bipartite_star_forest

        g = bipartite_star_forest(3, 2)  # 6 edges
        part = random_k_partition(g, 20, rng)  # most machines empty
        res = run_simultaneous(vertex_cover_coreset_protocol(k=20), part, rng)
        assert is_vertex_cover(g, res.output)

    def test_greedy_match_on_empty_partition(self, rng):
        from repro.core.greedy_match import greedy_match

        g = Graph(6)
        part = random_k_partition(g, 3, rng)
        m, trace = greedy_match(part)
        assert m.shape == (0, 2)
        assert trace.final_size == 0

    def test_mapreduce_single_machine(self, rng):
        from repro.core.mapreduce_algos import mapreduce_matching
        from repro.graph.generators import bipartite_gnp

        g = bipartite_gnp(30, 30, 0.1, rng)
        res = mapreduce_matching(g, k=1, rng=rng)
        from repro.matching.api import matching_number

        assert res.matching.shape[0] == matching_number(g)

    def test_filtering_memory_larger_than_graph(self, rng):
        from repro.baselines.filtering import filtering_matching
        from repro.graph.generators import bipartite_gnp

        g = bipartite_gnp(30, 30, 0.1, rng)
        res = filtering_matching(g, memory_edges=10 * g.n_edges, rng=rng)
        assert res.n_rounds == 1


class TestWeightedEdgeCases:
    def test_single_weight_class(self, rng):
        from repro.core.weighted import weighted_matching_coreset_protocol
        from repro.graph.weights import WeightedGraph
        from repro.graph.generators import bipartite_gnp

        g = bipartite_gnp(30, 30, 0.1, rng)
        wg = WeightedGraph(g.n_vertices, g.edges,
                           np.full(g.n_edges, 5.0), validated=True)
        res = weighted_matching_coreset_protocol(wg, k=3, rng=rng)
        # Uniform weights: weight = 5 * matching size.
        assert res.weight == pytest.approx(5.0 * res.matching.shape[0])

    def test_extreme_weight_spread(self, rng):
        from repro.graph.weights import WeightedGraph, weight_classes
        from repro.graph.generators import bipartite_gnp

        g = bipartite_gnp(20, 20, 0.2, rng)
        w = np.logspace(0, 12, g.n_edges)
        wg = WeightedGraph(g.n_vertices, g.edges, w, validated=True)
        classes = weight_classes(wg, epsilon=1.0)
        assert len(classes) <= 42  # log2(1e12) + slack
        assert sum(c.graph.n_edges for c in classes) == g.n_edges


class TestPeelingEdgeCases:
    def test_peeling_complete_bipartite(self):
        """Every vertex same (huge) degree: all peeled in one level."""
        from repro.core.vc_coreset import vc_coreset
        from repro.graph.generators import complete_bipartite

        g = complete_bipartite(64, 64)
        result = vc_coreset(g, k=1, log_slack=1.0)
        combined = np.unique(np.concatenate([
            result.fixed_vertices,
            result.residual.edges.ravel()
            if result.residual.n_edges else np.zeros(0, np.int64),
        ]))
        assert is_vertex_cover(g, combined)

    def test_log_slack_zero_invalid(self):
        from repro.core.vc_coreset import peeling_levels

        with pytest.raises(ValueError):
            peeling_levels(100, 1, log_slack=0.0)
