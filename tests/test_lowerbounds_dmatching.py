"""Tests for the D_Matching hard distribution."""

import numpy as np
import pytest

from repro.dist.coordinator import run_simultaneous
from repro.graph.partition import random_k_partition
from repro.graph.validation import check_bipartite
from repro.lowerbounds.dmatching import (
    budget_limited_matching_protocol,
    hidden_edges_recovered,
    sample_dmatching,
)
from repro.lowerbounds.induced import induced_matching
from repro.utils.arrays import isin_mask


class TestSampler:
    def test_structure(self, rng):
        inst = sample_dmatching(1000, alpha=5, k=4, rng=rng)
        ok, msg = check_bipartite(inst.graph)
        assert ok, msg
        assert inst.set_a.shape[0] == 200
        assert inst.hidden_matching.shape[0] == 800

    def test_hidden_is_perfect_matching_of_complements(self, rng):
        inst = sample_dmatching(500, alpha=5, k=4, rng=rng)
        hidden = inst.hidden_matching
        # Left endpoints avoid A; right endpoints avoid B.
        assert not np.isin(hidden[:, 0], inst.set_a).any()
        assert not np.isin(hidden[:, 1], inst.set_b).any()
        # It is a matching: each vertex once.
        assert np.unique(hidden[:, 0]).shape[0] == hidden.shape[0]
        assert np.unique(hidden[:, 1]).shape[0] == hidden.shape[0]

    def test_hidden_edges_in_graph(self, rng):
        inst = sample_dmatching(400, alpha=4, k=4, rng=rng)
        assert isin_mask(inst.hidden_matching, inst.graph.edges,
                         inst.graph.n_vertices).all()

    def test_eab_density(self, rng):
        """|E_AB| concentrates around (n/α)²·kα/n = nk/α."""
        n, alpha, k = 4000, 8, 8
        inst = sample_dmatching(n, alpha, k, rng=rng)
        eab_count = inst.graph.n_edges - inst.hidden_matching.shape[0]
        expected = n * k / alpha
        assert 0.7 * expected < eab_count < 1.3 * expected

    def test_mm_at_least_hidden(self, rng):
        from repro.matching.api import matching_number

        inst = sample_dmatching(300, alpha=3, k=3, rng=rng)
        assert matching_number(inst.graph) >= inst.optimal_size_lower_bound

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            sample_dmatching(100, alpha=0.5, k=2, rng=rng)
        with pytest.raises(ValueError):
            sample_dmatching(100, alpha=1, k=2, rng=rng)  # n/alpha == n


class TestInducedMatchingLemma41:
    def test_per_machine_induced_matching_size(self, rng):
        """Lemma 4.1: |M^(i)| = Θ(n/α) for every machine."""
        n, alpha, k = 4000, 8, 8
        inst = sample_dmatching(n, alpha, k, rng=rng)
        part = random_k_partition(inst.graph, k, rng)
        for i in range(k):
            m = induced_matching(part.piece(i))
            # Θ(n/α) with generous constants.
            assert n / (8 * alpha) < m.shape[0] < 4 * n / alpha

    def test_hidden_edges_land_in_induced_matching(self, rng):
        """M*(i) ⊆ M^(i): a hidden edge assigned to machine i is an induced
        (degree-1-both-sides) edge there w.h.p... deterministically always,
        since its endpoints have degree 1 in G already."""
        inst = sample_dmatching(1000, alpha=5, k=5, rng=rng)
        part = random_k_partition(inst.graph, 5, rng)
        n_v = inst.graph.n_vertices
        for i in range(5):
            piece = part.piece(i)
            owned = inst.hidden_matching[
                isin_mask(inst.hidden_matching, piece.edges, n_v)
            ]
            m = induced_matching(piece)
            assert isin_mask(owned, m, n_v).all()


class TestBudgetProtocol:
    def test_recovery_scales_with_budget(self, rng):
        n, alpha, k = 2000, 5, 5
        inst = sample_dmatching(n, alpha, k, rng=rng)
        part = random_k_partition(inst.graph, k, rng)
        rec = {}
        for budget in (10, 200):
            proto = budget_limited_matching_protocol(budget)
            res = run_simultaneous(proto, part, rng)
            rec[budget] = hidden_edges_recovered(inst, res.output)
        assert rec[200] > rec[10]

    def test_unlimited_budget_recovers_everything(self, rng):
        inst = sample_dmatching(1000, alpha=5, k=4, rng=rng)
        part = random_k_partition(inst.graph, 4, rng)
        proto = budget_limited_matching_protocol(10**9)
        res = run_simultaneous(proto, part, rng)
        # Theorem 1 regime: near-optimal matching.
        assert res.output.shape[0] >= 0.9 * inst.optimal_size_lower_bound

    def test_budget_respected(self, rng):
        inst = sample_dmatching(1000, alpha=5, k=4, rng=rng)
        part = random_k_partition(inst.graph, 4, rng)
        proto = budget_limited_matching_protocol(7)
        res = run_simultaneous(proto, part, rng)
        for m in res.messages:
            assert m.n_edges <= 7

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            budget_limited_matching_protocol(-1)

    def test_hidden_edges_recovered_empty(self, rng):
        inst = sample_dmatching(200, alpha=4, k=2, rng=rng)
        assert hidden_edges_recovered(inst, np.zeros((0, 2))) == 0
