"""Tests for the maximum_matching dispatcher."""

import pytest

from repro.graph.edgelist import Graph
from repro.graph.generators import bipartite_gnp, gnp
from repro.matching.api import matching_number, maximal_matching, maximum_matching


class TestDispatch:
    def test_auto_bipartite_uses_hk(self, rng):
        g = bipartite_gnp(20, 20, 0.1, rng)
        a = maximum_matching(g, "auto").shape[0]
        b = maximum_matching(g, "hopcroft_karp").shape[0]
        assert a == b

    def test_auto_general_uses_blossom(self, rng):
        g = gnp(20, 0.2, rng)
        a = maximum_matching(g, "auto").shape[0]
        b = maximum_matching(g, "blossom").shape[0]
        assert a == b

    def test_all_algorithms_agree_on_bipartite(self, rng):
        for _ in range(5):
            g = bipartite_gnp(25, 25, 0.1, rng)
            sizes = {
                maximum_matching(g, alg).shape[0]
                for alg in ("hopcroft_karp", "blossom", "augmenting")
            }
            assert len(sizes) == 1

    def test_hk_requires_bipartite(self, rng):
        with pytest.raises(TypeError):
            maximum_matching(gnp(5, 0.5, rng), "hopcroft_karp")

    def test_augmenting_requires_bipartite(self, rng):
        with pytest.raises(TypeError):
            maximum_matching(gnp(5, 0.5, rng), "augmenting")

    def test_unknown_algorithm(self, rng):
        with pytest.raises(ValueError):
            maximum_matching(gnp(5, 0.5, rng), "magic")  # type: ignore

    def test_matching_number(self, rng):
        g = bipartite_gnp(15, 15, 0.2, rng)
        assert matching_number(g) == maximum_matching(g).shape[0]

    def test_maximal_matching_wrapper(self, rng):
        from repro.matching.verify import is_maximal_matching

        g = gnp(30, 0.15, rng)
        m = maximal_matching(g, rng=rng)
        assert is_maximal_matching(g, m)
