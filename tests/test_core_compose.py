"""Tests for coreset composition."""

import numpy as np
import pytest

from repro.core.compose import (
    compose_matching,
    compose_vertex_cover,
    union_of_coresets,
)
from repro.core.vc_coreset import vc_coreset
from repro.cover.verify import is_vertex_cover
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import bipartite_gnp, skewed_bipartite
from repro.graph.partition import random_k_partition
from repro.matching.api import maximum_matching
from repro.matching.verify import is_matching


class TestUnionOfCoresets:
    def test_bipartite_template_preserved(self, rng):
        g = bipartite_gnp(10, 10, 0.3, rng)
        u = union_of_coresets(20, [g.edges[:3], g.edges[3:6]], template=g)
        assert isinstance(u, BipartiteGraph)

    def test_empty(self):
        u = union_of_coresets(5, [])
        assert u.n_edges == 0

    def test_dedup(self, rng):
        g = bipartite_gnp(10, 10, 0.3, rng)
        u = union_of_coresets(20, [g.edges, g.edges], template=g)
        assert u.n_edges == g.n_edges


class TestComposeMatching:
    def test_exact_combiner(self, rng):
        g = bipartite_gnp(40, 40, 0.08, rng)
        part = random_k_partition(g, 4, rng)
        coresets = [maximum_matching(part.piece(i)) for i in range(4)]
        m = compose_matching(g.n_vertices, coresets, combiner="exact",
                             template=g)
        assert is_matching(g, m)

    def test_greedy_combiner(self, rng):
        g = bipartite_gnp(40, 40, 0.08, rng)
        part = random_k_partition(g, 4, rng)
        coresets = [maximum_matching(part.piece(i)) for i in range(4)]
        m = compose_matching(g.n_vertices, coresets, combiner="greedy",
                             template=g, rng=rng)
        assert is_matching(g, m)

    def test_exact_at_least_greedy(self, rng):
        g = bipartite_gnp(60, 60, 0.06, rng)
        part = random_k_partition(g, 4, rng)
        coresets = [maximum_matching(part.piece(i)) for i in range(4)]
        exact = compose_matching(g.n_vertices, coresets, "exact", template=g)
        greedy = compose_matching(g.n_vertices, coresets, "greedy",
                                  template=g, rng=rng)
        assert exact.shape[0] >= greedy.shape[0]

    def test_unknown_combiner(self, rng):
        with pytest.raises(ValueError):
            compose_matching(4, [], combiner="magic")  # type: ignore


class TestComposeVertexCover:
    def _coresets(self, g, k, rng):
        part = random_k_partition(g, k, rng)
        return [vc_coreset(part.piece(i), k=k) for i in range(k)]

    def test_feasible_cover_konig(self, rng):
        g = skewed_bipartite(300, 300, 15, 100, 0.005, rng)
        cs = self._coresets(g, 4, rng)
        cover = compose_vertex_cover(g.n_vertices, cs, combiner="konig",
                                     template=g)
        assert is_vertex_cover(g, cover)

    def test_feasible_cover_two_approx(self, rng):
        g = skewed_bipartite(300, 300, 15, 100, 0.005, rng)
        cs = self._coresets(g, 4, rng)
        cover = compose_vertex_cover(g.n_vertices, cs, combiner="two_approx",
                                     template=g, rng=rng)
        assert is_vertex_cover(g, cover)

    def test_auto_uses_konig_for_bipartite(self, rng):
        from repro.cover.konig import konig_cover

        g = bipartite_gnp(50, 50, 0.05, rng)
        cs = self._coresets(g, 2, rng)
        cover = compose_vertex_cover(g.n_vertices, cs, combiner="auto",
                                     template=g)
        assert is_vertex_cover(g, cover)

    def test_konig_requires_bipartite_template(self, rng):
        from repro.graph.edgelist import Graph
        from repro.graph.generators import gnp

        g = gnp(30, 0.1, rng)
        cs = self._coresets(g, 2, rng)
        with pytest.raises(TypeError):
            compose_vertex_cover(g.n_vertices, cs, combiner="konig",
                                 template=g)

    def test_fixed_vertices_included(self, rng):
        g = skewed_bipartite(300, 300, 15, 200, 0.005, rng)
        cs = self._coresets(g, 2, rng)
        fixed_union = np.unique(np.concatenate(
            [c.fixed_vertices for c in cs]
        ))
        cover = compose_vertex_cover(g.n_vertices, cs, template=g)
        assert np.isin(fixed_union, cover).all()

    def test_unknown_combiner(self, rng):
        with pytest.raises(ValueError):
            compose_vertex_cover(4, [], combiner="magic")  # type: ignore
