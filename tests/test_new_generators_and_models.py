"""Tests for the robustness-sweep generators and the vertex-partition
model (E18/E19 substrate)."""

import numpy as np
import pytest

from repro.graph.generators import clustered_bipartite, power_law_bipartite
from repro.graph.partition import (
    VertexPartitionedGraph,
    random_vertex_partition,
)
from repro.graph.validation import check_bipartite


class TestPowerLawBipartite:
    def test_structure_valid(self, rng):
        g = power_law_bipartite(300, 300, avg_degree=4.0, rng=rng)
        ok, msg = check_bipartite(g)
        assert ok, msg

    def test_mean_degree_near_target(self, rng):
        g = power_law_bipartite(2000, 2000, avg_degree=5.0, rng=rng)
        # Duplicate collapse pulls the realized mean below target a bit.
        realized = g.n_edges / 2000
        assert 2.0 < realized <= 5.5

    def test_heavy_tail_present(self, rng):
        g = power_law_bipartite(3000, 3000, avg_degree=3.0, exponent=2.0,
                                rng=rng)
        left_deg = g.degrees[:3000]
        assert left_deg.max() > 8 * left_deg.mean()

    def test_every_left_vertex_has_an_edge(self, rng):
        g = power_law_bipartite(200, 200, avg_degree=3.0, rng=rng)
        assert (g.degrees[:200] >= 1).all()

    def test_empty_sides(self, rng):
        assert power_law_bipartite(0, 10, 2.0, rng=rng).n_edges == 0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            power_law_bipartite(10, 10, avg_degree=0, rng=rng)
        with pytest.raises(ValueError):
            power_law_bipartite(10, 10, 2.0, exponent=1.0, rng=rng)


class TestClusteredBipartite:
    def test_structure_valid(self, rng):
        g = clustered_bipartite(4, 50, p_in=0.1, p_out=0.001, rng=rng)
        ok, msg = check_bipartite(g)
        assert ok, msg
        assert g.n_left == 200

    def test_blocks_denser_than_background(self, rng):
        g = clustered_bipartite(4, 50, p_in=0.2, p_out=0.001, rng=rng)
        e = g.edges
        right_local = e[:, 1] - g.n_left
        same_block = (e[:, 0] // 50) == (right_local // 50)
        assert same_block.mean() > 0.8

    def test_pure_background(self, rng):
        g = clustered_bipartite(2, 30, p_in=0.0, p_out=0.05, rng=rng)
        assert g.n_edges > 0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            clustered_bipartite(0, 10, 0.1, 0.0, rng=rng)


class TestVertexPartition:
    def test_pieces_cover_all_edges(self, rng):
        from repro.graph.generators import bipartite_gnp
        from repro.utils.arrays import edge_keys

        g = bipartite_gnp(60, 60, 0.08, rng)
        vp = random_vertex_partition(g, 5, rng)
        seen = set()
        for piece in vp.pieces():
            seen.update(edge_keys(piece.edges, g.n_vertices).tolist())
        assert seen == set(edge_keys(g.edges, g.n_vertices).tolist())

    def test_cross_edges_duplicated(self, rng):
        from repro.graph.generators import bipartite_gnp

        g = bipartite_gnp(60, 60, 0.08, rng)
        vp = random_vertex_partition(g, 4, rng)
        total = sum(p.n_edges for p in vp.pieces())
        assert total == pytest.approx(
            g.n_edges * vp.duplication_factor(), abs=1e-6
        )
        assert 1.0 <= vp.duplication_factor() <= 2.0

    def test_duplication_factor_trend(self, rng):
        """E[dup] = 2 − 1/k for random assignment."""
        from repro.graph.generators import bipartite_gnp

        g = bipartite_gnp(400, 400, 0.02, rng)
        for k in (2, 8):
            vp = random_vertex_partition(g, k, rng)
            assert abs(vp.duplication_factor() - (2 - 1 / k)) < 0.1

    def test_piece_contains_all_owned_incident_edges(self, rng):
        from repro.graph.generators import bipartite_gnp

        g = bipartite_gnp(40, 40, 0.1, rng)
        vp = random_vertex_partition(g, 3, rng)
        owned0 = np.flatnonzero(vp.vertex_assignment == 0)
        piece0 = vp.piece(0)
        e = g.edges
        incident = np.isin(e[:, 0], owned0) | np.isin(e[:, 1], owned0)
        assert piece0.n_edges == int(incident.sum())

    def test_validation(self, rng):
        from repro.graph.edgelist import Graph

        g = Graph(4, [(0, 1)])
        with pytest.raises(ValueError):
            VertexPartitionedGraph(g, 0, np.zeros(4, dtype=np.int64))
        with pytest.raises(ValueError):
            VertexPartitionedGraph(g, 2, np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError):
            VertexPartitionedGraph(g, 2, np.array([0, 0, 0, 5]))
        vp = random_vertex_partition(g, 2, rng)
        with pytest.raises(IndexError):
            vp.piece(2)

    def test_runs_under_simultaneous_engine(self, rng):
        """Duck-typing contract: run_simultaneous accepts vertex
        partitions (the E19 pathway)."""
        from repro.core.protocols import matching_coreset_protocol
        from repro.dist.coordinator import run_simultaneous
        from repro.graph.generators import bipartite_gnp
        from repro.matching.verify import is_matching

        g = bipartite_gnp(80, 80, 0.05, rng)
        vp = random_vertex_partition(g, 4, rng)
        res = run_simultaneous(matching_coreset_protocol(), vp, rng)
        assert is_matching(g, res.output)


class TestNewExperimentShapes:
    def test_e16_shape(self):
        from repro.experiments import tables

        t = tables.e16_streaming_orders(n=1200, n_trials=2)
        rows = {r["order"]: r for r in t.rows}
        assert rows["random"]["greedy_ratio"] >= 0.5
        assert rows["random"]["two_phase_ratio"] >= \
            rows["random"]["greedy_ratio"] - 0.02

    def test_e17_shape(self):
        from repro.experiments import tables

        t = tables.e17_exact_kernel(opt_values=(16,), n=1200, k=4,
                                    n_trials=2)
        assert t.rows[0]["exact_random"]
        assert t.rows[0]["exact_adversarial"]

    def test_e18_shape(self):
        from repro.experiments import tables

        t = tables.e18_family_robustness(n=800, k=4, n_trials=1)
        assert len(t.rows) == 5
        assert all(r["vc_feasible"] for r in t.rows)

    def test_e19_shape(self):
        from repro.experiments import tables

        t = tables.e19_vertex_partition_model(n=800, k_values=(4,),
                                              n_trials=2)
        assert t.rows[0]["edge_model_ratio"] <= 9
        assert t.rows[0]["vertex_model_ratio"] <= 9

    def test_e20_shape(self):
        from repro.experiments import tables

        t = tables.e20_concentration(n_values=(400, 1600), k=4, n_trials=4)
        assert all(r["ratio_max"] <= 9 for r in t.rows)
        assert all(r["tail_probability"] <= 0.5 for r in t.rows)
