"""Tests for the trend engine, the shared provenance stamp, and the
hardened artifact ingestion (malformed files warn-and-skip)."""

import json

import pytest

from repro.cli import main
from repro.experiments.artifacts import (
    ARTIFACT_SCHEMA_VERSION,
    ArtifactError,
    load_artifact,
)
from repro.experiments.bench import BENCH_SCHEMA_VERSION
from repro.experiments.report import collect_artifacts
from repro.sweep.trend import (
    TrendThresholds,
    build_series,
    classify_metric,
    collect_trend_docs,
    evaluate_trends,
    render_trend,
)
from repro.utils.provenance import git_state, provenance_stamp

COMMIT_A = "a" * 40
COMMIT_B = "b" * 40


def _run_doc(experiment="e1", commit=COMMIT_A,
             created="2026-01-01T00:00:00+00:00", wall=1.0, ratio=1.10,
             params=None, schema_version=ARTIFACT_SCHEMA_VERSION):
    doc = {
        "schema_version": schema_version,
        "kind": "experiment_run",
        "experiment": experiment,
        "seed": 0,
        "params": dict(params or {"n": 100}),
        "created_at": created,
        "table": {
            "name": "t", "description": "",
            "columns": ["wall_s", "ratio_mean", "n"],
            "rows": [{"wall_s": wall, "ratio_mean": ratio, "n": 100}],
        },
        "per_trial": [],
    }
    if schema_version >= 3:
        doc["host"] = {}
        doc["git_commit"] = commit
        doc["git_dirty"] = False
    return doc


def _write(path, doc):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc) + "\n")


def _two_generations(directory, wall_b=1.0):
    """One e1 run per commit; generation B's wall_s is configurable."""
    _write(directory / "gen-a.json", _run_doc(commit=COMMIT_A, wall=1.0))
    _write(directory / "gen-b.json",
           _run_doc(commit=COMMIT_B, wall=wall_b,
                    created="2026-01-02T00:00:00+00:00"))


class TestClassifyMetric:
    @pytest.mark.parametrize("metric,kind", [
        ("wall_s", "perf"),
        ("per_round_s", "perf"),
        ("elapsed_seconds", "perf"),
        ("wall_clock", "perf"),
        ("time_per_piece", "perf"),
        ("solver_facade.greedy.wall_s", "perf"),
        ("ratio_mean", "quality"),
        ("weight_ratio", "quality"),
        ("e1.ratio_max", "quality"),
        ("n", "info"),
        ("rounds", "info"),
        ("ratio.count", "info"),  # last component rules, not the path
    ])
    def test_by_name(self, metric, kind):
        assert classify_metric(metric) == kind


class TestCollect:
    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_trend_docs(tmp_path / "absent")

    def test_malformed_files_warned_and_skipped(self, tmp_path):
        _write(tmp_path / "good.json", _run_doc())
        (tmp_path / "truncated.json").write_text('{"schema_version": 3, "ki')
        (tmp_path / "binary.json").write_bytes(b"\xff\xfe\x00garbage")
        (tmp_path / "list.json").write_text("[1, 2, 3]")
        (tmp_path / "alien.json").write_text(
            '{"schema_version": 99, "kind": "experiment_run"}')
        with pytest.warns(UserWarning, match="skipping"):
            docs = collect_trend_docs(tmp_path)
        assert [d["experiment"] for d in docs] == ["e1"]

    def test_sweep_manifest_skipped_silently(self, tmp_path):
        _write(tmp_path / "manifest.json",
               {"schema_version": 1, "kind": "sweep_manifest", "cells": []})
        _write(tmp_path / "cells" / "run.json", _run_doc())
        docs = collect_trend_docs(tmp_path)  # recursive, no warning
        assert len(docs) == 1

    def test_bench_schema_gate(self, tmp_path):
        _write(tmp_path / "BENCH_old.json",
               {"schema_version": 2, "kind": "substrate_bench"})
        _write(tmp_path / "BENCH_new.json",
               {"schema_version": BENCH_SCHEMA_VERSION,
                "kind": "substrate_bench", "git_commit": COMMIT_A,
                "created_at": "2026-01-01T00:00:00+00:00",
                "solver_facade": [{"solver": "greedy", "wall_s": 0.5}]})
        with pytest.warns(UserWarning, match="bench schema_version"):
            docs = collect_trend_docs(tmp_path)
        assert len(docs) == 1


class TestBuildSeries:
    def test_keyed_by_experiment_and_metric(self, tmp_path):
        _two_generations(tmp_path)
        series = build_series(collect_trend_docs(tmp_path))
        keys = {s.key for s in series}
        assert ("e1", "wall_s") in keys and ("e1", "ratio_mean") in keys

    def test_commits_ordered_by_created_at(self, tmp_path):
        # Write generation B first: file order must not decide commit order.
        _write(tmp_path / "a-later-name.json",
               _run_doc(commit=COMMIT_B, wall=2.0,
                        created="2026-01-02T00:00:00+00:00"))
        _write(tmp_path / "z-earlier-name.json",
               _run_doc(commit=COMMIT_A, wall=1.0))
        (s,) = [s for s in build_series(collect_trend_docs(tmp_path))
                if s.metric == "wall_s"]
        assert [p.commit for p in s.points] == [COMMIT_A, COMMIT_B]
        assert [p.value for p in s.points] == [1.0, 2.0]

    def test_same_commit_measurements_averaged(self, tmp_path):
        _write(tmp_path / "r1.json", _run_doc(wall=1.0))
        _write(tmp_path / "r2.json", _run_doc(wall=3.0))
        (s,) = [s for s in build_series(collect_trend_docs(tmp_path))
                if s.metric == "wall_s"]
        (point,) = s.points
        assert point.value == 2.0 and point.n_sources == 2

    def test_differing_params_split_series(self, tmp_path):
        _write(tmp_path / "p1.json", _run_doc(params={"k": 4}))
        _write(tmp_path / "p2.json", _run_doc(params={"k": 8}))
        series = build_series(collect_trend_docs(tmp_path))
        labels = {s.experiment for s in series}
        assert len(labels) == 2
        assert all(label.startswith("e1@") for label in labels)

    def test_uniform_params_keep_plain_label(self, tmp_path):
        _two_generations(tmp_path)
        assert {s.experiment
                for s in build_series(collect_trend_docs(tmp_path))} == {"e1"}

    def test_pre_provenance_schema_trends_as_unknown(self, tmp_path):
        _write(tmp_path / "old.json", _run_doc(schema_version=2))
        (s, *_) = build_series(collect_trend_docs(tmp_path))
        assert s.points[0].commit == "unknown"

    def test_bench_docs_become_bench_series(self, tmp_path):
        _write(tmp_path / "BENCH_substrate.json",
               {"schema_version": BENCH_SCHEMA_VERSION,
                "kind": "substrate_bench", "git_commit": COMMIT_A,
                "created_at": "2026-01-01T00:00:00+00:00",
                "solver_facade": [{"solver": "greedy", "wall_s": 0.5}],
                "matching_scan": [{"n": 4000, "optimized_s": 0.02}]})
        series = build_series(collect_trend_docs(tmp_path))
        assert {(s.experiment, s.metric, s.kind) for s in series} == {
            ("bench", "solver_facade.greedy.wall_s", "perf"),
            ("bench", "matching_scan.n4000.optimized_s", "perf"),
        }


class TestEvaluate:
    def _flags(self, tmp_path, wall_b, thresholds=TrendThresholds()):
        _two_generations(tmp_path, wall_b=wall_b)
        series = build_series(collect_trend_docs(tmp_path))
        return evaluate_trends(series, thresholds)

    def test_perf_regression_beyond_tolerance_flagged(self, tmp_path):
        (flag,) = self._flags(tmp_path, wall_b=1.6)
        assert flag.metric == "wall_s" and flag.kind == "perf"
        assert flag.rel_change == pytest.approx(0.6)
        assert "slower" in flag.message

    def test_within_tolerance_not_flagged(self, tmp_path):
        assert self._flags(tmp_path, wall_b=1.1) == []

    def test_improvement_not_flagged(self, tmp_path):
        assert self._flags(tmp_path, wall_b=0.5) == []

    def test_loosened_tolerance_not_flagged(self, tmp_path):
        assert self._flags(tmp_path, wall_b=1.6,
                           thresholds=TrendThresholds(perf_tol=0.9)) == []

    def test_quality_regression_flagged(self, tmp_path):
        _write(tmp_path / "a.json", _run_doc(commit=COMMIT_A, ratio=1.10))
        _write(tmp_path / "b.json",
               _run_doc(commit=COMMIT_B, ratio=1.30,
                        created="2026-01-02T00:00:00+00:00"))
        (flag,) = evaluate_trends(build_series(collect_trend_docs(tmp_path)))
        assert flag.metric == "ratio_mean" and flag.kind == "quality"
        assert "worse" in flag.message

    def test_single_commit_never_flags(self, tmp_path):
        _write(tmp_path / "only.json", _run_doc(wall=100.0))
        assert evaluate_trends(
            build_series(collect_trend_docs(tmp_path))) == []

    def test_info_metric_never_flags(self, tmp_path):
        # The "n" column triples between commits — info metrics stay quiet.
        _write(tmp_path / "a.json", _run_doc(commit=COMMIT_A))
        doc = _run_doc(commit=COMMIT_B,
                       created="2026-01-02T00:00:00+00:00")
        doc["table"]["rows"][0]["n"] = 300
        _write(tmp_path / "b.json", doc)
        assert [f.metric for f in evaluate_trends(
            build_series(collect_trend_docs(tmp_path)))] == []

    def test_render_marks_regressions(self, tmp_path):
        _two_generations(tmp_path, wall_b=1.6)
        series = build_series(collect_trend_docs(tmp_path))
        flags = evaluate_trends(series)
        text = render_trend(series, flags)
        assert "REGRESSION" in text and "wall_s" in text
        clean = render_trend(series, [])
        assert "no regressions flagged" in clean


class TestTrendCLI:
    def test_report_trend_renders(self, tmp_path, capsys):
        _two_generations(tmp_path)
        assert main(["report", "--trend", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "series across" in out and "wall_s" in out

    def test_check_exits_1_on_regression(self, tmp_path, capsys):
        _two_generations(tmp_path, wall_b=1.6)
        assert main(["report", "--trend", str(tmp_path), "--check"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_check_exits_0_when_clean(self, tmp_path):
        _two_generations(tmp_path, wall_b=1.05)
        assert main(["report", "--trend", str(tmp_path), "--check"]) == 0

    def test_tolerance_flags_loosen_the_gate(self, tmp_path):
        _two_generations(tmp_path, wall_b=1.6)
        assert main(["report", "--trend", str(tmp_path), "--check",
                     "--perf-tol", "0.9"]) == 0

    def test_missing_directory_exits_2(self, tmp_path, capsys):
        assert main(["report", "--trend", str(tmp_path / "absent")]) == 2
        assert "does not exist" in capsys.readouterr().err


class TestProvenance:
    def test_stamp_shape(self):
        stamp = provenance_stamp()
        assert set(stamp) == {"created_at", "host", "git_commit",
                              "git_dirty"}
        assert set(stamp["host"]) == {"python", "platform", "cpu_count"}

    def test_git_state_in_checkout(self):
        commit, dirty = git_state()
        # The test tree is a git checkout, so both fields resolve.
        assert isinstance(commit, str) and len(commit) == 40
        assert int(commit, 16) >= 0
        assert isinstance(dirty, bool)

    def test_git_state_outside_checkout(self, tmp_path):
        assert git_state(tmp_path) == (None, None)

    def test_run_artifacts_carry_provenance(self, tmp_path):
        from repro.experiments.registry import get_experiment

        table = get_experiment("e1").run(
            n_values=(200,), k_values=(2,), n_trials=1,
            archive_dir=tmp_path)
        doc = load_artifact(table.artifact_path)
        assert doc["schema_version"] == ARTIFACT_SCHEMA_VERSION == 3
        assert len(doc["git_commit"]) == 40
        assert isinstance(doc["git_dirty"], bool)
        assert set(doc["host"]) == {"python", "platform", "cpu_count"}

    def test_bench_schema_is_provenance_generation(self):
        assert BENCH_SCHEMA_VERSION == 4


class TestHardenedReportIngestion:
    """Satellite: report.collect_artifacts survives malformed files."""

    def test_collect_artifacts_skips_bad_files_with_warning(self, tmp_path):
        _write(tmp_path / "e1-run-1.json", _run_doc())
        (tmp_path / "truncated.json").write_text(
            '{"schema_version": 3, "experiment": "e1", "tab')
        (tmp_path / "binary.json").write_bytes(b"\x80\x81\x82")
        (tmp_path / "list.json").write_text("[]")
        (tmp_path / "future.json").write_text(
            '{"schema_version": 42, "kind": "experiment_run", '
            '"experiment": "e1", "table": {}}')
        with pytest.warns(UserWarning, match="skipping unreadable"):
            docs = collect_artifacts(tmp_path)
        assert [d["experiment"] for d in docs] == ["e1"]

    def test_load_artifact_rejects_non_utf8(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_bytes(b"\xff\xfe not json")
        with pytest.raises(ArtifactError, match="cannot read"):
            load_artifact(path)
