"""Tests for the executor lifecycle: persistent pools, close semantics,
broken-pool recovery, and pool-reuse determinism.

The load-bearing additions of the pool-lifecycle work (docs/PARALLELISM.md
§6): an executor's pool is created lazily, *reused* across map() calls,
released by an idempotent close(), and a closed executor refuses work the
same way on every backend.  Reuse must be invisible to outputs: two
consecutive runs on one persistent executor are bit-identical to two fresh
serial runs.
"""

import os

import numpy as np
import pytest

from repro.dist.coordinator import run_simultaneous
from repro.dist.executor import (
    Executor,
    ExecutorClosedError,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    WorkerPoolBrokenError,
    resolve_executor,
)
from repro.dist.mapreduce import MapReduceSimulator
from repro.dist.remote import RemoteExecutor
from repro.graph.generators import bipartite_gnp, gnp
from repro.graph.partition import random_k_partition

ALL_EXECUTORS = [SerialExecutor, ThreadExecutor, ProcessExecutor]


def _remote():
    return RemoteExecutor(max_workers=2, connect_timeout=60)


#: One factory per backend, remote included: the shared lifecycle contract
#: is asserted against all four through the same parametrized tests.
LIFECYCLE_FACTORIES = [
    pytest.param(SerialExecutor, id="serial"),
    pytest.param(lambda: ThreadExecutor(max_workers=2), id="threads"),
    pytest.param(lambda: ProcessExecutor(max_workers=2), id="processes"),
    pytest.param(_remote, id="remote"),
]


def _square(x):
    return x * x


def _pid(_):
    return os.getpid()


def _crash(flag):
    if flag:
        os._exit(13)
    return flag


def _random_route_k3(i, edges, rng):
    return rng.integers(0, 3, size=edges.shape[0])


# --------------------------------------------------------------------- #
# close / context-manager semantics
# --------------------------------------------------------------------- #
class TestCloseSemantics:
    @pytest.mark.parametrize("cls", ALL_EXECUTORS)
    def test_close_is_idempotent(self, cls):
        ex = cls()
        ex.map(_square, [1, 2, 3])
        ex.close()
        ex.close()  # second close must be a no-op, not an error
        assert ex.closed

    @pytest.mark.parametrize("cls", ALL_EXECUTORS)
    def test_map_after_close_raises(self, cls):
        ex = cls()
        ex.close()
        with pytest.raises(ExecutorClosedError, match="closed"):
            ex.map(_square, [1])

    @pytest.mark.parametrize("cls", ALL_EXECUTORS)
    def test_context_manager_closes(self, cls):
        with cls() as ex:
            assert ex.map(_square, [2, 3]) == [4, 9]
            assert not ex.closed
        assert ex.closed
        with pytest.raises(ExecutorClosedError):
            ex.map(_square, [1])

    def test_entering_a_closed_executor_raises(self):
        ex = ThreadExecutor(max_workers=2)
        ex.close()
        with pytest.raises(ExecutorClosedError):
            with ex:
                pass  # pragma: no cover - must not be reached


# --------------------------------------------------------------------- #
# the shared lifecycle contract, all four backends (remote included)
# --------------------------------------------------------------------- #
class TestLifecycleContract:
    """PR 4's contract, asserted uniformly: double close is a no-op,
    submit-after-close raises, the context manager closes, and a fresh
    executor has created zero pools."""

    @pytest.mark.parametrize("factory", LIFECYCLE_FACTORIES)
    def test_double_close_is_a_noop(self, factory):
        ex = factory()
        ex.map(_square, [1, 2, 3])
        ex.close()
        ex.close()
        ex.close()  # any number of closes: still just closed
        assert ex.closed

    @pytest.mark.parametrize("factory", LIFECYCLE_FACTORIES)
    def test_submit_after_close_raises(self, factory):
        ex = factory()
        ex.close()
        with pytest.raises(ExecutorClosedError, match="closed"):
            ex.map(_square, [1])
        with pytest.raises(ExecutorClosedError):
            ex.map(_square, [])  # even an empty barrier is refused

    @pytest.mark.parametrize("factory", LIFECYCLE_FACTORIES)
    def test_close_without_any_map_is_fine(self, factory):
        ex = factory()
        ex.close()
        assert ex.closed

    @pytest.mark.parametrize("factory", LIFECYCLE_FACTORIES)
    def test_context_manager_closes(self, factory):
        with factory() as ex:
            assert ex.map(_square, [2, 3]) == [4, 9]
        assert ex.closed

    @pytest.mark.parametrize("factory", LIFECYCLE_FACTORIES[1:])
    def test_pool_counter_starts_at_zero_and_sticks_at_one(self, factory):
        ex = factory()
        try:
            assert ex.pools_created == 0  # lazy: no pool before first map
            ex.map(_square, range(4))
            assert ex.pools_created == 1
            ex.map(_square, range(4))
            ex.map(_square, range(4))
            assert ex.pools_created == 1  # persistent, not per-barrier
        finally:
            ex.close()


# --------------------------------------------------------------------- #
# pool-replacement counters (the observable half of discard/replace)
# --------------------------------------------------------------------- #
class TestPoolReplacementCounter:
    def test_process_counter_increments_on_replacement(self):
        with ProcessExecutor(max_workers=2) as ex:
            ex.map(_square, range(4))
            assert ex.pools_created == 1
            with pytest.raises(WorkerPoolBrokenError):
                ex.map(_crash, [True, False, True, False])
            assert ex.pools_created == 1  # discard alone creates nothing
            assert ex.map(_square, [1, 2, 3]) == [1, 4, 9]
            assert ex.pools_created == 2  # the replacement pool

    def test_singleton_maps_never_bump_the_counter(self):
        with ProcessExecutor(max_workers=2) as ex:
            ex.map(_square, [5])
            assert ex.pools_created == 0


# --------------------------------------------------------------------- #
# pool persistence
# --------------------------------------------------------------------- #
class TestPoolPersistence:
    def test_process_pool_is_reused_across_maps(self):
        with ProcessExecutor(max_workers=2) as ex:
            first = set(ex.map(_pid, range(8)))
            pool = ex._pool
            second = set(ex.map(_pid, range(8)))
            assert ex._pool is pool  # same pool object served both calls
        # At least one worker process served both maps (the pool may spawn
        # workers on demand, so full PID-set equality is not guaranteed).
        assert first & second
        assert os.getpid() not in first | second

    def test_thread_pool_is_reused(self):
        with ThreadExecutor(max_workers=2) as ex:
            assert ex._pool is None  # lazy: no pool before the first map
            ex.map(_square, [1, 2, 3])
            pool = ex._pool
            assert pool is not None
            ex.map(_square, [4, 5, 6])
            assert ex._pool is pool

    def test_singleton_map_does_not_spin_up_pool(self):
        with ProcessExecutor(max_workers=2) as ex:
            assert ex.map(_square, [3]) == [9]
            assert ex._pool is None

    def test_broken_pool_is_discarded_and_replaced(self):
        with ProcessExecutor(max_workers=2) as ex:
            with pytest.raises(WorkerPoolBrokenError, match="died"):
                ex.map(_crash, [True, False, True, False])
            # The next barrier transparently gets a fresh pool.
            assert ex.map(_square, [1, 2, 3]) == [1, 4, 9]


# --------------------------------------------------------------------- #
# pool-reuse determinism
# --------------------------------------------------------------------- #
class TestPoolReuseDeterminism:
    def test_two_runs_on_one_pool_match_two_fresh_serial_runs(self):
        from repro.core.protocols import matching_coreset_protocol

        g = bipartite_gnp(60, 60, 0.08, 7)
        part = random_k_partition(g, 4, 8)
        proto = matching_coreset_protocol()

        serial_a = run_simultaneous(proto, part, 9, executor="serial")
        serial_b = run_simultaneous(proto, part, 10, executor="serial")
        with ProcessExecutor(max_workers=2) as ex:
            pooled_a = run_simultaneous(proto, part, 9, executor=ex)
            pooled_b = run_simultaneous(proto, part, 10, executor=ex)
        np.testing.assert_array_equal(serial_a.output, pooled_a.output)
        np.testing.assert_array_equal(serial_b.output, pooled_b.output)
        assert serial_a.ledger.summary() == pooled_a.ledger.summary()
        assert serial_b.ledger.summary() == pooled_b.ledger.summary()

    def test_mapreduce_rounds_share_one_pool(self):
        """All rounds of a job run on the same persistent pool, and the
        results stay bit-identical to serial round for round."""
        g = gnp(70, 0.1, 5)
        pieces = [g.edges[i::3] for i in range(3)]

        serial_sim = MapReduceSimulator(70, 3, rng=6, executor="serial")
        serial_sim.load(pieces)
        serial_sim.shuffle_round(_random_route_k3)
        serial_sim.shuffle_round(_random_route_k3)

        with ProcessExecutor(max_workers=2) as ex:
            sim = MapReduceSimulator(70, 3, rng=6, executor=ex)
            sim.load(pieces)
            sim.shuffle_round(_random_route_k3)
            pool = ex._pool
            assert pool is not None
            sim.shuffle_round(_random_route_k3)
            assert ex._pool is pool  # round 2 reused round 1's pool
        for i in range(3):
            np.testing.assert_array_equal(
                serial_sim.machine_edges(i), sim.machine_edges(i))


# --------------------------------------------------------------------- #
# engine ownership: resolved executors are closed, instances are not
# --------------------------------------------------------------------- #
class TestOwnership:
    def test_run_simultaneous_leaves_instances_open(self):
        from repro.core.protocols import matching_coreset_protocol

        g = bipartite_gnp(40, 40, 0.1, 2)
        part = random_k_partition(g, 3, 4)
        with ProcessExecutor(max_workers=2) as ex:
            run_simultaneous(matching_coreset_protocol(), part, 5,
                             executor=ex)
            assert not ex.closed  # engine must not close a caller's pool
            run_simultaneous(matching_coreset_protocol(), part, 5,
                             executor=ex)

    def test_simulator_close_spares_caller_instances(self):
        with ThreadExecutor(max_workers=2) as ex:
            sim = MapReduceSimulator(10, 2, rng=0, executor=ex)
            sim.close()
            assert not ex.closed
        sim2 = MapReduceSimulator(10, 2, rng=0, executor="threads")
        owned = sim2.executor
        sim2.close()
        assert owned.closed  # resolved-by-name executor belongs to the sim

    def test_run_trials_closes_resolved_executor(self, monkeypatch):
        from repro.experiments.harness import run_trials

        created = []
        original = resolve_executor

        def tracking_resolve(spec=None, workers=None):
            ex = original(spec, workers)
            created.append(ex)
            return ex

        monkeypatch.setattr("repro.experiments.harness.resolve_executor",
                            tracking_resolve)
        run_trials(_uniform_trial, 4, seed=5, executor="threads")
        assert created and all(ex.closed for ex in created)

    def test_simulator_context_manager(self):
        with MapReduceSimulator(10, 2, rng=0, executor="threads") as sim:
            g = gnp(10, 0.3, 1)
            sim.load([g.edges[:2], g.edges[2:]])
        assert sim.executor.closed


def _uniform_trial(s):
    gen = np.random.default_rng(s)
    return {"x": float(gen.uniform())}
