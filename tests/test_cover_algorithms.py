"""Tests for the vertex-cover algorithms (two_approx, greedy, König, exact,
LP) against each other and against brute force."""

from itertools import combinations

import numpy as np
import pytest

from conftest import nx_matching_number
from repro.cover.exact import exact_cover, exact_cover_size
from repro.cover.greedy import greedy_cover
from repro.cover.konig import konig_cover
from repro.cover.lp import lp_cover, lp_lower_bound
from repro.cover.two_approx import matching_based_cover
from repro.cover.verify import cover_mask, is_vertex_cover, uncovered_edges
from repro.graph.edgelist import Graph
from repro.graph.generators import (
    bipartite_gnp,
    bipartite_star_forest,
    complete_graph,
    gnp,
    path_graph,
    star_forest,
)


def brute_force_vc_size(g: Graph) -> int:
    for size in range(g.n_vertices + 1):
        for sub in combinations(range(g.n_vertices), size):
            if is_vertex_cover(g, np.array(sub, dtype=np.int64)):
                return size
    raise AssertionError("unreachable")


class TestVerify:
    def test_uncovered_edges_certificate(self, tiny_graph):
        bad = uncovered_edges(tiny_graph, np.array([0]))
        assert bad.shape[0] > 0
        full = uncovered_edges(tiny_graph, np.arange(6))
        assert full.shape[0] == 0

    def test_cover_mask_validates(self, tiny_graph):
        with pytest.raises(ValueError):
            cover_mask(tiny_graph, np.array([99]))

    def test_empty_cover_on_empty_graph(self):
        assert is_vertex_cover(Graph(3), np.zeros(0, dtype=np.int64))


class TestTwoApprox:
    def test_feasible_and_bounded(self, rng):
        for _ in range(5):
            g = gnp(30, 0.1, rng)
            c = matching_based_cover(g, rng=rng)
            assert is_vertex_cover(g, c)
            assert c.shape[0] <= 2 * nx_matching_number(g)

    def test_even_size(self, rng):
        g = gnp(40, 0.1, rng)
        assert matching_based_cover(g, rng=rng).shape[0] % 2 == 0

    def test_with_supplied_matching(self, rng):
        from repro.matching.maximal import greedy_maximal_matching

        g = gnp(30, 0.15, rng)
        m = greedy_maximal_matching(g, order="input")
        c = matching_based_cover(g, matching=m)
        assert is_vertex_cover(g, c)
        assert c.shape[0] == 2 * m.shape[0]


class TestGreedyCover:
    def test_feasible(self, rng):
        for _ in range(5):
            g = gnp(50, 0.1, rng)
            c = greedy_cover(g)
            assert is_vertex_cover(g, c)

    def test_star_takes_center(self):
        g = star_forest(3, 5)
        c = greedy_cover(g)
        assert c.tolist() == [0, 1, 2]

    def test_empty(self):
        assert greedy_cover(Graph(5)).shape == (0,)

    def test_path(self):
        c = greedy_cover(path_graph(5))
        assert is_vertex_cover(path_graph(5), c)
        assert c.shape[0] == 2  # optimal on P5


class TestKonig:
    def test_size_equals_matching_number(self, rng):
        for _ in range(8):
            g = bipartite_gnp(25, 30, 0.1, rng)
            c = konig_cover(g)
            assert is_vertex_cover(g, c)
            assert c.shape[0] == nx_matching_number(g)

    def test_star_forest_centers(self):
        g = bipartite_star_forest(4, 6)
        c = konig_cover(g)
        assert c.shape[0] == 4
        assert set(c.tolist()) == {0, 1, 2, 3}

    def test_empty(self):
        from repro.graph.bipartite import BipartiteGraph

        assert konig_cover(BipartiteGraph(3, 3)).shape == (0,)

    def test_perfect_matching_graph(self, rng):
        from repro.graph.generators import random_perfect_matching

        g = random_perfect_matching(20, 20, rng=rng)
        assert konig_cover(g).shape[0] == 20


class TestExactCover:
    def test_matches_brute_force(self, rng):
        for _ in range(6):
            g = gnp(11, 0.25, rng)
            c = exact_cover(g)
            assert is_vertex_cover(g, c)
            assert c.shape[0] == brute_force_vc_size(g)

    def test_complete_graph(self):
        assert exact_cover_size(complete_graph(6)) == 5

    def test_path(self):
        assert exact_cover_size(path_graph(7)) == 3

    def test_empty(self):
        assert exact_cover(Graph(4)).shape == (0,)

    def test_budget_guard(self, rng):
        g = gnp(60, 0.5, rng)
        with pytest.raises(RuntimeError, match="budget"):
            exact_cover(g, node_budget=3)

    def test_bipartite_agrees_with_konig(self, rng):
        for _ in range(5):
            g = bipartite_gnp(12, 12, 0.2, rng)
            assert exact_cover_size(g) == konig_cover(g).shape[0]


class TestLP:
    def test_lower_bound_below_opt(self, rng):
        for _ in range(5):
            g = gnp(14, 0.2, rng)
            lb = lp_lower_bound(g)
            opt = exact_cover_size(g)
            assert lb <= opt + 1e-6
            assert lb >= opt / 2 - 1e-6  # half-integrality

    def test_rounding_feasible_and_2approx(self, rng):
        g = gnp(40, 0.1, rng)
        c = lp_cover(g)
        assert is_vertex_cover(g, c)
        assert c.shape[0] <= 2 * lp_lower_bound(g) + 1e-6

    def test_empty(self):
        assert lp_lower_bound(Graph(5)) == 0.0
        assert lp_cover(Graph(5)).shape == (0,)

    def test_star_lp(self):
        # Star: LP puts 1 on the center (or 1/2 everywhere); value ≤ ... = 1?
        # For a star K_{1,t}, LP optimum is 1 (x_center = 1).
        g = star_forest(1, 6)
        assert lp_lower_bound(g) == pytest.approx(1.0, abs=1e-6)


class TestVertexCoverNumber:
    def test_dispatcher(self, rng):
        from repro.cover import vertex_cover_number

        bg = bipartite_gnp(10, 10, 0.2, rng)
        assert vertex_cover_number(bg) == konig_cover(bg).shape[0]
        gg = gnp(10, 0.3, rng)
        assert vertex_cover_number(gg) == exact_cover_size(gg)
