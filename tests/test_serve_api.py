"""The ``repro serve`` HTTP API under concurrency (threads backend).

The load-bearing contract is **serving determinism**: a solve served
over HTTP — batched with arbitrary concurrent neighbours — must be
bit-identical to the same solve run in-process with :func:`repro.solve
.solve`.  Everything the server adds (pinning, micro-batching, partition
-view reuse, capability resolution) must be invisible in the result.

These tests run the threads executor so solver code shares the test
process (fast, and partition-view leasing is exercised); the process-
backend and fault paths live in ``tests/test_serve_faults.py``.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from chaos import run_async, serve_harness
from repro.solve import RunContext, resolve_capability, solve
from repro.solve.graphs import load_graph

from repro.serve import ServeClient, ServeClientError

GRAPH_SPEC = "planted:n=400,p=0.02"
GRAPH_SEED = 7
DEMO = (("demo", GRAPH_SPEC, GRAPH_SEED),)


def reference(solver: str, seed: int, k: int = 4, **params):
    """The in-process ground truth a served solve must reproduce."""
    graph = load_graph(GRAPH_SPEC, rng=GRAPH_SEED)
    return solve(graph, solver, RunContext(seed=seed, k=k), **params)


def assert_matches_reference(doc, ref):
    """Served result document == in-process SolveResult, bit for bit."""
    want = ref.to_dict(include_certificate=True)
    got = doc["result"]
    assert got["solver"] == want["solver"]
    assert got["value"] == want["value"]
    assert got["size"] == want["size"]
    assert got["verified"] is True
    if "certificate" in got:
        assert got["certificate"] == want["certificate"]
    # wall_time differs by machine load; every other stat is deterministic.
    got_stats = {k: v for k, v in got["stats"].items() if "time" not in k}
    want_stats = {k: v for k, v in want["stats"].items() if "time" not in k}
    assert got_stats == want_stats


# --------------------------------------------------------------------- #
# determinism under concurrency
# --------------------------------------------------------------------- #
class TestServingDeterminism:
    def test_concurrent_identical_requests_are_bit_identical(self):
        """N identical in-flight requests coalesce into batches, and every
        one comes back identical to the serial in-process run."""
        ref = reference("matching.coreset", seed=3)

        async def main():
            async with serve_harness(graphs=DEMO,
                                     batch_window_ms=20.0) as (server, client):
                docs = await asyncio.gather(*(
                    client.solve("demo", solver="matching.coreset", seed=3,
                                 k=4, certificate=True)
                    for _ in range(8)
                ))
                return docs

        docs = run_async(main())
        assert len(docs) == 8
        for doc in docs:
            assert_matches_reference(doc, ref)
        # The wide window guarantees they shared barriers: at least one
        # request observed neighbours in its batch.
        assert max(d["batch_size"] for d in docs) > 1

    def test_mixed_seeds_stay_isolated_in_one_batch(self):
        """Different seeds batched together must not bleed into each
        other — each result equals its own serial reference."""
        seeds = [0, 1, 2, 3, 4, 5]
        refs = {s: reference("matching.coreset", seed=s) for s in seeds}

        async def main():
            async with serve_harness(graphs=DEMO,
                                     batch_window_ms=20.0) as (_, client):
                return await asyncio.gather(*(
                    client.solve("demo", solver="matching.coreset",
                                 seed=s, k=4, certificate=True)
                    for s in seeds
                ))

        for seed, doc in zip(seeds, run_async(main())):
            assert_matches_reference(doc, refs[seed])

    def test_mixed_solvers_share_a_graph_batch(self):
        ref_m = reference("matching.greedy_maximal", seed=0)
        ref_v = reference("vertex_cover.two_approx", seed=0)

        async def main():
            async with serve_harness(graphs=DEMO,
                                     batch_window_ms=20.0) as (_, client):
                return await asyncio.gather(
                    client.solve("demo", solver="matching.greedy_maximal",
                                 seed=0, certificate=True),
                    client.solve("demo", solver="vertex_cover.two_approx",
                                 seed=0, certificate=True),
                )

        doc_m, doc_v = run_async(main())
        assert_matches_reference(doc_m, ref_m)
        assert_matches_reference(doc_v, ref_v)

    def test_repeat_waves_reuse_partition_views(self):
        """Same (k, seed) across waves: the pinned partition is built once
        and every later solve hits the cache — still bit-identical."""
        ref = reference("matching.coreset", seed=9)

        async def main():
            async with serve_harness(graphs=DEMO) as (server, client):
                for _ in range(3):
                    docs = await asyncio.gather(*(
                        client.solve("demo", solver="matching.coreset",
                                     seed=9, k=4, certificate=True)
                        for _ in range(3)
                    ))
                    for doc in docs:
                        assert_matches_reference(doc, ref)
                return await client.stats()

        stats = run_async(main())["store"]
        assert stats["views_created"] == 1
        assert stats["view_hits"] == 8


# --------------------------------------------------------------------- #
# capability resolution over HTTP
# --------------------------------------------------------------------- #
class TestCapabilityRouting:
    def test_problem_only_resolves_the_registry_best(self):
        expected = resolve_capability(
            "matching", graph=load_graph(GRAPH_SPEC, rng=GRAPH_SEED),
        )

        async def main():
            async with serve_harness(graphs=DEMO) as (_, client):
                return await client.solve("demo", problem="matching", seed=0)

        doc = run_async(main())
        assert doc["solver"] == expected.name
        assert not expected.baseline

    def test_capability_solve_equals_named_solve(self):
        async def main():
            async with serve_harness(graphs=DEMO) as (_, client):
                by_cap = await client.solve(
                    "demo", problem="matching", model="coreset",
                    guarantee="O(1)-approx", seed=5, k=4, certificate=True,
                )
                by_name = await client.solve(
                    "demo", solver=by_cap["solver"], seed=5, k=4,
                    certificate=True,
                )
                return by_cap, by_name

        by_cap, by_name = run_async(main())
        assert by_cap["solver"] == "matching.coreset"
        strip = lambda d: {k: v for k, v in d.items() if k != "wall_time_s"}
        assert strip(by_cap["result"]) == strip(by_name["result"])

    def test_impossible_capability_is_a_422(self):
        async def main():
            async with serve_harness(graphs=DEMO) as (_, client):
                with pytest.raises(ServeClientError) as err:
                    await client.solve("demo", problem="matching",
                                       guarantee="1.0001-approx", seed=0)
                return err.value

        exc = run_async(main())
        assert exc.status == 422
        assert exc.code == "unresolvable_capability"
        assert exc.doc["error"]["query"]["problem"] == "matching"
        assert exc.doc["error"]["candidates"]

    def test_solvers_route_reports_resolution_order(self):
        async def main():
            async with serve_harness(graphs=DEMO) as (_, client):
                return await client.solvers(problem="matching",
                                            model="coreset")

        doc = run_async(main())
        names = {s["name"] for s in doc["solvers"]}
        assert "matching.coreset" in names and "vertex_cover.lp" in names
        order = doc["resolution_order"]
        assert order[0] == "matching.coreset"
        assert order[-1] == "matching.send_everything"  # baseline last


# --------------------------------------------------------------------- #
# /compare
# --------------------------------------------------------------------- #
class TestCompare:
    def test_side_by_side_matches_individual_references(self):
        solvers = ["matching.coreset", "matching.greedy_maximal",
                   "matching.send_everything"]
        refs = {name: reference(name, seed=2) for name in solvers}

        async def main():
            async with serve_harness(graphs=DEMO) as (_, client):
                return await client.compare("demo", solvers, seed=2, k=4)

        doc = run_async(main())
        assert [c["solver"] for c in doc["solvers"]] == solvers
        for column in doc["solvers"]:
            assert column["ok"]
            assert column["result"]["value"] == refs[column["solver"]].value
            assert column["result"]["verified"]
        summary = doc["summary"]
        assert summary == {
            "completed": 3, "failed": 0,
            "best_value": max(r.value for r in refs.values()),
        }

    def test_entries_accept_params_and_labels(self):
        ref = reference("matching.subsampled_coreset", seed=1, alpha=2.0)

        async def main():
            async with serve_harness(graphs=DEMO) as (_, client):
                return await client.compare("demo", [
                    {"solver": "matching.subsampled_coreset",
                     "params": {"alpha": 2.0}, "label": "alpha=2"},
                    "matching.greedy_maximal",
                ], seed=1, k=4)

        doc = run_async(main())
        first = doc["solvers"][0]
        assert first["label"] == "alpha=2"
        assert first["params"] == {"alpha": 2.0}
        assert first["result"]["value"] == ref.value

    def test_compare_needs_two_entries(self):
        async def main():
            async with serve_harness(graphs=DEMO) as (_, client):
                with pytest.raises(ServeClientError) as err:
                    await client.compare("demo", ["matching.coreset"], k=4)
                return err.value

        exc = run_async(main())
        assert (exc.status, exc.code) == (400, "bad_request")


# --------------------------------------------------------------------- #
# graph administration
# --------------------------------------------------------------------- #
class TestGraphAdmin:
    def test_register_solve_unregister_roundtrip(self):
        async def main():
            async with serve_harness() as (_, client):
                assert await client.graphs() == []
                info = await client.register_graph("g1", "gnp:n=120,p=0.05",
                                                   seed=3)
                assert info["id"] == "g1"
                assert info["n_vertices"] == 120
                listed = await client.graphs()
                assert [g["id"] for g in listed] == ["g1"]
                doc = await client.solve("g1", problem="matching", seed=0)
                assert doc["result"]["verified"]
                gone = await client.unregister_graph("g1")
                assert gone["unregistered"]["id"] == "g1"
                with pytest.raises(ServeClientError) as err:
                    await client.solve("g1", problem="matching", seed=0)
                return err.value

        exc = run_async(main())
        assert (exc.status, exc.code) == (404, "not_found")

    def test_duplicate_registration_conflicts(self):
        async def main():
            async with serve_harness(graphs=DEMO) as (_, client):
                with pytest.raises(ServeClientError) as err:
                    await client.register_graph("demo", "gnp:n=50", seed=0)
                return err.value

        exc = run_async(main())
        assert (exc.status, exc.code) == (409, "conflict")

    def test_get_one_graph_info(self):
        async def main():
            async with serve_harness(graphs=DEMO) as (_, client):
                return await client.call("GET", "/graphs/demo")

        info = run_async(main())
        assert info["id"] == "demo"
        assert info["source"] == GRAPH_SPEC
        assert info["seed"] == GRAPH_SEED
        assert info["n_vertices"] == 400


# --------------------------------------------------------------------- #
# validation and protocol errors
# --------------------------------------------------------------------- #
class TestValidation:
    @pytest.fixture(scope="class")
    def errors(self):
        """One server boot, every 4xx probe — (status, code) per case."""
        cases = {}

        async def main():
            async with serve_harness(graphs=DEMO) as (_, client):
                async def probe(name, method, path, doc=None):
                    status, parsed = await client.request(method, path, doc)
                    cases[name] = (status, (parsed or {}).get("error", {}))

                await probe("no_route", "GET", "/nope")
                await probe("wrong_method", "GET", "/solve")
                await probe("missing_graph", "POST", "/solve",
                            {"graph": "ghost", "solver": "matching.maximum"})
                await probe("unknown_solver", "POST", "/solve",
                            {"graph": "demo", "solver": "matching.quantum"})
                await probe("solver_and_problem", "POST", "/solve",
                            {"graph": "demo", "solver": "matching.maximum",
                             "problem": "matching"})
                await probe("neither", "POST", "/solve", {"graph": "demo"})
                await probe("coreset_without_k", "POST", "/solve",
                            {"graph": "demo", "solver": "matching.coreset"})
                await probe("unknown_param", "POST", "/solve",
                            {"graph": "demo", "solver": "matching.coreset",
                             "k": 4, "params": {"warp": 9}})
                await probe("partition_param", "POST", "/solve",
                            {"graph": "demo", "solver": "matching.coreset",
                             "k": 4, "params": {"partition": [0, 1]}})
                await probe("non_scalar_param", "POST", "/solve",
                            {"graph": "demo", "solver": "matching.coreset",
                             "k": 4, "params": {"alpha": [1, 2]}})
                await probe("empty_body", "POST", "/solve")
                await probe("bad_graph_id", "POST", "/graphs",
                            {"id": "a/b", "source": "gnp:n=10"})
                await probe("bad_source", "POST", "/graphs",
                            {"id": "g", "source": "nosuchgen:n=10"})

        run_async(main())
        return cases

    @pytest.mark.parametrize("case,status,code", [
        ("no_route", 404, "not_found"),
        ("wrong_method", 405, "method_not_allowed"),
        ("missing_graph", 404, "not_found"),
        ("unknown_solver", 404, "not_found"),
        ("solver_and_problem", 400, "bad_request"),
        ("neither", 400, "bad_request"),
        ("coreset_without_k", 400, "bad_request"),
        ("unknown_param", 400, "bad_request"),
        ("partition_param", 400, "bad_request"),
        ("non_scalar_param", 400, "bad_request"),
        ("empty_body", 400, "bad_request"),
        ("bad_graph_id", 400, "bad_request"),
        ("bad_source", 400, "bad_request"),
    ])
    def test_error_table(self, errors, case, status, code):
        got_status, error = errors[case]
        assert got_status == status
        assert error.get("code") == code
        assert error.get("message")

    def test_malformed_json_is_a_400_not_a_crash(self):
        async def main():
            async with serve_harness(graphs=DEMO) as (_, client):
                reader, writer = await asyncio.open_connection(
                    client.host, client.port)
                body = b"{not json"
                writer.write(
                    b"POST /solve HTTP/1.1\r\nHost: x\r\n"
                    b"Connection: close\r\n"
                    b"Content-Length: %d\r\n\r\n%s" % (len(body), body))
                await writer.drain()
                status, parsed, _headers = await ServeClient._read_response(reader)
                writer.close()
                await writer.wait_closed()
                # server survived:
                health = await client.healthz()
                return status, parsed, health

        status, parsed, health = run_async(main())
        assert status == 400
        assert parsed["error"]["code"] == "bad_request"
        assert health["ok"]


# --------------------------------------------------------------------- #
# protocol niceties
# --------------------------------------------------------------------- #
class TestProtocol:
    def test_healthz_stats_and_flags(self):
        async def main():
            async with serve_harness(graphs=DEMO) as (server, client):
                health = await client.healthz()
                lean = await client.solve("demo", solver="matching.maximum",
                                          seed=0, verify=False)
                full = await client.solve("demo", solver="matching.maximum",
                                          seed=0, certificate=True)
                stats = await client.stats()
                return health, lean, full, stats

        health, lean, full, stats = run_async(main())
        assert health == {"ok": True, "graphs": 1}
        assert lean["result"]["verified"] is False  # verify=false skipped it
        assert "certificate" not in lean["result"]
        assert full["result"]["verified"] is True
        assert len(full["result"]["certificate"]) == full["result"]["size"]
        assert stats["server"]["requests_total"] >= 4
        assert stats["server"]["errors_total"] == 0
        assert stats["executor"]["backend"] == "threads"
        assert stats["executor"]["ship_handles"] is False
        assert stats["batcher"]["requests"] == 2
        assert stats["store"]["graphs"] == 1

    def test_keep_alive_serves_many_requests_per_connection(self):
        async def main():
            async with serve_harness(graphs=DEMO) as (_, client):
                reader, writer = await asyncio.open_connection(
                    client.host, client.port)
                statuses = []
                for i in range(3):
                    last = i == 2
                    body = json.dumps({
                        "graph": "demo", "solver": "matching.greedy_maximal",
                        "seed": i,
                    }).encode()
                    conn = b"close" if last else b"keep-alive"
                    writer.write(
                        b"POST /solve HTTP/1.1\r\nHost: x\r\n"
                        b"Connection: %s\r\nContent-Length: %d\r\n\r\n%s"
                        % (conn, len(body), body))
                    await writer.drain()
                    status, parsed, _headers = await ServeClient._read_response(reader)
                    statuses.append((status, parsed["result"]["verified"]))
                writer.close()
                await writer.wait_closed()
                return statuses

        assert run_async(main()) == [(200, True)] * 3
