"""Fault injection against the remote executor (driven by tests/chaos.py).

The claims under test are the tentpole's robustness story: a worker killed
mid-round is retried on a replacement and the run still matches serial
bit-for-bit; a hung worker trips the per-task timeout and the task moves
on; exhausting the retry budget surfaces a clean ExecutorError; zero
connected workers degrades to the ``processes`` backend with a warning
instead of hanging; and none of it leaks into later barriers.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from chaos import boom, chaos, square
from repro.core.protocols import matching_coreset_protocol
from repro.dist.coordinator import run_simultaneous
from repro.dist.executor import (
    ExecutorError,
    WorkerPoolBrokenError,
)
from repro.dist.remote import (
    RemoteDegradedWarning,
    RemoteExecutor,
    RemoteTaskError,
)
from repro.graph.generators import planted_matching_gnp
from repro.graph.partition import random_k_partition


def _worker_env():
    env = {k: v for k, v in os.environ.items()
           if not k.startswith("REPRO_CHAOS")}
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    return env


def _launch_worker(host, port, env):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--connect", f"{host}:{port}"],
        env=env, stdout=subprocess.DEVNULL,
    )


@pytest.fixture(scope="module")
def workload():
    graph, _ = planted_matching_gnp(800, 800, p=3.0 / 1600, rng=0)
    part = random_k_partition(graph, k=6, rng=1)
    serial = run_simultaneous(matching_coreset_protocol(), part, rng=2)
    return part, serial


class TestKilledWorker:
    def test_kill_mid_round_is_retried_and_bit_identical(self, tmp_path,
                                                         workload):
        part, serial = workload
        with chaos(tmp_path, kill=True):
            with RemoteExecutor(max_workers=2, connect_timeout=60,
                                retries=3) as ex:
                remote = run_simultaneous(matching_coreset_protocol(),
                                          part, rng=2, executor=ex)
        np.testing.assert_array_equal(serial.output, remote.output)
        assert serial.total_bits == remote.total_bits
        for a, b in zip(serial.messages, remote.messages):
            np.testing.assert_array_equal(a.edges, b.edges)

    def test_kill_on_later_task_is_retried(self, tmp_path):
        with chaos(tmp_path, kill=True, after=3):
            with RemoteExecutor(max_workers=2, connect_timeout=60,
                                retries=3) as ex:
                assert ex.map(square, range(12)) == [
                    x * x for x in range(12)
                ]

    def test_retries_exhausted_raises_remote_task_error(self, tmp_path):
        # No latch: every worker (and every respawn) kills itself, so the
        # single task burns through its whole attempt budget.
        with chaos(tmp_path, kill=True, latch=False):
            with RemoteExecutor(max_workers=1, connect_timeout=60,
                                retries=1) as ex:
                with pytest.raises(RemoteTaskError, match="retries"):
                    ex.map(square, [1, 2])

    def test_broken_pool_is_discarded_and_replaced(self):
        # A connect-only fleet (spawn_workers=0) cannot respawn: when its
        # only worker dies, the pool is definitively broken — the path a
        # spawned pool never takes (it replaces its own casualties).
        ex = RemoteExecutor(max_workers=1, spawn_workers=0,
                            connect_timeout=2, retries=8)
        try:
            host, port = ex.start()
            env = _worker_env()
            env["REPRO_CHAOS_KILL"] = "1"  # no latch: dies on first task
            doomed = _launch_worker(host, port, env)
            with pytest.raises(WorkerPoolBrokenError, match="discarded"):
                ex.map(square, [1, 2, 3])
            doomed.wait(timeout=10)
            assert ex._pool is None
            # The next barrier transparently gets a fresh pool; give it a
            # healthy worker and it succeeds.
            host, port = ex.start()
            clean = _launch_worker(host, port, _worker_env())
            assert ex.map(square, [1, 2, 3]) == [1, 4, 9]
            assert ex.pools_created == 2
        finally:
            ex.close()
        assert clean.wait(timeout=10) == 0


class TestHungWorker:
    def test_hang_trips_timeout_and_run_completes(self, tmp_path, workload):
        part, serial = workload
        with chaos(tmp_path, hang=True):
            with RemoteExecutor(max_workers=2, connect_timeout=60,
                                retries=3, task_timeout=2.0) as ex:
                remote = run_simultaneous(matching_coreset_protocol(),
                                          part, rng=2, executor=ex)
        np.testing.assert_array_equal(serial.output, remote.output)

    def test_all_hang_exhausts_retries(self, tmp_path):
        with chaos(tmp_path, hang=True, latch=False):
            with RemoteExecutor(max_workers=1, connect_timeout=60,
                                retries=1, task_timeout=0.5) as ex:
                with pytest.raises(ExecutorError):
                    ex.map(square, [1, 2])

    def test_slow_worker_without_timeout_just_finishes(self, tmp_path):
        # Slowness alone is not a fault: heartbeats keep the worker alive
        # and with no task_timeout nothing is reassigned.
        with chaos(tmp_path, slow_ms=300):
            with RemoteExecutor(max_workers=2, connect_timeout=60) as ex:
                assert ex.map(square, range(6)) == [x * x for x in range(6)]


class TestDegradation:
    def test_zero_workers_degrades_with_warning(self, workload):
        part, serial = workload
        with pytest.warns(RemoteDegradedWarning, match="degrading"):
            with RemoteExecutor(max_workers=2, spawn_workers=0,
                                connect_timeout=0.5) as ex:
                remote = run_simultaneous(matching_coreset_protocol(),
                                          part, rng=2, executor=ex)
                assert ex.degraded
        np.testing.assert_array_equal(serial.output, remote.output)

    def test_degraded_executor_stays_degraded(self):
        with pytest.warns(RemoteDegradedWarning):
            with RemoteExecutor(max_workers=2, spawn_workers=0,
                                connect_timeout=0.5) as ex:
                assert ex.map(square, range(4)) == [0, 1, 4, 9]
                # Later barriers reuse the fallback, no second wait.
                assert ex.map(square, range(4)) == [0, 1, 4, 9]
                assert ex.degraded
                # The fallback is observable, not silent: stats() carries
                # the event count and the substitute backend's own stats,
                # which is what `repro serve` surfaces on GET /statz.
                stats = ex.stats()
                assert stats["backend"] == "remote"
                assert stats["degraded"] is True
                assert stats["fallback_events"] == 1  # reused, not re-degraded
                assert stats["fallback"]["backend"] == "processes"

    def test_healthy_executor_reports_no_fallback(self, tmp_path):
        with RemoteExecutor(max_workers=2, connect_timeout=60) as ex:
            assert ex.map(square, range(4)) == [0, 1, 4, 9]
            stats = ex.stats()
            assert stats["degraded"] is False
            assert stats["fallback_events"] == 0
            assert stats["fallback"] is None


class TestTaskErrors:
    def test_task_exception_is_not_retried(self, tmp_path):
        with RemoteExecutor(max_workers=2, connect_timeout=60,
                            retries=3) as ex:
            with pytest.raises(ValueError, match="exploded"):
                ex.map(boom, [1, 2])
            # The workers survived the exception: same pool serves on.
            pool = ex._pool
            assert ex.map(square, range(4)) == [0, 1, 4, 9]
            assert ex._pool is pool
