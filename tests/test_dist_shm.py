"""Tests for zero-copy piece transfer: SharedEdgeStore, handles, and the
``transfer="shared"`` paths of both engines.

The load-bearing properties: a round-tripped array is bit-identical to
what was stored, segments are gone after close() (no leaks, even when a
worker crashes mid-barrier), and the shared paths obey the same per-seed
determinism contract as pickled transfer.
"""

import os

import numpy as np
import pytest

from repro.dist.coordinator import run_simultaneous
from repro.dist.executor import ProcessExecutor, WorkerPoolBrokenError
from repro.dist.mapreduce import MapReduceSimulator
from repro.dist.shm import (
    SharedEdgeStore,
    SharedPartitionView,
    SharedStoreClosedError,
    available_transfer_modes,
    open_edges,
    open_graph,
    resolve_transfer,
)
from repro.graph.bipartite import BipartiteGraph
from repro.graph.edgelist import Graph
from repro.graph.generators import bipartite_gnp, gnp
from repro.graph.partition import random_k_partition

BACKENDS = ["shm", "mmap"]


def _segment_exists(backend: str, name: str) -> bool:
    if backend == "mmap":
        return os.path.exists(name)
    from multiprocessing import shared_memory

    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    return True


def _crash_worker(task):
    os._exit(17)


# --------------------------------------------------------------------- #
# round trip
# --------------------------------------------------------------------- #
class TestRoundTrip:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_put_get_bit_identical(self, backend):
        rng = np.random.default_rng(0)
        arrays = [
            rng.integers(0, 50, size=(m, 2)).astype(np.int64)
            for m in (0, 1, 7, 500)
        ]
        with SharedEdgeStore(backend=backend) as store:
            handles = store.put_arrays(arrays, n_vertices=50)
            for arr, handle in zip(arrays, handles):
                att = open_edges(handle)
                assert att.array.dtype == np.int64
                np.testing.assert_array_equal(att.array, arr)
                assert not att.array.flags.writeable
                att.release()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_graph_view_reconstruction(self, backend):
        g = gnp(40, 0.2, 3)
        with SharedEdgeStore(backend=backend) as store:
            handle = store.put_graph(g)
            rebuilt, att = open_graph(handle)
            assert rebuilt == g
            assert type(rebuilt) is Graph
            att.release()

    def test_bipartite_metadata_survives(self):
        g = bipartite_gnp(20, 30, 0.2, 5)
        with SharedEdgeStore() as store:
            handle = store.put_graph(g)
            rebuilt, att = open_graph(handle)
            assert isinstance(rebuilt, BipartiteGraph)
            assert (rebuilt.n_left, rebuilt.n_right) == (20, 30)
            assert rebuilt == g
            att.release()

    def test_put_pieces_matches_piece_arrays(self):
        g = gnp(60, 0.15, 9)
        part = random_k_partition(g, 5, 4)
        with SharedEdgeStore() as store:
            handles = store.put_pieces(part)
            assert len(handles) == 5
            for i, handle in enumerate(handles):
                rebuilt, att = open_graph(handle)
                assert rebuilt == part.piece(i)
                att.release()

    def test_piece_edge_arrays_bit_identical_to_pieces(self):
        g = gnp(80, 0.1, 11)
        part = random_k_partition(g, 6, 12)
        arrays = part.piece_edge_arrays()
        assert len(arrays) == 6
        for i, arr in enumerate(arrays):
            np.testing.assert_array_equal(arr, part.piece(i).edges)

    def test_from_canonical_edges_round_trip(self):
        g = gnp(30, 0.2, 2)
        clone = Graph.from_canonical_edges(g.n_vertices, g.edges)
        assert clone == g
        assert clone.edges is g.edges  # genuinely zero-copy

    def test_rejects_bad_shapes(self):
        with SharedEdgeStore() as store:
            with pytest.raises(ValueError, match="shape"):
                store.put_arrays([np.zeros((3, 3), dtype=np.int64)])


# --------------------------------------------------------------------- #
# lifecycle and cleanup
# --------------------------------------------------------------------- #
class TestStoreLifecycle:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_close_removes_segments(self, backend):
        store = SharedEdgeStore(backend=backend)
        handle = store.put_edges(np.arange(20, dtype=np.int64).reshape(10, 2))
        assert _segment_exists(backend, handle.name)
        store.close()
        assert not _segment_exists(backend, handle.name)

    def test_close_is_idempotent(self):
        store = SharedEdgeStore()
        store.put_edges(np.zeros((2, 2), dtype=np.int64))
        store.close()
        store.close()
        assert store.closed

    def test_put_after_close_raises(self):
        store = SharedEdgeStore()
        store.close()
        with pytest.raises(SharedStoreClosedError, match="closed"):
            store.put_edges(np.zeros((2, 2), dtype=np.int64))

    def test_context_manager(self):
        with SharedEdgeStore() as store:
            handle = store.put_edges(
                np.arange(8, dtype=np.int64).reshape(4, 2))
            assert _segment_exists(store.backend, handle.name)
        assert store.closed
        assert not _segment_exists(store.backend, handle.name)

    def test_empty_arrays_need_no_segment(self):
        with SharedEdgeStore() as store:
            handle = store.put_edges(np.zeros((0, 2), dtype=np.int64))
            assert handle.n_rows == 0 and handle.name == ""
            att = open_edges(handle)
            assert att.array.shape == (0, 2)
            att.release()

    def test_worker_crash_does_not_leak_segments(self):
        """A worker dying mid-barrier must not stop close() from
        reclaiming the segment."""
        store = SharedEdgeStore()
        handle = store.put_edges(
            np.arange(40, dtype=np.int64).reshape(20, 2))
        with ProcessExecutor(max_workers=2) as ex:
            with pytest.raises(WorkerPoolBrokenError):
                ex.map(_crash_worker, [handle, handle])
        store.close()
        assert not _segment_exists(store.backend, handle.name)

    def test_shared_partition_view_lifecycle(self):
        g = gnp(50, 0.15, 21)
        part = random_k_partition(g, 4, 22)
        with SharedPartitionView(part) as view:
            assert view.k == 4 and view.graph is g
            assert len(view.piece_handles) == 4
            assert view.piece(2) == part.piece(2)
            name = next(h.name for h in view.piece_handles if h.n_rows)
            assert _segment_exists(view.store.backend, name)
        assert view.closed
        assert not _segment_exists(view.store.backend, name)


# --------------------------------------------------------------------- #
# transfer resolution
# --------------------------------------------------------------------- #
class TestResolveTransfer:
    def test_default_is_pickle(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRANSFER", raising=False)
        assert resolve_transfer(None) == "pickle"

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSFER", "shared")
        assert resolve_transfer(None) == "shared"

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSFER", "shared")
        assert resolve_transfer("pickle") == "pickle"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown transfer"):
            resolve_transfer("carrier-pigeon")

    def test_modes(self):
        assert available_transfer_modes() == ("pickle", "shared")


# --------------------------------------------------------------------- #
# engine determinism across transfer modes
# --------------------------------------------------------------------- #
def _route_even_k4(i, edges, rng):
    return rng.integers(0, 4, size=edges.shape[0])


def _edges_identity(i, edges, rng):
    return edges


class TestEngineDeterminism:
    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_run_simultaneous_shared_matches_pickle(self, backend):
        from repro.core.protocols import matching_coreset_protocol

        g = bipartite_gnp(60, 60, 0.08, 7)
        part = random_k_partition(g, 4, 8)
        proto = matching_coreset_protocol()
        a = run_simultaneous(proto, part, 9, executor="serial",
                             transfer="pickle")
        b = run_simultaneous(proto, part, 9, executor=backend,
                             transfer="shared")
        np.testing.assert_array_equal(a.output, b.output)
        assert a.ledger.summary() == b.ledger.summary()

    def test_pinned_view_matches_across_runs(self):
        from repro.core.protocols import matching_coreset_protocol

        g = bipartite_gnp(50, 50, 0.1, 3)
        part = random_k_partition(g, 4, 5)
        proto = matching_coreset_protocol()
        expected = [
            run_simultaneous(proto, part, seed, executor="serial").output
            for seed in (7, 8)
        ]
        with ProcessExecutor(max_workers=2) as ex, \
                SharedPartitionView(part) as view:
            for seed, want in zip((7, 8), expected):
                got = run_simultaneous(proto, view, seed, executor=ex,
                                       transfer="shared").output
                np.testing.assert_array_equal(want, got)

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_mapreduce_shared_matches_pickle(self, backend):
        g = gnp(70, 0.1, 5)
        pieces = [g.edges[i::3] for i in range(3)]
        reference = MapReduceSimulator(70, 3, rng=6, executor="serial",
                                       transfer="pickle")
        reference.load(pieces)
        reference.shuffle_round(_random_route_k3)
        reference.shuffle_round(_random_route_k3)

        with MapReduceSimulator(70, 3, rng=6, executor=backend,
                                transfer="shared") as sim:
            sim.load(pieces)
            sim.shuffle_round(_random_route_k3)
            sim.shuffle_round(_random_route_k3)
            for i in range(3):
                np.testing.assert_array_equal(
                    reference.machine_edges(i), sim.machine_edges(i))

    def test_pinned_view_reused_across_solvers(self):
        """The serving pattern: pin one partition, feed it to *different*
        solvers sequentially via ``solve(..., partition=view)``.  Each run
        is bit-identical to its unpinned counterpart, and the whole view
        holds exactly one shared segment (pieces are slices of one pack,
        not per-piece copies)."""
        from repro.solve import RunContext, solve

        g = bipartite_gnp(50, 50, 0.1, 3)
        seed, k = 6, 4
        ctx = RunContext(seed=seed, k=k)
        part = random_k_partition(g, k, ctx.generators(2)[0])
        unpinned = [
            solve(g, name, ctx)
            for name in ("matching.coreset", "vertex_cover.coreset")
        ]
        with SharedPartitionView(part) as view:
            for name, want in zip(
                ("matching.coreset", "vertex_cover.coreset"), unpinned,
            ):
                got = solve(g, name, ctx, partition=view)
                assert got.value == want.value
                np.testing.assert_array_equal(got.certificate,
                                              want.certificate)
                assert got.stats == want.stats
            assert len(view.store._segments) == 1

    def test_mapreduce_shared_echo_compute(self):
        """A compute fn returning its (mapped, read-only) input verbatim
        must still work — the worker leaves that attachment to process
        exit instead of invalidating the result."""
        g = gnp(40, 0.2, 4)
        with MapReduceSimulator(40, 2, rng=1, executor="processes",
                                transfer="shared") as sim:
            sim.load([g.edges[:5], g.edges[5:]])
            sim.local_round(_edges_identity)
            np.testing.assert_array_equal(
                np.vstack([sim.machine_edges(0), sim.machine_edges(1)]),
                np.vstack([g.edges[:5], g.edges[5:]]))


def _random_route_k3(i, edges, rng):
    return rng.integers(0, 3, size=edges.shape[0])
