"""End-to-end integration tests crossing all subsystems."""

import numpy as np
import pytest

from repro import quickstart_matching
from repro.core.protocols import (
    matching_coreset_protocol,
    vertex_cover_coreset_protocol,
)
from repro.cover import is_vertex_cover, konig_cover
from repro.dist.coordinator import run_simultaneous
from repro.graph.generators import (
    bipartite_gnp,
    planted_matching_gnp,
    skewed_bipartite,
)
from repro.graph.partition import random_k_partition
from repro.matching.api import matching_number
from repro.matching.verify import is_matching


class TestQuickstart:
    def test_quickstart_contract(self):
        out = quickstart_matching(n=600, k=4, seed=0)
        assert set(out) == {
            "optimum", "output", "ratio", "total_bits", "bits_per_machine"
        }
        assert out["ratio"] <= 3.0
        assert out["total_bits"] > 0

    def test_quickstart_deterministic(self):
        assert quickstart_matching(400, 4, 1) == quickstart_matching(400, 4, 1)


class TestFullMatchingPipeline:
    def test_generate_partition_solve_verify(self, rng):
        graph, planted = planted_matching_gnp(400, 400, 0.005, rng=rng)
        part = random_k_partition(graph, 8, rng)
        res = run_simultaneous(matching_coreset_protocol(), part, rng)
        assert is_matching(graph, res.output)
        opt = matching_number(graph)
        assert opt == 400  # planted perfect matching
        assert res.output.shape[0] >= opt / 3  # typical quality, not worst

    def test_serialize_reload_and_solve(self, tmp_path, rng):
        from repro.graph.io import load_npz, save_npz

        graph = bipartite_gnp(100, 100, 0.03, rng)
        path = tmp_path / "workload.npz"
        save_npz(path, graph)
        reloaded = load_npz(path)
        part = random_k_partition(reloaded, 4, 0)
        res = run_simultaneous(matching_coreset_protocol(), part, 0)
        assert is_matching(reloaded, res.output)

    def test_protocol_vs_mapreduce_agree_in_quality(self, rng):
        from repro.core.mapreduce_algos import mapreduce_matching

        graph, _ = planted_matching_gnp(300, 300, 0.006, rng=rng)
        part = random_k_partition(graph, 17, rng)
        proto = run_simultaneous(matching_coreset_protocol(), part, rng)
        mr = mapreduce_matching(graph, k=17, rng=rng)
        opt = matching_number(graph)
        assert proto.output.shape[0] >= opt / 3
        assert mr.matching.shape[0] >= opt / 3


class TestFullVertexCoverPipeline:
    def test_generate_partition_solve_verify(self, rng):
        graph = skewed_bipartite(400, 400, 20, 150, 0.005, rng)
        part = random_k_partition(graph, 8, rng)
        res = run_simultaneous(vertex_cover_coreset_protocol(k=8), part, rng)
        assert is_vertex_cover(graph, res.output)
        opt = konig_cover(graph).shape[0]
        assert res.output.shape[0] <= 8 * max(1, opt)

    def test_weighted_and_unweighted_consistency(self, rng):
        """Uniform weights: the weighted protocol's cover weight equals its
        size, and feasibility holds end to end."""
        from repro.core.weighted import weighted_vertex_cover_protocol

        graph = bipartite_gnp(150, 150, 0.03, rng)
        res = weighted_vertex_cover_protocol(
            graph, np.ones(graph.n_vertices), k=4, rng=rng
        )
        assert is_vertex_cover(graph, res.cover)
        assert res.weight == res.cover.shape[0]


class TestScalingSmoke:
    """One larger run to catch accidental quadratic blowups."""

    def test_moderate_scale_under_time_budget(self, rng):
        import time

        t0 = time.time()
        graph, _ = planted_matching_gnp(5000, 5000, 0.0004, rng=rng)
        part = random_k_partition(graph, 16, rng)
        res = run_simultaneous(matching_coreset_protocol(), part, rng)
        assert is_matching(graph, res.output)
        assert time.time() - t0 < 30

    def test_vc_moderate_scale(self, rng):
        import time

        t0 = time.time()
        graph = skewed_bipartite(3000, 3000, 60, 500, 0.002, rng)
        part = random_k_partition(graph, 16, rng)
        res = run_simultaneous(vertex_cover_coreset_protocol(k=16), part, rng)
        assert is_vertex_cover(graph, res.output)
        assert time.time() - t0 < 30
