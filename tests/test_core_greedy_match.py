"""Tests for the GreedyMatch combiner (§3.1)."""

import numpy as np
import pytest

from repro.core.greedy_match import greedy_match
from repro.graph.generators import bipartite_gnp, planted_matching_gnp
from repro.graph.partition import random_k_partition
from repro.matching.api import maximum_matching
from repro.matching.verify import is_matching


class TestGreedyMatch:
    def test_output_is_matching_of_g(self, rng):
        g = bipartite_gnp(60, 60, 0.05, rng)
        part = random_k_partition(g, 4, rng)
        m, trace = greedy_match(part)
        assert is_matching(g, m)
        assert trace.final_size == m.shape[0]

    def test_sizes_monotone(self, rng):
        g = bipartite_gnp(80, 80, 0.05, rng)
        part = random_k_partition(g, 6, rng)
        _, trace = greedy_match(part)
        sizes = trace.sizes
        assert sizes[0] == 0
        assert all(a <= b for a, b in zip(sizes, sizes[1:]))
        assert len(sizes) == part.k + 1

    def test_gains_sum_to_final(self, rng):
        g = bipartite_gnp(50, 50, 0.08, rng)
        part = random_k_partition(g, 5, rng)
        _, trace = greedy_match(part)
        assert sum(trace.gains) == trace.final_size

    def test_k1_equals_maximum(self, rng):
        g = bipartite_gnp(40, 40, 0.1, rng)
        part = random_k_partition(g, 1, rng)
        m, _ = greedy_match(part)
        assert m.shape[0] == maximum_matching(g).shape[0]

    def test_prefix_tracking(self, rng):
        g, _ = planted_matching_gnp(100, 100, 0.01, rng=rng)
        part = random_k_partition(g, 5, rng)
        opt = maximum_matching(g)
        _, trace = greedy_match(part, reference_optimum=opt)
        prefix = trace.optimal_assigned_prefix
        assert len(prefix) == part.k
        assert prefix[0] == 0
        assert all(a <= b for a, b in zip(prefix, prefix[1:]))
        # All of M* lands in the union of the pieces.
        total_in_pieces = sum(
            int(np.isin(
                opt[:, 0] * g.n_vertices + opt[:, 1],
                part.piece(i).edge_key_array,
            ).sum())
            for i in range(part.k)
        )
        assert total_in_pieces == opt.shape[0]

    def test_constant_factor_on_planted(self, rng):
        """The Theorem 1 guarantee via GreedyMatch (paper proves ≥ MM/9):
        empirically the ratio is far better; assert the formal bound."""
        for trial in range(3):
            g, _ = planted_matching_gnp(300, 300, 0.005, rng=rng)
            part = random_k_partition(g, 9, rng)
            opt_size = maximum_matching(g).shape[0]
            m, _ = greedy_match(part)
            assert m.shape[0] >= opt_size / 9
