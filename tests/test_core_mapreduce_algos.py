"""Tests for the 2-round MapReduce algorithms."""

import pytest

from repro.core.mapreduce_algos import (
    default_machine_count,
    mapreduce_matching,
    mapreduce_vertex_cover,
)
from repro.cover import is_vertex_cover, konig_cover
from repro.graph.generators import bipartite_gnp, gnp, skewed_bipartite
from repro.matching.api import matching_number
from repro.matching.verify import is_matching


class TestDefaults:
    def test_sqrt_n_machines(self):
        assert default_machine_count(10000) == 100
        assert default_machine_count(1) == 1
        assert default_machine_count(0) == 1


class TestMapReduceMatching:
    def test_two_rounds(self, rng):
        g = bipartite_gnp(150, 150, 0.02, rng)
        res = mapreduce_matching(g, rng=rng)
        assert res.job.n_rounds == 2

    def test_one_round_when_prerandomized(self, rng):
        g = bipartite_gnp(150, 150, 0.02, rng)
        res = mapreduce_matching(g, rng=rng, assume_random_input=True)
        assert res.job.n_rounds == 1

    def test_valid_matching_and_ratio(self, rng):
        g = bipartite_gnp(200, 200, 0.015, rng)
        res = mapreduce_matching(g, rng=rng)
        assert is_matching(g, res.matching)
        assert res.matching.shape[0] >= matching_number(g) / 9

    def test_general_graph(self, rng):
        g = gnp(120, 0.04, rng)
        res = mapreduce_matching(g, k=6, rng=rng)
        assert is_matching(g, res.matching)

    def test_memory_cap_enforced(self, rng):
        from repro.dist.mapreduce import MemoryCapExceeded

        g = bipartite_gnp(100, 100, 0.2, rng)
        with pytest.raises(MemoryCapExceeded):
            mapreduce_matching(g, k=2, rng=rng, memory_cap_edges=10)

    def test_explicit_k(self, rng):
        g = bipartite_gnp(100, 100, 0.02, rng)
        res = mapreduce_matching(g, k=7, rng=rng)
        assert res.k == 7

    def test_bad_placement_name(self, rng):
        g = bipartite_gnp(20, 20, 0.1, rng)
        with pytest.raises(ValueError, match="placement"):
            mapreduce_matching(g, rng=rng, initial_placement="weird")


class TestMapReduceVertexCover:
    def test_two_rounds_and_feasible(self, rng):
        g = skewed_bipartite(200, 200, 10, 80, 0.01, rng)
        res = mapreduce_vertex_cover(g, rng=rng)
        assert res.job.n_rounds == 2
        assert is_vertex_cover(g, res.cover)

    def test_one_round_when_prerandomized(self, rng):
        g = skewed_bipartite(150, 150, 8, 60, 0.01, rng)
        res = mapreduce_vertex_cover(g, rng=rng, assume_random_input=True)
        assert res.job.n_rounds == 1
        assert is_vertex_cover(g, res.cover)

    def test_ratio_within_log(self, rng):
        import math

        g = skewed_bipartite(250, 250, 12, 100, 0.008, rng)
        res = mapreduce_vertex_cover(g, k=10, rng=rng)
        opt = konig_cover(g).shape[0]
        assert res.cover.shape[0] <= 4 * math.log2(g.n_vertices) * max(1, opt)

    def test_reproducible(self, rng):
        import numpy as np

        g = skewed_bipartite(100, 100, 5, 40, 0.02, rng)
        a = mapreduce_vertex_cover(g, k=5, rng=33)
        b = mapreduce_vertex_cover(g, k=5, rng=33)
        np.testing.assert_array_equal(a.cover, b.cover)
