"""Tests for weighted matching (greedy 2-approx + exact oracle)."""

import numpy as np
import pytest

from repro.graph.weights import WeightedGraph
from repro.matching.verify import is_matching
from repro.matching.weighted import (
    exact_weighted_matching,
    greedy_weighted_matching,
)


def wg_from(edges, weights, n=None):
    edges = np.asarray(edges, dtype=np.int64)
    n = int(edges.max()) + 1 if n is None else n
    return WeightedGraph(n, edges, np.asarray(weights, dtype=np.float64))


class TestGreedyWeighted:
    def test_prefers_heavy_edge(self):
        # Path 0-1-2: middle edge heavy.
        wg = wg_from([(0, 1), (1, 2)], [1.0, 10.0])
        m, w = greedy_weighted_matching(wg)
        assert w == 10.0
        assert m.tolist() == [[1, 2]]

    def test_empty(self):
        wg = WeightedGraph(3, np.zeros((0, 2), dtype=np.int64),
                           np.zeros(0), validated=True)
        m, w = greedy_weighted_matching(wg)
        assert m.shape == (0, 2) and w == 0.0

    def test_output_is_matching(self, rng):
        from repro.graph.generators import gnp

        g = gnp(40, 0.15, rng)
        wg = WeightedGraph(40, g.edges, rng.uniform(1, 10, g.n_edges),
                           validated=True)
        m, w = greedy_weighted_matching(wg)
        assert is_matching(wg, m)
        assert w == pytest.approx(wg.matching_weight(m))

    def test_half_approximation(self, rng):
        """Greedy ≥ OPT/2, verified against the exact oracle."""
        from repro.graph.generators import gnp

        for _ in range(10):
            g = gnp(10, 0.4, rng)
            if g.n_edges == 0 or g.n_edges > 22:
                continue
            wg = WeightedGraph(10, g.edges, rng.uniform(1, 100, g.n_edges),
                               validated=True)
            _, greedy_w = greedy_weighted_matching(wg)
            _, opt_w = exact_weighted_matching(wg)
            assert greedy_w >= opt_w / 2 - 1e-9
            assert greedy_w <= opt_w + 1e-9


class TestExactWeighted:
    def test_known_instance(self):
        # Triangle with weights: best single edge wins over any pair? No —
        # a triangle admits only single-edge matchings.
        wg = wg_from([(0, 1), (1, 2), (0, 2)], [3.0, 5.0, 4.0])
        m, w = exact_weighted_matching(wg)
        assert w == 5.0

    def test_chooses_pair_over_heavy_single(self):
        # Path 0-1-2-3: (0,1)+(2,3) = 6 beats middle edge 5.
        wg = wg_from([(0, 1), (1, 2), (2, 3)], [3.0, 5.0, 3.0])
        m, w = exact_weighted_matching(wg)
        assert w == 6.0
        assert m.shape[0] == 2

    def test_empty(self):
        wg = WeightedGraph(2, np.zeros((0, 2), dtype=np.int64),
                           np.zeros(0), validated=True)
        _, w = exact_weighted_matching(wg)
        assert w == 0.0

    def test_size_guard(self, rng):
        edges = np.stack([np.arange(30), np.arange(30) + 30], axis=1)
        wg = WeightedGraph(60, edges, np.ones(30), validated=True)
        with pytest.raises(ValueError, match="small graphs"):
            exact_weighted_matching(wg)

    def test_exact_vs_brute_force(self, rng):
        """Cross-check the branch-and-bound against explicit enumeration."""
        from itertools import combinations

        from repro.graph.generators import gnp

        for _ in range(5):
            g = gnp(8, 0.4, rng)
            if g.n_edges == 0 or g.n_edges > 12:
                continue
            weights = rng.uniform(1, 10, g.n_edges)
            wg = WeightedGraph(8, g.edges, weights, validated=True)
            _, w_bb = exact_weighted_matching(wg)
            best = 0.0
            rows = list(range(g.n_edges))
            for r in range(len(rows) + 1):
                for sub in combinations(rows, r):
                    sel = g.edges[list(sub)]
                    if sel.size and np.bincount(sel.ravel()).max() > 1:
                        continue
                    best = max(best, float(weights[list(sub)].sum()))
            assert w_bb == pytest.approx(best)
