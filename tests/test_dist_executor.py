"""Tests for the execution backends and their determinism contract.

The load-bearing property (docs/PARALLELISM.md): for the same seed, every
backend — serial, threads, processes — produces bit-identical protocol
outputs, messages, and ledger totals, because engines compose per-machine
results in machine-index order, never completion order.

Helpers here are module-level on purpose: the ``processes`` backend pickles
every task into a worker, which closures and lambdas cannot survive (that
failure mode gets its own tests below).
"""

import numpy as np
import pytest

from repro.dist.coordinator import SimultaneousProtocol, run_simultaneous
from repro.dist.executor import (
    EXECUTOR_ENV,
    WORKERS_ENV,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    UnpicklableTaskError,
    available_backends,
    resolve_executor,
)
from repro.dist.mapreduce import MapReduceSimulator
from repro.dist.message import Message
from repro.graph.generators import bipartite_gnp, gnp
from repro.graph.partition import random_k_partition

BACKENDS = ["serial", "threads", "processes"]


def _echo_summarizer(piece, machine_index, rng, public=None):
    return Message(sender=machine_index, edges=piece.edges)


def _union_combine(coordinator, messages):
    return coordinator.union_graph(messages)


def _square(x):
    return x * x


def _route_even(i, edges, rng):
    return np.zeros(edges.shape[0], dtype=np.int64)


def _compute_with_aux(i, edges, rng):
    return edges, int(edges.shape[0])


# --------------------------------------------------------------------- #
# resolution
# --------------------------------------------------------------------- #
class TestResolveExecutor:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV, raising=False)
        assert isinstance(resolve_executor(None), SerialExecutor)

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "threads")
        assert isinstance(resolve_executor(None), ThreadExecutor)

    def test_workers_env_var(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_executor("processes").max_workers == 3

    @pytest.mark.parametrize("name,cls", [
        ("serial", SerialExecutor),
        ("threads", ThreadExecutor),
        ("processes", ProcessExecutor),
        ("THREADS", ThreadExecutor),   # case-insensitive
        ("mp", ProcessExecutor),       # alias
    ])
    def test_names_and_aliases(self, name, cls):
        assert isinstance(resolve_executor(name), cls)

    def test_instance_passes_through(self):
        ex = ThreadExecutor(max_workers=2)
        assert resolve_executor(ex) is ex

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("gpu")

    def test_bad_worker_count_rejected(self):
        # validate_workers owns the rule for every consumer (constructors,
        # $REPRO_WORKERS, and the CLI's --workers flag).
        from repro.dist.executor import validate_workers

        with pytest.raises(ValueError, match="worker count"):
            ThreadExecutor(max_workers=0)
        with pytest.raises(ValueError, match="worker count"):
            validate_workers(0)
        assert validate_workers(3) == 3

    def test_available_backends(self):
        assert available_backends() == ("serial", "threads", "processes",
                                        "remote")


# --------------------------------------------------------------------- #
# the map contract
# --------------------------------------------------------------------- #
class TestMapOrder:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_results_in_input_order(self, backend):
        ex = resolve_executor(backend, workers=4)
        assert ex.map(_square, range(20)) == [i * i for i in range(20)]

    def test_empty_and_singleton(self):
        for backend in BACKENDS:
            ex = resolve_executor(backend)
            assert ex.map(_square, []) == []
            assert ex.map(_square, [7]) == [49]

    def test_abstract_map_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Executor().map(_square, [1])


# --------------------------------------------------------------------- #
# determinism across backends
# --------------------------------------------------------------------- #
class TestProtocolDeterminismAcrossBackends:
    def _run(self, protocol, executor, seed=9):
        g = bipartite_gnp(60, 60, 0.08, 7)
        part = random_k_partition(g, 4, 8)
        return run_simultaneous(protocol, part, seed, executor=executor)

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_matching_protocol_bit_identical(self, backend):
        from repro.core.protocols import matching_coreset_protocol

        proto = matching_coreset_protocol()
        a = self._run(proto, "serial")
        b = self._run(proto, backend)
        np.testing.assert_array_equal(a.output, b.output)
        assert a.ledger.summary() == b.ledger.summary()
        for ma, mb in zip(a.messages, b.messages):
            assert ma.sender == mb.sender
            np.testing.assert_array_equal(ma.edges, mb.edges)

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_vc_protocol_bit_identical(self, backend):
        from repro.core.protocols import vertex_cover_coreset_protocol

        proto = vertex_cover_coreset_protocol(k=4)
        a = self._run(proto, "serial")
        b = self._run(proto, backend)
        np.testing.assert_array_equal(a.output, b.output)
        assert a.total_bits == b.total_bits

    def test_grouped_protocol_with_public_setup_on_processes(self):
        from repro.core.protocols import grouped_vertex_cover_protocol

        a = self._run(grouped_vertex_cover_protocol(4, 16.0), "serial")
        b = self._run(grouped_vertex_cover_protocol(4, 16.0), "processes")
        np.testing.assert_array_equal(a.output, b.output)

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_mapreduce_matching_bit_identical(self, backend):
        from repro.core.mapreduce_algos import mapreduce_matching

        g = bipartite_gnp(80, 80, 0.05, 2)
        a = mapreduce_matching(g, k=5, rng=10, executor="serial")
        b = mapreduce_matching(g, k=5, rng=10, executor=backend)
        np.testing.assert_array_equal(a.matching, b.matching)
        assert a.job.n_rounds == b.job.n_rounds
        assert a.job.total_shuffled_edges == b.job.total_shuffled_edges
        assert a.job.peak_machine_edges == b.job.peak_machine_edges

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_mapreduce_vertex_cover_bit_identical(self, backend):
        from repro.core.mapreduce_algos import mapreduce_vertex_cover

        g = gnp(90, 0.06, 3)
        a = mapreduce_vertex_cover(g, k=4, rng=11, executor="serial")
        b = mapreduce_vertex_cover(g, k=4, rng=11, executor=backend)
        np.testing.assert_array_equal(a.cover, b.cover)

    def test_generator_state_threads_back_across_rounds(self):
        """Round r+1 must see the generator state round r left behind, even
        when round r ran in a worker process."""
        g = gnp(70, 0.1, 5)
        sims = {}
        for backend in BACKENDS:
            sim = MapReduceSimulator(70, 3, rng=6, executor=backend)
            pieces = [g.edges[i::3] for i in range(3)]
            sim.load(pieces)
            sim.shuffle_round(_random_route)  # consumes machine randomness
            sim.shuffle_round(_random_route)  # must continue those streams
            sims[backend] = sim
        for backend in ["threads", "processes"]:
            for i in range(3):
                np.testing.assert_array_equal(
                    sims["serial"].machine_edges(i),
                    sims[backend].machine_edges(i),
                )


def _random_route(i, edges, rng):
    return rng.integers(0, 3, size=edges.shape[0])


# --------------------------------------------------------------------- #
# the aux channel of compute_round
# --------------------------------------------------------------------- #
class TestComputeRoundAux:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_aux_collected_in_machine_order(self, backend):
        g = gnp(40, 0.2, 4)
        sim = MapReduceSimulator(40, 3, rng=1, executor=backend)
        pieces = [g.edges[:5], g.edges[5:7], g.edges[7:]]
        sim.load(pieces)
        aux = sim.compute_round(_compute_with_aux)
        assert aux == [p.shape[0] for p in pieces]

    def test_bare_edge_return_yields_none_aux(self):
        g = gnp(30, 0.2, 4)
        sim = MapReduceSimulator(30, 2, rng=1)
        sim.load([g.edges[:3], g.edges[3:]])
        aux = sim.local_round(_route_to_edges)
        assert aux == [None, None]


def _route_to_edges(i, edges, rng):
    return edges


# --------------------------------------------------------------------- #
# pickling constraints of the process backend
# --------------------------------------------------------------------- #
class TestProcessPicklingErrors:
    def test_closure_summarizer_raises_clear_error(self):
        marker = []  # dooms the closure below to unpicklability

        def closure_summarizer(piece, machine_index, rng, public=None):
            assert marker == []
            return Message(sender=machine_index)

        proto = SimultaneousProtocol("closure", closure_summarizer,
                                     _union_combine)
        g = gnp(20, 0.3, 1)
        part = random_k_partition(g, 3, 2)
        with pytest.raises(UnpicklableTaskError, match="not picklable"):
            run_simultaneous(proto, part, 3, executor="processes")
        # The same protocol is fine on the in-process backends.
        for backend in ["serial", "threads"]:
            run_simultaneous(proto, part, 3, executor=backend)

    def test_lambda_route_fn_raises_clear_error(self):
        g = gnp(20, 0.3, 1)
        sim = MapReduceSimulator(20, 3, rng=2, executor="processes")
        sim.load([g.edges[:2], g.edges[2:4], g.edges[4:]])
        with pytest.raises(UnpicklableTaskError, match="module level"):
            sim.shuffle_round(lambda i, edges, r: np.zeros(
                edges.shape[0], dtype=np.int64))

    def test_error_raised_even_for_single_machine(self):
        # The k<=1 fast path must not skip the pickle contract.
        g = gnp(20, 0.3, 1)
        sim = MapReduceSimulator(20, 1, rng=2, executor="processes")
        sim.load([g.edges])
        with pytest.raises(UnpicklableTaskError):
            sim.shuffle_round(lambda i, edges, r: np.zeros(
                edges.shape[0], dtype=np.int64))

    def test_picklable_protocol_factories_survive_pickling(self):
        import pickle

        from repro.core.protocols import (
            GroupedVCSummarizer,
            MatchingCoresetSummarizer,
            VCCoresetSummarizer,
        )

        for summarizer in [MatchingCoresetSummarizer(),
                           VCCoresetSummarizer(k=4),
                           GroupedVCSummarizer(k=4)]:
            assert pickle.loads(pickle.dumps(summarizer)) == summarizer


# --------------------------------------------------------------------- #
# run_trials fan-out
# --------------------------------------------------------------------- #
def _uniform_trial(s):
    # Module-level so every backend — including ``processes`` — can run it.
    gen = np.random.default_rng(s)
    return {"x": float(gen.uniform())}


class TestRunTrialsExecutor:
    def test_threads_match_serial(self):
        from repro.experiments.harness import run_trials

        a = run_trials(_uniform_trial, 6, seed=5, executor="serial")
        b = run_trials(_uniform_trial, 6, seed=5, executor="threads")
        np.testing.assert_array_equal(a["x"], b["x"])

    def test_processes_match_serial(self):
        from repro.experiments.harness import run_trials

        a = run_trials(_uniform_trial, 6, seed=5, executor="serial")
        b = run_trials(_uniform_trial, 6, seed=5, executor="processes")
        np.testing.assert_array_equal(a["x"], b["x"])

    def test_default_resolves_from_env(self, monkeypatch):
        from repro.experiments.harness import run_trials

        monkeypatch.setenv(EXECUTOR_ENV, "threads")
        a = run_trials(_uniform_trial, 4, seed=9)
        b = run_trials(_uniform_trial, 4, seed=9, executor="serial")
        np.testing.assert_array_equal(a["x"], b["x"])
