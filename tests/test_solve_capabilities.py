"""Capability-driven solver resolution (:mod:`repro.solve.capabilities`).

Three layers:

* **round-trip** — every registered solver's own capability tuple
  resolves to a spec with the same tuple, and that spec actually solves
  and verifies a small graph suited to its capabilities;
* **properties** (hypothesis) — for arbitrary queries over the registry's
  vocabulary, resolution is deterministic, every hard constraint in the
  query holds on the result, the winner is the head of
  :func:`rank_candidates`, and no better-ranked candidate exists;
* **failure shape** — impossible queries raise the typed
  :class:`CapabilityResolutionError` (a ``SolverCapabilityError``), never
  ``KeyError``, carrying the query and the constraint that emptied the
  pool.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.bipartite import BipartiteGraph
from repro.graph.weights import WeightedGraph
from repro.solve import (
    CapabilityResolutionError,
    RunContext,
    SolverCapabilityError,
    all_solvers,
    rank_candidates,
    resolve_capability,
    solve,
)
from repro.solve.capabilities import GUARANTEE_ORDER, guarantee_rank
from repro.solve.graphs import load_graph
from repro.solve.registry import MODELS, PROBLEMS

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

ALL_SPECS = all_solvers()
ALL_GUARANTEES = sorted({s.guarantee for s in ALL_SPECS})


def _graph_for(spec):
    """A small graph satisfying the spec's input capabilities."""
    if spec.capacitated:
        return load_graph("workload:ba_adwords:u=30,v=120", rng=5)
    if spec.weighted:
        return load_graph("weighted:n=60", rng=5)
    # Bipartite satisfies bipartite-only solvers and every general solver.
    return load_graph("planted:n=60", rng=5)


# --------------------------------------------------------------------- #
# round-trip: each solver is reachable through its own capabilities
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
def test_own_capability_tuple_resolves_and_solves(spec):
    graph = _graph_for(spec)
    resolved = resolve_capability(
        spec.problem,
        model=spec.model,
        guarantee=spec.guarantee,
        weighted=spec.weighted,
        graph=graph,
    )
    # The resolved solver may be a better-registered sibling, but its
    # capability tuple must match the query exactly.
    assert resolved.problem == spec.problem
    assert resolved.model == spec.model
    assert resolved.guarantee == spec.guarantee
    assert resolved.weighted == spec.weighted

    result = solve(graph, resolved.name, RunContext(seed=0, k=2))
    assert result.verified, (
        f"{resolved.name} produced an unverifiable certificate"
    )
    assert result.solver == resolved.name


def test_every_solver_is_some_querys_best_or_shadowed():
    # Sanity on the ranking itself: head of rank_candidates for a spec's
    # full tuple either *is* the spec or ties it on the whole sort key
    # (registration order breaks the tie deterministically).
    for spec in ALL_SPECS:
        ranked = rank_candidates(
            spec.problem, model=spec.model, guarantee=spec.guarantee,
            weighted=spec.weighted,
        )
        assert spec.name in [s.name for s in ranked]


# --------------------------------------------------------------------- #
# ranking: non-baselines first, then guarantee quality
# --------------------------------------------------------------------- #
def test_baselines_never_win_while_a_real_algorithm_matches():
    for problem in PROBLEMS:
        best = resolve_capability(problem)
        assert not best.baseline, (
            f"{problem}: baseline {best.name} outranked real algorithms"
        )


def test_best_guarantee_wins_among_non_baselines():
    spec = resolve_capability("matching", model="coreset")
    assert spec.name == "matching.coreset"
    spec = resolve_capability("vertex_cover", model="coreset")
    ranked = rank_candidates("vertex_cover", model="coreset")
    non_base = [s for s in ranked if not s.baseline]
    assert spec.name == non_base[0].name
    assert all(
        guarantee_rank(spec.guarantee) <= guarantee_rank(s.guarantee)
        for s in non_base
    )


def test_guarantee_order_is_total_and_unknowns_rank_last():
    ranks = [guarantee_rank(g) for g in GUARANTEE_ORDER]
    assert ranks == sorted(ranks)
    assert guarantee_rank("3/7-novel-approx") > guarantee_rank(
        GUARANTEE_ORDER[-1]
    )


# --------------------------------------------------------------------- #
# properties over arbitrary queries
# --------------------------------------------------------------------- #
query_strategy = st.fixed_dictionaries({
    "problem": st.sampled_from(PROBLEMS),
    "model": st.sampled_from([None] + list(MODELS)),
    "guarantee": st.sampled_from([None] + ALL_GUARANTEES),
    "weighted": st.sampled_from([None, True, False]),
    "has_k": st.booleans(),
})


@SETTINGS
@given(query=query_strategy)
def test_resolution_is_deterministic_and_constraint_respecting(query):
    try:
        first = resolve_capability(**query)
    except CapabilityResolutionError as exc:
        # The typed failure: carries the query and a reason, and resolves
        # identically (to the same failure) on retry.
        assert exc.query.to_dict()["problem"] == query["problem"]
        assert exc.reason
        with pytest.raises(CapabilityResolutionError):
            resolve_capability(**query)
        return
    second = resolve_capability(**query)
    assert first.name == second.name  # deterministic

    assert first.problem == query["problem"]
    if query["model"] is not None:
        assert first.model == query["model"]
    if query["guarantee"] is not None:
        assert first.guarantee == query["guarantee"]
    if query["weighted"] is not None:
        assert first.weighted == query["weighted"]
    if not query["has_k"]:
        assert first.model != "coreset"

    ranked = rank_candidates(**query)
    assert first.name == ranked[0].name
    # No candidate outranks the winner on (baseline, guarantee) — i.e.
    # the ranked list is actually sorted by the documented key.
    keys = [(s.baseline, guarantee_rank(s.guarantee)) for s in ranked]
    assert keys == sorted(keys)


@SETTINGS
@given(query=query_strategy, graph_kind=st.sampled_from(
    ["planted", "gnp", "weighted"]
))
def test_graph_aware_resolution_matches_the_input(query, graph_kind):
    graph = load_graph(f"{graph_kind}:n=40", rng=3)
    try:
        spec = resolve_capability(graph=graph, **query)
    except CapabilityResolutionError:
        return
    if spec.bipartite_only:
        assert isinstance(graph, BipartiteGraph)
    if spec.weighted:
        assert isinstance(graph, WeightedGraph)


# --------------------------------------------------------------------- #
# failure shape
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("kwargs,reason_part", [
    (dict(problem="coloring"), "unknown problem"),
    (dict(problem="matching", model="pram"), "unknown model"),
    (dict(problem="matching", guarantee="42-approx"), "guarantee"),
    (dict(problem="vertex_cover", weighted=True), "weighted"),
    (dict(problem="matching", model="coreset", has_k=False), "machine count"),
])
def test_impossible_queries_raise_typed_errors(kwargs, reason_part):
    with pytest.raises(CapabilityResolutionError) as err:
        resolve_capability(**kwargs)
    assert not isinstance(err.value, KeyError)
    assert isinstance(err.value, SolverCapabilityError)
    assert reason_part in (err.value.reason + str(err.value))


def test_error_carries_closest_candidates():
    with pytest.raises(CapabilityResolutionError) as err:
        resolve_capability("matching", model="streaming", guarantee="exact")
    # The pool died at the guarantee filter; the candidates that survived
    # up to it are named so callers can suggest alternatives.
    assert err.value.candidates
    assert all("." in name for name in err.value.candidates)


def test_graph_awareness_drops_wrong_inputs():
    general = load_graph("gnp:n=40", rng=1)
    spec = resolve_capability("matching", graph=general)
    assert not spec.bipartite_only and not spec.weighted

    weighted = load_graph("weighted:n=40", rng=1)
    spec = resolve_capability("matching", weighted=True, graph=weighted)
    assert spec.weighted
