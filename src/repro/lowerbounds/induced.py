"""Induced matchings and the Appendix A constants.

The matching lower bound rests on Lemma 4.1: in ``D_Matching`` every machine
sees an *induced matching* — the sub-matching on vertices of degree exactly
one — of size Θ(n/α), within which the hidden perfect-matching edges are
information-theoretically indistinguishable from random-graph edges.

Appendix A quantifies the constants for ``G(n, n, 1/n)``:

* Prop A.2(a): ~``n/e`` left vertices have degree exactly 1;
* Prop A.2(b): ~``n/e`` right vertices receive no edge from the rest;
* Lemma A.3:  the graph contains an induced matching of size
  ``n/e³ − o(n)`` w.h.p.

``induced_matching`` extracts the degree-exactly-one induced matching in one
``bincount`` pass; E11 sweeps n and checks the measured densities against
these constants.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.edgelist import Graph

__all__ = [
    "induced_matching",
    "degree_one_left_fraction_theory",
    "induced_matching_density_theory",
    "induced_matching_density_exact",
]


def induced_matching(graph: Graph) -> np.ndarray:
    """The unique matching on vertices of degree exactly one.

    Definition from §4.1: "the unique matching in G^(i) that is incident on
    vertices of degree exactly one, i.e., both end-points of each edge in
    M^(i) have degree one in G^(i)."  Note the induced property is with
    respect to the *entire* graph.
    """
    e = graph.edges
    if e.shape[0] == 0:
        return np.zeros((0, 2), dtype=np.int64)
    deg = graph.degrees
    both_one = (deg[e[:, 0]] == 1) & (deg[e[:, 1]] == 1)
    return e[both_one]


def degree_one_left_fraction_theory() -> float:
    """Prop A.2(a): fraction of one side with degree exactly 1 in
    G(n, n, 1/n) → 1/e."""
    return 1.0 / math.e


def induced_matching_density_theory() -> float:
    """Lemma A.3's *lower bound*: |induced matching| / n ≥ 1/e³ − o(1) in
    G(n, n, 1/n) w.h.p."""
    return 1.0 / math.e**3


def induced_matching_density_exact() -> float:
    """The exact asymptotic density of the degree-1 induced matching.

    An edge survives iff both endpoints pick up no further edge; each
    endpoint's extra degree is Binomial(n−1, 1/n) → Poisson(1), so the
    survival probability is e^{-2} and E|M| → n/e² ≈ 0.1353·n.  Lemma A.3's
    1/e³ is the (sufficient for the paper) lower bound obtained by its
    balls-in-bins argument; the measured value should land on 1/e², safely
    above the bound — both constants are reported by experiment E11.
    """
    return 1.0 / math.e**2
