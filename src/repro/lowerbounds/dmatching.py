"""``D_Matching`` — the hard input distribution for matching (§4.1, §5.1).

Construction on a bipartite vertex set ``L``, ``R`` with ``|L| = |R| = n``:

1. pick ``A ⊆ L`` and ``B ⊆ R``, each of size ``n/α``, uniformly at random;
2. ``E_AB``: each edge of ``A × B`` independently with probability ``kα/n``;
3. ``E_ĀB̄``: a random perfect matching between ``Ā = L \\ A`` and
   ``B̄ = R \\ B`` (size ``n − n/α``);
4. ``E = E_AB ∪ E_ĀB̄``, randomly k-partitioned.

``MM(G) ≥ n − n/α``, but any matching larger than ``2n/α`` must recover
``Ω(n/α)`` edges of the *hidden* matching ``E_ĀB̄`` — and inside each
machine those edges sit in the induced matching ``M^(i)`` (size Θ(n/α) by
Lemma 4.1) where they are exchangeable with the ``E_AB`` noise.  A coreset
of ``s`` edges can therefore only recover an O(s·α/k) expected fraction
(the Theorem 3 counting argument), which this module's budget-limited
protocol measures directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dist.coordinator import SimultaneousProtocol
from repro.dist.message import Message
from repro.core.compose import compose_matching
from repro.graph.bipartite import BipartiteGraph
from repro.matching.api import maximum_matching
from repro.utils.arrays import isin_mask
from repro.utils.rng import RandomState, as_generator

__all__ = [
    "DMatchingInstance",
    "sample_dmatching",
    "budget_limited_matching_protocol",
    "hidden_edges_recovered",
]


@dataclass(frozen=True)
class DMatchingInstance:
    """One sample of D_Matching with its ground truth."""

    graph: BipartiteGraph
    n: int
    alpha: float
    k: int
    set_a: np.ndarray  # A ⊆ L (global ids)
    set_b: np.ndarray  # B ⊆ R (global ids)
    hidden_matching: np.ndarray  # E_ĀB̄, (n - n/α, 2) global-id edges

    @property
    def optimal_size_lower_bound(self) -> int:
        """MM(G) ≥ |E_ĀB̄| (the hidden matching is itself a matching)."""
        return int(self.hidden_matching.shape[0])


def sample_dmatching(
    n: int, alpha: float, k: int, rng: RandomState = None
) -> DMatchingInstance:
    """Draw one instance of ``D_Matching(n, α, k)``."""
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    if not 1 <= k:
        raise ValueError(f"k must be >= 1, got {k}")
    gen = as_generator(rng)
    size_a = max(1, int(round(n / alpha)))
    if size_a >= n:
        raise ValueError("n/alpha must be smaller than n")

    a_local = np.sort(gen.choice(n, size=size_a, replace=False)).astype(np.int64)
    b_local = np.sort(gen.choice(n, size=size_a, replace=False)).astype(np.int64)
    a_mask = np.zeros(n, dtype=bool)
    a_mask[a_local] = True
    b_mask = np.zeros(n, dtype=bool)
    b_mask[b_local] = True
    a_bar = np.flatnonzero(~a_mask).astype(np.int64)
    b_bar = np.flatnonzero(~b_mask).astype(np.int64)

    # E_AB: Bernoulli(kα/n) over A × B.
    p = min(1.0, k * alpha / n)
    count = gen.binomial(size_a * size_a, p)
    if count:
        idx = gen.choice(size_a * size_a, size=count, replace=False)
        eab_left = a_local[idx // size_a]
        eab_right = b_local[idx % size_a]
    else:
        eab_left = np.zeros(0, dtype=np.int64)
        eab_right = np.zeros(0, dtype=np.int64)

    # E_ĀB̄: random perfect matching between the complements.
    perm = gen.permutation(b_bar.shape[0])
    hidden_left = a_bar
    hidden_right = b_bar[perm]

    left = np.concatenate([eab_left, hidden_left])
    right = np.concatenate([eab_right, hidden_right])
    graph = BipartiteGraph.from_pairs(n, n, left, right)
    hidden = np.stack([hidden_left, hidden_right + n], axis=1)
    return DMatchingInstance(
        graph=graph,
        n=n,
        alpha=float(alpha),
        k=k,
        set_a=a_local,
        set_b=b_local + n,
        hidden_matching=hidden,
    )


def hidden_edges_recovered(
    instance: DMatchingInstance, matching: np.ndarray
) -> int:
    """How many hidden-matching edges the output matching contains — the
    quantity that caps its size at 2n/α + recovered (§4.1)."""
    if np.asarray(matching).size == 0:
        return 0
    mask = isin_mask(matching, instance.hidden_matching, instance.graph.n_vertices)
    return int(mask.sum())


@dataclass(frozen=True)
class BudgetMatchingSummarizer:
    """Picklable budget-truncated maximum-matching summarizer."""

    budget: int

    def __call__(self, piece, machine_index, rng, public=None) -> Message:
        del public
        matching = maximum_matching(piece)
        if matching.shape[0] > self.budget:
            keep = rng.choice(matching.shape[0], size=self.budget,
                              replace=False)
            matching = matching[np.sort(keep)]
        return Message(sender=machine_index, edges=matching)


def budget_limited_matching_protocol(
    budget: int,
    combiner: str = "exact",
) -> SimultaneousProtocol[np.ndarray]:
    """The strongest size-``budget`` coreset available to an oblivious
    machine on D_Matching.

    The machine computes a maximum matching of its piece (the Theorem 1
    coreset — information-theoretically it cannot do better at selecting
    candidate edges, since hidden and noise edges are exchangeable within
    its induced matching) and then truncates to ``budget`` uniformly random
    edges of it.  Sweeping ``budget`` around n/α² exposes the Theorem 3
    threshold.
    """
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")

    def combine(coordinator, messages):
        return compose_matching(
            coordinator.n_vertices,
            [m.edges for m in messages],
            combiner=combiner,  # type: ignore[arg-type]
            template=coordinator.template,
        )

    return SimultaneousProtocol(
        name=f"budget-matching[s={budget}]",
        summarizer=BudgetMatchingSummarizer(budget=budget),
        combine=combine,
    )
