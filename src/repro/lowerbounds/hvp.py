"""The Hidden Vertex Problem (HVP) as a playable one-way game (§5.3).

Problem 2 of the paper: a universe ``U``, a disjoint set ``V``, and a public
mapping ``σ : U → V``.  Bob holds ``T ⊆ U``.  Alice holds ``S ⊆ T`` *plus*
one extra element ``u* ∈ U \\ T`` — but Alice only sees the unlabeled union
``S ∪ {u*}``; she cannot tell which of her elements is the special one
(she does not know ``T``).  Alice sends one message; Bob must output sets
``X ⊆ U``, ``Y ⊆ V`` with ``u* ∈ X`` or ``σ(u*) ∈ Y``, keeping
``|X ∪ Y|`` small.

Lemma 5.7: success with ``|X ∪ Y| ≤ C·n`` and probability ≥ 2/3 needs an
Ω(n/α) bit message.  The game here instantiates the natural budget-b
protocol family (Alice forwards b uniformly chosen elements of her set; Bob
returns the forwarded elements not in ``T``) and measures its success rate
— linear in b/|S|, i.e. a budget of Ω(|S|) = Ω(n/α) is necessary, matching
the lemma's shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RandomState, as_generator

__all__ = ["HVPInstance", "sample_hvp", "play_subsample_protocol"]


@dataclass(frozen=True)
class HVPInstance:
    """One HVP instance (distribution of §5.3's D_HVP, Claim 5.6 regime:
    each element of T belongs to S independently w.p. ≈ 1/3)."""

    universe_size: int
    sigma: np.ndarray  # (universe_size,) mapping U -> V ids
    bob_t: np.ndarray  # T ⊆ U
    alice_set: np.ndarray  # S ∪ {u*}, unlabeled, shuffled
    u_star: int


def sample_hvp(
    universe_size: int, t_size: int, rng: RandomState = None, s_prob: float = 1 / 3
) -> HVPInstance:
    """Draw an HVP instance: T uniform of size ``t_size``; S ⊆ T by
    independent coin flips at rate ``s_prob``; u* uniform outside T."""
    if t_size >= universe_size:
        raise ValueError("need t_size < universe_size to leave room for u*")
    gen = as_generator(rng)
    sigma = gen.permutation(universe_size).astype(np.int64)
    t = np.sort(gen.choice(universe_size, size=t_size, replace=False)).astype(np.int64)
    in_s = gen.random(t_size) < s_prob
    s = t[in_s]
    outside = np.setdiff1d(
        np.arange(universe_size, dtype=np.int64), t, assume_unique=False
    )
    u_star = int(outside[gen.integers(0, outside.shape[0])])
    alice = np.concatenate([s, [u_star]])
    gen.shuffle(alice)
    return HVPInstance(
        universe_size=universe_size,
        sigma=sigma,
        bob_t=t,
        alice_set=alice,
        u_star=u_star,
    )


def play_subsample_protocol(
    instance: HVPInstance, message_budget: int, rng: RandomState = None
) -> tuple[bool, int]:
    """Play the budget-b forwarding protocol; return ``(success, |X ∪ Y|)``.

    Alice cannot distinguish u* from S, so the best she can do with a budget
    of b element-ids is forward b of her elements chosen uniformly (any
    deterministic selection rule does no better against the uniform
    placement of u*).  Bob outputs ``X = forwarded \\ T`` and ``Y = ∅``.
    """
    gen = as_generator(rng)
    alice = instance.alice_set
    b = min(message_budget, alice.shape[0])
    forwarded = alice[gen.choice(alice.shape[0], size=b, replace=False)] if b else \
        np.zeros(0, dtype=np.int64)
    t_mask = np.zeros(instance.universe_size, dtype=bool)
    t_mask[instance.bob_t] = True
    x = forwarded[~t_mask[forwarded]]
    success = bool(np.isin(instance.u_star, x))
    return success, int(x.shape[0])
