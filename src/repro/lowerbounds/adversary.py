"""Adversarial partitioning — the regime the paper escapes (experiment E7).

Under adversarial edge placement, [10] shows *any* polylog-approximate Õ(n)
summary fails on some instance; in particular the Theorem 1 coreset must
fail.  We realize that failure constructively with a **decoy-gadget
instance** whose adversarial partition forces every machine's *unique*
maximum matching to avoid all globally useful edges:

For each hidden-matching edge ``(a_j, b_j)`` routed to machine ``i``, the
adversary also routes two decoy edges ``(a_j, c_m)`` and ``(d_m, b_j)``
drawn from a small shared pool ``{c_m}, {d_m}`` of ``N/k`` decoy vertices
per side (each machine uses each pool vertex once, so within a machine the
gadgets are vertex-disjoint).  Per gadget the unique maximum matching of
the machine's piece is the two decoys — size 2 beats the hidden edge's 1 —
so the machine's coreset contains **no hidden edge**.  Globally, however,
all decoy edges squeeze through only ``2N/k`` pool vertices, so the union
of coresets has maximum matching ≤ 2N/k + (pool internal) while
``MM(G) ≥ N``: the composed solution is a factor ~k/2 off.

The same graph under a *random* k-partition yields the usual O(1) ratio —
the side-by-side contrast is the paper's headline message in one plot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.edgelist import Graph
from repro.graph.partition import PartitionedGraph, random_k_partition
from repro.matching.api import maximum_matching
from repro.utils.rng import RandomState, as_generator, spawn_generators

__all__ = [
    "DecoyGadgetInstance",
    "decoy_gadget_instance",
    "PartitionContrast",
    "contrast_partitionings",
]


@dataclass(frozen=True)
class DecoyGadgetInstance:
    """The decoy-gadget graph with its adversarial partition and optimum."""

    graph: Graph
    adversarial: PartitionedGraph
    hidden_matching: np.ndarray
    optimum: int  # MM(G), exactly


def decoy_gadget_instance(
    n_hidden: int, k: int, rng: RandomState = None
) -> DecoyGadgetInstance:
    """Build the gadget instance for ``n_hidden`` hidden edges and ``k``
    machines (``n_hidden`` must be a multiple of ``k``).

    Vertex layout: ``a_0..a_{N-1} | b_0..b_{N-1} | c_0..c_{s-1} |
    d_0..d_{s-1}`` with ``s = N/k``.
    """
    if k < 2:
        raise ValueError("the adversary needs k >= 2")
    if n_hidden % k != 0:
        raise ValueError(f"n_hidden={n_hidden} must be a multiple of k={k}")
    gen = as_generator(rng)
    big_n = n_hidden
    s = big_n // k
    a = np.arange(big_n, dtype=np.int64)
    b = a + big_n
    c = np.arange(s, dtype=np.int64) + 2 * big_n
    d = np.arange(s, dtype=np.int64) + 2 * big_n + s
    n = 2 * big_n + 2 * s

    # Hidden edge j goes to machine j // s; its decoy pool index is j % s
    # (shuffled within each machine so pool use is not id-correlated).
    pool_idx = np.concatenate(
        [gen.permutation(s) for _ in range(k)]
    ).astype(np.int64)
    machine = np.repeat(np.arange(k, dtype=np.int64), s)

    hidden = np.stack([a, b], axis=1)
    decoy1 = np.stack([a, c[pool_idx]], axis=1)
    decoy2 = np.stack([d[pool_idx], b], axis=1)
    edges = np.vstack([hidden, decoy1, decoy2])
    assignment_raw = np.concatenate([machine, machine, machine])

    graph = Graph(n, edges)
    # Graph construction re-sorts edges; re-derive the assignment by key.
    from repro.utils.arrays import edge_keys

    raw_keys = edge_keys(edges, n)
    order = np.argsort(raw_keys, kind="stable")
    sorted_keys = raw_keys[order]
    sorted_assign = assignment_raw[order]
    idx = np.searchsorted(sorted_keys, graph.edge_key_array)
    assignment = sorted_assign[idx]

    adversarial = PartitionedGraph(graph=graph, k=k, assignment=assignment)
    optimum = int(maximum_matching(graph).shape[0])
    return DecoyGadgetInstance(
        graph=graph,
        adversarial=adversarial,
        hidden_matching=hidden,
        optimum=optimum,
    )


@dataclass(frozen=True)
class PartitionContrast:
    """Result of running the same coreset under both partitionings."""

    optimum: int
    random_output: int
    adversarial_output: int

    @property
    def random_ratio(self) -> float:
        return self.optimum / max(1, self.random_output)

    @property
    def adversarial_ratio(self) -> float:
        return self.optimum / max(1, self.adversarial_output)


def contrast_partitionings(
    n_hidden: int, k: int, rng: RandomState = None
) -> PartitionContrast:
    """Run the Theorem 1 coreset on the decoy-gadget graph under (a) its
    adversarial partition and (b) a fresh random k-partition."""
    from repro.core.protocols import matching_coreset_protocol
    from repro.dist.coordinator import run_simultaneous

    gens = spawn_generators(rng, 3)
    instance = decoy_gadget_instance(n_hidden, k, gens[0])
    protocol = matching_coreset_protocol(combiner="exact", algorithm="blossom")

    random_part = random_k_partition(instance.graph, k, gens[1])
    random_out = run_simultaneous(protocol, random_part, gens[2]).output
    adv_out = run_simultaneous(protocol, instance.adversarial, gens[2]).output
    return PartitionContrast(
        optimum=instance.optimum,
        random_output=int(np.asarray(random_out).shape[0]),
        adversarial_output=int(np.asarray(adv_out).shape[0]),
    )
