"""``D_VC`` — the hard input distribution for vertex cover (§4.2, §5.3).

Construction on ``L``, ``R`` with ``|L| = |R| = n``:

1. pick ``A ⊆ L`` of size ``n/α`` uniformly at random;
2. ``E_A``: each edge of ``A × R`` independently with probability ``k/2n``;
3. pick ``v* ∈ A`` uniformly; ``e*`` is a uniformly random edge incident on
   ``v*`` (i.e., a uniform endpoint in ``R``);
4. ``E = E_A ∪ {e*}``, randomly k-partitioned.

``VC(G) ≤ n/α + 1`` (take ``A ∪ {one endpoint of e*}``), but a feasible
cover *must* cover ``e*`` — and on the machine that received ``e*``, the
vertex ``v*`` hides among the Θ(n/α) degree-one vertices of ``A``
(Lemma 4.2).  A coreset of ``o(n/α)`` edges + fixed vertices misses ``e*``
with probability 1 − o(1), so the coordinator must either output an
infeasible set or blow the cover up to Ω(n) — which is exactly what the
budget-limited protocol below lets experiments observe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.compose import compose_vertex_cover
from repro.core.vc_coreset import VCCoresetResult, vc_coreset
from repro.dist.coordinator import SimultaneousProtocol
from repro.dist.message import Message
from repro.graph.bipartite import BipartiteGraph
from repro.graph.edgelist import Graph
from repro.utils.rng import RandomState, as_generator

__all__ = [
    "DVCInstance",
    "sample_dvc",
    "budget_limited_cover_protocol",
    "covers_estar",
]


@dataclass(frozen=True)
class DVCInstance:
    """One sample of D_VC with its ground truth."""

    graph: BipartiteGraph
    n: int
    alpha: float
    k: int
    set_a: np.ndarray  # A ⊆ L (global ids)
    v_star: int  # global id in L
    e_star: tuple[int, int]  # global-id edge (v*, r*)

    @property
    def optimal_size_upper_bound(self) -> int:
        """VC(G) ≤ |A| + 1."""
        return int(self.set_a.shape[0]) + 1


def sample_dvc(n: int, alpha: float, k: int, rng: RandomState = None) -> DVCInstance:
    """Draw one instance of ``D_VC(n, α, k)``."""
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    gen = as_generator(rng)
    size_a = max(1, int(round(n / alpha)))
    if size_a > n:
        raise ValueError("n/alpha must be at most n")

    a_local = np.sort(gen.choice(n, size=size_a, replace=False)).astype(np.int64)

    p = min(1.0, k / (2.0 * n))
    count = gen.binomial(size_a * n, p)
    if count:
        idx = gen.choice(size_a * n, size=count, replace=False)
        ea_left = a_local[idx // n]
        ea_right = idx % n
    else:
        ea_left = np.zeros(0, dtype=np.int64)
        ea_right = np.zeros(0, dtype=np.int64)

    v_star = int(a_local[gen.integers(0, size_a)])
    r_star = int(gen.integers(0, n))

    left = np.concatenate([ea_left, [v_star]])
    right = np.concatenate([ea_right, [r_star]])
    graph = BipartiteGraph.from_pairs(n, n, left, right)
    return DVCInstance(
        graph=graph,
        n=n,
        alpha=float(alpha),
        k=k,
        set_a=a_local,
        v_star=v_star,
        e_star=(v_star, r_star + n),
    )


def covers_estar(instance: DVCInstance, cover: np.ndarray) -> bool:
    """Does the output cover the planted edge e*?"""
    c = np.asarray(cover, dtype=np.int64)
    return bool(np.isin(instance.e_star[0], c) or np.isin(instance.e_star[1], c))


@dataclass(frozen=True)
class BudgetCoverSummarizer:
    """Picklable budget-truncated VC-peeling summarizer."""

    edge_budget: int
    vertex_budget: int
    k: int
    log_slack: float = 4.0

    def __call__(self, piece, machine_index, rng, public=None) -> Message:
        del public
        result = vc_coreset(piece, k=self.k, log_slack=self.log_slack)
        edges = result.residual.edges
        fixed = result.fixed_vertices
        if edges.shape[0] > self.edge_budget:
            keep = rng.choice(edges.shape[0], size=self.edge_budget,
                              replace=False)
            edges = edges[np.sort(keep)]
        if fixed.shape[0] > self.vertex_budget:
            keep = rng.choice(fixed.shape[0], size=self.vertex_budget,
                              replace=False)
            fixed = fixed[np.sort(keep)]
        return Message(sender=machine_index, edges=edges,
                       fixed_vertices=fixed)


def budget_limited_cover_protocol(
    edge_budget: int,
    vertex_budget: int,
    k: int,
    log_slack: float = 4.0,
) -> SimultaneousProtocol[np.ndarray]:
    """The strongest budgeted coreset available on D_VC.

    Each machine runs the Theorem 2 peeling coreset and then truncates its
    message to ``edge_budget`` uniformly random residual edges and
    ``vertex_budget`` uniformly random fixed vertices.  Because ``e*`` is
    exchangeable with the machine's other degree-one edges, truncation
    hits it obliviously — the information constraint the Theorem 4 proof
    formalizes.
    """
    if edge_budget < 0 or vertex_budget < 0:
        raise ValueError("budgets must be non-negative")

    def combine(coordinator, messages):
        results = [
            VCCoresetResult(
                fixed_vertices=m.fixed_vertices,
                residual=Graph(coordinator.n_vertices, m.edges),
                trace=None,  # type: ignore[arg-type]
            )
            for m in messages
        ]
        return compose_vertex_cover(
            coordinator.n_vertices,
            results,
            combiner="auto",
            template=coordinator.template,
        )

    return SimultaneousProtocol(
        name=f"budget-vc[e={edge_budget},v={vertex_budget}]",
        summarizer=BudgetCoverSummarizer(
            edge_budget=edge_budget, vertex_budget=vertex_budget,
            k=k, log_slack=log_slack,
        ),
        combine=combine,
    )
