"""Hard distributions and lower-bound experiments (Results 2 and 3).

The paper's lower bounds are statements about concrete input distributions:

* :mod:`repro.lowerbounds.dmatching` — ``D_Matching`` (§4.1/§5.1): a sparse
  random bipartite graph whose near-perfect matching hides inside an
  indistinguishable induced matching on every machine;
* :mod:`repro.lowerbounds.dvc` — ``D_VC`` (§4.2/§5.3): a skewed random
  bipartite graph hiding a single must-cover edge ``e*``;
* :mod:`repro.lowerbounds.induced` — induced-matching extraction and the
  ``n/e³`` constants of Appendix A;
* :mod:`repro.lowerbounds.hvp` — the Hidden Vertex Problem as a playable
  one-way communication game;
* :mod:`repro.lowerbounds.adversary` — adversarial partitionings (the
  regime where [10] rules out all small summaries).

Each module pairs a sampler with the metric the corresponding theorem
bounds, so the benchmark harness can sweep summary-size budgets and watch
the predicted collapse.
"""

from repro.lowerbounds.dmatching import (
    DMatchingInstance,
    budget_limited_matching_protocol,
    sample_dmatching,
)
from repro.lowerbounds.dvc import (
    DVCInstance,
    budget_limited_cover_protocol,
    sample_dvc,
)
from repro.lowerbounds.hvp import HVPInstance, play_subsample_protocol, sample_hvp
from repro.lowerbounds.induced import (
    induced_matching,
    induced_matching_density_theory,
)

__all__ = [
    "DMatchingInstance",
    "DVCInstance",
    "HVPInstance",
    "budget_limited_cover_protocol",
    "budget_limited_matching_protocol",
    "induced_matching",
    "induced_matching_density_theory",
    "play_subsample_protocol",
    "sample_dmatching",
    "sample_dvc",
    "sample_hvp",
]
