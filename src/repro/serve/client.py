"""A minimal asyncio client for the ``repro serve`` HTTP API.

Stdlib-only, like the server: one connection per request
(``Connection: close``), JSON in, JSON out.  This is the client the
concurrency tests, the CI smoke job, and ``examples/ad_exchange_matching``
all drive — keeping their request-building in one place so "what a
request looks like" is defined exactly once outside the server.

Errors follow the server's taxonomy: any non-2xx response raises
:class:`ServeClientError` carrying the status and the parsed
``{"error": {...}}`` document, so a test can assert
``exc.code == "worker_pool_broken"`` instead of string-matching bodies.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["ServeClient", "ServeClientError"]


class ServeClientError(RuntimeError):
    """A non-2xx response from the server."""

    def __init__(self, status: int, doc: Any) -> None:
        error = (doc or {}).get("error", {}) if isinstance(doc, dict) else {}
        super().__init__(
            f"server returned {status}: "
            f"{error.get('message', 'no error document')}"
        )
        self.status = status
        self.doc = doc
        self.code = error.get("code", "unknown")


class ServeClient:
    """Talk to one ``repro serve`` instance."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8080,
                 timeout: float = 120.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    async def request(self, method: str, path: str,
                      doc: Any = None) -> Tuple[int, Any]:
        """One HTTP exchange; returns ``(status, parsed_json_or_None)``.

        The response is read by ``Content-Length``, never until EOF: a
        server that forks worker processes mid-connection (pool
        replacement after a crash) leaves duplicate connection fds in the
        children, so EOF may arrive arbitrarily late even though the
        response is complete on the wire.
        """
        body = b"" if doc is None else json.dumps(doc).encode("utf-8")
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Connection: close\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"\r\n"
            )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
            status, parsed = await asyncio.wait_for(
                self._read_response(reader), timeout=self.timeout
            )
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        return status, parsed

    @staticmethod
    async def _read_response(
        reader: asyncio.StreamReader,
    ) -> Tuple[int, Any]:
        try:
            header_blob = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            raise ServeClientError(0, {"error": {
                "code": "bad_response",
                "message": f"connection closed mid-headers: "
                           f"{exc.partial[:200]!r}",
            }})
        lines = header_blob.split(b"\r\n")
        status_line = lines[0].split()
        if len(status_line) < 2 or not status_line[0].startswith(b"HTTP/"):
            raise ServeClientError(0, {"error": {
                "code": "bad_response",
                "message": f"unparseable response: {header_blob[:200]!r}",
            }})
        status = int(status_line[1])
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                length = int(value.strip())
        payload = await reader.readexactly(length) if length else b""
        return status, json.loads(payload) if payload else None

    async def call(self, method: str, path: str, doc: Any = None) -> Any:
        """Like :meth:`request`, raising :class:`ServeClientError` on 4xx/5xx."""
        status, parsed = await self.request(method, path, doc)
        if status >= 400:
            raise ServeClientError(status, parsed)
        return parsed

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    async def healthz(self) -> Dict[str, Any]:
        return await self.call("GET", "/healthz")

    async def stats(self) -> Dict[str, Any]:
        return await self.call("GET", "/stats")

    async def solvers(self, problem: Optional[str] = None,
                      model: Optional[str] = None) -> Dict[str, Any]:
        query = "&".join(
            f"{k}={v}" for k, v in (("problem", problem), ("model", model))
            if v
        )
        return await self.call("GET", "/solvers" + (f"?{query}" if query
                                                    else ""))

    async def graphs(self) -> List[Dict[str, Any]]:
        return (await self.call("GET", "/graphs"))["graphs"]

    async def register_graph(self, graph_id: str, source: str,
                             seed: int = 0) -> Dict[str, Any]:
        return await self.call("POST", "/graphs", {
            "id": graph_id, "source": source, "seed": seed,
        })

    async def unregister_graph(self, graph_id: str) -> Dict[str, Any]:
        return await self.call("DELETE", f"/graphs/{graph_id}")

    async def solve(self, graph_id: str, **fields: Any) -> Dict[str, Any]:
        """``POST /solve``; fields mirror the request schema
        (``solver=`` or ``problem=``/``model=``/..., plus ``seed``, ``k``,
        ``params``, ``verify``, ``certificate``)."""
        return await self.call("POST", "/solve",
                               {"graph": graph_id, **fields})

    async def compare(self, graph_id: str, solvers: List[Any],
                      **fields: Any) -> Dict[str, Any]:
        return await self.call("POST", "/compare", {
            "graph": graph_id, "solvers": solvers, **fields,
        })

    # ------------------------------------------------------------------ #
    async def wait_ready(self, timeout: float = 15.0) -> Dict[str, Any]:
        """Poll ``/healthz`` until the server answers (startup races)."""
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            try:
                return await self.healthz()
            except (ConnectionError, OSError, ServeClientError):
                if asyncio.get_running_loop().time() > deadline:
                    raise
                await asyncio.sleep(0.05)
