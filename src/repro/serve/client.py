"""A minimal asyncio client for the ``repro serve`` HTTP API.

Stdlib-only, like the server: one connection per request
(``Connection: close``), JSON in, JSON out.  This is the client the
concurrency tests, the CI smoke job, and ``examples/ad_exchange_matching``
all drive — keeping their request-building in one place so "what a
request looks like" is defined exactly once outside the server.

Errors follow the server's taxonomy: any non-2xx response raises
:class:`ServeClientError` carrying the status and the parsed
``{"error": {...}}`` document, so a test can assert
``exc.code == "worker_pool_broken"`` instead of string-matching bodies.

Resilience is opt-in via ``retries=`` / ``backoff=``: connect failures
retry with jittered exponential backoff (the server may be restarting),
and a 429 ``overloaded`` waits out the server's advisory delay
(``retry_after_ms`` from the error doc, falling back to the
``Retry-After`` header) before trying again.  With the default
``retries=0`` the client behaves exactly as before: one attempt,
errors surface immediately.
"""

from __future__ import annotations

import asyncio
import json
import random
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["ServeClient", "ServeClientError"]


class ServeClientError(RuntimeError):
    """A non-2xx response from the server."""

    def __init__(self, status: int, doc: Any,
                 retry_after: Optional[float] = None) -> None:
        error = (doc or {}).get("error", {}) if isinstance(doc, dict) else {}
        super().__init__(
            f"server returned {status}: "
            f"{error.get('message', 'no error document')}"
        )
        self.status = status
        self.doc = doc
        self.code = error.get("code", "unknown")
        #: The server's advisory retry delay in seconds (429s), or None.
        self.retry_after = retry_after


class ServeClient:
    """Talk to one ``repro serve`` instance."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8080,
                 timeout: float = 120.0, retries: int = 0,
                 backoff: float = 0.05) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff <= 0:
            raise ValueError(f"backoff must be > 0, got {backoff}")
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff = float(backoff)

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    async def request(self, method: str, path: str,
                      doc: Any = None) -> Tuple[int, Any]:
        """One HTTP exchange (no retries); returns
        ``(status, parsed_json_or_None)``."""
        status, parsed, _headers = await self._request_once(method, path, doc)
        return status, parsed

    async def _request_once(
        self, method: str, path: str, doc: Any = None,
    ) -> Tuple[int, Any, Dict[str, str]]:
        """One HTTP exchange; returns ``(status, parsed, headers)``.

        The response is read by ``Content-Length``, never until EOF: a
        server that forks worker processes mid-connection (pool
        replacement after a crash) leaves duplicate connection fds in the
        children, so EOF may arrive arbitrarily late even though the
        response is complete on the wire.
        """
        body = b"" if doc is None else json.dumps(doc).encode("utf-8")
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Connection: close\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"\r\n"
            )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
            status, parsed, headers = await asyncio.wait_for(
                self._read_response(reader), timeout=self.timeout
            )
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        return status, parsed, headers

    @staticmethod
    async def _read_response(
        reader: asyncio.StreamReader,
    ) -> Tuple[int, Any, Dict[str, str]]:
        try:
            header_blob = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            raise ServeClientError(0, {"error": {
                "code": "bad_response",
                "message": f"connection closed mid-headers: "
                           f"{exc.partial[:200]!r}",
            }})
        lines = header_blob.split(b"\r\n")
        status_line = lines[0].split()
        if len(status_line) < 2 or not status_line[0].startswith(b"HTTP/"):
            raise ServeClientError(0, {"error": {
                "code": "bad_response",
                "message": f"unparseable response: {header_blob[:200]!r}",
            }})
        status = int(status_line[1])
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            name, _, value = line.partition(b":")
            if name:
                headers[name.strip().lower().decode("latin-1")] = (
                    value.strip().decode("latin-1")
                )
        length = int(headers.get("content-length", "0") or 0)
        payload = await reader.readexactly(length) if length else b""
        return status, json.loads(payload) if payload else None, headers

    # ------------------------------------------------------------------ #
    # retry policy
    # ------------------------------------------------------------------ #
    def _retry_delay(self, attempt: int) -> float:
        """Jittered exponential backoff: ``backoff * 2^attempt``, scaled
        by a uniform factor in [0.5, 1.5)."""
        return self.backoff * (2 ** attempt) * (0.5 + random.random())

    def _retry_after_s(self, parsed: Any,
                       headers: Dict[str, str]) -> Optional[float]:
        """The server's advisory delay: ``retry_after_ms`` from the error
        doc (precise), else the ``Retry-After`` header (whole seconds)."""
        if isinstance(parsed, dict):
            ms = parsed.get("error", {}).get("retry_after_ms")
            if isinstance(ms, (int, float)) and not isinstance(ms, bool):
                return max(0.0, float(ms) / 1000.0)
        raw = headers.get("retry-after")
        if raw is not None:
            try:
                return max(0.0, float(raw))
            except ValueError:
                pass
        return None

    async def call(self, method: str, path: str, doc: Any = None) -> Any:
        """Like :meth:`request`, raising :class:`ServeClientError` on
        4xx/5xx; with ``retries > 0`` connect errors and 429s are retried
        (bounded), honoring the server's advisory delay on 429."""
        attempt = 0
        while True:
            try:
                status, parsed, headers = await self._request_once(
                    method, path, doc
                )
            except (ConnectionError, OSError):
                if attempt >= self.retries:
                    raise
                await asyncio.sleep(self._retry_delay(attempt))
                attempt += 1
                continue
            retry_after = self._retry_after_s(parsed, headers)
            if status == 429 and attempt < self.retries:
                # Wait out the server's advisory delay (plus a jittered
                # pad, so a client arriving exactly at the breaker's
                # boundary doesn't immediately bounce again).
                delay = (retry_after if retry_after is not None
                         else self._retry_delay(attempt))
                await asyncio.sleep(delay + self.backoff * random.random())
                attempt += 1
                continue
            if status >= 400:
                raise ServeClientError(status, parsed,
                                       retry_after=retry_after)
            return parsed

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    async def healthz(self) -> Dict[str, Any]:
        return await self.call("GET", "/healthz")

    async def readyz(self) -> Tuple[bool, Dict[str, Any]]:
        """``GET /readyz`` → ``(ready, doc)``; 503 is an answer here,
        not an error."""
        status, parsed = await self.request("GET", "/readyz")
        if status not in (200, 503):
            raise ServeClientError(status, parsed)
        return status == 200, parsed

    async def stats(self) -> Dict[str, Any]:
        return await self.call("GET", "/stats")

    async def statz(self) -> Dict[str, Any]:
        return await self.call("GET", "/statz")

    async def solvers(self, problem: Optional[str] = None,
                      model: Optional[str] = None) -> Dict[str, Any]:
        query = "&".join(
            f"{k}={v}" for k, v in (("problem", problem), ("model", model))
            if v
        )
        return await self.call("GET", "/solvers" + (f"?{query}" if query
                                                    else ""))

    async def graphs(self) -> List[Dict[str, Any]]:
        return (await self.call("GET", "/graphs"))["graphs"]

    async def register_graph(self, graph_id: str, source: str,
                             seed: int = 0) -> Dict[str, Any]:
        return await self.call("POST", "/graphs", {
            "id": graph_id, "source": source, "seed": seed,
        })

    async def unregister_graph(self, graph_id: str) -> Dict[str, Any]:
        return await self.call("DELETE", f"/graphs/{graph_id}")

    async def solve(self, graph_id: str, **fields: Any) -> Dict[str, Any]:
        """``POST /solve``; fields mirror the request schema
        (``solver=`` or ``problem=``/``model=``/..., plus ``seed``, ``k``,
        ``params``, ``verify``, ``certificate``, ``deadline_ms``)."""
        return await self.call("POST", "/solve",
                               {"graph": graph_id, **fields})

    async def compare(self, graph_id: str, solvers: List[Any],
                      **fields: Any) -> Dict[str, Any]:
        return await self.call("POST", "/compare", {
            "graph": graph_id, "solvers": solvers, **fields,
        })

    # ------------------------------------------------------------------ #
    async def wait_ready(self, timeout: float = 15.0) -> Dict[str, Any]:
        """Poll ``/healthz`` until the server answers (startup races)."""
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            try:
                return await self.healthz()
            except (ConnectionError, OSError, ServeClientError):
                if asyncio.get_running_loop().time() > deadline:
                    raise
                await asyncio.sleep(0.05)
