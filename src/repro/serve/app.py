"""``repro serve`` — matching-as-a-service over the solver registry.

A deliberately small asyncio HTTP/1.1 server (stdlib only, no framework)
that turns the library's one-shot ``repro solve`` pipeline into a
long-lived service:

* **graphs load once** — at startup (``--graph id=SPEC``) or at runtime
  (``POST /graphs``) — and stay pinned in a :class:`~repro.serve.store.
  GraphStore`; with a process pool the edges sit in shared memory and
  requests ship only handles;
* **the executor pool is warm** — one persistent backend for the server's
  lifetime, so no request pays pool start-up;
* **requests resolve solvers by capability** — ``{"problem":
  "matching", "model": "coreset"}`` picks the best registered
  :class:`~repro.solve.registry.SolverSpec` for that graph via
  :func:`~repro.solve.capabilities.resolve_capability`, or name one
  explicitly with ``{"solver": ...}``;
* **concurrent requests micro-batch** — same graph, one executor barrier
  (:mod:`repro.serve.batcher`), byte-identical results to serial solves;
* **``POST /compare``** runs several solvers side by side on one graph in
  a single batch.

Routes
------
======  ==================  =============================================
GET     /healthz            liveness + graph count
GET     /stats              server / batcher / store / executor counters
GET     /solvers            registry capabilities (+ resolution order
                            with ``?problem=``)
GET     /graphs             registered graph infos
POST    /graphs             register ``{"id", "source", "seed"}``
GET     /graphs/<id>        one graph's info
DELETE  /graphs/<id>        unregister (refcounted; never yanks in-flight)
POST    /solve              one solve (see ``parse_solve_request``)
POST    /compare            side-by-side solvers on one graph
======  ==================  =============================================

Errors are always JSON ``{"error": {"code", "message", ...}}`` with the
taxonomy of :mod:`repro.serve.protocol`; a crashed worker pool costs the
in-flight batch a 500 ``worker_pool_broken`` and nothing else — the next
request gets a fresh pool (``tests/test_serve_faults.py``).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs

from repro.dist.executor import (
    EXECUTOR_ENV,
    ProcessExecutor,
    resolve_executor,
)
from repro.graph.bipartite import BipartiteGraph
from repro.graph.weights import WeightedGraph
from repro.serve.batcher import MicroBatcher
from repro.serve.protocol import (
    BadRequest,
    CompareRequest,
    NotFound,
    ServeError,
    SolveRequest,
    UnresolvableCapability,
    parse_compare_request,
    parse_graph_request,
    parse_solve_request,
)
from repro.serve.store import GraphStore, PinnedGraph
from repro.serve.tasks import SolveTask, warm_worker
from repro.solve.capabilities import (
    CapabilityResolutionError,
    rank_candidates,
)
from repro.solve.registry import (
    SolverSpec,
    UnknownSolverError,
    all_solvers,
    get_solver,
)

__all__ = ["ReproServer", "ServeConfig", "serve_main"]

_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    422: "Unprocessable Entity", 500: "Internal Server Error",
}


class _MethodNotAllowed(ServeError):
    status = 405
    code = "method_not_allowed"


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``repro serve`` needs to boot.

    ``executor=None`` resolves ``$REPRO_EXECUTOR`` and falls back to
    ``"threads"`` — serving wants a warm in-process pool by default, not
    the library-wide serial default.  ``pin`` controls shared-memory graph
    pinning: ``"auto"`` pins exactly when the pool is a process pool,
    ``"always"``/``"never"`` force it.
    """

    host: str = "127.0.0.1"
    port: int = 0
    executor: Optional[str] = None
    workers: Optional[int] = None
    batch_window_ms: float = 5.0
    max_batch: int = 32
    max_body_bytes: int = 8 * 1024 * 1024
    pin: str = "auto"
    preload: Tuple[Tuple[str, str], ...] = ()
    seed: int = 0


class ReproServer:
    """The serving facade: graph store + warm pool + micro-batcher + HTTP."""

    def __init__(self, config: Optional[ServeConfig] = None,
                 **overrides: Any) -> None:
        self.config = config if config is not None else ServeConfig(**overrides)
        cfg = self.config
        if cfg.pin not in ("auto", "always", "never"):
            raise ValueError(
                f"pin must be auto/always/never, got {cfg.pin!r}"
            )
        self.executor_name = (
            cfg.executor or os.environ.get(EXECUTOR_ENV) or "threads"
        )
        self.executor = resolve_executor(self.executor_name,
                                         workers=cfg.workers)
        # Handles (shared segments) ship to process pools; in-process pools
        # share the graph object itself and additionally reuse pinned
        # partition views across requests with the same (k, seed).
        self.ship_handles = (
            cfg.pin == "always"
            or (cfg.pin == "auto"
                and isinstance(self.executor, ProcessExecutor))
        )
        # Warm the pool now: the lazy backends run single-task barriers
        # inline until a pool exists, and a serving process must never
        # execute solver code (or chaos hooks) in its own process.
        self.executor.map(warm_worker, [0, 1])
        self.store = GraphStore(pin_shared=self.ship_handles)
        self.batcher = MicroBatcher(
            self.executor,
            window_s=cfg.batch_window_ms / 1000.0,
            max_batch=cfg.max_batch,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self.host = cfg.host
        self.port = cfg.port
        self._started = time.monotonic()
        self.requests_total = 0
        self.errors_total = 0
        self.route_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def aclose(self) -> None:
        """Stop accepting, drain in-flight batches, release everything."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.batcher.drain()
        self.executor.close()
        self.store.close()

    async def __aenter__(self) -> "ReproServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()

    def add_graph(self, graph_id: str, source: str = "<direct>",
                  seed: int = 0, graph: Any = None) -> PinnedGraph:
        """Synchronous registration for preload paths and tests."""
        return self.store.register(graph_id, source, seed=seed, graph=graph)

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    return
                parts = request_line.decode("latin-1").split()
                if len(parts) != 3 or not parts[2].startswith("HTTP/"):
                    self._write(writer, 400, BadRequest(
                        "malformed request line").to_doc(), False)
                    await writer.drain()
                    return
                method, raw_path, _version = parts
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0"))
                except ValueError:
                    length = -1
                if length < 0 or length > self.config.max_body_bytes:
                    self._write(writer, 413, BadRequest(
                        "invalid or oversized content-length",
                        limit=self.config.max_body_bytes).to_doc(), False)
                    await writer.drain()
                    return
                body = await reader.readexactly(length) if length else b""
                keep = headers.get("connection", "").lower() != "close"
                status, doc = await self._route(method.upper(), raw_path,
                                                body)
                self._write(writer, status, doc, keep)
                await writer.drain()
                if not keep:
                    return
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    @staticmethod
    def _write(writer: asyncio.StreamWriter, status: int,
               doc: Any, keep_alive: bool) -> None:
        body = json.dumps(doc).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + body)

    async def _route(self, method: str, raw_path: str,
                     body: bytes) -> Tuple[int, Any]:
        self.requests_total += 1
        path, _, query_text = raw_path.partition("?")
        self.route_counts[f"{method} {path}"] = (
            self.route_counts.get(f"{method} {path}", 0) + 1
        )
        try:
            return await self._dispatch(method, path, query_text, body)
        except ServeError as exc:
            self.errors_total += 1
            return exc.status, exc.to_doc()
        except Exception as exc:  # noqa: BLE001 - the server must not die
            self.errors_total += 1
            return 500, ServeError(
                f"internal error: {type(exc).__name__}: {exc}"
            ).to_doc()

    @staticmethod
    def _json_body(body: bytes) -> Any:
        if not body:
            raise BadRequest("request body is empty; expected JSON")
        try:
            return json.loads(body)
        except ValueError as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}")

    async def _dispatch(self, method: str, path: str, query_text: str,
                        body: bytes) -> Tuple[int, Any]:
        query = {k: v[-1] for k, v in parse_qs(query_text).items()}
        if path == "/healthz":
            self._need(method, "GET", path)
            return 200, {"ok": True, "graphs": len(self.store.ids())}
        if path == "/stats":
            self._need(method, "GET", path)
            return 200, self._stats_doc()
        if path == "/solvers":
            self._need(method, "GET", path)
            return 200, self._solvers_doc(query)
        if path == "/graphs":
            if method == "GET":
                return 200, {"graphs": self.store.infos()}
            self._need(method, "POST", path)
            req = parse_graph_request(self._json_body(body))
            loop = asyncio.get_running_loop()
            try:
                pg = await loop.run_in_executor(
                    None, lambda: self.store.register(
                        req.graph_id, req.source, seed=req.seed)
                )
            except (ValueError, OSError) as exc:
                # load_graph rejected the spec (unknown generator, bad
                # KEY=VALUE, unreadable file) — the caller's fault, not ours.
                raise BadRequest(str(exc), source=req.source)
            return 201, pg.info()
        if path.startswith("/graphs/"):
            graph_id = path[len("/graphs/"):]
            if method == "GET":
                return 200, self.store.get(graph_id).info()
            self._need(method, "DELETE", path)
            return 200, {"unregistered": self.store.unregister(graph_id)}
        if path == "/solve":
            self._need(method, "POST", path)
            req = parse_solve_request(self._json_body(body))
            return 200, await self._do_solve(req)
        if path == "/compare":
            self._need(method, "POST", path)
            req = parse_compare_request(self._json_body(body))
            return 200, await self._do_compare(req)
        raise NotFound(f"no route {path!r}")

    @staticmethod
    def _need(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise _MethodNotAllowed(
                f"{method} is not allowed for {path} (use {expected})",
                allowed=expected,
            )

    # ------------------------------------------------------------------ #
    # documents
    # ------------------------------------------------------------------ #
    def _stats_doc(self) -> Dict[str, Any]:
        return {
            "server": {
                "uptime_s": round(time.monotonic() - self._started, 3),
                "requests_total": self.requests_total,
                "errors_total": self.errors_total,
                "routes": dict(self.route_counts),
            },
            "executor": {
                "backend": self.executor_name,
                "workers": self.config.workers,
                "ship_handles": self.ship_handles,
            },
            "batcher": self.batcher.stats(),
            "store": self.store.stats(),
        }

    def _solvers_doc(self, query: Dict[str, str]) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "solvers": [s.capabilities() for s in all_solvers()],
        }
        problem = query.get("problem")
        if problem:
            try:
                ranked = rank_candidates(
                    problem,
                    model=query.get("model") or None,
                    guarantee=query.get("guarantee") or None,
                )
                doc["resolution_order"] = [s.name for s in ranked]
            except CapabilityResolutionError as exc:
                raise UnresolvableCapability(str(exc),
                                             query=exc.query.to_dict())
        return doc

    # ------------------------------------------------------------------ #
    # solving
    # ------------------------------------------------------------------ #
    def _resolve_spec(self, req: SolveRequest, graph: Any) -> SolverSpec:
        if req.solver is not None:
            try:
                return get_solver(req.solver)
            except UnknownSolverError as exc:
                raise NotFound(str(exc), solver=req.solver)
        try:
            return rank_candidates(
                req.problem,
                model=req.model,
                guarantee=req.guarantee,
                weighted=req.weighted,
                graph=graph,
                has_k=req.k is not None,
            )[0]
        except CapabilityResolutionError as exc:
            raise UnresolvableCapability(
                str(exc), query=exc.query.to_dict(),
                candidates=list(exc.candidates),
            )

    @staticmethod
    def _precheck(spec: SolverSpec, graph: Any, k: Optional[int],
                  params: Dict[str, Any]) -> None:
        """Reject with a 4xx everything the facade would reject with a
        raise — capability mismatches must never cost a pool round-trip."""
        if spec.bipartite_only and not isinstance(graph, BipartiteGraph):
            raise BadRequest(
                f"solver {spec.name!r} requires a bipartite graph, "
                f"got {type(graph).__name__}",
                solver=spec.name,
            )
        if spec.weighted and not isinstance(graph, WeightedGraph):
            raise BadRequest(
                f"solver {spec.name!r} requires a weighted graph, "
                f"got {type(graph).__name__}",
                solver=spec.name,
            )
        if spec.model == "coreset" and k is None:
            raise BadRequest(
                f"solver {spec.name!r} runs in the k-machine coreset "
                f"model; the request must set 'k'",
                solver=spec.name,
            )
        unknown = sorted(set(params) - set(spec.params))
        if unknown:
            raise BadRequest(
                f"solver {spec.name!r} has no parameter(s) "
                f"{', '.join(unknown)}; settable: "
                f"{', '.join(sorted(spec.params)) or '(none)'}",
                solver=spec.name,
            )

    def _make_task(self, pg: PinnedGraph, spec: SolverSpec, seed: int,
                   k: Optional[int], params: Dict[str, Any], verify: bool,
                   include_certificate: bool) -> SolveTask:
        task = SolveTask(
            graph_id=pg.graph_id, solver=spec.name, seed=seed, k=k,
            params=params, verify=verify,
            include_certificate=include_certificate,
        )
        if self.ship_handles and pg.handle is not None:
            return replace(task, handle=pg.handle, weights=pg.weights)
        return replace(task, graph=pg.graph)

    def _wants_view(self, spec: SolverSpec, task: SolveTask) -> bool:
        # Partition pinning rides the in-process path only: process workers
        # rebuild the partition from the seed (bit-identical by contract).
        return (task.graph is not None and spec.model == "coreset"
                and "partition" in spec.params and task.k is not None)

    async def _submit(self, pg: PinnedGraph, spec: SolverSpec,
                      task: SolveTask) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        leased = False
        try:
            if self._wants_view(spec, task):
                view = await loop.run_in_executor(
                    None, self.store.lease_view, pg, task.k, task.seed
                )
                leased = True
                task = replace(task, partition=view)
            payload = await self.batcher.submit(pg.graph_id, task)
            pg.solves += 1
            return payload
        finally:
            if leased:
                self.store.release_view(pg, task.k, task.seed)

    async def _do_solve(self, req: SolveRequest) -> Dict[str, Any]:
        pg = self.store.acquire(req.graph_id)
        try:
            spec = self._resolve_spec(req, pg.graph)
            self._precheck(spec, pg.graph, req.k, req.params)
            task = self._make_task(pg, spec, req.seed, req.k, req.params,
                                   req.verify, req.include_certificate)
            payload = await self._submit(pg, spec, task)
        finally:
            self.store.release(pg)
        doc = {
            "graph": req.graph_id,
            "solver": spec.name,
            "seed": req.seed,
            "k": req.k,
            "batch_size": payload.get("batch_size", 1),
        }
        if not payload["ok"]:
            from repro.serve.protocol import SolveFailed

            err = payload["error"]
            raise SolveFailed(err.get("message", "solver failed"),
                              solver=err.get("solver"),
                              graph=err.get("graph"))
        doc["result"] = payload["result"]
        return doc

    async def _do_compare(self, req: CompareRequest) -> Dict[str, Any]:
        pg = self.store.acquire(req.graph_id)
        try:
            jobs = []
            for entry in req.entries:
                try:
                    spec = get_solver(entry.solver)
                except UnknownSolverError as exc:
                    raise NotFound(str(exc), solver=entry.solver)
                self._precheck(spec, pg.graph, req.k, entry.params)
                task = self._make_task(pg, spec, req.seed, req.k,
                                       entry.params, req.verify, False)
                jobs.append((entry, spec, task))
            # One gather → the batcher coalesces all entries for this graph
            # into a single barrier (they share the key and the window).
            payloads = await asyncio.gather(
                *(self._submit(pg, spec, task) for _, spec, task in jobs),
                return_exceptions=True,
            )
        finally:
            self.store.release(pg)
        columns = []
        for (entry, spec, _), payload in zip(jobs, payloads):
            column: Dict[str, Any] = {
                "label": entry.label or spec.name,
                "solver": spec.name,
                "params": dict(entry.params),
            }
            if isinstance(payload, BaseException):
                if not isinstance(payload, ServeError):
                    raise payload
                column["ok"] = False
                column["error"] = payload.to_doc()["error"]
            elif payload["ok"]:
                column["ok"] = True
                column["result"] = payload["result"]
            else:
                column["ok"] = False
                column["error"] = payload["error"]
            columns.append(column)
        values = [c["result"]["value"] for c in columns if c["ok"]]
        return {
            "graph": req.graph_id,
            "seed": req.seed,
            "k": req.k,
            "solvers": columns,
            "summary": {
                "completed": len(values),
                "failed": len(columns) - len(values),
                "best_value": max(values) if values else None,
            },
        }


# --------------------------------------------------------------------- #
# process entry point
# --------------------------------------------------------------------- #
def serve_main(config: ServeConfig) -> int:
    """Run the server until SIGTERM/SIGINT; the ``repro serve`` body."""

    async def _run() -> int:
        server = ReproServer(config)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stop.set)
        await server.start()
        for graph_id, source in config.preload:
            pg = server.add_graph(graph_id, source, seed=config.seed)
            print(f"pinned graph {graph_id!r}: {pg.info()['kind']} "
                  f"n={pg.graph.n_vertices} m={pg.graph.n_edges}",
                  flush=True)
        print(f"repro serve listening on http://{server.host}:{server.port} "
              f"(executor={server.executor_name}, "
              f"batch window {config.batch_window_ms:g} ms)", flush=True)
        await stop.wait()
        print("repro serve: draining and shutting down", flush=True)
        await server.aclose()
        return 0

    return asyncio.run(_run())
