"""``repro serve`` — matching-as-a-service over the solver registry.

A deliberately small asyncio HTTP/1.1 server (stdlib only, no framework)
that turns the library's one-shot ``repro solve`` pipeline into a
long-lived service:

* **graphs load once** — at startup (``--graph id=SPEC``) or at runtime
  (``POST /graphs``) — and stay pinned in a :class:`~repro.serve.store.
  GraphStore`; with a process pool the edges sit in shared memory and
  requests ship only handles;
* **the executor pool is warm** — one persistent backend for the server's
  lifetime, so no request pays pool start-up;
* **requests resolve solvers by capability** — ``{"problem":
  "matching", "model": "coreset"}`` picks the best registered
  :class:`~repro.solve.registry.SolverSpec` for that graph via
  :func:`~repro.solve.capabilities.resolve_capability`, or name one
  explicitly with ``{"solver": ...}``;
* **concurrent requests micro-batch** — same graph, one executor barrier
  (:mod:`repro.serve.batcher`), byte-identical results to serial solves;
* **``POST /compare``** runs several solvers side by side on one graph in
  a single batch.

Routes
------
======  ==================  =============================================
GET     /healthz            liveness + graph count (answers even while
                            degraded or draining)
GET     /readyz             readiness: pool warm ∧ breaker closed ∧ queue
                            below watermark (503 + reasons otherwise)
GET     /stats              server / batcher / store / executor counters
GET     /statz              resilience counters: breaker state, backend,
                            admission/queue/deadline rejections
GET     /solvers            registry capabilities (+ resolution order
                            with ``?problem=``)
GET     /graphs             registered graph infos
POST    /graphs             register ``{"id", "source", "seed"}``
GET     /graphs/<id>        one graph's info
DELETE  /graphs/<id>        unregister (refcounted; never yanks in-flight)
POST    /solve              one solve (see ``parse_solve_request``)
POST    /compare            side-by-side solvers on one graph
======  ==================  =============================================

Errors are always JSON ``{"error": {"code", "message", ...}}`` with the
taxonomy of :mod:`repro.serve.protocol`; a crashed worker pool costs the
in-flight batch a 500 ``worker_pool_broken`` and nothing else — the next
request gets a fresh pool (``tests/test_serve_faults.py``).

Overload safety (PR 9, :mod:`repro.serve.resilience`): requests over the
in-flight caps or the queue bound are shed with 429 ``overloaded`` +
``Retry-After``; ``deadline_ms`` budgets turn into 504
``deadline_exceeded`` instead of unbounded waits; and a run of
consecutive pool breaks opens a circuit breaker that re-warms via
backed-off half-open probes and can step the backend down
remote → processes → serial (``tests/test_serve_overload.py``).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import math
import os
import signal
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs

from repro.dist.executor import (
    EXECUTOR_ENV,
    Executor,
    ProcessExecutor,
    resolve_executor,
)
from repro.graph.bipartite import BipartiteGraph
from repro.graph.weights import WeightedGraph
from repro.serve.batcher import MicroBatcher
from repro.serve.protocol import (
    BadRequest,
    CompareRequest,
    NotFound,
    Overloaded,
    ServeError,
    ShuttingDown,
    SolveRequest,
    UnresolvableCapability,
    parse_compare_request,
    parse_graph_request,
    parse_solve_request,
)
from repro.serve.resilience import (
    AdmissionController,
    ExecutorSupervisor,
    resolve_deadline_ms,
)
from repro.serve.store import GraphStore, PinnedGraph
from repro.serve.tasks import SolveTask
from repro.solve.capabilities import (
    CapabilityResolutionError,
    rank_candidates,
)
from repro.solve.registry import (
    SolverSpec,
    UnknownSolverError,
    all_solvers,
    get_solver,
)

__all__ = ["ReproServer", "ServeConfig", "serve_main"]

_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    422: "Unprocessable Entity", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _MethodNotAllowed(ServeError):
    status = 405
    code = "method_not_allowed"


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``repro serve`` needs to boot.

    ``executor=None`` resolves ``$REPRO_EXECUTOR`` and falls back to
    ``"threads"`` — serving wants a warm in-process pool by default, not
    the library-wide serial default.  ``pin`` controls shared-memory graph
    pinning: ``"auto"`` pins exactly when the pool is a process pool,
    ``"always"``/``"never"`` force it.

    The overload knobs (PR 9): ``max_inflight`` / ``max_inflight_per_graph``
    cap admitted requests (0 disables the per-graph cap), ``max_queue``
    bounds the batch queue, ``default_deadline_ms`` / ``max_deadline_ms``
    set and cap per-request budgets (``None`` / 0 = unbounded), and the
    ``breaker_*`` / ``step_down_after`` knobs drive the
    :class:`~repro.serve.resilience.ExecutorSupervisor`.
    ``ready_watermark=0`` means ``max_queue // 2``.
    """

    host: str = "127.0.0.1"
    port: int = 0
    executor: Optional[str] = None
    workers: Optional[int] = None
    batch_window_ms: float = 5.0
    max_batch: int = 32
    max_body_bytes: int = 8 * 1024 * 1024
    pin: str = "auto"
    preload: Tuple[Tuple[str, str], ...] = ()
    seed: int = 0
    max_inflight: int = 64
    max_inflight_per_graph: int = 0
    max_queue: int = 256
    default_deadline_ms: Optional[float] = None
    max_deadline_ms: float = 0.0
    breaker_threshold: int = 3
    breaker_backoff_ms: float = 500.0
    breaker_max_backoff_ms: float = 30000.0
    step_down_after: int = 2
    ready_watermark: int = 0


class ReproServer:
    """The serving facade: graph store + warm pool + micro-batcher + HTTP."""

    def __init__(self, config: Optional[ServeConfig] = None,
                 **overrides: Any) -> None:
        self.config = config if config is not None else ServeConfig(**overrides)
        cfg = self.config
        if cfg.pin not in ("auto", "always", "never"):
            raise ValueError(
                f"pin must be auto/always/never, got {cfg.pin!r}"
            )
        if cfg.default_deadline_ms is not None and cfg.default_deadline_ms <= 0:
            raise ValueError(
                f"default_deadline_ms must be > 0 or None, "
                f"got {cfg.default_deadline_ms}"
            )
        if cfg.max_deadline_ms < 0:
            raise ValueError(
                f"max_deadline_ms must be >= 0 (0 = uncapped), "
                f"got {cfg.max_deadline_ms}"
            )
        if cfg.ready_watermark < 0:
            raise ValueError(
                f"ready_watermark must be >= 0 (0 = max_queue // 2), "
                f"got {cfg.ready_watermark}"
            )
        self.executor_name = (
            cfg.executor or os.environ.get(EXECUTOR_ENV) or "threads"
        )
        executor = resolve_executor(self.executor_name, workers=cfg.workers)
        # Handles (shared segments) ship to process pools; in-process pools
        # share the graph object itself and additionally reuse pinned
        # partition views across requests with the same (k, seed).
        self.ship_handles = (
            cfg.pin == "always"
            or (cfg.pin == "auto" and isinstance(executor, ProcessExecutor))
        )
        # The supervisor owns the live executor from here on: it re-warms
        # after pool breaks, opens the circuit breaker on a run of them,
        # and may step the backend down (remote → processes → serial).
        self.supervisor = ExecutorSupervisor(
            executor,
            threshold=cfg.breaker_threshold,
            backoff_s=cfg.breaker_backoff_ms / 1000.0,
            max_backoff_s=cfg.breaker_max_backoff_ms / 1000.0,
            step_down_after=cfg.step_down_after,
            workers=cfg.workers,
        )
        self.admission = AdmissionController(
            cfg.max_inflight, cfg.max_inflight_per_graph
        )
        # Warm the pool now: the lazy backends run single-task barriers
        # inline until a pool exists, and a serving process must never
        # execute solver code (or chaos hooks) in its own process.
        self.supervisor.rewarm()
        self.store = GraphStore(pin_shared=self.ship_handles)
        self.batcher = MicroBatcher(
            self.supervisor,
            window_s=cfg.batch_window_ms / 1000.0,
            max_batch=cfg.max_batch,
            max_queue=cfg.max_queue,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self.host = cfg.host
        self.port = cfg.port
        self._started = time.monotonic()
        self._draining = False
        self._closed = False
        self._conn_tasks: set = set()
        self.requests_total = 0
        self.errors_total = 0
        self.route_counts: Dict[str, int] = {}

    @property
    def executor(self) -> Executor:
        """The live executor — owned by the supervisor, which may have
        swapped the backend since boot (step-down)."""
        return self.supervisor.executor

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def aclose(self) -> None:
        """Stop accepting, drain in-flight batches, release everything.

        Idempotent.  Queued requests either run to completion or get
        structured 503s (if the breaker is open); connections that are
        mid-response get a bounded grace period to finish writing before
        being cancelled."""
        if self._closed:
            return
        self._closed = True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.batcher.drain()
        me = asyncio.current_task()
        pending = [t for t in self._conn_tasks
                   if t is not me and not t.done()]
        if pending:
            # The drain resolved every queued future; give the handler
            # coroutines a moment to write those responses out, then cut
            # off idle keep-alive connections.
            await asyncio.wait(pending, timeout=5.0)
            for task in pending:
                if not task.done():
                    task.cancel()
        self.supervisor.close()
        self.store.close()

    async def __aenter__(self) -> "ReproServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()

    def add_graph(self, graph_id: str, source: str = "<direct>",
                  seed: int = 0, graph: Any = None) -> PinnedGraph:
        """Synchronous registration for preload paths and tests."""
        return self.store.register(graph_id, source, seed=seed, graph=graph)

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    return
                parts = request_line.decode("latin-1").split()
                if len(parts) != 3 or not parts[2].startswith("HTTP/"):
                    self._write(writer, 400, BadRequest(
                        "malformed request line").to_doc(), False)
                    await writer.drain()
                    return
                method, raw_path, _version = parts
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0"))
                except ValueError:
                    length = -1
                if length < 0 or length > self.config.max_body_bytes:
                    self._write(writer, 413, BadRequest(
                        "invalid or oversized content-length",
                        limit=self.config.max_body_bytes).to_doc(), False)
                    await writer.drain()
                    return
                body = await reader.readexactly(length) if length else b""
                keep = headers.get("connection", "").lower() != "close"
                status, doc, extra = await self._route(
                    method.upper(), raw_path, body
                )
                self._write(writer, status, doc, keep, extra)
                await writer.drain()
                if not keep:
                    return
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError):
            pass  # client went away mid-request; nothing to answer
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    @staticmethod
    def _write(writer: asyncio.StreamWriter, status: int,
               doc: Any, keep_alive: bool,
               extra_headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(doc).encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        head = "\r\n".join(lines) + "\r\n\r\n"
        writer.write(head.encode("latin-1") + body)

    async def _route(self, method: str, raw_path: str,
                     body: bytes) -> Tuple[int, Any, Dict[str, str]]:
        self.requests_total += 1
        path, _, query_text = raw_path.partition("?")
        self.route_counts[f"{method} {path}"] = (
            self.route_counts.get(f"{method} {path}", 0) + 1
        )
        try:
            status, doc = await self._dispatch(method, path, query_text, body)
            return status, doc, {}
        except ServeError as exc:
            self.errors_total += 1
            headers: Dict[str, str] = {}
            if isinstance(exc, Overloaded):
                # Whole seconds, rounded up — the precise delay rides in
                # the error doc as retry_after_ms.
                headers["Retry-After"] = str(
                    max(1, math.ceil(exc.retry_after_s))
                )
            return exc.status, exc.to_doc(), headers
        except Exception as exc:  # noqa: BLE001 - the server must not die
            self.errors_total += 1
            return 500, ServeError(
                f"internal error: {type(exc).__name__}: {exc}"
            ).to_doc(), {}

    @staticmethod
    def _json_body(body: bytes) -> Any:
        if not body:
            raise BadRequest("request body is empty; expected JSON")
        try:
            return json.loads(body)
        except ValueError as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}")

    async def _dispatch(self, method: str, path: str, query_text: str,
                        body: bytes) -> Tuple[int, Any]:
        query = {k: v[-1] for k, v in parse_qs(query_text).items()}
        if path == "/healthz":
            self._need(method, "GET", path)
            return 200, {"ok": True, "graphs": len(self.store.ids())}
        if path == "/readyz":
            self._need(method, "GET", path)
            ready, reasons = self._readiness()
            if ready:
                return 200, {"ready": True}
            return 503, {"ready": False, "reasons": reasons}
        if path == "/statz":
            self._need(method, "GET", path)
            return 200, self._statz_doc()
        if path == "/stats":
            self._need(method, "GET", path)
            return 200, self._stats_doc()
        if self._draining:
            # Health and introspection answer to the very end; everything
            # else is refused once the drain starts.
            raise ShuttingDown("server is draining; no new work accepted")
        if path == "/solvers":
            self._need(method, "GET", path)
            return 200, self._solvers_doc(query)
        if path == "/graphs":
            if method == "GET":
                return 200, {"graphs": self.store.infos()}
            self._need(method, "POST", path)
            req = parse_graph_request(self._json_body(body))
            loop = asyncio.get_running_loop()
            try:
                pg = await loop.run_in_executor(
                    None, lambda: self.store.register(
                        req.graph_id, req.source, seed=req.seed)
                )
            except (ValueError, OSError) as exc:
                # load_graph rejected the spec (unknown generator, bad
                # KEY=VALUE, unreadable file) — the caller's fault, not ours.
                raise BadRequest(str(exc), source=req.source)
            return 201, pg.info()
        if path.startswith("/graphs/"):
            graph_id = path[len("/graphs/"):]
            if method == "GET":
                return 200, self.store.get(graph_id).info()
            self._need(method, "DELETE", path)
            return 200, {"unregistered": self.store.unregister(graph_id)}
        if path == "/solve":
            self._need(method, "POST", path)
            req = parse_solve_request(self._json_body(body))
            return 200, await self._do_solve(req)
        if path == "/compare":
            self._need(method, "POST", path)
            req = parse_compare_request(self._json_body(body))
            return 200, await self._do_compare(req)
        raise NotFound(f"no route {path!r}")

    @staticmethod
    def _need(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise _MethodNotAllowed(
                f"{method} is not allowed for {path} (use {expected})",
                allowed=expected,
            )

    # ------------------------------------------------------------------ #
    # documents
    # ------------------------------------------------------------------ #
    def _stats_doc(self) -> Dict[str, Any]:
        return {
            "server": {
                "uptime_s": round(time.monotonic() - self._started, 3),
                "requests_total": self.requests_total,
                "errors_total": self.errors_total,
                "routes": dict(self.route_counts),
            },
            "executor": {
                "backend": self.executor_name,
                "current_backend": self.supervisor.backend,
                "workers": self.config.workers,
                "ship_handles": self.ship_handles,
            },
            "batcher": self.batcher.stats(),
            "store": self.store.stats(),
        }

    def _effective_watermark(self) -> int:
        wm = self.config.ready_watermark
        return wm if wm > 0 else max(1, self.config.max_queue // 2)

    def _readiness(self) -> Tuple[bool, List[str]]:
        _, reasons = self.supervisor.ready()
        depth = self.batcher.queue_depth()
        watermark = self._effective_watermark()
        if depth >= watermark:
            reasons.append(
                f"batch queue depth {depth} is at/above the readiness "
                f"watermark {watermark}")
        if self._draining:
            reasons.append("server is draining")
        return not reasons, reasons

    def _statz_doc(self) -> Dict[str, Any]:
        ready, reasons = self._readiness()
        batch = self.batcher.stats()
        cfg = self.config
        return {
            "ready": ready,
            "reasons": reasons,
            "draining": self._draining,
            "breaker": self.supervisor.stats(),
            "admission": self.admission.stats(),
            "queue": {
                "depth": batch["queue_depth"],
                "max_queue": batch["max_queue"],
                "max_queue_seen": batch["max_queue_seen"],
                "ready_watermark": self._effective_watermark(),
                "rejected_queue_full": batch["rejected_queue_full"],
                "rejected_at_dispatch": batch["rejected_at_dispatch"],
            },
            "deadlines": {
                "default_deadline_ms": cfg.default_deadline_ms,
                "max_deadline_ms": cfg.max_deadline_ms,
                "expired_in_queue": batch["expired_in_queue"],
                "expired_in_flight": batch["expired_in_flight"],
            },
            "executor": self.executor.stats(),
        }

    def _solvers_doc(self, query: Dict[str, str]) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "solvers": [s.capabilities() for s in all_solvers()],
        }
        problem = query.get("problem")
        if problem:
            try:
                ranked = rank_candidates(
                    problem,
                    model=query.get("model") or None,
                    guarantee=query.get("guarantee") or None,
                )
                doc["resolution_order"] = [s.name for s in ranked]
            except CapabilityResolutionError as exc:
                raise UnresolvableCapability(str(exc),
                                             query=exc.query.to_dict())
        return doc

    # ------------------------------------------------------------------ #
    # solving
    # ------------------------------------------------------------------ #
    def _resolve_spec(self, req: SolveRequest, graph: Any) -> SolverSpec:
        if req.solver is not None:
            try:
                return get_solver(req.solver)
            except UnknownSolverError as exc:
                raise NotFound(str(exc), solver=req.solver)
        try:
            return rank_candidates(
                req.problem,
                model=req.model,
                guarantee=req.guarantee,
                weighted=req.weighted,
                graph=graph,
                has_k=req.k is not None,
            )[0]
        except CapabilityResolutionError as exc:
            raise UnresolvableCapability(
                str(exc), query=exc.query.to_dict(),
                candidates=list(exc.candidates),
            )

    @staticmethod
    def _precheck(spec: SolverSpec, graph: Any, k: Optional[int],
                  params: Dict[str, Any]) -> None:
        """Reject with a 4xx everything the facade would reject with a
        raise — capability mismatches must never cost a pool round-trip."""
        if spec.bipartite_only and not isinstance(graph, BipartiteGraph):
            raise BadRequest(
                f"solver {spec.name!r} requires a bipartite graph, "
                f"got {type(graph).__name__}",
                solver=spec.name,
            )
        if spec.weighted and not isinstance(graph, WeightedGraph):
            raise BadRequest(
                f"solver {spec.name!r} requires a weighted graph, "
                f"got {type(graph).__name__}",
                solver=spec.name,
            )
        if spec.model == "coreset" and k is None:
            raise BadRequest(
                f"solver {spec.name!r} runs in the k-machine coreset "
                f"model; the request must set 'k'",
                solver=spec.name,
            )
        unknown = sorted(set(params) - set(spec.params))
        if unknown:
            raise BadRequest(
                f"solver {spec.name!r} has no parameter(s) "
                f"{', '.join(unknown)}; settable: "
                f"{', '.join(sorted(spec.params)) or '(none)'}",
                solver=spec.name,
            )

    def _make_task(self, pg: PinnedGraph, spec: SolverSpec, seed: int,
                   k: Optional[int], params: Dict[str, Any], verify: bool,
                   include_certificate: bool,
                   deadline_ts: Optional[float] = None) -> SolveTask:
        task = SolveTask(
            graph_id=pg.graph_id, solver=spec.name, seed=seed, k=k,
            params=params, verify=verify,
            include_certificate=include_certificate,
            deadline_ts=deadline_ts,
        )
        if self.ship_handles and pg.handle is not None:
            return replace(task, handle=pg.handle, weights=pg.weights)
        return replace(task, graph=pg.graph)

    def _deadline(self, requested_ms: Optional[float]
                  ) -> Tuple[Optional[float], Optional[float],
                             Optional[float]]:
        """Resolve one request's budget into ``(budget_ms, monotonic
        deadline for the batcher, wall-clock deadline for workers)``."""
        cfg = self.config
        budget_ms = resolve_deadline_ms(
            requested_ms, cfg.default_deadline_ms, cfg.max_deadline_ms
        )
        if budget_ms is None:
            return None, None, None
        budget_s = budget_ms / 1000.0
        return budget_ms, time.monotonic() + budget_s, time.time() + budget_s

    def _wants_view(self, spec: SolverSpec, task: SolveTask) -> bool:
        # Partition pinning rides the in-process path only: process workers
        # rebuild the partition from the seed (bit-identical by contract).
        return (task.graph is not None and spec.model == "coreset"
                and "partition" in spec.params and task.k is not None)

    async def _submit(self, pg: PinnedGraph, spec: SolverSpec,
                      task: SolveTask,
                      deadline: Optional[float] = None,
                      deadline_ms: Optional[float] = None) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        leased = False
        try:
            if self._wants_view(spec, task):
                view = await loop.run_in_executor(
                    None, self.store.lease_view, pg, task.k, task.seed
                )
                leased = True
                task = replace(task, partition=view)
            payload = await self.batcher.submit(
                pg.graph_id, task, deadline=deadline, deadline_ms=deadline_ms
            )
            pg.solves += 1
            return payload
        finally:
            if leased:
                self.store.release_view(pg, task.k, task.seed)

    async def _do_solve(self, req: SolveRequest) -> Dict[str, Any]:
        self.admission.acquire(req.graph_id)
        try:
            pg = self.store.acquire(req.graph_id)
            try:
                spec = self._resolve_spec(req, pg.graph)
                self._precheck(spec, pg.graph, req.k, req.params)
                budget_ms, deadline, deadline_ts = self._deadline(
                    req.deadline_ms
                )
                task = self._make_task(pg, spec, req.seed, req.k, req.params,
                                       req.verify, req.include_certificate,
                                       deadline_ts=deadline_ts)
                payload = await self._submit(pg, spec, task,
                                             deadline=deadline,
                                             deadline_ms=budget_ms)
            finally:
                self.store.release(pg)
        finally:
            self.admission.release(req.graph_id)
        doc = {
            "graph": req.graph_id,
            "solver": spec.name,
            "seed": req.seed,
            "k": req.k,
            "batch_size": payload.get("batch_size", 1),
        }
        if not payload["ok"]:
            from repro.serve.protocol import DeadlineExceeded, SolveFailed

            err = payload["error"]
            if err.get("code") == "deadline_exceeded":
                # Belt-and-braces: a worker that short-circuited on its
                # wall-clock deadline, in the rare case the batcher's
                # monotonic check didn't already 504 this entry.
                raise DeadlineExceeded(err.get("message", "deadline expired"),
                                       solver=err.get("solver"),
                                       graph=err.get("graph"))
            raise SolveFailed(err.get("message", "solver failed"),
                              solver=err.get("solver"),
                              graph=err.get("graph"))
        doc["result"] = payload["result"]
        return doc

    async def _do_compare(self, req: CompareRequest) -> Dict[str, Any]:
        self.admission.acquire(req.graph_id)
        try:
            pg = self.store.acquire(req.graph_id)
            try:
                budget_ms, deadline, deadline_ts = self._deadline(
                    req.deadline_ms
                )
                jobs = []
                for entry in req.entries:
                    try:
                        spec = get_solver(entry.solver)
                    except UnknownSolverError as exc:
                        raise NotFound(str(exc), solver=entry.solver)
                    self._precheck(spec, pg.graph, req.k, entry.params)
                    task = self._make_task(pg, spec, req.seed, req.k,
                                           entry.params, req.verify, False,
                                           deadline_ts=deadline_ts)
                    jobs.append((entry, spec, task))
                # One gather → the batcher coalesces all entries for this
                # graph into a single barrier (shared key, shared window).
                payloads = await asyncio.gather(
                    *(self._submit(pg, spec, task, deadline=deadline,
                                   deadline_ms=budget_ms)
                      for _, spec, task in jobs),
                    return_exceptions=True,
                )
            finally:
                self.store.release(pg)
        finally:
            self.admission.release(req.graph_id)
        columns = []
        for (entry, spec, _), payload in zip(jobs, payloads):
            column: Dict[str, Any] = {
                "label": entry.label or spec.name,
                "solver": spec.name,
                "params": dict(entry.params),
            }
            if isinstance(payload, BaseException):
                if not isinstance(payload, ServeError):
                    raise payload
                column["ok"] = False
                column["error"] = payload.to_doc()["error"]
            elif payload["ok"]:
                column["ok"] = True
                column["result"] = payload["result"]
            else:
                column["ok"] = False
                column["error"] = payload["error"]
            columns.append(column)
        values = [c["result"]["value"] for c in columns if c["ok"]]
        return {
            "graph": req.graph_id,
            "seed": req.seed,
            "k": req.k,
            "solvers": columns,
            "summary": {
                "completed": len(values),
                "failed": len(columns) - len(values),
                "best_value": max(values) if values else None,
            },
        }


# --------------------------------------------------------------------- #
# process entry point
# --------------------------------------------------------------------- #
def serve_main(config: ServeConfig) -> int:
    """Run the server until SIGTERM/SIGINT; the ``repro serve`` body."""

    async def _run() -> int:
        server = ReproServer(config)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stop.set)
        await server.start()
        for graph_id, source in config.preload:
            pg = server.add_graph(graph_id, source, seed=config.seed)
            print(f"pinned graph {graph_id!r}: {pg.info()['kind']} "
                  f"n={pg.graph.n_vertices} m={pg.graph.n_edges}",
                  flush=True)
        print(f"repro serve listening on http://{server.host}:{server.port} "
              f"(executor={server.executor_name}, "
              f"batch window {config.batch_window_ms:g} ms)", flush=True)
        await stop.wait()
        print("repro serve: draining and shutting down", flush=True)
        await server.aclose()
        return 0

    return asyncio.run(_run())
