"""Wire schemas and typed errors for the ``repro serve`` HTTP API.

Everything the server reads off the wire is validated here, eagerly and
field by field, so a malformed request dies at the front door with a
structured 4xx document — never inside a worker with a traceback.  The
error taxonomy is small and deliberate:

=========================== ====== =====================================
class                       status code
=========================== ====== =====================================
:class:`BadRequest`         400    ``bad_request``
:class:`NotFound`           404    ``not_found``
:class:`Conflict`           409    ``conflict``
:class:`UnresolvableCapability` 422 ``unresolvable_capability``
:class:`Overloaded`         429    ``overloaded``
:class:`SolveFailed`        500    ``solve_failed``
:class:`PoolBroken`         500    ``worker_pool_broken``
:class:`ShuttingDown`       503    ``shutting_down``
:class:`DeadlineExceeded`   504    ``deadline_exceeded``
=========================== ====== =====================================

Every error renders as ``{"error": {"code": ..., "message": ..., ...}}``
— the contract ``tests/test_serve_faults.py`` holds the server to: a
crashed worker pool must produce ``worker_pool_broken``, not a stack
trace, and the server must keep serving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "BadRequest",
    "CompareEntry",
    "CompareRequest",
    "Conflict",
    "DeadlineExceeded",
    "GraphRequest",
    "NotFound",
    "Overloaded",
    "PoolBroken",
    "ServeError",
    "ShuttingDown",
    "SolveFailed",
    "SolveRequest",
    "UnresolvableCapability",
    "parse_compare_request",
    "parse_graph_request",
    "parse_solve_request",
]


class ServeError(Exception):
    """Base of every error the server turns into a JSON response."""

    status = 500
    code = "internal_error"

    def __init__(self, message: str, **detail: Any) -> None:
        super().__init__(message)
        self.message = message
        self.detail = detail

    def to_doc(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"code": self.code, "message": self.message}
        doc.update(self.detail)
        return {"error": doc}


class BadRequest(ServeError):
    status = 400
    code = "bad_request"


class NotFound(ServeError):
    status = 404
    code = "not_found"


class Conflict(ServeError):
    status = 409
    code = "conflict"


class UnresolvableCapability(ServeError):
    status = 422
    code = "unresolvable_capability"


class Overloaded(ServeError):
    """The server shed this request: an in-flight cap, the batch queue
    bound, or the worker-pool circuit breaker.  Carries the advisory
    retry delay both machine-readable (``retry_after_ms`` in the error
    doc) and as an HTTP ``Retry-After`` header (whole seconds,
    rounded up)."""

    status = 429
    code = "overloaded"

    def __init__(self, message: str, *, retry_after_s: float = 1.0,
                 **detail: Any) -> None:
        detail.setdefault("retry_after_ms", round(retry_after_s * 1000.0, 3))
        super().__init__(message, **detail)
        self.retry_after_s = max(0.0, float(retry_after_s))


class SolveFailed(ServeError):
    status = 500
    code = "solve_failed"


class PoolBroken(ServeError):
    status = 500
    code = "worker_pool_broken"


class ShuttingDown(ServeError):
    """The server is draining (SIGTERM): queued work that cannot be
    dispatched any more gets this instead of hanging forever."""

    status = 503
    code = "shutting_down"


class DeadlineExceeded(ServeError):
    """The request's ``deadline_ms`` budget ran out — while queued
    (never dispatched) or while its batch was in flight (its
    batch-mates' results are unaffected)."""

    status = 504
    code = "deadline_exceeded"


# --------------------------------------------------------------------- #
# field extraction
# --------------------------------------------------------------------- #
_MISSING = object()


def _get(doc: Dict[str, Any], name: str, types: tuple, default: Any = _MISSING,
         where: str = "request") -> Any:
    """One field, type-checked; booleans never pass as ints."""
    if name not in doc:
        if default is _MISSING:
            raise BadRequest(f"{where} is missing required field {name!r}",
                             field=name)
        return default
    value = doc[name]
    if value is None and default is not _MISSING:
        return default
    if not isinstance(value, types) or (
        isinstance(value, bool) and bool not in types
    ):
        names = "/".join(t.__name__ for t in types)
        raise BadRequest(
            f"{where} field {name!r} must be {names}, "
            f"got {type(value).__name__}",
            field=name,
        )
    return value


def _params(doc: Dict[str, Any], where: str) -> Dict[str, Any]:
    params = _get(doc, "params", (dict,), default={}, where=where)
    for key, value in params.items():
        if not isinstance(key, str):
            raise BadRequest(f"{where} params keys must be strings",
                             field="params")
        if key == "partition":
            # The partition seat is the server's own (it carries the pinned
            # SharedPartitionView); a client must not reach into it.
            raise BadRequest(
                "the 'partition' parameter is managed by the server "
                "(graph pinning) and cannot be set per request",
                field="params",
            )
        if value is not None and not isinstance(value, (str, int, float,
                                                        bool)):
            raise BadRequest(
                f"{where} param {key!r} must be a JSON scalar, "
                f"got {type(value).__name__}",
                field="params",
            )
    return dict(params)


def _seed(doc: Dict[str, Any], where: str) -> int:
    seed = _get(doc, "seed", (int,), default=0, where=where)
    if seed < 0:
        raise BadRequest(f"{where} seed must be >= 0, got {seed}",
                         field="seed")
    return seed


def _k(doc: Dict[str, Any], where: str) -> Optional[int]:
    k = _get(doc, "k", (int,), default=None, where=where)
    if k is not None and k < 1:
        raise BadRequest(f"{where} k must be >= 1, got {k}", field="k")
    return k


def _deadline_ms(doc: Dict[str, Any], where: str) -> Optional[float]:
    deadline = _get(doc, "deadline_ms", (int, float), default=None,
                    where=where)
    if deadline is not None and deadline <= 0:
        raise BadRequest(
            f"{where} deadline_ms must be > 0, got {deadline}",
            field="deadline_ms",
        )
    return None if deadline is None else float(deadline)


# --------------------------------------------------------------------- #
# requests
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SolveRequest:
    """A validated ``POST /solve`` body.

    Exactly one of ``solver`` (an explicit registered name) or ``problem``
    (a capability query, optionally narrowed by ``model`` / ``guarantee``
    / ``weighted``) selects the algorithm.
    """

    graph_id: str
    seed: int
    k: Optional[int]
    params: Dict[str, Any]
    solver: Optional[str] = None
    problem: Optional[str] = None
    model: Optional[str] = None
    guarantee: Optional[str] = None
    weighted: Optional[bool] = None
    verify: bool = True
    include_certificate: bool = False
    deadline_ms: Optional[float] = None


def parse_solve_request(doc: Any, where: str = "solve request") -> SolveRequest:
    if not isinstance(doc, dict):
        raise BadRequest(f"{where} body must be a JSON object, "
                         f"got {type(doc).__name__}")
    req = SolveRequest(
        graph_id=_get(doc, "graph", (str,), where=where),
        seed=_seed(doc, where),
        k=_k(doc, where),
        params=_params(doc, where),
        solver=_get(doc, "solver", (str,), default=None, where=where),
        problem=_get(doc, "problem", (str,), default=None, where=where),
        model=_get(doc, "model", (str,), default=None, where=where),
        guarantee=_get(doc, "guarantee", (str,), default=None, where=where),
        weighted=_get(doc, "weighted", (bool,), default=None, where=where),
        verify=_get(doc, "verify", (bool,), default=True, where=where),
        include_certificate=_get(doc, "certificate", (bool,), default=False,
                                 where=where),
        deadline_ms=_deadline_ms(doc, where),
    )
    if req.solver is None and req.problem is None:
        raise BadRequest(
            f"{where} needs either 'solver' (a registered name) or "
            f"'problem' (a capability query)",
        )
    if req.solver is not None and any(
        v is not None for v in (req.problem, req.model, req.guarantee,
                                req.weighted)
    ):
        raise BadRequest(
            f"{where} mixes an explicit 'solver' with capability fields "
            f"(problem/model/guarantee/weighted) — pick one selection style",
        )
    return req


@dataclass(frozen=True)
class CompareEntry:
    """One column of a ``POST /compare``: a solver plus its overrides."""

    solver: str
    params: Dict[str, Any] = field(default_factory=dict)
    label: Optional[str] = None


@dataclass(frozen=True)
class CompareRequest:
    graph_id: str
    entries: Tuple[CompareEntry, ...]
    seed: int
    k: Optional[int]
    verify: bool = True
    deadline_ms: Optional[float] = None


def parse_compare_request(doc: Any) -> CompareRequest:
    where = "compare request"
    if not isinstance(doc, dict):
        raise BadRequest(f"{where} body must be a JSON object, "
                         f"got {type(doc).__name__}")
    raw = _get(doc, "solvers", (list,), where=where)
    if len(raw) < 2:
        raise BadRequest(f"{where} needs at least two entries in 'solvers'",
                         field="solvers")
    entries: List[CompareEntry] = []
    for i, item in enumerate(raw):
        if isinstance(item, str):
            entries.append(CompareEntry(solver=item))
        elif isinstance(item, dict):
            entry_where = f"{where} solvers[{i}]"
            entries.append(CompareEntry(
                solver=_get(item, "solver", (str,), where=entry_where),
                params=_params(item, entry_where),
                label=_get(item, "label", (str,), default=None,
                           where=entry_where),
            ))
        else:
            raise BadRequest(
                f"{where} solvers[{i}] must be a name or an object "
                f"with 'solver'/'params', got {type(item).__name__}",
                field="solvers",
            )
    return CompareRequest(
        graph_id=_get(doc, "graph", (str,), where=where),
        entries=tuple(entries),
        seed=_seed(doc, where),
        k=_k(doc, where),
        verify=_get(doc, "verify", (bool,), default=True, where=where),
        deadline_ms=_deadline_ms(doc, where),
    )


@dataclass(frozen=True)
class GraphRequest:
    """A validated ``POST /graphs`` body."""

    graph_id: str
    source: str
    seed: int


def parse_graph_request(doc: Any) -> GraphRequest:
    where = "graph request"
    if not isinstance(doc, dict):
        raise BadRequest(f"{where} body must be a JSON object, "
                         f"got {type(doc).__name__}")
    graph_id = _get(doc, "id", (str,), where=where).strip()
    if not graph_id or "/" in graph_id:
        raise BadRequest(
            f"graph id must be a non-empty string without '/', "
            f"got {graph_id!r}",
            field="id",
        )
    return GraphRequest(
        graph_id=graph_id,
        source=_get(doc, "source", (str,), where=where),
        seed=_seed(doc, where),
    )
