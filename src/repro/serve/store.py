"""The server's resident graph store: load once, pin, serve forever.

A :class:`GraphStore` owns every graph the server can solve over.  Each
graph is loaded once (at startup via ``--graph`` or at runtime via
``POST /graphs``) and *pinned*: when the worker pool runs in separate
processes, the edge array is packed into one shared-memory segment up
front, so each request ships a tiny :class:`~repro.dist.shm.EdgeHandle`
instead of re-pickling the edges — the serving-layer analogue of
``SharedPartitionView``'s pay-once contract.

On top of the graphs sits a small LRU of **partition views**: coreset
solvers derive their k-partition from ``(seed, k)``, so for in-process
pools the store builds ``random_k_partition`` once per ``(graph, k,
seed)``, wraps it in a :class:`~repro.dist.shm.SharedPartitionView`, and
hands the same view to every request that repeats the triple — which is
exactly what a micro-batch of identical requests does.  The partition rng
is re-derived from ``RunContext(seed, k).generators(2)[0]`` (the stream
the adapter itself would draw), so a cached view is bit-identical to the
partition an unpinned solve would have built.

Unpinning is refcounted and never yanks memory from under a request:
``unregister`` retires the graph immediately (new requests 404) but
defers closing segments until every in-flight lease is released — and
POSIX keeps existing mappings valid past unlink anyway, so even a racing
worker cannot fault.  ``tests/test_serve_faults.py`` hammers exactly
this path.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.dist.shm import EdgeHandle, SharedEdgeStore, SharedPartitionView
from repro.graph.bipartite import BipartiteGraph
from repro.graph.weights import WeightedGraph
from repro.serve.protocol import Conflict, NotFound

__all__ = ["GraphStore", "PinnedGraph"]


@dataclass
class _CachedView:
    """One partition view plus its lease count."""

    view: SharedPartitionView
    refs: int = 0
    retired: bool = False


@dataclass
class PinnedGraph:
    """A registered graph, its shared-segment pin, and its view cache."""

    graph_id: str
    source: str
    seed: int
    graph: Any
    store: Optional[SharedEdgeStore] = None
    handle: Optional[EdgeHandle] = None
    weights: Optional[np.ndarray] = None
    refs: int = 0
    retired: bool = False
    solves: int = 0
    views: "OrderedDict[Tuple[int, int], _CachedView]" = field(
        default_factory=OrderedDict
    )

    def info(self) -> Dict[str, Any]:
        g = self.graph
        return {
            "id": self.graph_id,
            "source": self.source,
            "seed": self.seed,
            "kind": type(g).__name__,
            "n_vertices": int(g.n_vertices),
            "n_edges": int(g.n_edges),
            "bipartite": isinstance(g, BipartiteGraph),
            "weighted": isinstance(g, WeightedGraph),
            "pinned_shared": self.handle is not None,
            "in_flight": self.refs,
            "partition_views": len(self.views),
            "solves": self.solves,
        }


class GraphStore:
    """Thread-safe registry of pinned graphs and cached partition views.

    ``pin_shared=True`` (process pools) packs each registered graph's
    edges into a shared segment at registration; ``False`` (in-process
    pools) skips the copy and shares the object directly.
    ``max_views_per_graph`` bounds the per-graph partition-view LRU.
    """

    def __init__(self, pin_shared: bool = False,
                 max_views_per_graph: int = 4) -> None:
        if max_views_per_graph < 1:
            raise ValueError("max_views_per_graph must be >= 1")
        self.pin_shared = pin_shared
        self.max_views_per_graph = max_views_per_graph
        self._graphs: Dict[str, PinnedGraph] = {}
        self._lock = threading.RLock()
        self.views_created = 0
        self.view_hits = 0

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(self, graph_id: str, source: str, seed: int = 0,
                 graph: Any = None) -> PinnedGraph:
        """Load (if needed), pin, and register a graph under ``graph_id``.

        The load and the segment pack run outside the store lock, so a
        slow registration never stalls in-flight solves; only the final
        insert is serialized (and re-checks for an id conflict).
        """
        with self._lock:
            if graph_id in self._graphs:
                raise Conflict(f"graph id {graph_id!r} is already registered",
                               graph=graph_id)
        if graph is None:
            from repro.solve.graphs import load_graph

            graph = load_graph(source, rng=int(seed))
        store = handle = weights = None
        if self.pin_shared:
            store = SharedEdgeStore()
            if isinstance(graph, WeightedGraph):
                # Edges pin in the segment; weights are not edge-shaped, so
                # they ride the task payload (one pickle per task — small
                # next to re-pickling edges *and* weights every request).
                handle = store.put_edges(graph.edges, graph.n_vertices)
                weights = graph.weights
            else:
                handle = store.put_graph(graph)
        pg = PinnedGraph(graph_id=graph_id, source=source, seed=int(seed),
                         graph=graph, store=store, handle=handle,
                         weights=weights)
        with self._lock:
            if graph_id in self._graphs:
                if store is not None:
                    store.close()
                raise Conflict(f"graph id {graph_id!r} is already registered",
                               graph=graph_id)
            self._graphs[graph_id] = pg
        return pg

    def unregister(self, graph_id: str) -> Dict[str, Any]:
        """Retire a graph: 404 for new requests, segments freed once the
        last in-flight lease drains (existing mappings stay valid)."""
        with self._lock:
            pg = self._graphs.pop(graph_id, None)
            if pg is None:
                raise NotFound(f"no graph registered as {graph_id!r}",
                               graph=graph_id)
            pg.retired = True
            info = pg.info()
            for key in list(pg.views):
                cv = pg.views[key]
                if cv.refs == 0:
                    del pg.views[key]
                    cv.view.close()
                else:
                    cv.retired = True
            if pg.refs == 0:
                self._finalize(pg)
        return info

    def _finalize(self, pg: PinnedGraph) -> None:
        if pg.store is not None:
            pg.store.close()
            pg.store = None

    # ------------------------------------------------------------------ #
    # lookup and leases
    # ------------------------------------------------------------------ #
    def get(self, graph_id: str) -> PinnedGraph:
        with self._lock:
            pg = self._graphs.get(graph_id)
            if pg is None:
                raise NotFound(f"no graph registered as {graph_id!r}",
                               graph=graph_id)
            return pg

    def acquire(self, graph_id: str) -> PinnedGraph:
        """Lease a graph for one request; pair with :meth:`release`."""
        with self._lock:
            pg = self.get(graph_id)
            pg.refs += 1
            return pg

    def release(self, pg: PinnedGraph) -> None:
        with self._lock:
            pg.refs -= 1
            if pg.retired and pg.refs == 0:
                self._finalize(pg)

    def ids(self) -> List[str]:
        with self._lock:
            return list(self._graphs)

    def infos(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [pg.info() for pg in self._graphs.values()]

    # ------------------------------------------------------------------ #
    # partition views
    # ------------------------------------------------------------------ #
    def lease_view(self, pg: PinnedGraph, k: int,
                   seed: int) -> SharedPartitionView:
        """The pinned partition view for ``(pg, k, seed)``, building it on
        first use; pair with :meth:`release_view`.

        The partition is derived exactly as the coreset adapters derive it
        — stream 0 of ``RunContext(seed, k).generators(2)`` feeding
        ``random_k_partition`` — so handing the view into the solver's
        ``partition=`` seat is bit-identical to letting it partition
        itself (``tests/test_serve_api.py`` proves this end to end).
        """
        key = (int(k), int(seed))
        with self._lock:
            cv = pg.views.get(key)
            if cv is not None:
                pg.views.move_to_end(key)
                cv.refs += 1
                self.view_hits += 1
                return cv.view
        # Build outside the lock: partitioning is O(m) and must not stall
        # unrelated requests.
        from repro.graph.partition import random_k_partition
        from repro.solve.context import RunContext

        rng = RunContext(seed=seed, k=k).generators(2)[0]
        view = SharedPartitionView(random_k_partition(pg.graph, k, rng))
        with self._lock:
            cv = pg.views.get(key)
            if cv is not None:  # lost a build race; use the winner's view
                view.close()
                pg.views.move_to_end(key)
                cv.refs += 1
                self.view_hits += 1
                return cv.view
            if pg.retired:
                view.close()
                raise NotFound(
                    f"graph {pg.graph_id!r} was unregistered",
                    graph=pg.graph_id,
                )
            pg.views[key] = _CachedView(view=view, refs=1)
            self.views_created += 1
            self._evict_views(pg)
            return view

    def release_view(self, pg: PinnedGraph, k: int, seed: int) -> None:
        key = (int(k), int(seed))
        with self._lock:
            cv = pg.views.get(key)
            if cv is None:
                return
            cv.refs -= 1
            if cv.retired and cv.refs == 0:
                del pg.views[key]
                cv.view.close()

    def _evict_views(self, pg: PinnedGraph) -> None:
        # Oldest unleased views go first; leased ones are skipped (they
        # will be considered again on the next insert).
        excess = len(pg.views) - self.max_views_per_graph
        if excess <= 0:
            return
        for key in list(pg.views):
            if excess <= 0:
                break
            cv = pg.views[key]
            if cv.refs == 0:
                del pg.views[key]
                cv.view.close()
                excess -= 1

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "graphs": len(self._graphs),
                "partition_views": sum(len(pg.views)
                                       for pg in self._graphs.values()),
                "views_created": self.views_created,
                "view_hits": self.view_hits,
            }

    def close(self) -> None:
        """Force-release everything (shutdown path; in-flight mappings
        survive the unlink by POSIX semantics)."""
        with self._lock:
            graphs, self._graphs = list(self._graphs.values()), {}
            for pg in graphs:
                pg.retired = True
                for cv in pg.views.values():
                    cv.view.close()
                pg.views.clear()
                self._finalize(pg)
