"""``repro.serve`` — the library's solvers behind a long-lived HTTP API.

``repro solve`` pays its full cost on every invocation: import, graph
load, pool start-up, partition pack.  This package keeps all of that
warm in one process — graphs pinned in a :class:`~repro.serve.store.
GraphStore`, a persistent executor pool, concurrent requests micro-
batched into single barriers (:mod:`repro.serve.batcher`) — behind a
small stdlib-asyncio HTTP server (:mod:`repro.serve.app`).  Requests
name a solver explicitly or resolve one by capability
(:mod:`repro.solve.capabilities`); results are byte-identical per seed
to one-shot ``repro solve`` runs, which the serving test suite
(``tests/test_serve_api.py``) asserts end to end.

The resilience layer (:mod:`repro.serve.resilience`) makes the service
overload-safe: in-flight caps and a bounded batch queue shed excess load
with 429s, per-request ``deadline_ms`` budgets become 504s instead of
unbounded waits, and an :class:`~repro.serve.resilience.
ExecutorSupervisor` circuit-breaks a flapping worker pool (backed-off
half-open probes, backend step-down remote → processes → serial).

See ``docs/SERVING.md`` for the API reference and the determinism,
fault-tolerance, and overload contracts.
"""

from repro.serve.app import ReproServer, ServeConfig, serve_main
from repro.serve.batcher import MicroBatcher
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.protocol import (
    BadRequest,
    Conflict,
    DeadlineExceeded,
    NotFound,
    Overloaded,
    PoolBroken,
    ServeError,
    ShuttingDown,
    SolveFailed,
    UnresolvableCapability,
)
from repro.serve.resilience import (
    AdmissionController,
    ExecutorSupervisor,
    resolve_deadline_ms,
)
from repro.serve.store import GraphStore, PinnedGraph
from repro.serve.tasks import SolveTask, run_solve_task

__all__ = [
    "AdmissionController",
    "BadRequest",
    "Conflict",
    "DeadlineExceeded",
    "ExecutorSupervisor",
    "GraphStore",
    "MicroBatcher",
    "NotFound",
    "Overloaded",
    "PinnedGraph",
    "PoolBroken",
    "ReproServer",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServeError",
    "ShuttingDown",
    "SolveFailed",
    "SolveTask",
    "UnresolvableCapability",
    "resolve_deadline_ms",
    "run_solve_task",
    "serve_main",
]
