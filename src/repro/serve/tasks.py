"""The picklable unit of server work: one solve, shipped to the pool.

A :class:`SolveTask` is what crosses the executor boundary.  In-process
backends (serial/threads) carry the graph object itself — and, for coreset
solvers, the pinned :class:`~repro.dist.shm.SharedPartitionView` — by
reference.  The ``processes`` backend instead ships a lightweight
:class:`~repro.dist.shm.EdgeHandle` into the worker, which maps the pinned
segment zero-copy (plus the weights array for weighted graphs, whose
weights live outside the edge segment).

:func:`run_solve_task` never raises: a solver failure becomes a structured
``{"ok": False, "error": ...}`` payload, so the only thing that can fail a
batch is the pool itself dying (which the executor surfaces as
:class:`~repro.dist.executor.WorkerPoolBrokenError` and the server turns
into a 500 ``worker_pool_broken``).  The same chaos hooks the remote
workers use (:mod:`repro.dist.faults`) run before each task, so the fault
suite can kill/hang/slow a serve worker with the standard env knobs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.dist.faults import maybe_chaos
from repro.dist.shm import EdgeHandle, open_graph

__all__ = ["SolveTask", "run_solve_task", "warm_worker"]


def warm_worker(i: int) -> int:
    """The server's pool warm-up task (a picklable no-op).

    Mapping this over two tasks at boot forces the lazy backends to
    actually spawn their pool: without it, a single-task barrier runs
    *inline in the calling process* (the executors' documented
    short-circuit), which for a serving process would mean a chaos-killed
    task takes the whole server down instead of one worker.  Deliberately
    skips the chaos hooks — faults are for solve tasks, not boot.
    """
    return i


@dataclass(frozen=True)
class SolveTask:
    """One fully-resolved solve: solver name, seed/k, graph transport.

    Exactly one of ``graph`` (in-process reference) or ``handle`` (shared
    segment, for process workers) is set.  ``partition`` rides only on the
    in-process path — the server's pinned partition view for coreset
    solvers; process workers rebuild partitions from the seed instead,
    which is bit-identical by the facade's determinism contract.
    """

    graph_id: str
    solver: str
    seed: int
    k: Optional[int]
    params: Dict[str, Any]
    verify: bool = True
    include_certificate: bool = False
    graph: Any = None
    handle: Optional[EdgeHandle] = None
    weights: Optional[np.ndarray] = None
    partition: Any = None
    # Wall-clock expiry (``time.time()``), comparable across the fork
    # boundary on one host; ``None`` means no deadline.  The batcher keeps
    # the authoritative monotonic copy — this one only lets a worker skip
    # solving a request whose client has already been told 504.
    deadline_ts: Optional[float] = None


# Per-process task counter driving the chaos hooks ($REPRO_CHAOS_AFTER
# counts tasks in *this* worker, exactly like the remote worker loop).
_TASK_SEQ = 0


def run_solve_task(task: SolveTask) -> Dict[str, Any]:
    """Execute one task; always returns a JSON-ready payload dict.

    ``{"ok": True, "result": {...}}`` on success, ``{"ok": False,
    "error": {...}}`` when the solver (not the pool) failed.  The inner
    solve is forced onto the serial executor: the server's pool *is* the
    parallelism, and nesting pools inside pool workers would deadlock the
    one-CPU case and oversubscribe every other.
    """
    global _TASK_SEQ
    _TASK_SEQ += 1
    maybe_chaos(_TASK_SEQ)

    if task.deadline_ts is not None and time.time() >= task.deadline_ts:
        # Already expired before we even started: don't burn worker time on
        # a result nobody will read (the batcher 504s it post-barrier).
        return {
            "ok": False,
            "error": {
                "code": "deadline_exceeded",
                "message": "deadline expired before the task started",
                "solver": task.solver,
                "graph": task.graph_id,
            },
        }

    from repro.solve import RunContext, solve

    attachment = None
    try:
        graph = task.graph
        if graph is None:
            if task.handle is None:
                raise ValueError("task carries neither a graph nor a handle")
            graph, attachment = open_graph(task.handle)
            if task.weights is not None:
                from repro.graph.weights import WeightedGraph

                graph = WeightedGraph(graph.n_vertices, graph.edges,
                                      task.weights, validated=True)
        ctx = RunContext(seed=task.seed, k=task.k, executor="serial")
        params = dict(task.params)
        if task.partition is not None:
            params["partition"] = task.partition
        result = solve(graph, task.solver, ctx, verify=task.verify, **params)
        return {
            "ok": True,
            "result": result.to_dict(
                include_certificate=task.include_certificate
            ),
        }
    except Exception as exc:  # noqa: BLE001 - the contract: never raise
        return {
            "ok": False,
            "error": {
                "code": "solve_failed",
                "message": f"{type(exc).__name__}: {exc}",
                "solver": task.solver,
                "graph": task.graph_id,
            },
        }
    finally:
        if attachment is not None:
            attachment.release()
