"""Micro-batching: concurrent requests for one graph share one barrier.

The server's unit of executor work is a *batch*: every ``POST /solve``
that arrives within ``window_s`` of the first pending request for the
same graph joins its batch, and the whole batch runs as **one**
``executor.map(run_solve_task, tasks)`` — one barrier, one pool wake-up,
one pass over the pinned graph, however many clients are waiting.  A
batch also flushes early the moment it reaches ``max_batch``, so a
saturating client never waits out the window.

Each request still gets its own :class:`~repro.serve.tasks.SolveTask`
(own seed, own solver, own params) and its own result future; batching
changes *scheduling only*, never results — the facade's per-seed
determinism contract is what makes that safe, and
``tests/test_serve_api.py`` asserts byte-identical answers whether a
request ran alone or inside a 16-wide batch.

Flushes are serialized by an asyncio lock: the repro executors create
their pools lazily inside ``map``, which is not safe to race from two
threads, and "one barrier at a time" is exactly the semantics the batch
stats report.

The PR 9 resilience layer hangs off three seams here:

* **Bounded queue** — ``submit`` rejects with a 429 ``overloaded`` once
  ``max_queue`` entries are waiting, so sustained overload sheds load
  instead of queueing unboundedly.
* **Deadlines** — each entry may carry a monotonic deadline.  Expired
  entries are dropped *before* the flush (never dispatched, 504), and an
  entry whose deadline passes while its batch is in flight gets a 504
  after the barrier without touching its batch-mates' payloads.
* **Supervised pool breaks** — a broken pool
  (:class:`~repro.dist.executor.WorkerPoolBrokenError`) still fails only
  the in-flight batch, but what happens next is the
  :class:`~repro.serve.resilience.ExecutorSupervisor`'s call: an isolated
  break re-warms immediately (PR 7 semantics); a run of consecutive
  breaks opens the circuit breaker, and further batches are rejected
  until a half-open probe (which this class dispatches, re-warming
  first) closes it again.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.dist.executor import Executor, WorkerPoolBrokenError
from repro.serve.protocol import (
    DeadlineExceeded,
    Overloaded,
    PoolBroken,
    ShuttingDown,
    SolveFailed,
)
from repro.serve.resilience import ExecutorSupervisor
from repro.serve.tasks import SolveTask, run_solve_task

__all__ = ["MicroBatcher"]

#: One queued request: (task, its future, monotonic deadline or None,
#: the client-facing deadline budget in ms for error messages).
_Entry = Tuple[SolveTask, asyncio.Future, Optional[float], Optional[float]]


class _Bucket:
    """Requests for one graph key, waiting for the window to close."""

    __slots__ = ("entries", "timer")

    def __init__(self) -> None:
        self.entries: List[_Entry] = []
        self.timer: Optional[asyncio.TimerHandle] = None


class MicroBatcher:
    """Coalesces concurrent solve tasks into per-graph executor barriers."""

    def __init__(self, supervisor: ExecutorSupervisor, *,
                 window_s: float = 0.005, max_batch: int = 32,
                 max_queue: int = 256) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.supervisor = supervisor
        self.window_s = max(0.0, float(window_s))
        self.max_batch = max_batch
        self.max_queue = max_queue
        self._pending: Dict[str, _Bucket] = {}
        self._flush_lock = asyncio.Lock()
        self._inflight: set = set()
        self._draining = False
        # stats
        self.batches = 0
        self.requests = 0
        self.batched_requests = 0  # requests that shared a barrier
        self.max_batch_seen = 0
        self.pool_breaks = 0
        self.max_queue_seen = 0
        self.rejected_queue_full = 0
        self.rejected_at_dispatch = 0
        self.expired_in_queue = 0
        self.expired_in_flight = 0

    @property
    def executor(self) -> Executor:
        """The live executor — always read through the supervisor, which
        may have stepped the backend down since the last batch."""
        return self.supervisor.executor

    def queue_depth(self) -> int:
        return sum(len(b.entries) for b in self._pending.values())

    # ------------------------------------------------------------------ #
    async def submit(self, key: str, task: SolveTask, *,
                     deadline: Optional[float] = None,
                     deadline_ms: Optional[float] = None) -> Dict[str, Any]:
        """Enqueue one task; resolves to its payload dict after the batch
        it joined has run.

        ``deadline`` is a ``time.monotonic()`` instant (or ``None``).
        Raises :class:`~repro.serve.protocol.Overloaded` when the queue is
        full or the breaker is open, :class:`~repro.serve.protocol.
        DeadlineExceeded` when the budget ran out, and
        :class:`~repro.serve.protocol.PoolBroken` /
        :class:`~repro.serve.protocol.SolveFailed` if the batch's barrier
        itself failed."""
        if self._draining:
            raise ShuttingDown("server is draining; no new work accepted")
        self.supervisor.on_submit()  # fast shed while the breaker is open
        if self.queue_depth() >= self.max_queue:
            self.rejected_queue_full += 1
            raise Overloaded(
                f"batch queue is full ({self.max_queue} waiting); "
                f"retry shortly",
                retry_after_s=max(2 * self.window_s, 0.05),
                reason="queue_full",
                max_queue=self.max_queue,
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        bucket = self._pending.get(key)
        if bucket is None:
            bucket = _Bucket()
            self._pending[key] = bucket
            bucket.timer = loop.call_later(
                self.window_s, self._flush_soon, key
            )
        bucket.entries.append((task, future, deadline, deadline_ms))
        self.requests += 1
        self.max_queue_seen = max(self.max_queue_seen, self.queue_depth())
        if len(bucket.entries) >= self.max_batch:
            self._flush_soon(key)
        return await future

    def _flush_soon(self, key: str) -> None:
        bucket = self._pending.pop(key, None)
        if bucket is None:  # already flushed (window raced the size cap)
            return
        if bucket.timer is not None:
            bucket.timer.cancel()
        job = asyncio.get_running_loop().create_task(self._run(bucket))
        self._inflight.add(job)
        job.add_done_callback(self._inflight.discard)

    async def _run(self, bucket: _Bucket) -> None:
        # Expired-in-queue entries are dropped here, *before* the flush:
        # they are never dispatched, never cost a pool slot.
        now = time.monotonic()
        live: List[_Entry] = []
        for entry in bucket.entries:
            task, future, deadline, budget_ms = entry
            if deadline is not None and now >= deadline:
                self.expired_in_queue += 1
                if not future.cancelled():
                    future.set_exception(DeadlineExceeded(
                        f"deadline of {budget_ms:g} ms expired while the "
                        f"request was queued",
                        graph=task.graph_id,
                        solver=task.solver,
                        deadline_ms=budget_ms,
                    ))
            else:
                live.append(entry)
        if not live:
            return
        tasks = [task for task, _, _, _ in live]
        self.batches += 1
        self.max_batch_seen = max(self.max_batch_seen, len(tasks))
        if len(tasks) > 1:
            self.batched_requests += len(tasks)
        loop = asyncio.get_running_loop()
        try:
            async with self._flush_lock:
                try:
                    action = self.supervisor.on_dispatch()
                except Overloaded as exc:
                    self.rejected_at_dispatch += len(live)
                    if self._draining:
                        # Queued before the breaker opened, and the server
                        # is going away: a structured 503 beats waiting out
                        # a backoff that will never be probed.
                        self._reject(live, ShuttingDown(
                            "server is draining and the worker pool is "
                            "unavailable",
                            batch_size=len(tasks),
                        ))
                    else:
                        self._reject(live, exc)
                    return
                if action == "probe":
                    # Half-open: this batch is the probe.  Re-warm first so
                    # the barrier runs in a real pool, not inline.
                    await loop.run_in_executor(None, self.supervisor.rewarm)
                payloads = await loop.run_in_executor(
                    None, self.executor.map, run_solve_task, tasks
                )
        except WorkerPoolBrokenError as exc:
            self.pool_breaks += 1
            action = self.supervisor.on_break()
            if action in ("rewarm", "stepped_down"):
                # Isolated break (or a fresh backend after step-down):
                # re-warm immediately so the next single-task barrier does
                # not run inline in the server process.
                with contextlib.suppress(Exception):
                    async with self._flush_lock:
                        await loop.run_in_executor(
                            None, self.supervisor.rewarm
                        )
            self._reject(live, PoolBroken(
                f"worker pool died mid-batch: {exc}",
                batch_size=len(tasks),
            ))
            return
        except Exception as exc:  # noqa: BLE001 - surface as structured 500
            self._reject(live, SolveFailed(
                f"batch execution failed: {type(exc).__name__}: {exc}",
                batch_size=len(tasks),
            ))
            return
        self.supervisor.on_success()
        now = time.monotonic()
        for (task, future, deadline, budget_ms), payload in zip(live,
                                                                payloads):
            if future.cancelled():
                continue
            if deadline is not None and now >= deadline:
                # Expired while the batch was in flight.  Only this entry
                # turns into a 504 — its batch-mates' payloads are already
                # computed and untouched.
                self.expired_in_flight += 1
                future.set_exception(DeadlineExceeded(
                    f"deadline of {budget_ms:g} ms expired while the "
                    f"batch was executing",
                    graph=task.graph_id,
                    solver=task.solver,
                    deadline_ms=budget_ms,
                ))
                continue
            payload = dict(payload)
            payload["batch_size"] = len(tasks)
            future.set_result(payload)

    @staticmethod
    def _reject(entries: List[_Entry], error: Exception) -> None:
        for _, future, _, _ in entries:
            if not future.cancelled():
                future.set_exception(error)

    # ------------------------------------------------------------------ #
    async def drain(self) -> None:
        """Stop accepting work, flush everything pending, wait for
        in-flight barriers.  Queued requests either run to completion or
        (if the breaker is open) get structured 503s — nothing hangs."""
        self._draining = True
        for key in list(self._pending):
            self._flush_soon(key)
        while self._inflight:
            await asyncio.gather(*list(self._inflight),
                                 return_exceptions=True)

    def stats(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "max_batch_seen": self.max_batch_seen,
            "pool_breaks": self.pool_breaks,
            "window_ms": self.window_s * 1000.0,
            "max_batch": self.max_batch,
            "max_queue": self.max_queue,
            "queue_depth": self.queue_depth(),
            "max_queue_seen": self.max_queue_seen,
            "rejected_queue_full": self.rejected_queue_full,
            "rejected_at_dispatch": self.rejected_at_dispatch,
            "expired_in_queue": self.expired_in_queue,
            "expired_in_flight": self.expired_in_flight,
        }
