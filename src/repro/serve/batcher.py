"""Micro-batching: concurrent requests for one graph share one barrier.

The server's unit of executor work is a *batch*: every ``POST /solve``
that arrives within ``window_s`` of the first pending request for the
same graph joins its batch, and the whole batch runs as **one**
``executor.map(run_solve_task, tasks)`` — one barrier, one pool wake-up,
one pass over the pinned graph, however many clients are waiting.  A
batch also flushes early the moment it reaches ``max_batch``, so a
saturating client never waits out the window.

Each request still gets its own :class:`~repro.serve.tasks.SolveTask`
(own seed, own solver, own params) and its own result future; batching
changes *scheduling only*, never results — the facade's per-seed
determinism contract is what makes that safe, and
``tests/test_serve_api.py`` asserts byte-identical answers whether a
request ran alone or inside a 16-wide batch.

Flushes are serialized by an asyncio lock: the repro executors create
their pools lazily inside ``map``, which is not safe to race from two
threads, and "one barrier at a time" is exactly the semantics the batch
stats report.  A broken pool (:class:`~repro.dist.executor.
WorkerPoolBrokenError`) fails only the in-flight batch — the executor
has already discarded the pool, so the next batch gets a fresh one.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any, Dict, List, Optional, Tuple

from repro.dist.executor import Executor, WorkerPoolBrokenError
from repro.serve.protocol import PoolBroken, SolveFailed
from repro.serve.tasks import SolveTask, run_solve_task, warm_worker

__all__ = ["MicroBatcher"]


class _Bucket:
    """Requests for one graph key, waiting for the window to close."""

    __slots__ = ("entries", "timer")

    def __init__(self) -> None:
        self.entries: List[Tuple[SolveTask, asyncio.Future]] = []
        self.timer: Optional[asyncio.TimerHandle] = None


class MicroBatcher:
    """Coalesces concurrent solve tasks into per-graph executor barriers."""

    def __init__(self, executor: Executor, *, window_s: float = 0.005,
                 max_batch: int = 32) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.executor = executor
        self.window_s = max(0.0, float(window_s))
        self.max_batch = max_batch
        self._pending: Dict[str, _Bucket] = {}
        self._flush_lock = asyncio.Lock()
        self._inflight: set = set()
        # stats
        self.batches = 0
        self.requests = 0
        self.batched_requests = 0  # requests that shared a barrier
        self.max_batch_seen = 0
        self.pool_breaks = 0

    # ------------------------------------------------------------------ #
    async def submit(self, key: str, task: SolveTask) -> Dict[str, Any]:
        """Enqueue one task; resolves to its payload dict after the batch
        it joined has run.  Raises :class:`~repro.serve.protocol.PoolBroken`
        / :class:`~repro.serve.protocol.SolveFailed` if the batch's barrier
        itself failed."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        bucket = self._pending.get(key)
        if bucket is None:
            bucket = _Bucket()
            self._pending[key] = bucket
            bucket.timer = loop.call_later(
                self.window_s, self._flush_soon, key
            )
        bucket.entries.append((task, future))
        self.requests += 1
        if len(bucket.entries) >= self.max_batch:
            self._flush_soon(key)
        return await future

    def _flush_soon(self, key: str) -> None:
        bucket = self._pending.pop(key, None)
        if bucket is None:  # already flushed (window raced the size cap)
            return
        if bucket.timer is not None:
            bucket.timer.cancel()
        job = asyncio.get_running_loop().create_task(self._run(bucket))
        self._inflight.add(job)
        job.add_done_callback(self._inflight.discard)

    async def _run(self, bucket: _Bucket) -> None:
        tasks = [task for task, _ in bucket.entries]
        self.batches += 1
        self.max_batch_seen = max(self.max_batch_seen, len(tasks))
        if len(tasks) > 1:
            self.batched_requests += len(tasks)
        loop = asyncio.get_running_loop()
        try:
            async with self._flush_lock:
                payloads = await loop.run_in_executor(
                    None, self.executor.map, run_solve_task, tasks
                )
        except WorkerPoolBrokenError as exc:
            self.pool_breaks += 1
            # Re-warm immediately: the executor discarded its pool, and
            # until one exists again a single-task barrier would run
            # inline in the server process — which must never happen.
            with contextlib.suppress(Exception):
                async with self._flush_lock:
                    await loop.run_in_executor(
                        None, self.executor.map, warm_worker, [0, 1]
                    )
            self._reject(bucket, PoolBroken(
                f"worker pool died mid-batch: {exc}",
                batch_size=len(tasks),
            ))
            return
        except Exception as exc:  # noqa: BLE001 - surface as structured 500
            self._reject(bucket, SolveFailed(
                f"batch execution failed: {type(exc).__name__}: {exc}",
                batch_size=len(tasks),
            ))
            return
        for (_, future), payload in zip(bucket.entries, payloads):
            if not future.cancelled():
                payload = dict(payload)
                payload["batch_size"] = len(tasks)
                future.set_result(payload)

    @staticmethod
    def _reject(bucket: _Bucket, error: Exception) -> None:
        for _, future in bucket.entries:
            if not future.cancelled():
                future.set_exception(error)

    # ------------------------------------------------------------------ #
    async def drain(self) -> None:
        """Flush everything pending and wait for in-flight barriers."""
        for key in list(self._pending):
            self._flush_soon(key)
        while self._inflight:
            await asyncio.gather(*list(self._inflight),
                                 return_exceptions=True)

    def stats(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "max_batch_seen": self.max_batch_seen,
            "pool_breaks": self.pool_breaks,
            "window_ms": self.window_s * 1000.0,
            "max_batch": self.max_batch,
        }
