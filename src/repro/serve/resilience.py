"""Overload safety for the serving stack: admission, deadlines, breaker.

``repro serve`` without this module queues unboundedly: every request is
admitted, every queued request is eventually dispatched no matter how
stale, and a run of worker-pool breaks re-warms the pool in a tight loop.
This module is the resilience layer the server threads through
:mod:`repro.serve.app` and :mod:`repro.serve.batcher`:

:class:`AdmissionController`
    Global and per-graph in-flight caps.  A request over either cap is
    rejected *at the front door* with a structured 429 ``overloaded``
    (plus ``Retry-After``) — it never touches the graph store, the
    batcher, or the pool.  Rejections are counted per cause.

:func:`resolve_deadline_ms`
    The one place that turns a client's ``deadline_ms`` (or the server's
    ``--default-deadline-ms``) into an effective budget, capped by
    ``--max-deadline-ms``.  The batcher enforces it twice: expired-in-
    queue requests are dropped before the flush (never dispatched), and
    expired-in-flight requests get a 504 after the barrier without
    touching their batch-mates' results.

:class:`ExecutorSupervisor`
    A circuit breaker over the executor pool.  Isolated pool breaks keep
    the PR 7 behavior (immediate re-warm, next request succeeds); a run
    of ``breaker_threshold`` *consecutive* breaks opens the breaker:
    requests shed fast with 429 + ``Retry-After``, and the pool is
    re-warmed only by a half-open **probe** after an exponential backoff
    (open → half-open → closed), so a kill-storm costs one pool per
    backoff window instead of one per request.  When the breaker keeps
    reopening, the supervisor steps the backend down the degradation
    chain (remote → processes → serial — the serving-side extension of
    the PR 6 ``RemoteExecutor`` fallback seam) and gives the more
    conservative backend a clean breaker.

All three are event-loop-thread objects: the server mutates them only
from handler coroutines and the batcher's flush task, so no locking is
needed; the only blocking call is :meth:`ExecutorSupervisor.rewarm`,
which callers run in a thread (``run_in_executor``) exactly like the
barriers themselves.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.dist.executor import Executor, resolve_executor
from repro.serve.protocol import Overloaded
from repro.serve.tasks import warm_worker

__all__ = [
    "STEP_DOWN_CHAIN",
    "AdmissionController",
    "ExecutorSupervisor",
    "resolve_deadline_ms",
]

#: The backend degradation order: each entry maps a backend to the more
#: conservative one the supervisor steps down to when the breaker keeps
#: reopening.  ``serial`` is the floor — it always answers (at the cost
#: of running solver code in the server process, the last resort).
STEP_DOWN_CHAIN = {"remote": "processes", "processes": "serial",
                   "threads": "serial"}


# --------------------------------------------------------------------- #
# deadlines
# --------------------------------------------------------------------- #
def resolve_deadline_ms(
    requested: Optional[float],
    default_ms: Optional[float],
    max_ms: float,
) -> Optional[float]:
    """The effective deadline budget for one request, in milliseconds.

    ``requested`` is the client's ``deadline_ms`` (already validated
    positive); ``None`` falls back to the server's default (``None``
    means requests without a deadline run unbounded).  ``max_ms > 0``
    caps whatever was chosen — a client cannot buy more time than the
    server is willing to hold a pool slot for.
    """
    ms = requested if requested is not None else default_ms
    if ms is None:
        return None
    ms = float(ms)
    if max_ms and max_ms > 0:
        ms = min(ms, float(max_ms))
    return ms


# --------------------------------------------------------------------- #
# admission control
# --------------------------------------------------------------------- #
class AdmissionController:
    """Bounded in-flight request counts, globally and per graph.

    ``acquire`` either admits (and counts) a request or raises
    :class:`~repro.serve.protocol.Overloaded`; every ``acquire`` must be
    paired with ``release`` (the server does this in a ``finally``).
    ``max_inflight_per_graph=0`` disables the per-graph cap.
    """

    def __init__(self, max_inflight: int, max_inflight_per_graph: int = 0,
                 *, retry_after_s: float = 1.0) -> None:
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}")
        if max_inflight_per_graph < 0:
            raise ValueError(
                f"max_inflight_per_graph must be >= 0 (0 disables), "
                f"got {max_inflight_per_graph}")
        self.max_inflight = int(max_inflight)
        self.max_inflight_per_graph = int(max_inflight_per_graph)
        self.retry_after_s = float(retry_after_s)
        self.inflight = 0
        self.inflight_by_graph: Dict[str, int] = {}
        self.max_inflight_seen = 0
        self.admitted_total = 0
        self.rejected_global = 0
        self.rejected_per_graph = 0

    def acquire(self, graph_id: str) -> None:
        if self.inflight >= self.max_inflight:
            self.rejected_global += 1
            raise Overloaded(
                f"server is at its global in-flight cap "
                f"({self.max_inflight}); retry shortly",
                retry_after_s=self.retry_after_s,
                reason="max_inflight",
                max_inflight=self.max_inflight,
            )
        per_graph = self.inflight_by_graph.get(graph_id, 0)
        if self.max_inflight_per_graph and \
                per_graph >= self.max_inflight_per_graph:
            self.rejected_per_graph += 1
            raise Overloaded(
                f"graph {graph_id!r} is at its in-flight cap "
                f"({self.max_inflight_per_graph}); retry shortly",
                retry_after_s=self.retry_after_s,
                reason="max_inflight_per_graph",
                graph=graph_id,
                max_inflight_per_graph=self.max_inflight_per_graph,
            )
        self.inflight += 1
        self.inflight_by_graph[graph_id] = per_graph + 1
        self.admitted_total += 1
        self.max_inflight_seen = max(self.max_inflight_seen, self.inflight)

    def release(self, graph_id: str) -> None:
        self.inflight -= 1
        remaining = self.inflight_by_graph.get(graph_id, 1) - 1
        if remaining <= 0:
            self.inflight_by_graph.pop(graph_id, None)
        else:
            self.inflight_by_graph[graph_id] = remaining

    @property
    def rejected_total(self) -> int:
        return self.rejected_global + self.rejected_per_graph

    def stats(self) -> Dict[str, Any]:
        return {
            "max_inflight": self.max_inflight,
            "max_inflight_per_graph": self.max_inflight_per_graph,
            "inflight": self.inflight,
            "inflight_by_graph": dict(self.inflight_by_graph),
            "max_inflight_seen": self.max_inflight_seen,
            "admitted_total": self.admitted_total,
            "rejected_global": self.rejected_global,
            "rejected_per_graph": self.rejected_per_graph,
            "rejected_total": self.rejected_total,
        }


# --------------------------------------------------------------------- #
# supervised degradation
# --------------------------------------------------------------------- #
class ExecutorSupervisor:
    """Circuit breaker + backend step-down over the server's executor.

    States (classic breaker, batch-granular):

    ``closed``
        Healthy.  An isolated pool break below ``threshold`` consecutive
        breaks keeps PR 7 semantics: the caller re-warms immediately and
        the next batch runs on a fresh pool.
    ``open``
        ``threshold`` consecutive breaks tripped it.  Submissions and
        dispatches are rejected with 429 ``overloaded`` (``reason:
        breaker_open``, ``Retry-After`` = remaining backoff) and **no
        pool is created** until ``retry_at``.
    ``half_open``
        The backoff elapsed and one batch is going through as the probe
        (the caller re-warms first).  Success closes the breaker and
        resets the backoff; another break reopens it with the backoff
        doubled (capped at ``max_backoff_s``).

    After ``step_down_after`` consecutive openings without an
    intervening success, the supervisor swaps the executor for the next
    backend in :data:`STEP_DOWN_CHAIN` and closes the breaker — the
    conservative backend starts clean.  ``step_down_after=0`` disables
    stepping down.

    The supervisor is the single owner of the live executor: callers
    must read ``supervisor.executor`` at dispatch time (never cache it),
    and :meth:`close` releases whichever backend is current.
    """

    def __init__(
        self,
        executor: Executor,
        *,
        threshold: int = 3,
        backoff_s: float = 0.5,
        max_backoff_s: float = 30.0,
        step_down_after: int = 2,
        workers: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if backoff_s <= 0:
            raise ValueError(f"backoff_s must be > 0, got {backoff_s}")
        if max_backoff_s < backoff_s:
            raise ValueError(
                f"max_backoff_s ({max_backoff_s}) must be >= backoff_s "
                f"({backoff_s})")
        if step_down_after < 0:
            raise ValueError(
                f"step_down_after must be >= 0 (0 disables), "
                f"got {step_down_after}")
        self.executor = executor
        self.threshold = int(threshold)
        self.initial_backoff_s = float(backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        self.step_down_after = int(step_down_after)
        self.workers = workers
        self._clock = clock
        self.state = "closed"
        self.pool_warm = False
        self.consecutive_breaks = 0
        self.consecutive_opens = 0
        self.breaks_total = 0
        self.opens_total = 0
        self.rejected_breaker = 0
        self.probes = 0
        self.rewarms = 0
        self.step_downs: List[Tuple[str, str]] = []
        self._backoff_s = float(backoff_s)
        self._retry_at = 0.0
        self._retired_pools = 0

    # ------------------------------------------------------------------ #
    @property
    def backend(self) -> str:
        """The current backend's canonical name."""
        return self.executor.name

    def retry_after_s(self) -> float:
        """Seconds until the next half-open probe is allowed."""
        return max(0.0, self._retry_at - self._clock())

    @property
    def pools_created_total(self) -> int:
        """Pools created across every backend this supervisor has owned
        — the number a kill-storm must keep bounded."""
        return self._retired_pools + getattr(self.executor,
                                             "pools_created", 0)

    # ------------------------------------------------------------------ #
    # the breaker protocol
    # ------------------------------------------------------------------ #
    def on_submit(self) -> None:
        """Fast-fail a new request while the breaker is open.

        Raises :class:`~repro.serve.protocol.Overloaded` when open and
        the backoff has not elapsed; otherwise the request may queue
        (it will dispatch behind the probe, or be rejected at dispatch
        if the probe fails).
        """
        if self.state == "open" and self._clock() < self._retry_at:
            self.rejected_breaker += 1
            raise Overloaded(
                f"worker pool circuit breaker is open "
                f"({self.consecutive_breaks} consecutive pool breaks on "
                f"the {self.backend!r} backend)",
                retry_after_s=self.retry_after_s(),
                reason="breaker_open",
                breaker_state=self.state,
            )

    def on_dispatch(self) -> str:
        """Gate one batch about to hit the pool.

        Returns ``"ok"`` (closed — dispatch normally) or ``"probe"``
        (the backoff elapsed; the breaker is now half-open and **this**
        batch is the probe — the caller must :meth:`rewarm` first).
        Raises :class:`~repro.serve.protocol.Overloaded` while the
        breaker is open (or a probe is already in flight).
        """
        if self.state == "closed":
            return "ok"
        if self.state == "open" and self._clock() >= self._retry_at:
            self.state = "half_open"
            self.probes += 1
            return "probe"
        self.rejected_breaker += 1
        raise Overloaded(
            f"worker pool circuit breaker is "
            f"{self.state.replace('_', '-')} on the {self.backend!r} "
            f"backend",
            retry_after_s=self.retry_after_s(),
            reason="breaker_open",
            breaker_state=self.state,
        )

    def on_break(self) -> str:
        """Record one ``WorkerPoolBrokenError``; decide what happens next.

        Returns the action the caller must take:

        ``"rewarm"``
            Closed, below threshold — PR 7 semantics: re-warm now.
        ``"opened"`` / ``"reopened"``
            The breaker tripped (or a probe failed): do **not** re-warm;
            the next pool is created by the half-open probe after
            ``retry_after_s()``.
        ``"stepped_down"``
            The breaker kept reopening and the backend was swapped for
            the next one in :data:`STEP_DOWN_CHAIN`; re-warm the new
            backend (it starts with a closed breaker).
        """
        self.breaks_total += 1
        self.consecutive_breaks += 1
        self.pool_warm = False
        if self.state == "half_open":
            return self._open("reopened")
        if self.consecutive_breaks >= self.threshold:
            return self._open("opened")
        return "rewarm"

    def _open(self, action: str) -> str:
        self.state = "open"
        self.opens_total += 1
        self.consecutive_opens += 1
        self._retry_at = self._clock() + self._backoff_s
        self._backoff_s = min(self._backoff_s * 2, self.max_backoff_s)
        if (self.step_down_after
                and self.consecutive_opens > self.step_down_after
                and self.backend in STEP_DOWN_CHAIN):
            return self._step_down()
        return action

    def _step_down(self) -> str:
        old = self.executor
        next_name = STEP_DOWN_CHAIN[self.backend]
        self.step_downs.append((self.backend, next_name))
        self._retired_pools += getattr(old, "pools_created", 0)
        self.executor = resolve_executor(next_name, workers=self.workers)
        try:
            old.close()
        except Exception:  # noqa: BLE001 - the old pool is already broken
            pass
        # The conservative backend starts clean: closed breaker, fresh
        # backoff.  If it breaks too, the whole cycle repeats one rung
        # further down the chain.
        self.state = "closed"
        self.consecutive_breaks = 0
        self.consecutive_opens = 0
        self._backoff_s = self.initial_backoff_s
        self._retry_at = 0.0
        return "stepped_down"

    def on_success(self) -> None:
        """One barrier completed: reset the breaker."""
        self.consecutive_breaks = 0
        self.pool_warm = True
        if self.state != "closed":
            self.state = "closed"
            self.consecutive_opens = 0
            self._backoff_s = self.initial_backoff_s
            self._retry_at = 0.0

    # ------------------------------------------------------------------ #
    def rewarm(self) -> None:
        """Force the current executor's pool to exist (blocking).

        Mapping :func:`~repro.serve.tasks.warm_worker` over two tasks
        defeats the lazy backends' single-task inline short-circuit, so
        solver code never runs in the server process.  Callers in async
        context run this in a thread.
        """
        self.executor.map(warm_worker, [0, 1])
        self.rewarms += 1
        self.pool_warm = True

    def ready(self) -> Tuple[bool, List[str]]:
        """The supervisor's half of ``/readyz``: warm pool, closed breaker."""
        reasons = []
        if not self.pool_warm:
            reasons.append("worker pool is not warm")
        if self.state != "closed":
            reasons.append(
                f"circuit breaker is {self.state.replace('_', '-')} "
                f"(retry in {self.retry_after_s() * 1000:.0f} ms)")
        return not reasons, reasons

    def close(self) -> None:
        self.executor.close()

    def stats(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "backend": self.backend,
            "pool_warm": self.pool_warm,
            "threshold": self.threshold,
            "consecutive_breaks": self.consecutive_breaks,
            "consecutive_opens": self.consecutive_opens,
            "breaks_total": self.breaks_total,
            "opens_total": self.opens_total,
            "rejected": self.rejected_breaker,
            "probes": self.probes,
            "rewarms": self.rewarms,
            "backoff_ms": round(self._backoff_s * 1000.0, 3),
            "retry_in_ms": round(self.retry_after_s() * 1000.0, 3),
            "step_downs": [list(pair) for pair in self.step_downs],
            "pools_created_total": self.pools_created_total,
        }
