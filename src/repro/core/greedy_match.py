"""GreedyMatch — the paper's combining procedure for matching coresets (§3.1).

    GreedyMatch(G):
      1. M^(0) := ∅.  For i = 1 to k:
      2.   M^(i) := maximal matching obtained by adding to M^(i-1) the edges
           in an arbitrary maximum matching of G^(i) that do not violate the
           matching property.
      3. return M := M^(k).

The paper stresses that GreedyMatch is *only needed for the analysis* — any
matching algorithm run on the union of coresets does at least as well.  We
implement it anyway, instrumented, because (a) it is itself a valid linear
cost combiner and (b) its step-by-step growth is the subject of Lemma 3.2 /
Claim 3.3, which experiment E14 verifies empirically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.partition import PartitionedGraph
from repro.matching.api import Algorithm, maximum_matching
from repro.utils.arrays import isin_mask

__all__ = ["GreedyMatchTrace", "greedy_match"]


@dataclass
class GreedyMatchTrace:
    """Step-by-step record of one GreedyMatch execution.

    Attributes
    ----------
    sizes:
        ``sizes[i]`` = |M^(i)| after processing machine i (1-indexed step i;
        entry 0 is the empty matching).
    gains:
        per-step increments ``|M^(i)| - |M^(i-1)|`` (length k).
    optimal_assigned_prefix:
        when a reference optimum matching ``M*`` is supplied, entry i is
        ``|M*_{<i+1}|`` — how much of M* landed in the first i pieces
        (the quantity of Claim 3.3).
    """

    sizes: list[int] = field(default_factory=lambda: [0])
    gains: list[int] = field(default_factory=list)
    optimal_assigned_prefix: list[int] = field(default_factory=list)

    @property
    def final_size(self) -> int:
        return self.sizes[-1]


def greedy_match(
    partitioned: PartitionedGraph,
    algorithm: Algorithm = "auto",
    reference_optimum: np.ndarray | None = None,
) -> tuple[np.ndarray, GreedyMatchTrace]:
    """Run GreedyMatch over the pieces of a partitioned graph.

    Returns the final matching and the instrumented trace.  If
    ``reference_optimum`` (an optimal matching of the *whole* graph) is
    given, the trace also records the Claim 3.3 prefix counts.
    """
    g = partitioned.graph
    n = g.n_vertices
    trace = GreedyMatchTrace()
    covered = np.zeros(n, dtype=bool)
    kept: list[np.ndarray] = []
    total = 0

    assigned_so_far = 0
    for i in range(partitioned.k):
        if reference_optimum is not None:
            trace.optimal_assigned_prefix.append(assigned_so_far)
            piece_edges = partitioned.piece(i).edges
            in_opt = isin_mask(reference_optimum, piece_edges, n)
            assigned_so_far += int(in_opt.sum())

        piece_matching = maximum_matching(partitioned.piece(i), algorithm=algorithm)
        if piece_matching.shape[0]:
            free = ~covered[piece_matching[:, 0]] & ~covered[piece_matching[:, 1]]
            add = piece_matching[free]
            if add.shape[0]:
                covered[add.ravel()] = True
                kept.append(add)
                total += add.shape[0]
        trace.sizes.append(total)
        trace.gains.append(total - trace.sizes[-2])

    matching = (
        np.vstack(kept) if kept else np.zeros((0, 2), dtype=np.int64)
    )
    return matching, trace
