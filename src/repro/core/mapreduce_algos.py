"""The paper's MapReduce algorithms (§1.1, "MapReduce Framework").

With ``k = √n`` machines of memory Õ(n·√n):

* **Round 1** — every machine re-routes each of its edges to a uniformly
  random machine.  This turns an *arbitrary* initial placement into exactly
  the random k-partitioning the coresets need.
* **Round 2** — every machine computes its randomized composable coreset
  (maximum matching, or VC peeling) and sends it to a designated machine M;
  since each coreset is Õ(n) and there are k = √n machines, M receives
  Õ(n·√n), within its memory.  M then solves the composed instance locally.

If the input is *already* randomly distributed, round 1 is skipped and the
whole computation takes **one** round (the paper cites [52] for when that
assumption applies) — exposed via ``assume_random_input=True``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.compose import compose_matching, compose_vertex_cover
from repro.core.vc_coreset import VCCoresetResult, vc_coreset
from repro.dist.mapreduce import MapReduceJob, MapReduceSimulator
from repro.graph.edgelist import Graph
from repro.matching.api import Algorithm, maximum_matching
from repro.utils.rng import RandomState, as_generator, spawn_generators

__all__ = ["MapReduceMatchingResult", "MapReduceCoverResult",
           "mapreduce_matching", "mapreduce_vertex_cover", "default_machine_count"]


def default_machine_count(n_vertices: int) -> int:
    """The paper's ``k = √n`` choice."""
    return max(1, int(math.isqrt(max(n_vertices, 1))))


def _initial_pieces(
    graph: Graph, k: int, how: str, rng: np.random.Generator
) -> list[np.ndarray]:
    """Round-0 placement of edges on machines.

    ``"contiguous"`` models an arbitrary/adversarial ingest (consecutive
    chunks of the edge list); ``"random"`` models an input that is already
    randomly distributed.
    """
    e = graph.edges
    if how == "contiguous":
        return [chunk for chunk in np.array_split(e, k)]
    if how == "random":
        dest = rng.integers(0, k, size=e.shape[0])
        return [e[dest == i] for i in range(k)]
    raise ValueError(f"unknown initial placement {how!r}")


@dataclass
class MapReduceMatchingResult:
    matching: np.ndarray
    job: MapReduceJob
    k: int


@dataclass
class MapReduceCoverResult:
    cover: np.ndarray
    job: MapReduceJob
    k: int


def mapreduce_matching(
    graph: Graph,
    k: int | None = None,
    rng: RandomState = None,
    memory_cap_edges: int | None = None,
    assume_random_input: bool = False,
    combiner_algorithm: Algorithm = "auto",
    initial_placement: str = "contiguous",
) -> MapReduceMatchingResult:
    """O(1)-approximate maximum matching in ≤ 2 MapReduce rounds."""
    gen = as_generator(rng)
    k = default_machine_count(graph.n_vertices) if k is None else int(k)
    sim = MapReduceSimulator(
        graph.n_vertices, k, memory_cap_edges=memory_cap_edges, rng=gen
    )
    placement = "random" if assume_random_input else initial_placement
    sim.load(_initial_pieces(graph, k, placement, gen))

    if not assume_random_input:
        # Round 1: random re-partitioning.
        sim.shuffle_round(
            lambda i, edges, r: r.integers(0, k, size=edges.shape[0])
        )

    template = graph  # carries the bipartition, if any

    def compute_coreset(i: int, edges: np.ndarray, r: np.random.Generator) -> np.ndarray:
        piece = _piece_like(template, edges)
        return maximum_matching(piece)

    # Round 2: coreset per machine, shipped to machine 0.
    sim.compute_round(compute_coreset, send_to=0)

    final_edges = sim.machine_edges(0)
    matching = compose_matching(
        graph.n_vertices, [final_edges], combiner="exact",
        algorithm=combiner_algorithm, template=template,
    )
    return MapReduceMatchingResult(matching=matching, job=sim.job, k=k)


def mapreduce_vertex_cover(
    graph: Graph,
    k: int | None = None,
    rng: RandomState = None,
    memory_cap_edges: int | None = None,
    assume_random_input: bool = False,
    log_slack: float = 4.0,
    initial_placement: str = "contiguous",
) -> MapReduceCoverResult:
    """O(log n)-approximate vertex cover in ≤ 2 MapReduce rounds."""
    gen, cover_gen = spawn_generators(rng, 2)
    k = default_machine_count(graph.n_vertices) if k is None else int(k)
    sim = MapReduceSimulator(
        graph.n_vertices, k, memory_cap_edges=memory_cap_edges, rng=gen
    )
    placement = "random" if assume_random_input else initial_placement
    sim.load(_initial_pieces(graph, k, placement, gen))

    if not assume_random_input:
        sim.shuffle_round(
            lambda i, edges, r: r.integers(0, k, size=edges.shape[0])
        )

    fixed_sets: list[np.ndarray] = [np.zeros(0, dtype=np.int64)] * k

    def compute_coreset(i: int, edges: np.ndarray, r: np.random.Generator) -> np.ndarray:
        piece = Graph(graph.n_vertices, edges)
        result = vc_coreset(piece, n=graph.n_vertices, k=k, log_slack=log_slack)
        # Fixed vertices ride along with the residual edges; they are ≤ n
        # vertex ids, well inside the same Õ(n) message budget.
        fixed_sets[i] = result.fixed_vertices
        return result.residual.edges

    sim.compute_round(compute_coreset, send_to=0)

    residual_union = Graph(graph.n_vertices, sim.machine_edges(0))
    results = [
        VCCoresetResult(
            fixed_vertices=fixed_sets[i],
            residual=residual_union if i == 0 else Graph(graph.n_vertices),
            trace=None,  # type: ignore[arg-type]
        )
        for i in range(k)
    ]
    cover = compose_vertex_cover(
        graph.n_vertices, results, combiner="auto", template=graph, rng=cover_gen
    )
    return MapReduceCoverResult(cover=cover, job=sim.job, k=k)


def _piece_like(template: Graph, edges: np.ndarray) -> Graph:
    """Rebuild a machine piece with the template's (possible) bipartition."""
    from repro.graph.bipartite import BipartiteGraph

    if isinstance(template, BipartiteGraph):
        return BipartiteGraph(template.n_left, template.n_right, edges)
    return Graph(template.n_vertices, edges)
