"""The paper's MapReduce algorithms (§1.1, "MapReduce Framework").

With ``k = √n`` machines of memory Õ(n·√n):

* **Round 1** — every machine re-routes each of its edges to a uniformly
  random machine.  This turns an *arbitrary* initial placement into exactly
  the random k-partitioning the coresets need.
* **Round 2** — every machine computes its randomized composable coreset
  (maximum matching, or VC peeling) and sends it to a designated machine M;
  since each coreset is Õ(n) and there are k = √n machines, M receives
  Õ(n·√n), within its memory.  M then solves the composed instance locally.

If the input is *already* randomly distributed, round 1 is skipped and the
whole computation takes **one** round (the paper cites [52] for when that
assumption applies) — exposed via ``assume_random_input=True``.

.. deprecated::
    As *entry points* these are superseded by the unified solver facade —
    ``repro.solve.solve(graph, "matching.mapreduce", ctx)`` /
    ``"vertex_cover.mapreduce"`` (see ``docs/SOLVER_API.md``).  The
    functions remain the implementations the facade adapters call and
    keep working unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.compose import compose_matching, compose_vertex_cover
from repro.core.vc_coreset import VCCoresetResult, vc_coreset
from repro.dist.executor import ExecutorSpec
from repro.dist.mapreduce import MapReduceJob, MapReduceSimulator
from repro.graph.bipartite import BipartiteGraph
from repro.graph.edgelist import Graph
from repro.matching.api import Algorithm, maximum_matching
from repro.utils.rng import RandomState, as_generator, spawn_generators

__all__ = ["MapReduceMatchingResult", "MapReduceCoverResult",
           "mapreduce_matching", "mapreduce_vertex_cover", "default_machine_count"]


def default_machine_count(n_vertices: int) -> int:
    """The paper's ``k = √n`` choice."""
    return max(1, int(math.isqrt(max(n_vertices, 1))))


def _initial_pieces(
    graph: Graph, k: int, how: str, rng: np.random.Generator
) -> list[np.ndarray]:
    """Round-0 placement of edges on machines.

    ``"contiguous"`` models an arbitrary/adversarial ingest (consecutive
    chunks of the edge list); ``"random"`` models an input that is already
    randomly distributed.
    """
    e = graph.edges
    if how == "contiguous":
        return [chunk for chunk in np.array_split(e, k)]
    if how == "random":
        dest = rng.integers(0, k, size=e.shape[0])
        return [e[dest == i] for i in range(k)]
    raise ValueError(f"unknown initial placement {how!r}")


# The round functions below are module-level dataclass callables rather
# than closures so that `executor="processes"` can pickle them into worker
# processes; they carry only small scalars or an edge-free template graph.
@dataclass(frozen=True)
class _UniformRoute:
    """Round-1 route: every edge to a uniformly random machine."""

    k: int

    def __call__(self, i: int, edges: np.ndarray,
                 rng: np.random.Generator) -> np.ndarray:
        return rng.integers(0, self.k, size=edges.shape[0])


@dataclass(frozen=True)
class _MatchingCoresetCompute:
    """Round-2 compute: a maximum matching of the machine's piece."""

    template: Graph  # edge-free; carries n and the bipartition only

    def __call__(self, i: int, edges: np.ndarray,
                 rng: np.random.Generator) -> np.ndarray:
        return maximum_matching(_piece_like(self.template, edges))


@dataclass(frozen=True)
class _VCCoresetCompute:
    """Round-2 compute: VC peeling; returns (residual edges, fixed vertices).

    The fixed vertices come back through :meth:`compute_round`'s aux
    channel (collected in machine-index order) instead of mutating caller
    state, which would not survive a process boundary.
    """

    n_vertices: int
    k: int
    log_slack: float

    def __call__(self, i: int, edges: np.ndarray,
                 rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        piece = Graph(self.n_vertices, edges)
        result = vc_coreset(piece, n=self.n_vertices, k=self.k,
                            log_slack=self.log_slack)
        return result.residual.edges, result.fixed_vertices


def _edge_free_template(graph: Graph) -> Graph:
    """``graph`` minus its edges: the cheap-to-pickle structural template."""
    if isinstance(graph, BipartiteGraph):
        return BipartiteGraph(graph.n_left, graph.n_right)
    return Graph(graph.n_vertices)


@dataclass
class MapReduceMatchingResult:
    matching: np.ndarray
    job: MapReduceJob
    k: int


@dataclass
class MapReduceCoverResult:
    cover: np.ndarray
    job: MapReduceJob
    k: int


def mapreduce_matching(
    graph: Graph,
    k: int | None = None,
    rng: RandomState = None,
    memory_cap_edges: int | None = None,
    assume_random_input: bool = False,
    combiner_algorithm: Algorithm = "auto",
    initial_placement: str = "contiguous",
    executor: ExecutorSpec = None,
    transfer: str | None = None,
) -> MapReduceMatchingResult:
    """O(1)-approximate maximum matching in ≤ 2 MapReduce rounds.

    ``executor`` selects the backend the simulated machines run on
    (serial / threads / processes; see :mod:`repro.dist.executor`) and
    ``transfer`` the piece-transfer mode (pickle / shared; see
    :mod:`repro.dist.shm`) — results are bit-identical per seed across
    all backends and transfer modes.
    """
    gen = as_generator(rng)
    k = default_machine_count(graph.n_vertices) if k is None else int(k)
    # The context manager releases the simulator's worker pool when the
    # rounds are done (a pool the caller passed in stays open — see
    # MapReduceSimulator.close); the pool itself persists across both
    # rounds, so start-up is paid once per job.
    with MapReduceSimulator(
        graph.n_vertices, k, memory_cap_edges=memory_cap_edges, rng=gen,
        executor=executor, transfer=transfer,
    ) as sim:
        placement = "random" if assume_random_input else initial_placement
        sim.load(_initial_pieces(graph, k, placement, gen))

        if not assume_random_input:
            # Round 1: random re-partitioning.
            sim.shuffle_round(_UniformRoute(k))

        # Round 2: coreset per machine, shipped to machine 0.  The compute
        # callable carries only the edge-free template (n + bipartition), so
        # shipping it to process workers stays cheap.
        sim.compute_round(_MatchingCoresetCompute(_edge_free_template(graph)),
                          send_to=0)

        final_edges = sim.machine_edges(0)
    matching = compose_matching(
        graph.n_vertices, [final_edges], combiner="exact",
        algorithm=combiner_algorithm, template=graph,
    )
    return MapReduceMatchingResult(matching=matching, job=sim.job, k=k)


def mapreduce_vertex_cover(
    graph: Graph,
    k: int | None = None,
    rng: RandomState = None,
    memory_cap_edges: int | None = None,
    assume_random_input: bool = False,
    log_slack: float = 4.0,
    initial_placement: str = "contiguous",
    executor: ExecutorSpec = None,
    transfer: str | None = None,
) -> MapReduceCoverResult:
    """O(log n)-approximate vertex cover in ≤ 2 MapReduce rounds.

    ``executor`` selects the backend the simulated machines run on
    (serial / threads / processes; see :mod:`repro.dist.executor`) and
    ``transfer`` the piece-transfer mode (pickle / shared; see
    :mod:`repro.dist.shm`) — results are bit-identical per seed across
    all backends and transfer modes.
    """
    gen, cover_gen = spawn_generators(rng, 2)
    k = default_machine_count(graph.n_vertices) if k is None else int(k)
    with MapReduceSimulator(
        graph.n_vertices, k, memory_cap_edges=memory_cap_edges, rng=gen,
        executor=executor, transfer=transfer,
    ) as sim:
        placement = "random" if assume_random_input else initial_placement
        sim.load(_initial_pieces(graph, k, placement, gen))

        if not assume_random_input:
            sim.shuffle_round(_UniformRoute(k))

        # Fixed vertices ride along with the residual edges; they are ≤ n
        # vertex ids, well inside the same Õ(n) message budget.  They come
        # back through the round's aux channel, keyed by machine index.
        aux = sim.compute_round(
            _VCCoresetCompute(graph.n_vertices, k, log_slack), send_to=0
        )
        fixed_sets: list[np.ndarray] = [
            a if a is not None else np.zeros(0, dtype=np.int64) for a in aux
        ]

        residual_union = Graph(graph.n_vertices, sim.machine_edges(0))
    results = [
        VCCoresetResult(
            fixed_vertices=fixed_sets[i],
            residual=residual_union if i == 0 else Graph(graph.n_vertices),
            trace=None,  # type: ignore[arg-type]
        )
        for i in range(k)
    ]
    cover = compose_vertex_cover(
        graph.n_vertices, results, combiner="auto", template=graph, rng=cover_gen
    )
    return MapReduceCoverResult(cover=cover, job=sim.job, k=k)


def _piece_like(template: Graph, edges: np.ndarray) -> Graph:
    """Rebuild a machine piece with the template's (possible) bipartition."""
    if isinstance(template, BipartiteGraph):
        return BipartiteGraph(template.n_left, template.n_right, edges)
    return Graph(template.n_vertices, edges)
