"""Weighted extensions of the coresets (paper §1.1).

**Weighted matching — Crouch–Stubbs [22], explicit in the paper.**  Edges
are bucketed into geometric weight classes ``[(1+ε)^j, (1+ε)^{j+1})`` using
an *absolute* scale (class index ``floor(log_{1+ε} w)``) so every machine
buckets identically with no coordination.  Each machine runs the Theorem 1
coreset *inside every class* of its piece and sends the union — a factor
``O(log_{1+ε} W)`` more edges.  The coordinator greedily merges class
solutions from the heaviest class down, paying the Crouch–Stubbs factor 2
(plus the unweighted coreset's O(1)) in approximation.

**Weighted vertex cover — the paper says "similar ideas of grouping by
weight ... we omit the details".**  We implement the natural completion and
document it as our reconstruction: vertices are bucketed into geometric
weight classes; each *edge* is assigned to the class of its **cheaper**
endpoint; the unweighted VC coreset runs per class; the coordinator covers
each class's residual union and keeps each class's peeled vertices.  Within
a class the cheaper-endpoint weights agree up to (1+ε), so the unweighted
O(log n) guarantee transfers with an extra (1+ε)·O(log W) loss — measured
(not just asserted) by experiment E12.

.. deprecated::
    As *entry points* these are superseded by the unified solver facade —
    ``repro.solve.solve(wg, "matching.weighted_coreset", ctx)`` /
    ``"vertex_cover.weighted_coreset"`` (see ``docs/SOLVER_API.md``); the
    protocol functions stay as the implementations the adapters call.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.vc_coreset import vc_coreset
from repro.dist.ledger import CommunicationLedger
from repro.dist.message import Message
from repro.graph.edgelist import Graph
from repro.graph.partition import PartitionedGraph, random_k_partition
from repro.graph.weights import WeightedGraph
from repro.matching.api import maximum_matching
from repro.utils.rng import RandomState, spawn_generators

__all__ = [
    "WeightedMatchingResult",
    "WeightedCoverResult",
    "weighted_matching_coreset_protocol",
    "weighted_vertex_cover_protocol",
    "weight_class_index",
]


def weight_class_index(weights: np.ndarray, epsilon: float) -> np.ndarray:
    """Absolute geometric class index ``floor(log_{1+ε} w)`` per weight."""
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    w = np.asarray(weights, dtype=np.float64)
    if w.size and w.min() <= 0:
        raise ValueError("weights must be strictly positive")
    return np.floor(np.log(w) / math.log1p(epsilon)).astype(np.int64)


@dataclass
class WeightedMatchingResult:
    matching: np.ndarray
    weight: float
    ledger: CommunicationLedger


@dataclass
class WeightedCoverResult:
    cover: np.ndarray
    weight: float
    ledger: CommunicationLedger


# --------------------------------------------------------------------- #
# weighted matching (Crouch–Stubbs over Theorem 1)
# --------------------------------------------------------------------- #
def weighted_matching_coreset_protocol(
    wg: WeightedGraph,
    k: int,
    epsilon: float = 1.0,
    rng: RandomState = None,
    partitioned: PartitionedGraph | None = None,
) -> WeightedMatchingResult:
    """Run the weighted-matching coreset protocol end to end.

    Returns the final matching, its weight, and the communication ledger.
    ``partitioned`` may supply a pre-made partition (its graph must be
    ``wg``); otherwise a fresh random k-partition is drawn.
    """
    gens = spawn_generators(rng, k + 2)
    if partitioned is None:
        partitioned = random_k_partition(wg, k, gens[k])
    elif partitioned.graph is not wg and partitioned.graph != wg:
        raise ValueError("partition does not belong to the given weighted graph")

    ledger = CommunicationLedger(n_vertices=wg.n_vertices, k=k)
    all_edges: list[np.ndarray] = []
    for i in range(k):
        mask = partitioned.assignment == i
        piece = WeightedGraph(
            wg.n_vertices, wg.edges[mask], wg.weights[mask], validated=True
        )
        classes = weight_class_index(piece.weights, epsilon) if piece.n_edges else \
            np.zeros(0, dtype=np.int64)
        piece_coreset: list[np.ndarray] = []
        for cls in np.unique(classes):
            sub = Graph(wg.n_vertices, piece.edges[classes == cls], validated=True)
            piece_coreset.append(maximum_matching(sub, algorithm="blossom"))
        edges = (
            np.vstack(piece_coreset) if piece_coreset
            else np.zeros((0, 2), dtype=np.int64)
        )
        # Each edge also carries its (quantized) weight class: O(log log W)
        # bits/edge in principle; we charge a full class index per edge.
        aux = edges.shape[0] * 8
        ledger.record(Message(sender=i, edges=edges, aux_bits=aux))
        all_edges.append(edges)

    union = (
        np.vstack(all_edges) if all_edges else np.zeros((0, 2), dtype=np.int64)
    )
    union_wg = _weighted_subset(wg, union)
    from repro.matching.weighted import greedy_weighted_matching

    matching, weight = greedy_weighted_matching(union_wg)
    return WeightedMatchingResult(matching=matching, weight=weight, ledger=ledger)


def _weighted_subset(wg: WeightedGraph, edges: np.ndarray) -> WeightedGraph:
    """The sub-WeightedGraph of ``wg`` on the given edge rows (looked up by
    key; duplicates collapse)."""
    from repro.utils.arrays import edge_keys

    if np.asarray(edges).size == 0:
        return WeightedGraph(
            wg.n_vertices,
            np.zeros((0, 2), dtype=np.int64),
            np.zeros(0, dtype=np.float64),
            validated=True,
        )
    keys = np.unique(edge_keys(edges, max(wg.n_vertices, 1)))
    idx = np.searchsorted(wg.edge_key_array, keys)
    if (idx >= wg.n_edges).any() or (wg.edge_key_array[idx] != keys).any():
        raise ValueError("coreset edge not found in the weighted graph")
    return WeightedGraph(
        wg.n_vertices, wg.edges[idx], wg.weights[idx], validated=True
    )


# --------------------------------------------------------------------- #
# weighted vertex cover (reconstructed grouping-by-weight extension)
# --------------------------------------------------------------------- #
def weighted_vertex_cover_protocol(
    graph: Graph,
    vertex_weights: np.ndarray,
    k: int,
    epsilon: float = 1.0,
    rng: RandomState = None,
    log_slack: float = 4.0,
) -> WeightedCoverResult:
    """Run the weighted-VC coreset protocol end to end (see module docs).

    ``vertex_weights`` is a strictly positive length-n array.
    """
    w = np.asarray(vertex_weights, dtype=np.float64)
    if w.shape != (graph.n_vertices,):
        raise ValueError(
            f"vertex_weights must have shape ({graph.n_vertices},), got {w.shape}"
        )
    if w.size and w.min() <= 0:
        raise ValueError("vertex weights must be strictly positive")

    gens = spawn_generators(rng, 2)
    partitioned = random_k_partition(graph, k, gens[0])

    # Class of an edge = class of its cheaper endpoint.
    vclass = weight_class_index(w, epsilon)
    e = graph.edges
    edge_class_full = np.minimum(vclass[e[:, 0]], vclass[e[:, 1]]) if e.size else \
        np.zeros(0, dtype=np.int64)

    ledger = CommunicationLedger(n_vertices=graph.n_vertices, k=k)
    per_class_residuals: dict[int, list[np.ndarray]] = {}
    fixed_all: list[np.ndarray] = []
    for i in range(k):
        mask = partitioned.assignment == i
        piece_edges = e[mask]
        piece_classes = edge_class_full[mask]
        msg_edges: list[np.ndarray] = []
        msg_fixed: list[np.ndarray] = []
        for cls in np.unique(piece_classes):
            sub = Graph(
                graph.n_vertices, piece_edges[piece_classes == cls], validated=True
            )
            result = vc_coreset(sub, k=k, log_slack=log_slack)
            msg_edges.append(result.residual.edges)
            msg_fixed.append(result.fixed_vertices)
            per_class_residuals.setdefault(int(cls), []).append(
                result.residual.edges
            )
            if result.fixed_vertices.size:
                fixed_all.append(result.fixed_vertices)
        edges_i = (
            np.vstack(msg_edges) if msg_edges else np.zeros((0, 2), dtype=np.int64)
        )
        fixed_i = (
            np.unique(np.concatenate(msg_fixed)) if msg_fixed
            else np.zeros(0, dtype=np.int64)
        )
        ledger.record(Message(sender=i, edges=edges_i, fixed_vertices=fixed_i))

    cover_parts: list[np.ndarray] = list(fixed_all)
    from repro.cover.two_approx import matching_based_cover

    for cls, residual_list in per_class_residuals.items():
        union = Graph(graph.n_vertices, np.vstack(residual_list))
        cover_parts.append(matching_based_cover(union, rng=gens[1]))
    cover = (
        np.unique(np.concatenate(cover_parts)) if cover_parts
        else np.zeros(0, dtype=np.int64)
    )
    return WeightedCoverResult(
        cover=cover, weight=float(w[cover].sum()), ledger=ledger
    )
