"""Composition: turn a collection of coresets into a final solution.

For matching (Theorem 1) the coordinator simply runs *any* maximum matching
algorithm on ``H := ALG(G^(1)) ∪ ... ∪ ALG(G^(k))``; a cheaper greedy
combiner (maximal matching of H) is also provided — it still inherits the
O(1) guarantee because GreedyMatch (§3.1) shows H contains a large matching
built greedily, and a maximal matching is at worst a further factor 2 off.

For vertex cover (Theorem 2) the final cover is

    (∪_i V^(i)_cs)  ∪  VertexCover(∪_i G^(i)_Δ)

where the second term may be computed exactly (König, bipartite) or
2-approximately (matching-based) — the paper's ratio only needs the latter.
"""

from __future__ import annotations

from typing import Literal, Sequence

import numpy as np

from repro.core.vc_coreset import VCCoresetResult
from repro.cover.konig import konig_cover
from repro.cover.two_approx import matching_based_cover
from repro.graph.bipartite import BipartiteGraph
from repro.graph.edgelist import Graph
from repro.matching.api import Algorithm, maximum_matching
from repro.matching.maximal import greedy_maximal_matching
from repro.utils.rng import RandomState

__all__ = ["compose_matching", "compose_vertex_cover", "union_of_coresets"]

MatchCombiner = Literal["exact", "greedy"]
CoverCombiner = Literal["two_approx", "konig", "auto"]


def union_of_coresets(
    n_vertices: int,
    coresets: Sequence[np.ndarray],
    template: Graph | None = None,
) -> Graph:
    """``H = ∪_i ALG(G^(i))`` as a graph (bipartite if the template is)."""
    if coresets:
        stacked = np.vstack([np.asarray(c, dtype=np.int64).reshape(-1, 2)
                             for c in coresets])
    else:
        stacked = np.zeros((0, 2), dtype=np.int64)
    if isinstance(template, BipartiteGraph):
        return BipartiteGraph(template.n_left, template.n_right, stacked)
    return Graph(n_vertices, stacked)


def compose_matching(
    n_vertices: int,
    coresets: Sequence[np.ndarray],
    combiner: MatchCombiner = "exact",
    algorithm: Algorithm = "auto",
    template: Graph | None = None,
    rng: RandomState = None,
) -> np.ndarray:
    """Final matching from the union of matching coresets."""
    h = union_of_coresets(n_vertices, coresets, template)
    if combiner == "exact":
        return maximum_matching(h, algorithm=algorithm)
    if combiner == "greedy":
        return greedy_maximal_matching(h, order="random", rng=rng)
    raise ValueError(f"unknown matching combiner {combiner!r}")


def compose_vertex_cover(
    n_vertices: int,
    coresets: Sequence[VCCoresetResult],
    combiner: CoverCombiner = "auto",
    template: Graph | None = None,
    rng: RandomState = None,
) -> np.ndarray:
    """Final vertex cover: union of fixed sets plus a cover of the union of
    residual subgraphs."""
    residual_union = union_of_coresets(
        n_vertices, [c.residual.edges for c in coresets], template
    )
    if combiner == "auto":
        combiner = "konig" if isinstance(residual_union, BipartiteGraph) else "two_approx"
    if combiner == "konig":
        if not isinstance(residual_union, BipartiteGraph):
            raise TypeError("König combiner requires a bipartite template")
        residual_cover = konig_cover(residual_union)
    elif combiner == "two_approx":
        residual_cover = matching_based_cover(residual_union, rng=rng)
    else:
        raise ValueError(f"unknown cover combiner {combiner!r}")

    fixed_parts = [c.fixed_vertices for c in coresets if c.fixed_vertices.size]
    if fixed_parts:
        fixed = np.concatenate(fixed_parts)
        return np.unique(np.concatenate([fixed, residual_cover]))
    return np.unique(residual_cover)
