"""The paper's contribution: randomized composable coresets for maximum
matching (Theorem 1) and minimum vertex cover (Theorem 2), their combiners,
weighted extensions, simultaneous protocols, and MapReduce algorithms.
"""

from repro.core.compose import compose_matching, compose_vertex_cover
from repro.core.greedy_match import GreedyMatchTrace, greedy_match
from repro.core.mapreduce_algos import mapreduce_matching, mapreduce_vertex_cover
from repro.core.matching_coreset import (
    matching_coreset_message,
    maximum_matching_coreset,
    subsampled_matching_coreset,
)
from repro.core.protocols import (
    grouped_vertex_cover_protocol,
    matching_coreset_protocol,
    subsampled_matching_protocol,
    vertex_cover_coreset_protocol,
)
from repro.core.vc_coreset import PeelingTrace, VCCoresetResult, vc_coreset
from repro.core.weighted import (
    weighted_matching_coreset_protocol,
    weighted_vertex_cover_protocol,
)

__all__ = [
    "GreedyMatchTrace",
    "PeelingTrace",
    "VCCoresetResult",
    "compose_matching",
    "compose_vertex_cover",
    "greedy_match",
    "grouped_vertex_cover_protocol",
    "mapreduce_matching",
    "mapreduce_vertex_cover",
    "matching_coreset_message",
    "matching_coreset_protocol",
    "maximum_matching_coreset",
    "subsampled_matching_coreset",
    "subsampled_matching_protocol",
    "vc_coreset",
    "vertex_cover_coreset_protocol",
    "weighted_matching_coreset_protocol",
    "weighted_vertex_cover_protocol",
]
