"""Simultaneous protocols built from the coresets.

Each factory returns a :class:`~repro.dist.coordinator.SimultaneousProtocol`
ready to run via :func:`~repro.dist.coordinator.run_simultaneous`:

* :func:`matching_coreset_protocol` — Result 1 for matching: each machine
  sends a maximum matching of its piece; the coordinator solves the union.
  Total communication Õ(nk).
* :func:`subsampled_matching_protocol` — Remark 5.2: communication
  Õ(nk/α²) for an O(α)-approximation (optimal by Theorem 5).
* :func:`vertex_cover_coreset_protocol` — Result 1 for vertex cover: each
  machine sends peeled vertices + the sparse residual; the coordinator adds
  a cover of the residual union.  Õ(nk) communication.
* :func:`grouped_vertex_cover_protocol` — Remark 5.8: vertices are grouped
  into super-vertices of size Θ(α/log n) *consistently across machines*
  (the grouping is public-randomness setup), the VC coreset runs on the
  contracted multigraph, and the coordinator expands covered groups.
  Õ(nk/α) communication for an O(α)-approximation (optimal by Theorem 6).

All summarizers here are module-level dataclass callables rather than
closures: a summarizer is the one protocol component the engine may ship to
worker *processes* (``run_simultaneous(..., executor="processes")``), and
pickle cannot serialize a closure.  Combine steps and public setups always
run in the coordinator's process, so they may stay closures.

.. deprecated::
    As *entry points* the factories here are superseded by the unified
    solver facade — ``repro.solve.solve(graph, "matching.coreset",
    RunContext(seed=s, k=k))`` partitions, runs, and verifies in one call
    (see ``docs/SOLVER_API.md``).  The factories remain the protocol
    definitions the facade adapters call and keep working unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.compose import (
    CoverCombiner,
    MatchCombiner,
    compose_matching,
    compose_vertex_cover,
)
from repro.core.matching_coreset import matching_coreset_message
from repro.core.vc_coreset import VCCoresetResult, vc_coreset
from repro.dist.coordinator import Coordinator, SimultaneousProtocol
from repro.dist.message import Message
from repro.graph.edgelist import Graph
from repro.matching.api import Algorithm

__all__ = [
    "matching_coreset_protocol",
    "subsampled_matching_protocol",
    "vertex_cover_coreset_protocol",
    "grouped_vertex_cover_protocol",
    "GroupingSetup",
    "MatchingCoresetSummarizer",
    "VCCoresetSummarizer",
    "GroupedVCSummarizer",
]


# --------------------------------------------------------------------- #
# matching protocols
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class MatchingCoresetSummarizer:
    """Picklable Theorem 1 / Remark 5.2 summarizer (``alpha=1`` is Thm 1).

    Sends an (optionally subsampled) maximum matching of the piece.  A
    dataclass instead of a closure so the ``processes`` executor can ship
    it to workers.
    """

    alpha: float = 1.0
    algorithm: Algorithm = "auto"

    def __call__(self, piece, machine_index, rng, public=None) -> Message:
        return matching_coreset_message(
            piece, machine_index, rng, public,
            alpha=self.alpha, algorithm=self.algorithm,
        )


def matching_coreset_protocol(
    combiner: MatchCombiner = "exact",
    algorithm: Algorithm = "auto",
) -> SimultaneousProtocol[np.ndarray]:
    """Theorem 1 as a simultaneous protocol."""

    def combine(coordinator: Coordinator, messages: list[Message]) -> np.ndarray:
        return compose_matching(
            coordinator.n_vertices,
            [m.edges for m in messages],
            combiner=combiner,
            template=coordinator.template,
        )

    return SimultaneousProtocol(
        name=f"matching-coreset[{combiner}]",
        summarizer=MatchingCoresetSummarizer(alpha=1.0, algorithm=algorithm),
        combine=combine,
    )


def subsampled_matching_protocol(
    alpha: float,
    combiner: MatchCombiner = "exact",
    algorithm: Algorithm = "auto",
) -> SimultaneousProtocol[np.ndarray]:
    """Remark 5.2 as a simultaneous protocol: α-approximation with expected
    Õ(nk/α²) communication."""
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha}")

    def combine(coordinator: Coordinator, messages: list[Message]) -> np.ndarray:
        return compose_matching(
            coordinator.n_vertices,
            [m.edges for m in messages],
            combiner=combiner,
            template=coordinator.template,
        )

    return SimultaneousProtocol(
        name=f"subsampled-matching[alpha={alpha:g}]",
        summarizer=MatchingCoresetSummarizer(alpha=alpha, algorithm=algorithm),
        combine=combine,
    )


# --------------------------------------------------------------------- #
# vertex-cover protocols
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class VCCoresetSummarizer:
    """Picklable Theorem 2 summarizer: peeled vertices + sparse residual."""

    k: int
    log_slack: float = 4.0

    def __call__(self, piece, machine_index, rng, public=None) -> Message:
        del rng, public  # peeling is deterministic
        result = vc_coreset(piece, k=self.k, log_slack=self.log_slack)
        return Message(
            sender=machine_index,
            edges=result.residual.edges,
            fixed_vertices=result.fixed_vertices,
        )


def vertex_cover_coreset_protocol(
    k: int,
    combiner: CoverCombiner = "auto",
    log_slack: float = 4.0,
) -> SimultaneousProtocol[np.ndarray]:
    """Theorem 2 as a simultaneous protocol.

    ``k`` must match the partitioning's machine count — the peeling
    thresholds depend on it (each machine knows k in the model).
    """

    def combine(coordinator: Coordinator, messages: list[Message]) -> np.ndarray:
        results = [
            VCCoresetResult(
                fixed_vertices=m.fixed_vertices,
                residual=Graph(coordinator.n_vertices, m.edges, validated=False),
                trace=None,  # type: ignore[arg-type]
            )
            for m in messages
        ]
        return compose_vertex_cover(
            coordinator.n_vertices,
            results,
            combiner=combiner,
            template=coordinator.template,
        )

    return SimultaneousProtocol(
        name=f"vc-coreset[k={k},{combiner}]",
        summarizer=VCCoresetSummarizer(k=k, log_slack=log_slack),
        combine=combine,
    )


# --------------------------------------------------------------------- #
# Remark 5.8: grouped vertex cover
# --------------------------------------------------------------------- #
class GroupingSetup:
    """Public setup for the grouped protocol: a random but *shared* mapping
    of the n vertices into ``n_groups`` super-vertices of (near-)equal size.

    The mapping is sampled from public randomness, so all machines contract
    their pieces identically with zero coordination — exactly the
    "deterministically but consistently across players" device of
    Remark 5.8 (random grouping also satisfies the remark; consistency is
    what matters).
    """

    def __init__(self, n: int, group_size: int, rng: np.random.Generator) -> None:
        if group_size < 1:
            raise ValueError(f"group size must be >= 1, got {group_size}")
        self.n = n
        self.group_size = group_size
        self.n_groups = max(1, math.ceil(n / group_size))
        perm = rng.permutation(n)
        mapping = np.empty(n, dtype=np.int64)
        mapping[perm] = np.arange(n, dtype=np.int64) % self.n_groups
        self.mapping = mapping

    def expand(self, groups: np.ndarray) -> np.ndarray:
        """All original vertices belonging to the given super-vertices."""
        groups = np.asarray(groups, dtype=np.int64)
        member = np.isin(self.mapping, groups)
        return np.flatnonzero(member).astype(np.int64)


@dataclass(frozen=True)
class GroupedVCSummarizer:
    """Picklable Remark 5.8 summarizer: VC coreset of the contracted graph.

    Requires the shared :class:`GroupingSetup` as its ``public`` object
    (itself picklable — a plain mapping array — so it ships to process
    workers along with the summarizer).
    """

    k: int
    log_slack: float = 4.0

    def __call__(self, piece, machine_index, rng,
                 public: GroupingSetup | None = None) -> Message:
        del rng
        if public is None:
            raise ValueError("grouped protocol requires its public setup")
        # Edges internal to a group contract to self-loops, which carry no
        # information in the contracted graph — but they still must be
        # covered.  A self-loop on group A forces A into the cover, so such
        # groups are shipped as part of the fixed solution (they are few:
        # an edge is internal w.p. ~group_size/n).
        mapped = public.mapping[piece.edges] if piece.n_edges else \
            np.zeros((0, 2), dtype=np.int64)
        internal = mapped[:, 0] == mapped[:, 1] if mapped.size else \
            np.zeros(0, dtype=bool)
        forced_groups = np.unique(mapped[internal, 0]) if internal.any() else \
            np.zeros(0, dtype=np.int64)
        contracted = Graph(public.n_groups, mapped[~internal] if mapped.size
                           else mapped)
        result = vc_coreset(contracted, n=public.n_groups, k=self.k,
                            log_slack=self.log_slack)
        fixed = np.unique(np.concatenate([result.fixed_vertices, forced_groups]))
        return Message(
            sender=machine_index,
            edges=result.residual.edges,
            fixed_vertices=fixed,
        )


def grouped_vertex_cover_protocol(
    k: int,
    alpha: float,
    combiner: CoverCombiner = "two_approx",
    log_slack: float = 4.0,
) -> SimultaneousProtocol[np.ndarray]:
    """Remark 5.8: α-approximate VC with Õ(nk/α) total communication.

    Group size is ``max(1, floor(alpha / log2 n))`` so that the O(log n)
    blow-up of the coreset times the group expansion stays O(α).
    """
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha}")

    def setup(graph: Graph, k_: int, rng: np.random.Generator) -> GroupingSetup:
        del k_
        n = graph.n_vertices
        group_size = max(1, int(alpha / max(1.0, math.log2(max(n, 2)))))
        return GroupingSetup(n, group_size, rng)

    def combine(coordinator: Coordinator, messages: list[Message]) -> np.ndarray:
        # Messages live in super-vertex id space; we cannot use the template.
        setup_obj: GroupingSetup = combine.setup_obj  # type: ignore[attr-defined]
        results = [
            VCCoresetResult(
                fixed_vertices=m.fixed_vertices,
                residual=Graph(setup_obj.n_groups, m.edges),
                trace=None,  # type: ignore[arg-type]
            )
            for m in messages
        ]
        group_cover = compose_vertex_cover(
            setup_obj.n_groups, results, combiner=combiner, template=None
        )
        return setup_obj.expand(group_cover)

    def setup_and_remember(graph: Graph, k_: int, rng: np.random.Generator):
        obj = setup(graph, k_, rng)
        combine.setup_obj = obj  # type: ignore[attr-defined]
        return obj

    return SimultaneousProtocol(
        name=f"grouped-vc[alpha={alpha:g}]",
        summarizer=GroupedVCSummarizer(k=k, log_slack=log_slack),
        combine=combine,
        public_setup=setup_and_remember,
    )
