"""The vertex-cover randomized composable coreset (Theorem 2).

    VC-Coreset(G^(i)):
      1. Let Δ be the smallest integer such that n/(k·2^Δ) ≤ 4·log n, and
         define G^(i)_1 := G^(i).
      2. For j = 1 to Δ-1:
           V^(i)_j   := { vertices of degree ≥ n/(k·2^{j+1}) in G^(i)_j }
           G^(i)_{j+1} := G^(i)_j \\ V^(i)_j
      3. Return V^(i)_cs := ∪_j V^(i)_j as a fixed solution plus the graph
         G^(i)_Δ as the coreset.

This is the modified Parnas–Ron peeling: repeatedly remove ("peel") the
vertices of highest residual degree, halving the threshold each iteration,
until the residual is sparse enough (max degree O(log n) per machine) to be
shipped verbatim.  The peeled vertices go *directly* into the final cover —
the coreset is the pair (fixed vertex set, residual subgraph).

The analysis (Lemmas 3.5–3.6) shows all machines peel essentially the same
vertices — the union of the fixed sets stays O(log n)·VC(G) — which is the
quantity experiment E3 measures.

Peeling is vectorized: residual degrees are recomputed per level with
``np.bincount`` over the surviving edge array; there are only
Δ = O(log(n/(k log n))) levels, so total work is O(Δ·m) array operations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.graph.edgelist import Graph

__all__ = ["PeelingTrace", "VCCoresetResult", "vc_coreset", "peeling_levels"]


@dataclass
class PeelingTrace:
    """Per-level record of one VC-Coreset execution."""

    thresholds: list[float] = field(default_factory=list)
    peeled_counts: list[int] = field(default_factory=list)
    residual_edges: list[int] = field(default_factory=list)

    @property
    def levels(self) -> int:
        return len(self.thresholds)


@dataclass(frozen=True)
class VCCoresetResult:
    """Output of VC-Coreset on one machine: the fixed solution
    ``fixed_vertices`` (= V_cs) and the residual subgraph (= G_Δ)."""

    fixed_vertices: np.ndarray
    residual: Graph
    trace: PeelingTrace

    @property
    def size_edges(self) -> int:
        return self.residual.n_edges

    @property
    def size_vertices(self) -> int:
        return int(self.fixed_vertices.shape[0])


def peeling_levels(n: int, k: int, log_slack: float = 4.0) -> int:
    """Δ: the smallest integer with ``n/(k·2^Δ) ≤ log_slack · log2(n)``.

    Returns 1 when even Δ=1 satisfies the bound trivially (the loop in the
    coreset runs for j = 1..Δ-1, so Δ ≤ 1 means "no peeling").
    """
    if n < 2 or k < 1:
        return 1
    target = log_slack * math.log2(n)
    if target <= 0:
        raise ValueError("log_slack must be positive for graphs with n >= 2")
    delta = 0
    while n / (k * 2.0**delta) > target:
        delta += 1
    return max(delta, 1)


def vc_coreset(
    piece: Graph,
    n: int | None = None,
    k: int = 1,
    log_slack: float = 4.0,
) -> VCCoresetResult:
    """Run VC-Coreset on one machine's piece.

    Parameters
    ----------
    piece:
        the machine's subgraph ``G^(i)`` (on the full vertex set).
    n:
        the *global* number of vertices (defaults to ``piece.n_vertices``;
        they coincide in our representation, but the parameter is explicit
        because the peeling thresholds are global quantities).
    k:
        the number of machines in the partitioning — the thresholds
        ``n/(k·2^{j+1})`` depend on it.
    log_slack:
        the constant in the stopping rule (the paper uses 4).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n = piece.n_vertices if n is None else int(n)
    delta = peeling_levels(n, k, log_slack)

    trace = PeelingTrace()
    alive_edges = piece.edges
    peeled_mask = np.zeros(piece.n_vertices, dtype=bool)

    for j in range(1, delta):
        threshold = n / (k * 2.0 ** (j + 1))
        if alive_edges.shape[0] == 0:
            trace.thresholds.append(threshold)
            trace.peeled_counts.append(0)
            trace.residual_edges.append(0)
            continue
        degrees = np.bincount(alive_edges.ravel(), minlength=piece.n_vertices)
        peel = degrees >= threshold
        newly = peel & ~peeled_mask
        peeled_mask |= peel
        keep = ~peel[alive_edges[:, 0]] & ~peel[alive_edges[:, 1]]
        alive_edges = alive_edges[keep]
        trace.thresholds.append(threshold)
        trace.peeled_counts.append(int(newly.sum()))
        trace.residual_edges.append(int(alive_edges.shape[0]))

    residual = Graph(piece.n_vertices, alive_edges, validated=True)
    fixed = np.flatnonzero(peeled_mask).astype(np.int64)
    return VCCoresetResult(fixed_vertices=fixed, residual=residual, trace=trace)
