"""The maximum-matching randomized composable coreset (Theorem 1).

    "Any maximum matching of a graph G(V, E) is an O(1)-approximation
     randomized composable coreset of size O(n) for the maximum matching
     problem."

The summarizer is therefore almost embarrassingly simple — compute *any*
maximum matching of the machine's piece and send exactly those ≤ n/2 edges.
The entire content of the theorem is that this suffices under random
partitioning; no coordination, no consistent tie-breaking, and each machine
may even use a *different* maximum-matching algorithm (a property our tests
exercise explicitly).

Also provided: the subsampled variant of Remark 5.2 (keep each matched edge
with probability 1/α) which trades a factor α in approximation for a factor
α² in communication — the matching upper bound to the Ω(nk/α²) lower bound
of Theorem 5.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.dist.message import Message
from repro.graph.edgelist import Graph
from repro.matching.api import Algorithm, maximum_matching
from repro.utils.rng import RandomState, as_generator

__all__ = [
    "maximum_matching_coreset",
    "subsampled_matching_coreset",
    "matching_coreset_message",
]


def maximum_matching_coreset(
    piece: Graph, algorithm: Algorithm = "auto"
) -> np.ndarray:
    """The coreset of machine ``i``: an arbitrary maximum matching of
    ``G^(i)``, as an ``(s, 2)`` edge array with ``s ≤ n/2``."""
    return maximum_matching(piece, algorithm=algorithm)


def subsampled_matching_coreset(
    piece: Graph,
    alpha: float,
    rng: RandomState = None,
    algorithm: Algorithm = "auto",
) -> np.ndarray:
    """Remark 5.2: maximum matching subsampled at rate ``1/alpha``.

    Every edge of the machine's maximum matching survives independently with
    probability ``1/alpha``; expected size ``MM(G^(i))/alpha``.
    """
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    gen = as_generator(rng)
    matching = maximum_matching(piece, algorithm=algorithm)
    if matching.shape[0] == 0 or alpha == 1:
        return matching
    keep = gen.random(matching.shape[0]) < 1.0 / alpha
    return matching[keep]


def matching_coreset_message(
    piece: Graph,
    machine_index: int,
    rng: np.random.Generator,
    public: Any | None = None,
    *,
    alpha: float = 1.0,
    algorithm: Algorithm = "auto",
) -> Message:
    """Summarizer adapter for :func:`repro.dist.coordinator.run_simultaneous`.

    With ``alpha == 1`` this is the Theorem 1 coreset; with ``alpha > 1`` it
    is the Remark 5.2 subsampled protocol.
    """
    del public  # the matching coreset needs no shared setup
    if alpha == 1.0:
        edges = maximum_matching_coreset(piece, algorithm=algorithm)
    else:
        edges = subsampled_matching_coreset(piece, alpha, rng, algorithm=algorithm)
    return Message(sender=machine_index, edges=edges)
