"""Exact kernel coresets for small optima (paper footnote 3).

The paper's main results assume ``MM(G), VC(G) = ω(k log n)`` and note:

    "Otherwise, we can use the algorithm of [20] to obtain exact coresets
     of size Õ(k²)."

[20] is Chitnis et al. (SODA'16), *Kernelization via sampling*: when the
optimum is small (≤ K), classical kernelization gives **exact composable**
summaries.  We implement the two deterministic kernels underlying that
regime:

* **Matching kernel** — keep, for every vertex, up to ``B = 3K + 2``
  arbitrary incident edges.  Exchange argument: any matching ``M`` with
  ``|M| ≤ K`` can be rebuilt edge by edge inside the kernel — a missing
  edge ``(u, v)`` means ``u`` kept ``B`` edges, of which at most ``2K``
  are blocked by the (≤ K)-edge partial rebuild plus the remaining edges
  of ``M``, leaving a free substitute.  Crucially the argument never looks
  at *which* machine kept which edge, so the union of per-machine kernels
  is a kernel for the union: the coreset composes **exactly**.

* **Vertex-cover kernel (Buss)** — any vertex of degree > K must be in
  every cover of size ≤ K; take those as a fixed partial solution, and keep
  the residual (which has ≤ K·(K+1) edges if VC ≤ K, else we can reject).

Both kernels have size O(K²)-ish per machine — with ``K = Θ(k log n)``
that is the footnote's Õ(k²).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.compose import compose_matching
from repro.dist.coordinator import SimultaneousProtocol
from repro.dist.message import Message
from repro.graph.edgelist import Graph
from repro.matching.maximal import greedy_maximal_matching

__all__ = [
    "matching_kernel",
    "vc_kernel",
    "exact_matching_kernel_protocol",
    "KernelBudgetExceeded",
]


class KernelBudgetExceeded(ValueError):
    """The optimum provably exceeds the kernel's bound K."""


def matching_kernel(graph: Graph, opt_bound: int) -> Graph:
    """Chitnis-style kernel preserving all matchings of size ≤ K, with
    total size O(K²) independent of n.

    Construction: take a greedy maximal matching ``M`` of the piece (every
    edge touches a matched vertex, by maximality); keep all of ``M`` plus,
    for every *matched* vertex, up to ``B = 3K + 2`` further incident
    edges.  Size ≤ |M| + 2|M|·B = O(K·B) = O(K²) when MM ≤ K.

    Exactness (exchange argument): a dropped edge has, by the keep rule, an
    endpoint with B kept edges; rebuilding a ≤ K matching edge by edge
    blocks at most 3K vertices (2K endpoints of the target matching plus
    ≤ K earlier substitutes), so a substitute kept edge always exists —
    and since the argument never asks *which machine* kept an edge, unions
    of per-machine kernels are kernels of unions: the summary composes
    exactly, under any partitioning.
    """
    if opt_bound < 0:
        raise ValueError(f"opt_bound must be non-negative, got {opt_bound}")
    cap = 3 * opt_bound + 2
    e = graph.edges
    if e.shape[0] == 0:
        return graph
    core = greedy_maximal_matching(graph, order="input")
    matched = np.zeros(graph.n_vertices, dtype=bool)
    if core.size:
        matched[core.ravel()] = True
    from repro.utils.arrays import isin_mask

    keep = isin_mask(e, core, graph.n_vertices)
    used = np.zeros(graph.n_vertices, dtype=np.int64)
    # Sequential scan: keep an edge while some *matched* endpoint is under
    # its cap.  O(m) with a few array reads per edge.
    eu = e[:, 0].tolist()
    ev = e[:, 1].tolist()
    keep_list = keep.tolist()
    for i in range(len(eu)):
        if keep_list[i]:
            continue
        u, v = eu[i], ev[i]
        if (matched[u] and used[u] < cap) or (matched[v] and used[v] < cap):
            keep[i] = True
            if matched[u]:
                used[u] += 1
            if matched[v]:
                used[v] += 1
    return graph.subgraph_from_mask(keep)


def vc_kernel(
    graph: Graph, opt_bound: int, strict: bool = False
) -> tuple[np.ndarray, Graph]:
    """Buss kernel: ``(forced_vertices, residual)``.

    ``forced_vertices`` are the vertices of degree > K (in every ≤ K cover);
    ``residual`` is the graph with them removed.  If ``strict`` and the
    residual has more than K·(K+1) edges, VC(G) > K is certified and
    :class:`KernelBudgetExceeded` is raised.
    """
    if opt_bound < 0:
        raise ValueError(f"opt_bound must be non-negative, got {opt_bound}")
    forced = np.flatnonzero(graph.degrees > opt_bound).astype(np.int64)
    residual = graph.without_vertices(forced)
    if strict:
        if forced.shape[0] > opt_bound:
            raise KernelBudgetExceeded(
                f"{forced.shape[0]} vertices have degree > K = {opt_bound} "
                f"and all must be in any ≤ K cover: VC(G) > {opt_bound}"
            )
        if residual.n_edges > opt_bound * (opt_bound + 1):
            raise KernelBudgetExceeded(
                f"residual has {residual.n_edges} edges > K(K+1) = "
                f"{opt_bound * (opt_bound + 1)}: VC(G) > {opt_bound}"
            )
    return forced, residual


def exact_matching_kernel_protocol(
    opt_bound: int,
) -> SimultaneousProtocol[np.ndarray]:
    """Simultaneous protocol with **exact** output whenever MM(G) ≤ K.

    Each machine sends the matching kernel of its piece; the coordinator
    solves the union exactly.  Unlike Theorem 1's coreset this works for
    *any* partitioning (kernels are composable deterministically) but only
    in the small-optimum regime of footnote 3.
    """

    def combine(coordinator, messages):
        return compose_matching(
            coordinator.n_vertices,
            [m.edges for m in messages],
            combiner="exact",
            template=coordinator.template,
        )

    return SimultaneousProtocol(
        name=f"exact-kernel-matching[K={opt_bound}]",
        summarizer=MatchingKernelSummarizer(opt_bound=opt_bound),
        combine=combine,
    )


@dataclass(frozen=True)
class MatchingKernelSummarizer:
    """Picklable footnote-3 summarizer: the matching kernel of the piece."""

    opt_bound: int

    def __call__(self, piece, machine_index, rng, public=None) -> Message:
        del rng, public
        kernel = matching_kernel(piece, self.opt_bound)
        return Message(sender=machine_index, edges=kernel.edges)
