"""Exact minimum vertex cover by branch and bound (small-graph oracle).

Standard VC search tree with the classical reductions:

* degree-0 vertices are dropped;
* degree-1 rule: some minimum cover takes the *neighbor* of a leaf;
* branch on a maximum-degree vertex v: either v is in the cover, or all of
  N(v) is;
* lower bound for pruning: a greedy maximal matching of the residual graph
  (every matched edge forces ≥ 1 cover vertex).

Exponential in the worst case — it is a *test oracle* for graphs of up to a
few hundred vertices, letting experiments report true ratios on
non-bipartite instances.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import Graph

__all__ = ["exact_cover", "exact_cover_size"]


def _greedy_upper(adj: dict[int, set[int]]) -> set[int]:
    """Max-degree greedy cover of the residual adjacency dict."""
    adj = {v: set(ns) for v, ns in adj.items() if ns}
    cover: set[int] = set()
    while adj:
        v = max(adj, key=lambda x: len(adj[x]))
        cover.add(v)
        for u in adj.pop(v):
            adj[u].discard(v)
            if not adj[u]:
                del adj[u]
    return cover


def _matching_lower(adj: dict[int, set[int]]) -> int:
    """Greedy maximal matching size: a lower bound on VC of the residual."""
    taken: set[int] = set()
    size = 0
    for v, ns in adj.items():
        if v in taken:
            continue
        for u in ns:
            if u not in taken and u != v:
                taken.add(u)
                taken.add(v)
                size += 1
                break
    return size


def exact_cover(graph: Graph, node_budget: int = 2_000_000) -> np.ndarray:
    """Exact minimum vertex cover of a (small) general graph.

    ``node_budget`` caps the number of search-tree nodes; exceeding it raises
    ``RuntimeError`` rather than silently returning a non-optimal answer.
    """
    adj: dict[int, set[int]] = {}
    for u, v in graph.edges.tolist():
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)
    if not adj:
        return np.zeros(0, dtype=np.int64)

    best = _greedy_upper(adj)
    best_size = len(best)
    nodes = 0

    def reduce_and_branch(adj: dict[int, set[int]], acc: set[int]) -> None:
        nonlocal best, best_size, nodes
        nodes += 1
        if nodes > node_budget:
            raise RuntimeError(
                f"exact_cover exceeded its search budget of {node_budget} nodes"
            )
        adj = {v: set(ns) for v, ns in adj.items() if ns}
        acc = set(acc)
        # Apply degree-1 reductions to a fixed point.
        changed = True
        while changed:
            changed = False
            for v in list(adj.keys()):
                ns = adj.get(v)
                if ns is None:
                    continue
                if not ns:
                    del adj[v]
                    changed = True
                elif len(ns) == 1:
                    (u,) = ns
                    acc.add(u)
                    for w in list(adj.get(u, ())):
                        adj[w].discard(u)
                        if not adj[w]:
                            del adj[w]
                    adj.pop(u, None)
                    adj.pop(v, None)
                    changed = True
        if len(acc) >= best_size:
            return
        if not adj:
            if len(acc) < best_size:
                best = set(acc)
                best_size = len(acc)
            return
        if len(acc) + _matching_lower(adj) >= best_size:
            return
        v = max(adj, key=lambda x: len(adj[x]))
        # Branch 1: v in the cover.
        adj1 = {w: ns - {v} for w, ns in adj.items() if w != v}
        reduce_and_branch(adj1, acc | {v})
        # Branch 2: v excluded, so N(v) all in the cover.
        ns_v = set(adj[v])
        if len(acc) + len(ns_v) < best_size:
            dropped = ns_v | {v}
            adj2 = {w: ns - dropped for w, ns in adj.items() if w not in dropped}
            reduce_and_branch(adj2, acc | ns_v)

    reduce_and_branch(adj, set())
    return np.asarray(sorted(best), dtype=np.int64)


def exact_cover_size(graph: Graph, node_budget: int = 2_000_000) -> int:
    """``VC(G)`` for small general graphs (see :func:`exact_cover`)."""
    return int(exact_cover(graph, node_budget).shape[0])
