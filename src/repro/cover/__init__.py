"""Minimum vertex cover algorithms, implemented from scratch.

The coordinator in the paper's VC protocol computes a 2-approximate cover of
the union of residual coresets (Theorem 2's combine step); experiments also
need exact optima to measure true approximation ratios:

* :func:`~repro.cover.two_approx.matching_based_cover` — classic
  2-approximation (both endpoints of a maximal matching);
* :func:`~repro.cover.greedy.greedy_cover` — max-degree greedy
  (H_Δ ≈ ln n approximation);
* :func:`~repro.cover.konig.konig_cover` — *exact* minimum VC on bipartite
  graphs via König's theorem from a Hopcroft–Karp matching;
* :func:`~repro.cover.exact.exact_cover` — exact branch-and-bound with
  kernelization for small general graphs (test oracle);
* :func:`~repro.cover.lp.lp_cover` — half-integral LP rounding
  (2-approximation with a fractional lower-bound certificate).

.. deprecated::
    As *entry points* these are superseded by the unified solver facade —
    ``repro.solve.solve(graph, "vertex_cover.two_approx", ctx)`` etc.
    (see ``docs/SOLVER_API.md``).  The functions remain the
    implementations the facade adapters call and keep working unchanged.
"""

from repro.cover.exact import exact_cover, exact_cover_size
from repro.cover.greedy import greedy_cover
from repro.cover.konig import konig_cover
from repro.cover.lp import lp_cover, lp_lower_bound
from repro.cover.two_approx import matching_based_cover
from repro.cover.verify import is_vertex_cover, uncovered_edges

__all__ = [
    "exact_cover",
    "exact_cover_size",
    "greedy_cover",
    "is_vertex_cover",
    "konig_cover",
    "lp_cover",
    "lp_lower_bound",
    "matching_based_cover",
    "uncovered_edges",
    "vertex_cover_number",
]


def vertex_cover_number(graph) -> int:
    """``VC(G)``: exact for bipartite inputs (König), branch-and-bound
    otherwise (small graphs only)."""
    from repro.graph.bipartite import BipartiteGraph

    if isinstance(graph, BipartiteGraph):
        return int(konig_cover(graph).shape[0])
    return exact_cover_size(graph)
