"""Matching-based 2-approximate vertex cover.

Take any maximal matching and return *both* endpoints of every matched edge.
Feasibility: an uncovered edge could be added to the matching, contradicting
maximality.  Ratio: any cover must contain ≥ 1 endpoint per matched edge, so
``|cover| = 2|M| ≤ 2·VC(G)``.  This is the coordinator-side "compute the
vertex cover of the union of residual graphs to within a factor of 2" step
of Theorem 2.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import Graph
from repro.matching.maximal import greedy_maximal_matching
from repro.utils.rng import RandomState

__all__ = ["matching_based_cover"]


def matching_based_cover(
    graph: Graph, rng: RandomState = None, matching: np.ndarray | None = None
) -> np.ndarray:
    """2-approximate vertex cover from a maximal matching.

    ``matching`` may be supplied (must be maximal in ``graph``); otherwise a
    greedy maximal matching is computed — in canonical edge order when
    ``rng`` is None (so protocols stay bit-reproducible by default), in a
    random order when an RNG is given.
    """
    if matching is None:
        if rng is None:
            matching = greedy_maximal_matching(graph, order="input")
        else:
            matching = greedy_maximal_matching(graph, order="random", rng=rng)
    m = np.asarray(matching, dtype=np.int64).reshape(-1, 2)
    if m.size == 0:
        return np.zeros(0, dtype=np.int64)
    return np.unique(m.ravel())
