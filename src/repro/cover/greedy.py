"""Max-degree greedy vertex cover (the H_Δ ≤ ln Δ + 1 approximation).

Repeatedly take the vertex of highest residual degree.  Kept as a comparator
for the experiments (it is the natural "one machine, classical heuristic"
baseline) and as a building block of the exact solver's upper bound.

The implementation maintains residual degrees in a flat array and
recomputes lazily via a bucket structure, giving O(m + n log n) total work.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.edgelist import Graph

__all__ = ["greedy_cover"]


def greedy_cover(graph: Graph) -> np.ndarray:
    """Greedy max-degree vertex cover of ``graph``."""
    n = graph.n_vertices
    if graph.n_edges == 0:
        return np.zeros(0, dtype=np.int64)
    adj = graph.adjacency
    indptr, indices = adj.indptr, adj.indices
    degree = np.diff(indptr).astype(np.int64)
    removed = np.zeros(n, dtype=bool)

    # Lazy-deletion max-heap of (-degree, vertex); stale entries are skipped
    # by re-checking the live degree on pop.
    heap = [(-int(d), v) for v, d in enumerate(degree) if d > 0]
    heapq.heapify(heap)

    cover: list[int] = []
    remaining = graph.n_edges
    while remaining > 0:
        neg_d, v = heapq.heappop(heap)
        if removed[v] or -neg_d != degree[v]:
            continue  # stale entry
        cover.append(v)
        removed[v] = True
        remaining -= int(degree[v])
        degree[v] = 0
        for u in indices[indptr[v] : indptr[v + 1]].tolist():
            if not removed[u] and degree[u] > 0:
                degree[u] -= 1
                if degree[u] > 0:
                    heapq.heappush(heap, (-int(degree[u]), u))
    return np.asarray(sorted(cover), dtype=np.int64)
