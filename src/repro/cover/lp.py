"""LP relaxation of vertex cover: half-integral rounding and lower bounds.

The standard LP  ``min Σ x_v  s.t.  x_u + x_v ≥ 1 ∀(u,v) ∈ E, x ≥ 0``  has a
half-integral optimum (Nemhauser–Trotter); rounding every ``x_v ≥ 1/2`` up
yields a 2-approximation, and the LP value itself is a lower bound on
``VC(G)`` that experiments use to sanity-check ratios on graphs too large
for the exact solver.

Uses ``scipy.optimize.linprog`` (HiGHS) on a sparse constraint matrix.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.graph.edgelist import Graph

__all__ = ["lp_cover", "lp_lower_bound", "lp_solution"]


def _solve_lp(graph: Graph) -> np.ndarray:
    m, n = graph.n_edges, graph.n_vertices
    if m == 0:
        return np.zeros(n, dtype=np.float64)
    rows = np.repeat(np.arange(m, dtype=np.int64), 2)
    cols = graph.edges.ravel()
    data = -np.ones(2 * m, dtype=np.float64)  # -(x_u + x_v) <= -1
    a_ub = sparse.csr_matrix((data, (rows, cols)), shape=(m, n))
    res = linprog(
        c=np.ones(n),
        A_ub=a_ub,
        b_ub=-np.ones(m),
        bounds=(0.0, 1.0),
        method="highs",
    )
    if not res.success:  # pragma: no cover - LP is always feasible
        raise RuntimeError(f"vertex cover LP failed: {res.message}")
    return np.asarray(res.x, dtype=np.float64)


def lp_solution(graph: Graph) -> np.ndarray:
    """The optimal (half-integral) LP solution vector ``x``.

    Callers needing both the rounded cover *and* the LP value solve once
    here and pass the vector to :func:`lp_cover` / :func:`lp_lower_bound`
    — the LP solve is the dominant cost and should never run twice for
    one graph.
    """
    return _solve_lp(graph)


def lp_lower_bound(graph: Graph, solution: np.ndarray | None = None) -> float:
    """Optimal LP value: a lower bound on ``VC(G)`` (≥ VC/2, ≥ MM/... exact
    to within a factor 2).  ``solution`` may supply a precomputed
    :func:`lp_solution` vector."""
    x = _solve_lp(graph) if solution is None else solution
    return float(np.asarray(x).sum())


def lp_cover(
    graph: Graph, threshold: float = 0.5,
    solution: np.ndarray | None = None,
) -> np.ndarray:
    """Round the LP solution: keep vertices with ``x_v ≥ threshold``.

    With the default threshold this is the classical 2-approximation; the
    returned set is always verified feasible before returning.
    ``solution`` may supply a precomputed :func:`lp_solution` vector.
    """
    x = _solve_lp(graph) if solution is None else np.asarray(solution)
    # Guard against solver values a hair below 0.5 on tight instances.
    cover = np.flatnonzero(x >= threshold - 1e-9).astype(np.int64)
    from repro.cover.verify import is_vertex_cover

    if not is_vertex_cover(graph, cover):  # pragma: no cover - safety net
        raise RuntimeError("LP rounding produced an infeasible cover")
    return cover
