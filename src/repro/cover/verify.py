"""Vertex-cover certificates."""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import Graph

__all__ = ["is_vertex_cover", "uncovered_edges", "cover_mask"]


def cover_mask(graph: Graph, cover: np.ndarray) -> np.ndarray:
    """Boolean vertex mask of the cover set (validates ids)."""
    c = np.asarray(cover, dtype=np.int64).ravel()
    mask = np.zeros(graph.n_vertices, dtype=bool)
    if c.size:
        if c.min() < 0 or c.max() >= graph.n_vertices:
            raise ValueError("cover vertex id out of range")
        mask[c] = True
    return mask


def uncovered_edges(graph: Graph, cover: np.ndarray) -> np.ndarray:
    """Edges of ``graph`` with neither endpoint in ``cover`` (certificate of
    infeasibility when non-empty)."""
    mask = cover_mask(graph, cover)
    e = graph.edges
    if e.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    bad = ~mask[e[:, 0]] & ~mask[e[:, 1]]
    return e[bad]


def is_vertex_cover(graph: Graph, cover: np.ndarray) -> bool:
    """True iff every edge has at least one endpoint in ``cover``."""
    return uncovered_edges(graph, cover).shape[0] == 0
