"""Exact minimum vertex cover on bipartite graphs via König's theorem.

König: in a bipartite graph, min vertex cover size equals maximum matching
size.  Constructively: run Hopcroft–Karp; let ``Z`` be the set of vertices
reachable from *free left* vertices by alternating paths (unmatched edges
left→right, matched edges right→left).  Then ``(L \\ Z) ∪ (R ∩ Z)`` is a
minimum vertex cover.

This gives the experiments an exact ``VC(G)`` on all bipartite workloads at
Hopcroft–Karp cost, which is what makes measuring true approximation ratios
of the coreset pipeline feasible at n ~ 10⁴.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.matching.hopcroft_karp import hopcroft_karp_mates

__all__ = ["konig_cover"]


def konig_cover(graph: BipartiteGraph) -> np.ndarray:
    """Exact minimum vertex cover of a bipartite graph (global vertex ids)."""
    nl = graph.n_left
    mate_left, mate_right = hopcroft_karp_mates(graph)
    adj = graph.adjacency
    indptr, indices = adj.indptr, adj.indices

    visited_left = np.zeros(nl, dtype=bool)
    visited_right = np.zeros(graph.n_right, dtype=bool)

    queue: deque[int] = deque()
    for u in np.flatnonzero(mate_left == -1).tolist():
        visited_left[u] = True
        queue.append(u)
    while queue:
        u = queue.popleft()
        for r_global in indices[indptr[u] : indptr[u + 1]].tolist():
            r = r_global - nl
            if visited_right[r]:
                continue
            if mate_left[u] == r:
                continue  # alternating paths leave L along unmatched edges
            visited_right[r] = True
            w = mate_right[r]
            if w != -1 and not visited_left[w]:
                visited_left[w] = True
                queue.append(w)

    left_cover = np.flatnonzero(~visited_left)
    # Left vertices with no edges never cover anything; drop them so the
    # cover is minimum, not just min-size-plus-isolated-clutter.
    deg_left = (indptr[1 : nl + 1] - indptr[:nl]) > 0
    left_cover = left_cover[deg_left[left_cover]]
    right_cover = np.flatnonzero(visited_right) + nl
    cover = np.concatenate([left_cover, right_cover]).astype(np.int64)
    return np.sort(cover)
