"""Arrival orders for edge streams.

A stream is just a permutation of the graph's edge rows.  ``random_order``
models the random-arrival assumption (the streaming twin of the paper's
random k-partitioning); ``adversarial_order`` builds the classic worst case
for greedy: present a "blocking" matching first so greedy commits to edges
that each kill two optimal edges.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import Graph
from repro.utils.arrays import isin_mask
from repro.utils.rng import RandomState, as_generator

__all__ = ["random_order", "adversarial_order"]


def random_order(graph: Graph, rng: RandomState = None) -> np.ndarray:
    """A uniformly random permutation of the edge rows."""
    return as_generator(rng).permutation(graph.n_edges).astype(np.int64)


def adversarial_order(
    graph: Graph, optimal_matching: np.ndarray, rng: RandomState = None
) -> np.ndarray:
    """An order that hurts one-pass greedy: all *non*-optimal edges first
    (in random order), then the optimal matching's edges.

    Greedy fills up on the early edges; each early edge can block up to two
    optimal edges, which arrive too late to be taken.  On graphs built for
    it (e.g. paths/crowns) this realizes greedy's ½ worst case; on random
    graphs it degrades greedy measurably below its random-order ratio.
    """
    gen = as_generator(rng)
    in_opt = isin_mask(graph.edges, optimal_matching, graph.n_vertices)
    early = np.flatnonzero(~in_opt)
    late = np.flatnonzero(in_opt)
    gen.shuffle(early)
    gen.shuffle(late)
    return np.concatenate([early, late]).astype(np.int64)
