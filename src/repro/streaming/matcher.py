"""Semi-streaming matching algorithms.

Memory model: the matcher may hold O(n polylog n) words — enough for a
matching and per-vertex state, never the whole stream.  ``memory_words``
tracks the high-water mark so tests can assert the semi-streaming budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.edgelist import Graph
from repro.utils.rng import RandomState

__all__ = ["StreamingGreedyMatcher", "TwoPhaseStreamingMatcher"]


@dataclass
class StreamingGreedyMatcher:
    """One-pass greedy maximal matching over an edge stream.

    ½-approximation on every arrival order (maximality), the baseline
    every streaming matching paper starts from.
    """

    n_vertices: int
    _mate: np.ndarray = field(init=False)
    _size: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self._mate = np.full(self.n_vertices, -1, dtype=np.int64)

    def offer(self, u: int, v: int) -> bool:
        """Feed one edge; returns True if it was added to the matching."""
        if u == v:
            return False
        if self._mate[u] == -1 and self._mate[v] == -1:
            self._mate[u] = v
            self._mate[v] = u
            self._size += 1
            return True
        return False

    def run(self, graph: Graph, order: np.ndarray) -> np.ndarray:
        """Consume the whole stream ``graph.edges[order]``; return the
        matching."""
        e = graph.edges
        for i in order.tolist():
            self.offer(int(e[i, 0]), int(e[i, 1]))
        return self.matching()

    def matching(self) -> np.ndarray:
        matched = np.flatnonzero(self._mate >= 0)
        pairs = matched[matched < self._mate[matched]]
        if pairs.size == 0:
            return np.zeros((0, 2), dtype=np.int64)
        return np.stack([pairs, self._mate[pairs]], axis=1)

    @property
    def size(self) -> int:
        return self._size

    @property
    def memory_words(self) -> int:
        """Words of state held: the mate array."""
        return self.n_vertices


@dataclass
class TwoPhaseStreamingMatcher:
    """Konrad–Magniez–Mathieu-style two-phase matcher for random-arrival
    streams (simplified 3-augmenting variant).

    Phase 1 (first ``phase1_fraction`` of the stream): plain greedy — on a
    random order this already collects a matching M₀ close to maximal.
    Phase 2 (rest of the stream): never grows M₀ directly; instead it
    collects, for each matched edge (u, v) ∈ M₀, stream edges (u, x) and
    (v, y) to *free* vertices x, y.  Each matched edge with both wings
    found yields a 3-augmentation x–u–v–y ⇒ two edges instead of one.
    On randomly ordered streams the wings arrive spread out and a constant
    fraction of M₀ augments, beating greedy's ½; on adversarial orders
    phase 2 sees only optimal edges too late to form wings on both sides
    consistently, and the bound stays ½.

    Memory: the matching, one wing slot per matched vertex — O(n) words.
    """

    n_vertices: int
    phase1_fraction: float = 0.5

    def run(self, graph: Graph, order: np.ndarray,
            rng: RandomState = None) -> np.ndarray:
        if not 0 < self.phase1_fraction < 1:
            raise ValueError("phase1_fraction must be in (0, 1)")
        del rng  # deterministic given the order
        e = graph.edges
        m = order.shape[0]
        cut = max(1, int(m * self.phase1_fraction))

        mate = np.full(self.n_vertices, -1, dtype=np.int64)
        # Phase 1: greedy on the prefix.
        for i in order[:cut].tolist():
            u, v = int(e[i, 0]), int(e[i, 1])
            if u != v and mate[u] == -1 and mate[v] == -1:
                mate[u] = v
                mate[v] = u

        # Phase 2: collect wings to free vertices.
        wing = np.full(self.n_vertices, -1, dtype=np.int64)  # matched -> free
        wing_taken = np.zeros(self.n_vertices, dtype=bool)  # free endpoint used
        for i in order[cut:].tolist():
            u, v = int(e[i, 0]), int(e[i, 1])
            if u == v:
                continue
            if mate[u] == -1 and mate[v] == -1:
                # Both free: just extend the matching (free improvement).
                mate[u] = v
                mate[v] = u
                continue
            for a, b in ((u, v), (v, u)):
                # a matched, b free: record a wing for a.
                if mate[a] != -1 and mate[b] == -1 and wing[a] == -1 \
                        and not wing_taken[b]:
                    wing[a] = b
                    wing_taken[b] = True
                    break

        # Apply 3-augmentations x–u–v–y where both wings exist and the free
        # endpoints are distinct.
        out: list[tuple[int, int]] = []
        done = np.zeros(self.n_vertices, dtype=bool)
        for u in range(self.n_vertices):
            v = int(mate[u])
            if v == -1 or done[u] or done[v]:
                continue
            done[u] = done[v] = True
            x, y = int(wing[u]), int(wing[v])
            # Wings recorded earlier may have been matched by a later
            # "both free" extension; only augment through still-free ones.
            x_ok = x != -1 and mate[x] == -1
            y_ok = y != -1 and mate[y] == -1
            if x_ok and y_ok and x != y:
                out.append((min(x, u), max(x, u)))
                out.append((min(v, y), max(v, y)))
            else:
                out.append((min(u, v), max(u, v)))
        if not out:
            return np.zeros((0, 2), dtype=np.int64)
        return np.asarray(out, dtype=np.int64)

    @property
    def memory_words(self) -> int:
        return 3 * self.n_vertices
