"""Random-arrival streaming: the paper's §1.3 connection.

The paper notes that "similar ideas as randomized coreset for optimization
problems [have] also been used in random arrival streams [38, 44]" — the
random k-partitioning is the k-machine analogue of a randomly ordered edge
stream.  This subpackage makes the connection executable:

* :class:`~repro.streaming.matcher.StreamingGreedyMatcher` — the classic
  one-pass, O(n)-memory semi-streaming greedy (½-approximation on any
  order);
* :class:`~repro.streaming.matcher.TwoPhaseStreamingMatcher` — the
  Konrad–Magniez–Mathieu random-arrival improvement: run greedy on a
  prefix, then use the rest of the stream to 3-augment, beating ½ on
  randomly ordered streams;
* :func:`~repro.streaming.order.arrival_orders` — adversarial vs random
  arrival orders for the comparison.

Experiment E16 measures the greedy ratio under both orders and the
two-phase gain — the streaming shadow of the paper's random-vs-adversarial
partitioning story.

.. deprecated::
    As *entry points* the matchers are superseded by the unified solver
    facade — ``repro.solve.solve(graph, "matching.streaming_greedy",
    ctx)`` / ``"matching.streaming_two_phase"`` (see
    ``docs/SOLVER_API.md``); the classes stay as the implementations the
    facade adapters drive.
"""

from repro.streaming.matcher import (
    StreamingGreedyMatcher,
    TwoPhaseStreamingMatcher,
)
from repro.streaming.order import adversarial_order, random_order

__all__ = [
    "StreamingGreedyMatcher",
    "TwoPhaseStreamingMatcher",
    "adversarial_order",
    "random_order",
]
