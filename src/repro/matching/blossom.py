"""Maximum matching in general graphs: Edmonds' blossom algorithm.

Theorem 1 holds for general (non-bipartite) graphs, so the library needs a
true general-graph maximum matcher.  This is the classic O(V³) blossom
contraction algorithm: grow an alternating BFS forest from each free vertex;
when two even-level vertices meet, contract the odd cycle (blossom) to its
base and continue; when a free vertex is reached, augment.

Implementation notes:

* plain Python lists in the search kernel — for the pointer-chasing access
  pattern of this algorithm, list indexing is measurably faster than numpy
  scalar indexing (per the profiling-first rule of the HPC guides);
* a greedy maximal matching seeds the search, which removes ~half of the
  augmentation phases on random graphs;
* validated in tests against networkx.max_weight_matching(maxcardinality)
  on hundreds of random and structured instances.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.edgelist import Graph
from repro.matching.maximal import greedy_maximal_matching

__all__ = ["blossom_maximum_matching"]


def blossom_maximum_matching(graph: Graph, seed_greedy: bool = True) -> np.ndarray:
    """Maximum matching of a general graph as an ``(s, 2)`` edge array."""
    n = graph.n_vertices
    if n == 0 or graph.n_edges == 0:
        return np.zeros((0, 2), dtype=np.int64)

    adj = graph.adjacency
    indptr = adj.indptr.tolist()
    indices = adj.indices.tolist()

    match = [-1] * n
    if seed_greedy:
        for u, v in greedy_maximal_matching(graph, order="input").tolist():
            match[u] = v
            match[v] = u

    p = [-1] * n  # BFS tree parent pointers (to the *even* predecessor)
    base = list(range(n))  # blossom base of each vertex
    used = [False] * n  # vertex is an even (outer) node of the forest
    blossom = [False] * n  # scratch marks for the current contraction

    def lca(a: int, b: int) -> int:
        """Lowest common ancestor of a and b in the alternating forest,
        walking through blossom bases."""
        seen = [False] * n
        x = a
        while True:
            x = base[x]
            seen[x] = True
            if match[x] == -1:
                break
            x = p[match[x]]
        y = b
        while True:
            y = base[y]
            if seen[y]:
                return y
            y = p[match[y]]

    def mark_path(v: int, b: int, child: int) -> None:
        """Mark blossom vertices on the path from v down to base b and
        re-root their parent pointers for the contracted cycle."""
        while base[v] != b:
            blossom[base[v]] = True
            blossom[base[match[v]]] = True
            p[v] = child
            child = match[v]
            v = p[match[v]]

    # Only vertices with at least one edge can appear in a search tree;
    # restricting resets and roots to them makes the algorithm O(active³)
    # instead of O(n³), a large win on the near-empty machine subgraphs the
    # coreset pipeline feeds it.
    active = np.unique(graph.edges.ravel()).tolist()

    def find_augmenting_path(root: int) -> bool:
        for i in active:
            p[i] = -1
            base[i] = i
            used[i] = False
        used[root] = True
        queue: deque[int] = deque([root])
        while queue:
            v = queue.popleft()
            for ei in range(indptr[v], indptr[v + 1]):
                to = indices[ei]
                if base[v] == base[to] or match[v] == to:
                    continue
                if to == root or (match[to] != -1 and p[match[to]] != -1):
                    # `to` is an even vertex of the forest: odd cycle found.
                    curbase = lca(v, to)
                    for i in active:
                        blossom[i] = False
                    mark_path(v, curbase, to)
                    mark_path(to, curbase, v)
                    for i in active:
                        if blossom[base[i]]:
                            base[i] = curbase
                            if not used[i]:
                                used[i] = True
                                queue.append(i)
                elif p[to] == -1:
                    p[to] = v
                    if match[to] == -1:
                        # Augment along root -> ... -> to.
                        w = to
                        while w != -1:
                            pw = p[w]
                            nxt = match[pw]
                            match[w] = pw
                            match[pw] = w
                            w = nxt
                        return True
                    used[match[to]] = True
                    queue.append(match[to])
        return False

    for v in active:
        if match[v] == -1:
            find_augmenting_path(v)

    out = [(u, match[u]) for u in active if match[u] > u]
    if not out:
        return np.zeros((0, 2), dtype=np.int64)
    return np.asarray(out, dtype=np.int64)
