"""Front-door matching API.

``maximum_matching(g)`` dispatches to Hopcroft–Karp for bipartite inputs and
to the blossom algorithm otherwise; the coreset code calls only this
function, which is exactly the paper's "ALG outputs an arbitrary maximum
matching" black box.

.. deprecated::
    As an *entry point* this module is superseded by the unified solver
    facade: ``repro.solve.solve(graph, "matching.maximum", ctx)`` (see
    ``docs/SOLVER_API.md``).  The functions here remain the algorithm
    implementations the facade adapters call, and existing imports keep
    working unchanged.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.graph.edgelist import Graph
from repro.matching.augmenting import augmenting_path_matching
from repro.matching.blossom import blossom_maximum_matching
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.matching.maximal import OrderPolicy, greedy_maximal_matching
from repro.utils.rng import RandomState

__all__ = ["maximum_matching", "maximal_matching", "matching_number"]

Algorithm = Literal["auto", "hopcroft_karp", "blossom", "augmenting"]


def maximum_matching(graph: Graph, algorithm: Algorithm = "auto") -> np.ndarray:
    """Compute a maximum matching of ``graph``.

    ``algorithm="auto"`` picks Hopcroft–Karp when the input carries a
    bipartition and blossom otherwise.  All algorithms return an ``(s, 2)``
    int64 edge array (the particular maximum matching may differ between
    algorithms — Theorem 1 is indifferent to the choice, and our tests
    exploit that).
    """
    if algorithm == "auto":
        algorithm = "hopcroft_karp" if isinstance(graph, BipartiteGraph) else "blossom"
    if algorithm == "hopcroft_karp":
        if not isinstance(graph, BipartiteGraph):
            raise TypeError("hopcroft_karp requires a BipartiteGraph")
        return hopcroft_karp(graph)
    if algorithm == "augmenting":
        if not isinstance(graph, BipartiteGraph):
            raise TypeError("augmenting-path matcher requires a BipartiteGraph")
        return augmenting_path_matching(graph)
    if algorithm == "blossom":
        return blossom_maximum_matching(graph)
    raise ValueError(f"unknown algorithm {algorithm!r}")


def maximal_matching(
    graph: Graph, rng: RandomState = None, order: OrderPolicy = "random"
) -> np.ndarray:
    """Compute a (greedy) maximal matching; see
    :func:`repro.matching.maximal.greedy_maximal_matching`.

    ``rng`` is the explicit :data:`~repro.utils.rng.RandomState` union
    (``Optional`` included), and ``order`` the
    :data:`~repro.matching.maximal.OrderPolicy` literal — both forwarded
    unchanged, so no call-site casts are needed.
    """
    return greedy_maximal_matching(graph, order=order, rng=rng)


def matching_number(graph: Graph, algorithm: Algorithm = "auto") -> int:
    """``MM(G)``: the size of a maximum matching."""
    return int(maximum_matching(graph, algorithm).shape[0])
