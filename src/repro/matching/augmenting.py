"""Simple one-augmenting-path-at-a-time bipartite matcher.

O(V·E) — strictly slower than Hopcroft–Karp, kept as an independent
reference oracle: the two implementations share no code, so agreement of
their matching *sizes* on random inputs is a strong correctness signal
(matchings themselves may differ; only the size is canonical).
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteGraph

__all__ = ["augmenting_path_matching"]


def augmenting_path_matching(graph: BipartiteGraph) -> np.ndarray:
    """Maximum bipartite matching via repeated single-path augmentation
    (Kuhn's algorithm with an iterative DFS)."""
    nl = graph.n_left
    adj = graph.adjacency
    indptr, indices = adj.indptr, adj.indices

    mate_left = np.full(nl, -1, dtype=np.int64)
    mate_right = np.full(graph.n_right, -1, dtype=np.int64)

    for root in range(nl):
        if indptr[root] == indptr[root + 1]:
            continue
        # Iterative DFS over alternating paths from `root`.
        visited_right = np.zeros(graph.n_right, dtype=bool)
        stack = [(root, int(indptr[root]))]
        path: list[tuple[int, int]] = []
        while stack:
            u, pos = stack[-1]
            end = int(indptr[u + 1])
            advanced = False
            while pos < end:
                r = int(indices[pos]) - nl
                pos += 1
                if visited_right[r]:
                    continue
                visited_right[r] = True
                w = mate_right[r]
                if w == -1:
                    path.append((u, r))
                    for pu, pr in path:
                        mate_left[pu] = pr
                        mate_right[pr] = pu
                    stack.clear()
                    advanced = True
                    break
                stack[-1] = (u, pos)
                path.append((u, r))
                stack.append((w, int(indptr[w])))
                advanced = True
                break
            if not advanced:
                stack.pop()
                if path:
                    path.pop()

    matched = np.flatnonzero(mate_left != -1)
    if matched.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    return np.stack([matched, mate_left[matched] + nl], axis=1)
