"""Hopcroft–Karp maximum bipartite matching, O(E·√V).

Operates on :class:`~repro.graph.bipartite.BipartiteGraph`.  The search is
implemented iteratively with flat numpy arrays for the per-phase state (BFS
levels, DFS stacks); the per-edge work is plain Python over CSR neighbor
views, which profiling showed is dominated by the adjacency walk itself and
is fast enough for the benchmark sizes (m ≈ 2·10⁵ in well under a second).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.bipartite import BipartiteGraph

__all__ = ["hopcroft_karp", "hopcroft_karp_mates"]

_INF = np.iinfo(np.int64).max


def hopcroft_karp_mates(graph: BipartiteGraph) -> tuple[np.ndarray, np.ndarray]:
    """Run Hopcroft–Karp; return ``(mate_left, mate_right)`` in local indices.

    ``mate_left[u] = r`` means left vertex ``u`` is matched to right-local
    vertex ``r``; ``-1`` marks unmatched vertices.
    """
    nl, nr = graph.n_left, graph.n_right
    adj = graph.adjacency
    indptr, indices = adj.indptr, adj.indices

    mate_left = np.full(nl, -1, dtype=np.int64)
    mate_right = np.full(nr, -1, dtype=np.int64)
    dist = np.empty(nl, dtype=np.int64)

    # Greedy initialization halves the number of HK phases in practice.
    for u in range(nl):
        for r_global in indices[indptr[u] : indptr[u + 1]]:
            r = r_global - nl
            if mate_right[r] == -1:
                mate_left[u] = r
                mate_right[r] = u
                break

    indptr_l = indptr[: nl + 1]

    def bfs() -> bool:
        """Layered BFS from free left vertices; True iff a free right vertex
        is reachable."""
        dist.fill(_INF)
        queue: deque[int] = deque()
        for u in np.flatnonzero(mate_left == -1).tolist():
            dist[u] = 0
            queue.append(u)
        found = False
        while queue:
            u = queue.popleft()
            du = dist[u]
            for r_global in indices[indptr_l[u] : indptr_l[u + 1]].tolist():
                w = mate_right[r_global - nl]
                if w == -1:
                    found = True
                elif dist[w] == _INF:
                    dist[w] = du + 1
                    queue.append(w)
        return found

    def dfs(root: int) -> bool:
        """Iterative layered DFS attempting to augment from ``root``."""
        # stack entries: (left vertex, iterator position into its row)
        stack = [(root, int(indptr_l[root]))]
        path: list[tuple[int, int]] = []  # (left u, right r) tentative pairs
        while stack:
            u, pos = stack[-1]
            end = int(indptr_l[u + 1])
            advanced = False
            while pos < end:
                r = int(indices[pos]) - nl
                pos += 1
                w = mate_right[r]
                if w == -1:
                    # Augmenting path found; flip along the recorded pairs.
                    path.append((u, r))
                    for pu, pr in path:
                        mate_left[pu] = pr
                        mate_right[pr] = pu
                    return True
                if dist[w] == dist[u] + 1:
                    stack[-1] = (u, pos)
                    path.append((u, r))
                    stack.append((w, int(indptr_l[w])))
                    advanced = True
                    break
            if not advanced:
                dist[u] = _INF  # dead end: prune for the rest of this phase
                stack.pop()
                if path:
                    path.pop()
        return False

    while bfs():
        for u in np.flatnonzero(mate_left == -1).tolist():
            if dist[u] == 0:
                dfs(u)
    return mate_left, mate_right


def hopcroft_karp(graph: BipartiteGraph) -> np.ndarray:
    """Maximum matching of a bipartite graph as an ``(s, 2)`` global-id
    edge array."""
    mate_left, _ = hopcroft_karp_mates(graph)
    matched = np.flatnonzero(mate_left != -1)
    if matched.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    return np.stack([matched, mate_left[matched] + graph.n_left], axis=1)
