"""Matching certificates: validity, maximality, perfection.

Used by tests (to validate every algorithm's output), by coreset code (cheap
runtime asserts), and by the GreedyMatch combiner (maximality is its loop
invariant).
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import Graph

__all__ = [
    "is_matching",
    "is_maximal_matching",
    "is_perfect_matching",
    "matched_vertices",
    "mate_array",
]


def _as_edge_array(matching: np.ndarray) -> np.ndarray:
    m = np.asarray(matching, dtype=np.int64)
    if m.size == 0:
        return m.reshape(0, 2)
    if m.ndim != 2 or m.shape[1] != 2:
        raise ValueError(f"matching must have shape (s, 2), got {m.shape}")
    return m


def matched_vertices(matching: np.ndarray) -> np.ndarray:
    """Sorted array of vertices covered by the matching."""
    m = _as_edge_array(matching)
    return np.unique(m.ravel())


def mate_array(matching: np.ndarray, n_vertices: int) -> np.ndarray:
    """Length-``n`` array: ``mate[v]`` is v's partner, or ``-1`` if unmatched.

    Raises if the edge set is not a valid matching (a vertex would need two
    mates).
    """
    m = _as_edge_array(matching)
    mate = np.full(n_vertices, -1, dtype=np.int64)
    if m.size == 0:
        return mate
    verts = m.ravel()
    if verts.min() < 0 or verts.max() >= n_vertices:
        raise ValueError("matching endpoint out of vertex range")
    counts = np.bincount(verts, minlength=n_vertices)
    if counts.max() > 1:
        offender = int(np.argmax(counts))
        raise ValueError(f"vertex {offender} is matched {counts[offender]} times")
    mate[m[:, 0]] = m[:, 1]
    mate[m[:, 1]] = m[:, 0]
    return mate


def is_matching(graph: Graph, matching: np.ndarray) -> bool:
    """True iff ``matching`` is a set of disjoint edges of ``graph``."""
    m = _as_edge_array(matching)
    if m.size == 0:
        return True
    if (m[:, 0] == m[:, 1]).any():
        return False
    verts = m.ravel()
    if verts.min() < 0 or verts.max() >= graph.n_vertices:
        return False
    if np.bincount(verts, minlength=graph.n_vertices).max() > 1:
        return False
    from repro.graph.validation import edges_subset_of

    ok, _ = edges_subset_of(m, graph)
    return ok


def is_maximal_matching(graph: Graph, matching: np.ndarray) -> bool:
    """True iff no edge of ``graph`` can be added to ``matching``."""
    if not is_matching(graph, matching):
        return False
    covered = np.zeros(graph.n_vertices, dtype=bool)
    m = _as_edge_array(matching)
    if m.size:
        covered[m.ravel()] = True
    e = graph.edges
    if e.size == 0:
        return True
    addable = ~covered[e[:, 0]] & ~covered[e[:, 1]]
    return not addable.any()


def is_perfect_matching(graph: Graph, matching: np.ndarray) -> bool:
    """True iff the matching covers every *non-isolated* vertex.

    We use the non-isolated convention because the paper's machine subgraphs
    keep the full vertex set ``V`` with many isolated vertices.
    """
    if not is_matching(graph, matching):
        return False
    covered = matched_vertices(matching)
    return np.array_equal(covered, graph.non_isolated_vertices)
