"""Greedy maximal matching.

A maximal matching is a 2-approximation to the maximum matching on a single
graph — but §1.2 of the paper shows it is only an Ω(k)-approximate
*randomized coreset*: the freedom to pick a bad maximal matching lets an
adversarial tie-breaking rule destroy the composed solution.  We expose the
edge-ordering policy explicitly so experiment E2 can reproduce exactly that
failure (``order="adversarial_key"``) and also show that a *random* order
does not save maximality in the worst case.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.graph.edgelist import Graph
from repro.utils.rng import RandomState, as_generator

__all__ = ["greedy_maximal_matching", "complete_to_maximal"]

OrderPolicy = Literal["input", "random", "adversarial_key"]


def greedy_maximal_matching(
    graph: Graph,
    order: OrderPolicy = "random",
    rng: RandomState = None,
    priority: np.ndarray | None = None,
) -> np.ndarray:
    """Scan the edges in the given order, keeping every edge whose endpoints
    are both free.

    Parameters
    ----------
    order:
        * ``"input"`` — canonical edge order (deterministic);
        * ``"random"`` — a uniformly random order (the usual randomized
          greedy);
        * ``"adversarial_key"`` — ascending by scalar edge key, which on the
          :func:`~repro.graph.generators.layered_maximal_trap` instance
          systematically prefers trap-biclique edges (low vertex ids) and
          realizes the Ω(k) lower bound of §1.2.
    priority:
        Explicit per-edge sort key overriding ``order`` (smaller = earlier).

    Returns an ``(s, 2)`` matched-edge array.
    """
    e = graph.edges
    if e.shape[0] == 0:
        return np.zeros((0, 2), dtype=np.int64)
    if priority is not None:
        priority = np.asarray(priority)
        if priority.shape != (graph.n_edges,):
            raise ValueError(
                f"priority must have shape ({graph.n_edges},), got {priority.shape}"
            )
        perm = np.argsort(priority, kind="stable")
    elif order == "input":
        perm = np.arange(e.shape[0])
    elif order == "random":
        perm = as_generator(rng).permutation(e.shape[0])
    elif order == "adversarial_key":
        # Canonical order *is* ascending key order, but restate explicitly so
        # the policy is independent of Graph's storage convention.
        keys = e[:, 0] * np.int64(max(graph.n_vertices, 1)) + e[:, 1]
        perm = np.argsort(keys, kind="stable")
    else:  # pragma: no cover - typo guard
        raise ValueError(f"unknown order policy {order!r}")

    taken = np.zeros(graph.n_vertices, dtype=bool)
    out_u = []
    out_v = []
    eu = e[perm, 0]
    ev = e[perm, 1]
    # The sequential scan is inherently order-dependent, so this loop cannot
    # be fully vectorized; it is O(m) with two array reads per edge.
    for u, v in zip(eu.tolist(), ev.tolist()):
        if not taken[u] and not taken[v]:
            taken[u] = True
            taken[v] = True
            out_u.append(u)
            out_v.append(v)
    if not out_u:
        return np.zeros((0, 2), dtype=np.int64)
    return np.stack(
        [np.asarray(out_u, dtype=np.int64), np.asarray(out_v, dtype=np.int64)], axis=1
    )


def complete_to_maximal(
    graph: Graph,
    partial: np.ndarray,
    order: OrderPolicy = "input",
    rng: RandomState = None,
) -> np.ndarray:
    """Extend a partial matching of ``graph`` to a maximal one.

    This is the inner step of the paper's GreedyMatch combiner (§3.1): "let
    M^(i) be a maximal matching obtained by adding to M^(i-1) the edges
    [of the coreset] that do not violate the matching property."
    """
    partial = np.asarray(partial, dtype=np.int64).reshape(-1, 2)
    taken = np.zeros(graph.n_vertices, dtype=bool)
    if partial.size:
        verts = partial.ravel()
        if np.bincount(verts, minlength=graph.n_vertices).max() > 1:
            raise ValueError("partial matching is not a matching")
        taken[verts] = True
    free_mask = ~taken[graph.edges[:, 0]] & ~taken[graph.edges[:, 1]]
    addition = greedy_maximal_matching(
        graph.subgraph_from_mask(free_mask), order=order, rng=rng
    )
    if addition.size == 0:
        return partial
    if partial.size == 0:
        return addition
    return np.vstack([partial, addition])
