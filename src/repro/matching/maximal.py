"""Greedy maximal matching.

A maximal matching is a 2-approximation to the maximum matching on a single
graph — but §1.2 of the paper shows it is only an Ω(k)-approximate
*randomized coreset*: the freedom to pick a bad maximal matching lets an
adversarial tie-breaking rule destroy the composed solution.  We expose the
edge-ordering policy explicitly so experiment E2 can reproduce exactly that
failure (``order="adversarial_key"``) and also show that a *random* order
does not save maximality in the worst case.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.graph.edgelist import Graph
from repro.utils.rng import RandomState, as_generator

__all__ = ["greedy_maximal_matching", "complete_to_maximal"]

OrderPolicy = Literal["input", "random", "adversarial_key"]


def greedy_maximal_matching(
    graph: Graph,
    order: OrderPolicy = "random",
    rng: RandomState = None,
    priority: np.ndarray | None = None,
) -> np.ndarray:
    """Scan the edges in the given order, keeping every edge whose endpoints
    are both free.

    Parameters
    ----------
    order:
        * ``"input"`` — canonical edge order (deterministic);
        * ``"random"`` — a uniformly random order (the usual randomized
          greedy);
        * ``"adversarial_key"`` — ascending by scalar edge key, which on the
          :func:`~repro.graph.generators.layered_maximal_trap` instance
          systematically prefers trap-biclique edges (low vertex ids) and
          realizes the Ω(k) lower bound of §1.2.
    priority:
        Explicit per-edge sort key overriding ``order`` (smaller = earlier).

    Returns an ``(s, 2)`` matched-edge array.
    """
    e = graph.edges
    if e.shape[0] == 0:
        return np.zeros((0, 2), dtype=np.int64)
    if priority is not None:
        priority = np.asarray(priority)
        if priority.shape != (graph.n_edges,):
            raise ValueError(
                f"priority must have shape ({graph.n_edges},), got {priority.shape}"
            )
        perm = np.argsort(priority, kind="stable")
    elif order == "input":
        perm = np.arange(e.shape[0])
    elif order == "random":
        perm = as_generator(rng).permutation(e.shape[0])
    elif order == "adversarial_key":
        # Canonical order *is* ascending key order, but restate explicitly so
        # the policy is independent of Graph's storage convention.
        keys = e[:, 0] * np.int64(max(graph.n_vertices, 1)) + e[:, 1]
        perm = np.argsort(keys, kind="stable")
    else:  # pragma: no cover - typo guard
        raise ValueError(f"unknown order policy {order!r}")

    return _sequential_scan(
        graph.n_vertices, e[perm, 0], e[perm, 1]
    )


#: Block size of the scan's vectorized prefilter.  Large enough that the
#: numpy gather amortizes, small enough that ``taken`` is usually stale for
#: only a fraction of a block.
_SCAN_BLOCK = 8192


def _sequential_scan(
    n_vertices: int, eu: np.ndarray, ev: np.ndarray
) -> np.ndarray:
    """The order-respecting greedy scan over an already-permuted edge list.

    The scan is inherently sequential — whether edge t is taken depends on
    every earlier decision — but *rejections* need not be: an edge whose
    endpoint was matched in an earlier block can never become free again
    (``taken`` only grows), so each block of edges is prefiltered with one
    vectorized mask against the ``taken`` state at the block boundary, and
    only the survivors enter the Python loop (which re-checks them against
    intra-block conflicts).  Matched pairs land in a preallocated int64
    buffer — a matching has at most ``n/2`` edges — instead of growing two
    Python lists and stacking at the end.  Output is bit-identical to the
    naive one-edge-at-a-time scan (asserted by tests and measured by
    ``repro bench``'s ``matching_scan`` section).
    """
    m = eu.shape[0]
    taken = np.zeros(n_vertices, dtype=bool)
    # Capacity bound: every kept edge marks >= 1 new vertex taken (a
    # self-loop marks exactly one, a proper edge two), so at most
    # n_vertices rows are ever written even on raw, non-canonical input.
    out = np.empty((min(m, n_vertices), 2), dtype=np.int64)
    flat = out.reshape(-1)
    j = 0
    for start in range(0, m, _SCAN_BLOCK):
        bu = eu[start:start + _SCAN_BLOCK]
        bv = ev[start:start + _SCAN_BLOCK]
        free = ~(taken[bu] | taken[bv])
        if not free.any():
            continue
        idx = np.nonzero(free)[0]
        for u, v in zip(bu[idx].tolist(), bv[idx].tolist()):
            if taken[u] or taken[v]:
                continue
            taken[u] = True
            taken[v] = True
            flat[j] = u
            flat[j + 1] = v
            j += 2
    return out[: j // 2].copy()


def complete_to_maximal(
    graph: Graph,
    partial: np.ndarray,
    order: OrderPolicy = "input",
    rng: RandomState = None,
) -> np.ndarray:
    """Extend a partial matching of ``graph`` to a maximal one.

    This is the inner step of the paper's GreedyMatch combiner (§3.1): "let
    M^(i) be a maximal matching obtained by adding to M^(i-1) the edges
    [of the coreset] that do not violate the matching property."
    """
    partial = np.asarray(partial, dtype=np.int64).reshape(-1, 2)
    taken = np.zeros(graph.n_vertices, dtype=bool)
    if partial.size:
        verts = partial.ravel()
        if np.bincount(verts, minlength=graph.n_vertices).max() > 1:
            raise ValueError("partial matching is not a matching")
        taken[verts] = True
    free_mask = ~taken[graph.edges[:, 0]] & ~taken[graph.edges[:, 1]]
    addition = greedy_maximal_matching(
        graph.subgraph_from_mask(free_mask), order=order, rng=rng
    )
    if addition.size == 0:
        return partial
    if partial.size == 0:
        return addition
    return np.vstack([partial, addition])
