"""Maximum/maximal matching algorithms, implemented from scratch.

The coreset of Theorem 1 is "any maximum matching" of each machine's
subgraph; this package provides several independent implementations so that
the algorithm-independence of the theorem can itself be tested:

* :func:`~repro.matching.hopcroft_karp.hopcroft_karp` — bipartite, O(E√V);
* :func:`~repro.matching.blossom.blossom_maximum_matching` — general graphs;
* :func:`~repro.matching.augmenting.augmenting_path_matching` — slow
  reference oracle;
* :func:`~repro.matching.maximal.greedy_maximal_matching` — the (provably
  insufficient, §1.2) maximal-matching heuristic;
* :func:`~repro.matching.weighted.greedy_weighted_matching` — 2-approximation
  for weighted matching.

All return an ``(s, 2)`` int64 edge array; :mod:`repro.matching.verify`
provides validity/maximality/optimality certificates.
"""

from repro.matching.api import maximal_matching, maximum_matching
from repro.matching.augmenting import augmenting_path_matching
from repro.matching.blossom import blossom_maximum_matching
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.matching.maximal import greedy_maximal_matching
from repro.matching.verify import (
    is_matching,
    is_maximal_matching,
    is_perfect_matching,
    matched_vertices,
    mate_array,
)
from repro.matching.weighted import exact_weighted_matching, greedy_weighted_matching

__all__ = [
    "augmenting_path_matching",
    "blossom_maximum_matching",
    "exact_weighted_matching",
    "greedy_maximal_matching",
    "greedy_weighted_matching",
    "hopcroft_karp",
    "is_matching",
    "is_maximal_matching",
    "is_perfect_matching",
    "matched_vertices",
    "mate_array",
    "maximal_matching",
    "maximum_matching",
]
