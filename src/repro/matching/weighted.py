"""Weighted matching: greedy 2-approximation and a small exact solver.

The Crouch–Stubbs weighted coreset (paper §1.1, our
:mod:`repro.core.weighted`) reduces weighted matching to unweighted matching
inside geometric weight classes, so the library only needs

* a fast 2-approximation (sort edges by descending weight, greedily keep) —
  the standard comparator and the coordinator-side combiner, and
* an exact exponential solver for small graphs — the test oracle that pins
  down true approximation ratios.
"""

from __future__ import annotations

import numpy as np

from repro.graph.weights import WeightedGraph

__all__ = ["greedy_weighted_matching", "exact_weighted_matching"]


def greedy_weighted_matching(wg: WeightedGraph) -> tuple[np.ndarray, float]:
    """Greedy descending-weight matching: a 1/2-approximation to the maximum
    weight matching.  Returns ``(edges, total_weight)``."""
    if wg.n_edges == 0:
        return np.zeros((0, 2), dtype=np.int64), 0.0
    order = np.argsort(-wg.weights, kind="stable")
    e = wg.edges[order]
    w = wg.weights[order]
    taken = np.zeros(wg.n_vertices, dtype=bool)
    keep_rows = []
    for i, (u, v) in enumerate(e.tolist()):
        if not taken[u] and not taken[v]:
            taken[u] = True
            taken[v] = True
            keep_rows.append(i)
    if not keep_rows:
        return np.zeros((0, 2), dtype=np.int64), 0.0
    rows = np.asarray(keep_rows, dtype=np.int64)
    return e[rows], float(w[rows].sum())


def exact_weighted_matching(wg: WeightedGraph) -> tuple[np.ndarray, float]:
    """Exact maximum-weight matching by branch and bound over edges.

    Intended for oracle use on small graphs (≤ ~24 edges of nonzero degree
    interaction); raises on inputs that would blow up.
    """
    m = wg.n_edges
    if m == 0:
        return np.zeros((0, 2), dtype=np.int64), 0.0
    if m > 26:
        raise ValueError(
            f"exact_weighted_matching is an oracle for small graphs; got {m} edges"
        )
    edges = wg.edges.tolist()
    weights = wg.weights.tolist()
    # Sort by descending weight so the bound prunes early.
    order = sorted(range(m), key=lambda i: -weights[i])
    edges = [edges[i] for i in order]
    weights = [weights[i] for i in order]
    suffix = [0.0] * (m + 1)
    for i in range(m - 1, -1, -1):
        suffix[i] = suffix[i + 1] + weights[i]

    best_w = -1.0
    best_set: list[int] = []
    taken = [False] * wg.n_vertices

    def rec(i: int, acc: float, chosen: list[int]) -> None:
        nonlocal best_w, best_set
        if acc + suffix[i] <= best_w:
            return
        if i == m:
            if acc > best_w:
                best_w = acc
                best_set = list(chosen)
            return
        u, v = edges[i]
        if not taken[u] and not taken[v]:
            taken[u] = taken[v] = True
            chosen.append(i)
            rec(i + 1, acc + weights[i], chosen)
            chosen.pop()
            taken[u] = taken[v] = False
        rec(i + 1, acc, chosen)

    rec(0, 0.0, [])
    if not best_set:
        return np.zeros((0, 2), dtype=np.int64), 0.0
    out = np.asarray([edges[i] for i in best_set], dtype=np.int64)
    return out, float(best_w)
