"""The declarative experiment API: specs, trials, and the registry.

Every reproduced claim (E1–E21) is described by an :class:`ExperimentSpec`
— id, title, one-line description, table columns, default parameter grid,
and seed — registered once via the :func:`experiment` decorator in
:mod:`repro.experiments.tables`.  The imperative half of an experiment is a
:class:`Trial`: a frozen, *picklable*, module-level dataclass whose fields
are the parameters of one grid cell and whose ``__call__(seed)`` returns
one dict of scalar metrics.  Because trials are data, not closures, the
trial harness (:func:`repro.experiments.harness.run_trials`) can fan them
out across worker *processes*, and the CLI can override any grid parameter
from the command line (``repro experiment e1 --set n_values=2000,4000``).

Consumers resolve experiments through this module — never by scraping
``tables.__all__``::

    from repro.experiments.registry import get_experiment

    spec = get_experiment("e1")
    table = spec.run(n_values=(2000,), n_trials=5, executor="processes")

The registry preserves registration order (E1 first), which is also the
paper's presentation order; :func:`experiment_ids` and
:func:`all_experiments` iterate in that order.

See ``docs/EXPERIMENTS_API.md`` for the full surface and the recipe for
adding a new experiment.
"""

from __future__ import annotations

import dataclasses
import functools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Tuple

from repro.experiments.harness import ExperimentTable
from repro.utils.rng import RandomState

__all__ = [
    "DuplicateExperimentError",
    "ExperimentSpec",
    "Trial",
    "UnknownExperimentError",
    "UnknownParameterError",
    "all_experiments",
    "experiment",
    "experiment_ids",
    "get_experiment",
]


class UnknownExperimentError(LookupError):
    """No experiment is registered under the requested id."""


class UnknownParameterError(ValueError):
    """An override names a parameter the experiment's grid does not have."""


class DuplicateExperimentError(ValueError):
    """Two specs tried to claim the same experiment id."""


class Trial:
    """Base class for one grid cell of an experiment.

    Subclasses are frozen dataclasses defined at module level (in
    :mod:`repro.experiments.trials`): the fields hold every parameter the
    trial body needs, and ``__call__(seed)`` runs one independent trial and
    returns a flat ``dict[str, float]`` of metrics.  That shape is the
    whole contract — it is what makes a trial picklable, and therefore
    shippable to a worker process by the ``processes`` executor backend.
    """

    def __call__(self, seed: RandomState) -> Dict[str, float]:
        raise NotImplementedError

    def params(self) -> Dict[str, Any]:
        """The trial's parameters as a plain dict (dataclass fields)."""
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: metadata, defaults, and the builder.

    ``grid`` maps parameter names to their default values; any key can be
    overridden per run.  ``build`` is the module-level builder function
    that instantiates :class:`Trial` objects over the grid, runs them, and
    aggregates the metrics into table rows.
    """

    id: str
    title: str
    description: str
    columns: Tuple[str, ...]
    grid: Mapping[str, Any]
    seed: int
    build: Callable[..., ExperimentTable]

    # ------------------------------------------------------------------ #
    def resolve_params(self, overrides: Mapping[str, Any]) -> Dict[str, Any]:
        """Merge ``overrides`` into the default grid, rejecting unknown keys."""
        unknown = sorted(set(overrides) - set(self.grid))
        if unknown:
            raise UnknownParameterError(
                f"experiment {self.id!r} has no parameter(s) "
                f"{', '.join(unknown)}; settable parameters: "
                f"{', '.join(sorted(self.grid))}"
            )
        return {**self.grid, **overrides}

    def coerce(self, key: str, text: str) -> Any:
        """Parse a command-line override string for grid parameter ``key``.

        The target type comes from the default value: tuples parse as
        comma-separated lists of their element type, scalars as their own
        type, and ``None`` defaults accept ``none`` / int / float / text.
        """
        if key not in self.grid:
            # Same complaint as resolve_params, so the CLI error is uniform.
            self.resolve_params({key: text})
        return _coerce(self.grid[key], text)

    def new_table(self, description: str | None = None) -> ExperimentTable:
        """An empty :class:`ExperimentTable` carrying this spec's identity."""
        return ExperimentTable(
            name=self.title,
            description=self.description if description is None else description,
            columns=list(self.columns),
        )

    def run(
        self,
        *,
        seed: RandomState = None,
        executor: Any = None,
        archive_dir: Any = None,
        **overrides: Any,
    ) -> ExperimentTable:
        """Build the experiment table: defaults + ``overrides``.

        ``seed`` defaults to the spec's registered seed; ``executor``
        follows the :data:`repro.dist.executor.ExecutorSpec` convention
        (``None`` resolves from ``$REPRO_EXECUTOR``) and selects the
        backend that fans the *trials* out.

        ``archive_dir`` (a directory path, or ``True`` for the default
        ``benchmarks/results/``) persists the run as a schema-versioned
        JSON artifact — id, resolved params, seed, and rows — via
        :mod:`repro.experiments.artifacts`, so ``repro report --diff``
        can compare runs across commits.  The created path is attached to
        the returned table as ``table.artifact_path``.
        """
        from repro.dist.executor import Executor, resolve_executor
        from repro.experiments.harness import collect_trial_metrics

        params = self.resolve_params(overrides)
        effective_seed = self.seed if seed is None else seed
        # Resolve the executor once for the whole table: multi-cell grids
        # then amortize a single worker pool across every run_trials call
        # (docs/PARALLELISM.md §6) instead of paying pool start-up per
        # cell.  Ownership follows the substrate rule — a spec resolved
        # here (by name or from $REPRO_EXECUTOR) is closed here; a
        # caller-passed Executor instance stays open.
        backend = resolve_executor(executor)
        try:
            with collect_trial_metrics() as trial_log:
                table = self.build(
                    self,
                    seed=effective_seed,
                    executor=backend,
                    **params,
                )
        finally:
            if not isinstance(executor, Executor):
                backend.close()
        # The raw per-trial numbers behind the aggregated rows: one entry
        # per run_trials call, in build order.  Run artifacts serialize
        # them so variance plots don't require re-running the sweep.
        table.trial_metrics = trial_log
        if archive_dir:
            from repro.experiments.artifacts import save_run_artifact

            table.artifact_path = save_run_artifact(
                table,
                experiment=self.id,
                params=params,
                seed=effective_seed,
                directory=None if archive_dir is True else archive_dir,
            )
        return table


_REGISTRY: Dict[str, ExperimentSpec] = {}


def experiment(
    exp_id: str,
    *,
    title: str,
    description: str,
    columns: list[str] | tuple[str, ...],
    grid: Mapping[str, Any],
    seed: int,
) -> Callable[[Callable[..., ExperimentTable]], Callable[..., ExperimentTable]]:
    """Register a builder function as experiment ``exp_id``.

    The decorated builder receives ``(spec, *, seed, executor, **params)``
    and returns an :class:`ExperimentTable`.  The decorator replaces it
    with a keyword-only wrapper equivalent to ``spec.run`` — so the legacy
    call style ``tables.e1_matching_coreset(n_values=(600,), n_trials=2)``
    keeps working — and attaches the spec as ``wrapper.spec``.
    """
    key = exp_id.strip().lower()

    def decorate(build: Callable[..., ExperimentTable]):
        if key in _REGISTRY:
            raise DuplicateExperimentError(
                f"experiment id {key!r} is already registered "
                f"(by {_REGISTRY[key].build.__name__})"
            )
        spec = ExperimentSpec(
            id=key,
            title=title,
            description=description,
            columns=tuple(columns),
            grid=dict(grid),
            seed=seed,
            build=build,
        )
        _REGISTRY[key] = spec

        @functools.wraps(build)
        def wrapper(*, seed: RandomState = None, executor: Any = None,
                    archive_dir: Any = None,
                    **overrides: Any) -> ExperimentTable:
            return spec.run(seed=seed, executor=executor,
                            archive_dir=archive_dir, **overrides)

        wrapper.spec = spec
        return wrapper

    return decorate


def _ensure_registered() -> None:
    # Specs live in tables.py and register on import; make lookups work
    # even when the caller imported only this module.
    import repro.experiments.tables  # noqa: F401


def get_experiment(exp_id: str) -> ExperimentSpec:
    """Look up a spec by id (case-insensitive, e.g. ``"e1"`` or ``"E1"``)."""
    _ensure_registered()
    key = exp_id.strip().lower()
    if key not in _REGISTRY:
        raise UnknownExperimentError(
            f"unknown experiment {exp_id!r}; available: "
            f"{', '.join(experiment_ids())}"
        )
    return _REGISTRY[key]


def experiment_ids() -> list[str]:
    """All registered ids, in registration (paper) order."""
    _ensure_registered()
    return list(_REGISTRY)


def all_experiments() -> list[ExperimentSpec]:
    """All registered specs, in registration (paper) order."""
    _ensure_registered()
    return list(_REGISTRY.values())


# --------------------------------------------------------------------- #
# command-line override coercion
# --------------------------------------------------------------------- #
_TRUE = {"true", "1", "yes", "on"}
_FALSE = {"false", "0", "no", "off"}


def _coerce(default: Any, text: str) -> Any:
    if isinstance(default, tuple):
        parts = [p.strip() for p in text.split(",") if p.strip()]
        element = default[0] if default else None
        return tuple(_coerce_scalar(element, p) for p in parts)
    return _coerce_scalar(default, text)


def _coerce_scalar(default: Any, text: str) -> Any:
    text = text.strip()
    if isinstance(default, bool):
        lowered = text.lower()
        if lowered in _TRUE:
            return True
        if lowered in _FALSE:
            return False
        raise ValueError(f"expected a boolean, got {text!r}")
    if isinstance(default, int):
        return int(text)
    if isinstance(default, float):
        return float(text)
    if isinstance(default, str):
        return text
    # No default to learn a type from (e.g. ``workers=None``): guess.
    if text.lower() in {"none", "null"}:
        return None
    for parse in (int, float):
        try:
            return parse(text)
        except ValueError:
            pass
    return text
