"""Trial running and table formatting for the experiment suite.

Every experiment in :mod:`repro.experiments.tables` produces an
:class:`ExperimentTable` — a named list of dict rows with aligned text
rendering — so benchmark output looks like the rows a paper would print and
EXPERIMENTS.md can be regenerated mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.dist.executor import ExecutorSpec, resolve_executor
from repro.utils.rng import RandomState, spawn_seeds

__all__ = ["ExperimentTable", "run_trials"]


@dataclass
class ExperimentTable:
    """A named table of result rows."""

    name: str
    description: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise ValueError(f"row missing columns {missing}")
        self.rows.append({c: values[c] for c in self.columns})

    # ------------------------------------------------------------------ #
    def format(self) -> str:
        """Aligned text rendering (monospace table)."""

        def fmt(v: Any) -> str:
            if isinstance(v, float):
                return f"{v:.4g}"
            return str(v)

        header = list(self.columns)
        body = [[fmt(r[c]) for c in header] for r in self.rows]
        widths = [
            max(len(h), *(len(row[i]) for row in body)) if body else len(h)
            for i, h in enumerate(header)
        ]
        lines = [f"== {self.name} ==", self.description]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def column(self, name: str) -> list[Any]:
        return [r[name] for r in self.rows]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.format()


def run_trials(
    fn: Callable[[np.random.SeedSequence], dict[str, float]],
    n_trials: int,
    seed: RandomState = None,
    executor: ExecutorSpec = "serial",
) -> dict[str, np.ndarray]:
    """Run ``fn`` on ``n_trials`` independent child seeds; stack the per-trial
    scalar dicts into arrays keyed by metric name.

    ``executor`` optionally fans the trials out (results are collected in
    seed order, so tables stay deterministic).  The default is *explicitly*
    serial rather than ``$REPRO_EXECUTOR``: trial callables are almost
    always closures, which the ``processes`` backend cannot pickle, and the
    intended grain for process parallelism is the machine level inside a
    trial (``run_simultaneous`` / ``MapReduceSimulator`` do consult the
    environment).  Pass ``executor="threads"`` to overlap trials.
    """
    if n_trials < 1:
        raise ValueError(f"need at least one trial, got {n_trials}")
    seeds = spawn_seeds(seed, n_trials)
    outputs = resolve_executor(executor).map(fn, seeds)
    keys = outputs[0].keys()
    for out in outputs[1:]:
        if out.keys() != keys:
            raise ValueError("trials returned inconsistent metric sets")
    return {k: np.asarray([out[k] for out in outputs], dtype=np.float64)
            for k in keys}
