"""Trial running and table formatting for the experiment suite.

Every experiment in :mod:`repro.experiments.tables` produces an
:class:`ExperimentTable` — a named list of dict rows with aligned text
rendering and a JSON form — so benchmark output looks like the rows a paper
would print, EXPERIMENTS.md can be regenerated mechanically, and
``repro experiment e1 --json -`` emits machine-readable results.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

import numpy as np

from repro.dist.executor import (
    EXECUTOR_ENV,
    Executor,
    ExecutorSpec,
    resolve_executor,
)
from repro.utils.jsonable import jsonable
from repro.utils.rng import RandomState, spawn_seeds

__all__ = ["ExperimentTable", "collect_trial_metrics", "run_trials"]


@dataclass
class ExperimentTable:
    """A named table of result rows.

    ``trial_metrics`` optionally carries the *per-trial* metric lists the
    aggregated rows were computed from — one entry per :func:`run_trials`
    invocation, in build order (for the standard one-``run_trials``-per-row
    experiments this aligns 1:1 with ``rows``).  It is populated by
    :meth:`repro.experiments.registry.ExperimentSpec.run` via
    :func:`collect_trial_metrics` and serialized into run artifacts so
    variance across trials stays plottable after the run.
    """

    name: str
    description: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    trial_metrics: list[dict[str, list[float]]] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise ValueError(f"row missing columns {missing}")
        self.rows.append({c: values[c] for c in self.columns})

    # ------------------------------------------------------------------ #
    def format(self) -> str:
        """Aligned text rendering (monospace table)."""

        def fmt(v: Any) -> str:
            if isinstance(v, float):
                return f"{v:.4g}"
            return str(v)

        header = list(self.columns)
        body = [[fmt(r[c]) for c in header] for r in self.rows]
        widths = [
            max(len(h), *(len(row[i]) for row in body)) if body else len(h)
            for i, h in enumerate(header)
        ]
        lines = [f"== {self.name} ==", self.description]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def column(self, name: str) -> list[Any]:
        return [r[name] for r in self.rows]

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dict: name, description, columns, and plain rows."""
        return {
            "name": self.name,
            "description": self.description,
            "columns": list(self.columns),
            "rows": [
                {c: _jsonable(r[c]) for c in self.columns} for r in self.rows
            ],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The table as a JSON document (see :meth:`to_dict`)."""
        return json.dumps(self.to_dict(), indent=indent)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.format()


# The old private name, kept because artifacts.py (and tests) import it
# from here; the implementation is the shared utils helper.
_jsonable = jsonable


@dataclass(frozen=True)
class _SerialEnginesTrial:
    """Run a trial with the *inner* engines pinned to the serial backend.

    When :func:`run_trials` fans trials out across worker processes, each
    worker would otherwise re-resolve ``$REPRO_EXECUTOR`` inside
    ``run_simultaneous`` / ``MapReduceSimulator`` and nest a second process
    pool per trial.  One level of process parallelism is the useful grain,
    so the trial level wins and the engines inside the trial run serially
    (outputs are bit-identical either way — docs/PARALLELISM.md).  The
    previous environment is restored afterwards, which also keeps the
    single-task inline path of ``ProcessExecutor.map`` from leaking the
    override into the caller's process.
    """

    trial: Callable[[Any], Dict[str, float]]

    def __call__(self, seed: Any) -> Dict[str, float]:
        previous = os.environ.get(EXECUTOR_ENV)
        os.environ[EXECUTOR_ENV] = "serial"
        try:
            return self.trial(seed)
        finally:
            if previous is None:
                os.environ.pop(EXECUTOR_ENV, None)
            else:
                os.environ[EXECUTOR_ENV] = previous


# Active per-trial metric sink (see collect_trial_metrics).  Deliberately a
# plain module global: experiment builds are single-threaded orchestration
# (the parallelism lives *inside* run_trials), so no thread-local is needed.
_trial_sink: Optional[List[Dict[str, List[float]]]] = None


@contextmanager
def collect_trial_metrics() -> Iterator[List[Dict[str, List[float]]]]:
    """Capture the raw per-trial metrics of every :func:`run_trials` call
    made inside the ``with`` block.

    Yields a list that accumulates one ``{metric: [v_trial0, v_trial1,
    ...]}`` dict per ``run_trials`` invocation, in call order.  Nesting is
    supported (the inner sink shadows the outer one); the previous sink is
    restored on exit.  This is how ``ExperimentSpec.run`` surfaces
    per-trial (not just aggregated) numbers in run artifacts without every
    table builder having to thread a collector through.
    """
    global _trial_sink
    previous = _trial_sink
    _trial_sink = sink = []
    try:
        yield sink
    finally:
        _trial_sink = previous


def run_trials(
    fn: Callable[[np.random.SeedSequence], dict[str, float]],
    n_trials: int,
    seed: RandomState = None,
    executor: ExecutorSpec = None,
) -> dict[str, np.ndarray]:
    """Run ``fn`` on ``n_trials`` independent child seeds; stack the per-trial
    scalar dicts into arrays keyed by metric name.

    ``executor`` follows the :data:`~repro.dist.executor.ExecutorSpec`
    convention shared by every engine: ``None`` resolves from
    ``$REPRO_EXECUTOR`` (default ``serial``), a name picks a backend, an
    :class:`~repro.dist.executor.Executor` instance is used as-is.  Worker
    counts are validated by the executor module — there is exactly one
    place (:func:`repro.dist.executor.validate_workers`) that owns that
    rule.

    Results are collected in seed order regardless of completion order, so
    tables are bit-identical across backends for the same seed.

    Trials destined for the ``processes`` backend must be *picklable*:
    module-level callables or :class:`~repro.experiments.registry.Trial`
    dataclasses (the E1–E21 trials in :mod:`repro.experiments.trials` all
    qualify), never closures or lambdas.  When trials do fan out across
    processes, the engines *inside* each trial are pinned to the serial
    backend — trial-level fan-out is the coarser, better grain, and nesting
    a process pool per trial would oversubscribe the machine.
    """
    if n_trials < 1:
        raise ValueError(f"need at least one trial, got {n_trials}")
    backend = resolve_executor(executor)
    task = _SerialEnginesTrial(fn) if backend.name == "processes" else fn
    seeds = spawn_seeds(seed, n_trials)
    try:
        outputs = backend.map(task, seeds)
    finally:
        # An executor resolved here (by name or from $REPRO_EXECUTOR) is
        # owned by this call and its pool is released at the barrier; a
        # passed-in Executor instance stays open so one pool can amortize
        # across many run_trials calls (docs/PARALLELISM.md §6).
        if not isinstance(executor, Executor):
            backend.close()
    keys = outputs[0].keys()
    for out in outputs[1:]:
        if out.keys() != keys:
            raise ValueError("trials returned inconsistent metric sets")
    if _trial_sink is not None:
        _trial_sink.append(
            {k: [float(out[k]) for out in outputs] for k in keys}
        )
    return {k: np.asarray([out[k] for out in outputs], dtype=np.float64)
            for k in keys}
