"""Structured, schema-versioned experiment-run artifacts.

``benchmarks/results/*.txt`` archives what a table *looked like*; this
module archives what a run *was*: one JSON document per
:meth:`~repro.experiments.registry.ExperimentSpec.run` invocation carrying
the experiment id, the fully-resolved parameter grid, the seed, and the
table rows — enough to diff two runs of the same experiment across
commits (``repro report --diff``) or to re-issue the exact run later.

Schema (``schema_version`` 3)::

    {
      "schema_version": 3,
      "kind": "experiment_run",
      "experiment": "e1",
      "title": "E1: matching coreset approximation (Theorem 1)",
      "seed": 11,
      "params": {"n_values": [2000, 6000], ...},
      "created_at": "2026-07-27T12:00:00+00:00",
      "host": {"python": ..., "platform": ..., "cpu_count": ...},
      "git_commit": "2161572...",          # null outside a checkout
      "git_dirty": false,
      "table": {"name": ..., "description": ..., "columns": [...],
                "rows": [{...}, ...]},
      "per_trial": [{"ratio": [1.02, 1.11, ...], ...}, ...]
    }

``per_trial`` (added in version 2) carries the raw per-trial metric lists
behind each aggregated row — one entry per ``run_trials`` call, in build
order — so variance plots are possible without re-running the sweep.
Version 3 adds the shared provenance stamp
(:func:`repro.utils.provenance.provenance_stamp`): ``host`` plus
``git_commit`` / ``git_dirty``, which is what lets the trend engine
(:mod:`repro.sweep.trend`) key per-metric series on the commit that
produced each run.  Version-1 (no ``per_trial``) and version-2 (no
provenance) artifacts still load; the trend engine files them under
commit ``"unknown"``.

Artifacts live under ``benchmarks/results/`` next to the text archives,
named ``<experiment>-run-<UTC timestamp>.json`` so consecutive runs never
overwrite each other.  ``schema_version`` gates forward compatibility:
consumers must reject versions they do not understand rather than guess.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.experiments.harness import ExperimentTable, _jsonable
from repro.utils.jsonable import jsonable_deep
from repro.utils.provenance import provenance_stamp

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "ArtifactError",
    "diff_artifacts",
    "load_artifact",
    "run_artifact_doc",
    "save_run_artifact",
]

ARTIFACT_SCHEMA_VERSION = 3

#: Older schema versions this build still understands when *loading* (new
#: artifacts are always written at ARTIFACT_SCHEMA_VERSION).  Version 1
#: lacks the ``per_trial`` section; version 2 lacks the provenance fields
#: (``host``, ``git_commit``, ``git_dirty``).
_READABLE_SCHEMA_VERSIONS = frozenset({1, 2, 3})

_DEFAULT_DIR = Path("benchmarks") / "results"


class ArtifactError(ValueError):
    """An artifact file is malformed or from an unknown schema version."""


def run_artifact_doc(
    table: ExperimentTable,
    *,
    experiment: str,
    params: Mapping[str, Any],
    seed: Any,
) -> Dict[str, Any]:
    """The JSON-ready artifact document for one experiment run."""
    return {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "kind": "experiment_run",
        "experiment": str(experiment),
        "title": table.name,
        "seed": _seed_repr(seed),
        "params": {k: _jsonable_deep(v) for k, v in params.items()},
        **provenance_stamp(),
        "table": table.to_dict(),
        "per_trial": _jsonable_deep(getattr(table, "trial_metrics", []) or []),
    }


def save_run_artifact(
    table: ExperimentTable,
    *,
    experiment: str,
    params: Mapping[str, Any],
    seed: Any,
    directory: str | Path | None = None,
) -> Path:
    """Write one run's artifact; returns the created path.

    Filenames embed a UTC timestamp (``e1-run-20260727T120000Z.json``)
    plus a disambiguating counter when two runs land in the same second,
    so every run of the sweep keeps its own file.
    """
    directory = _DEFAULT_DIR if directory is None else Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    doc = run_artifact_doc(
        table, experiment=experiment, params=params, seed=seed
    )
    stamp = datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%SZ")
    base = f"{doc['experiment']}-run-{stamp}"
    path = directory / f"{base}.json"
    counter = 1
    while path.exists():
        path = directory / f"{base}-{counter}.json"
        counter += 1
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


def load_artifact(path: str | Path) -> Dict[str, Any]:
    """Load and validate one artifact document."""
    path = Path(path)
    # ValueError covers both truncated/garbled JSON (JSONDecodeError) and
    # files that are not UTF-8 text at all (UnicodeDecodeError): any way a
    # file on disk can be unreadable maps to one typed ArtifactError.
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ArtifactError(f"cannot read artifact {path}: {exc}") from exc
    if not isinstance(doc, dict):
        raise ArtifactError(f"artifact {path} is not a JSON object")
    version = doc.get("schema_version")
    if version not in _READABLE_SCHEMA_VERSIONS:
        raise ArtifactError(
            f"artifact {path} has schema_version {version!r}; this build "
            f"understands versions "
            f"{sorted(_READABLE_SCHEMA_VERSIONS)} — refusing to guess at a "
            f"different layout"
        )
    for key in ("experiment", "table"):
        if key not in doc:
            raise ArtifactError(f"artifact {path} is missing {key!r}")
    return doc


# --------------------------------------------------------------------- #
# diffing
# --------------------------------------------------------------------- #
def diff_artifacts(
    old: Mapping[str, Any], new: Mapping[str, Any]
) -> str:
    """Render the row-by-row numeric deltas between two run artifacts.

    Rows are aligned positionally (experiment grids are deterministic, so
    row i of two runs of the same experiment describes the same grid
    cell); non-numeric cells are compared for equality, numeric cells get
    an absolute and relative delta.  Diffing artifacts of two *different*
    experiments is refused — that comparison means nothing.
    """
    if old.get("experiment") != new.get("experiment"):
        raise ArtifactError(
            f"cannot diff artifacts of different experiments: "
            f"{old.get('experiment')!r} vs {new.get('experiment')!r}"
        )
    exp = old.get("experiment")
    old_rows: List[Dict[str, Any]] = list(old["table"].get("rows", []))
    new_rows: List[Dict[str, Any]] = list(new["table"].get("rows", []))
    # The union of both column sets (new order first): a column dropped by
    # the newer run still diffs (as value -> None) instead of vanishing.
    columns = list(new["table"].get("columns", []))
    columns += [c for c in old["table"].get("columns", [])
                if c not in columns]

    lines = [
        f"# diff: {exp} — {old.get('created_at', '?')} → "
        f"{new.get('created_at', '?')}",
        f"seeds: {old.get('seed')} → {new.get('seed')}",
    ]
    if old.get("params") != new.get("params"):
        lines.append(f"params changed: {old.get('params')} → "
                     f"{new.get('params')}")
    if len(old_rows) != len(new_rows):
        lines.append(
            f"row count changed: {len(old_rows)} → {len(new_rows)} "
            f"(diffing the common prefix)"
        )
    changed = 0
    for i, (a, b) in enumerate(zip(old_rows, new_rows)):
        cell_diffs = []
        for col in columns:
            va, vb = a.get(col), b.get(col)
            if _is_number(va) and _is_number(vb):
                if va != vb:
                    delta = vb - va
                    rel = f" ({delta / va:+.2%})" if va else ""
                    cell_diffs.append(
                        f"{col}: {va:.6g} → {vb:.6g} [{delta:+.6g}{rel}]"
                    )
            elif va != vb:
                cell_diffs.append(f"{col}: {va!r} → {vb!r}")
        if cell_diffs:
            changed += 1
            lines.append(f"row {i}: " + "; ".join(cell_diffs))
    if not changed:
        lines.append("no row-level differences")
    else:
        lines.append(f"{changed}/{min(len(old_rows), len(new_rows))} "
                     f"rows differ")
    return "\n".join(lines)


def _seed_repr(seed: Any) -> Any:
    """A JSON-safe record of the seed (ints stay ints, exotica stringify)."""
    if seed is None:
        return None
    coerced = _jsonable(seed)
    if isinstance(coerced, (int, float)) and not isinstance(coerced, bool):
        return coerced
    return str(coerced)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


# The recursive coercion (grid tuples, metric dicts) is the shared utils
# helper; the local alias keeps this module's call sites readable.
_jsonable_deep = jsonable_deep
