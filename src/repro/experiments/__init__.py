"""Experiment harness: trial running, aggregation, and the declarative
E1–E21 registry that regenerates every quantitative claim of the paper.

The public surface is the registry (``get_experiment("e1").run(...)``);
``tables`` keeps the legacy callable-per-experiment names, and ``trials``
holds the picklable per-trial dataclasses.  See ``docs/EXPERIMENTS_API.md``.
"""

from repro.experiments.harness import ExperimentTable, run_trials
from repro.experiments.registry import (
    ExperimentSpec,
    Trial,
    all_experiments,
    experiment,
    experiment_ids,
    get_experiment,
)
from repro.experiments import tables

__all__ = [
    "ExperimentSpec",
    "ExperimentTable",
    "Trial",
    "all_experiments",
    "experiment",
    "experiment_ids",
    "get_experiment",
    "run_trials",
    "tables",
]
