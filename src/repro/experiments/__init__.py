"""Experiment harness: trial running, aggregation, and the E1–E15 table
definitions that regenerate every quantitative claim of the paper.
"""

from repro.experiments.harness import ExperimentTable, run_trials
from repro.experiments import tables

__all__ = ["ExperimentTable", "run_trials", "tables"]
