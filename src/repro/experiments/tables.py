"""E1–E21: one function per reproduced claim.

The paper is theoretical; each "table" here is the empirical rendering of
one theorem/remark/example, as indexed in DESIGN.md §4.  Every function is
deterministic given its ``seed`` and returns an
:class:`~repro.experiments.harness.ExperimentTable` whose rows the benchmark
scripts print and EXPERIMENTS.md records.
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.harness import ExperimentTable, run_trials
from repro.utils.rng import RandomState

__all__ = [
    "e1_matching_coreset",
    "e2_maximal_coreset_bad",
    "e3_vc_coreset",
    "e4_minvc_coreset_bad",
    "e5_matching_size_lb",
    "e6_vc_size_lb",
    "e7_random_vs_adversarial",
    "e8_mapreduce_rounds",
    "e9_subsampled_matching",
    "e10_grouped_vc",
    "e11_induced_matching",
    "e12_weighted_matching",
    "e13_communication_scaling",
    "e14_greedymatch_dynamics",
    "e15_ablation",
    "e16_streaming_orders",
    "e17_exact_kernel",
    "e18_family_robustness",
    "e19_vertex_partition_model",
    "e20_concentration",
    "e21_parallel_scaling",
]


# --------------------------------------------------------------------- #
# E1 — Theorem 1: max-matching coreset is O(1)-approximate
# --------------------------------------------------------------------- #
def e1_matching_coreset(
    n_values: tuple[int, ...] = (2000, 6000),
    k_values: tuple[int, ...] = (4, 16, 64),
    n_trials: int = 3,
    seed: RandomState = 11,
    general_graphs: bool = False,
) -> ExperimentTable:
    """Approximation ratio of the Theorem 1 coreset vs n and k.

    Expected shape: ratio ≤ ~3 (theory: ≤ 9), flat in both n and k.
    """
    from repro.core.protocols import matching_coreset_protocol
    from repro.dist.coordinator import run_simultaneous
    from repro.graph.generators import gnp, planted_matching_gnp
    from repro.graph.partition import random_k_partition
    from repro.matching.api import matching_number
    from repro.utils.rng import spawn_generators

    table = ExperimentTable(
        name="E1: matching coreset approximation (Theorem 1)",
        description="ratio = MM(G) / |composed matching|; theory bound 9",
        columns=["graph", "n", "k", "ratio_mean", "ratio_max",
                 "coreset_edges_mean"],
    )
    protocol = matching_coreset_protocol(combiner="exact")

    for n in n_values:
        for k in k_values:
            def trial(s):
                g_rng, p_rng, r_rng = spawn_generators(s, 3)
                if general_graphs:
                    graph = gnp(n, 3.0 / n, g_rng)
                else:
                    graph, _ = planted_matching_gnp(
                        n // 2, n // 2, p=3.0 / n, rng=g_rng
                    )
                part = random_k_partition(graph, k, p_rng)
                res = run_simultaneous(protocol, part, r_rng)
                opt = matching_number(graph)
                out = int(res.output.shape[0])
                return {
                    "ratio": opt / max(1, out),
                    "coreset_edges": res.ledger.total_edges() / k,
                }

            metrics = run_trials(trial, n_trials, seed)
            table.add_row(
                graph="gnp" if general_graphs else "bip+planted",
                n=n,
                k=k,
                ratio_mean=float(metrics["ratio"].mean()),
                ratio_max=float(metrics["ratio"].max()),
                coreset_edges_mean=float(metrics["coreset_edges"].mean()),
            )
    return table


# --------------------------------------------------------------------- #
# E2 — §1.2: maximal-matching coreset is Ω(k)
# --------------------------------------------------------------------- #
def e2_maximal_coreset_bad(
    k_values: tuple[int, ...] = (4, 8, 16, 32),
    width: int = 64,
    n_trials: int = 3,
    seed: RandomState = 22,
) -> ExperimentTable:
    """Worst-case *maximal* matching vs *maximum* matching as coresets on
    the hidden-matching-with-hubs instance (§1.2's Ω(k) example).

    Expected shape: maximal-coreset ratio grows ~linearly with k (≈ k/2 at
    hub slack 2); the Theorem 1 coreset stays O(1) on the same inputs and
    the same random partitions.
    """
    from repro.baselines.bad_coresets import blocking_maximal_protocol
    from repro.core.protocols import matching_coreset_protocol
    from repro.dist.coordinator import run_simultaneous
    from repro.graph.generators import hidden_matching_with_hubs
    from repro.graph.partition import random_k_partition
    from repro.utils.rng import spawn_generators

    table = ExperimentTable(
        name="E2: maximal-matching coreset failure (paper §1.2)",
        description="same random partition; only the summarizer differs; "
                    "opt >= N = k*width hidden edges",
        columns=["k", "opt_lb", "maximal_ratio", "maximum_ratio"],
    )
    good = matching_coreset_protocol(combiner="exact")

    for k in k_values:
        def trial(s):
            g_rng, p_rng, r_rng = spawn_generators(s, 3)
            graph, n_pairs, _ = hidden_matching_with_hubs(k, width, rng=g_rng)
            bad = blocking_maximal_protocol(hub_boundary=2 * n_pairs)
            part = random_k_partition(graph, k, p_rng)
            bad_out = run_simultaneous(bad, part, r_rng).output
            good_out = run_simultaneous(good, part, r_rng).output
            return {
                "opt": n_pairs,
                "bad_ratio": n_pairs / max(1, bad_out.shape[0]),
                "good_ratio": n_pairs / max(1, good_out.shape[0]),
            }

        metrics = run_trials(trial, n_trials, seed)
        table.add_row(
            k=k,
            opt_lb=float(metrics["opt"].mean()),
            maximal_ratio=float(metrics["bad_ratio"].mean()),
            maximum_ratio=float(metrics["good_ratio"].mean()),
        )
    return table


# --------------------------------------------------------------------- #
# E3 — Theorem 2: VC coreset is O(log n)-approximate, size O(n log n)
# --------------------------------------------------------------------- #
def e3_vc_coreset(
    n_values: tuple[int, ...] = (2000, 8000),
    k_values: tuple[int, ...] = (4, 16),
    n_trials: int = 3,
    seed: RandomState = 33,
) -> ExperimentTable:
    """Approximation ratio and message size of the Theorem 2 coreset on
    skewed-degree bipartite workloads.

    Expected shape: ratio well below log2(n); residual size O(n log n).
    """
    from repro.core.protocols import vertex_cover_coreset_protocol
    from repro.cover import is_vertex_cover, konig_cover
    from repro.dist.coordinator import run_simultaneous
    from repro.graph.generators import skewed_bipartite
    from repro.graph.partition import random_k_partition
    from repro.utils.rng import spawn_generators

    table = ExperimentTable(
        name="E3: vertex-cover coreset approximation (Theorem 2)",
        description="ratio = |composed cover| / VC(G); theory bound O(log n)",
        columns=["n", "k", "ratio_mean", "ratio_max", "log2_n",
                 "residual_edges_mean", "fixed_vertices_mean", "feasible"],
    )
    for n in n_values:
        for k in k_values:
            protocol = vertex_cover_coreset_protocol(k=k)

            def trial(s):
                g_rng, p_rng, r_rng = spawn_generators(s, 3)
                half = n // 2
                graph = skewed_bipartite(
                    half, half,
                    hub_count=max(4, half // 50),
                    hub_degree=max(8, half // 10),
                    leaf_p=2.0 / half,
                    rng=g_rng,
                )
                part = random_k_partition(graph, k, p_rng)
                res = run_simultaneous(protocol, part, r_rng)
                opt = int(konig_cover(graph).shape[0])
                feasible = is_vertex_cover(graph, res.output)
                return {
                    "ratio": res.output.shape[0] / max(1, opt),
                    "residual": res.ledger.total_edges() / k,
                    "fixed": res.ledger.total_fixed_vertices() / k,
                    "feasible": float(feasible),
                }

            m = run_trials(trial, n_trials, seed)
            table.add_row(
                n=n, k=k,
                ratio_mean=float(m["ratio"].mean()),
                ratio_max=float(m["ratio"].max()),
                log2_n=math.log2(n),
                residual_edges_mean=float(m["residual"].mean()),
                fixed_vertices_mean=float(m["fixed"].mean()),
                feasible=bool(m["feasible"].all()),
            )
    return table


# --------------------------------------------------------------------- #
# E4 — §1.2: min-VC-as-coreset is Ω(k) (star example)
# --------------------------------------------------------------------- #
def e4_minvc_coreset_bad(
    k_values: tuple[int, ...] = (4, 8, 16, 32),
    n_stars: int = 64,
    n_trials: int = 3,
    seed: RandomState = 44,
) -> ExperimentTable:
    """Min-VC-of-the-piece vs the Theorem 2 peeling coreset on star forests.

    Expected shape: min-VC coreset ratio grows ~linearly in k (leaves get
    certified); the peeling coreset stays O(log n).
    """
    from repro.baselines.bad_coresets import min_vc_coreset_protocol
    from repro.core.protocols import vertex_cover_coreset_protocol
    from repro.cover import is_vertex_cover
    from repro.dist.coordinator import run_simultaneous
    from repro.graph.generators import bipartite_star_forest
    from repro.graph.partition import random_k_partition
    from repro.utils.rng import spawn_generators

    table = ExperimentTable(
        name="E4: min-VC coreset failure (paper §1.2 star example)",
        description="stars with ~k leaves each; OPT = n_stars (the centers)",
        columns=["k", "opt", "minvc_ratio", "peeling_ratio", "both_feasible"],
    )
    bad = min_vc_coreset_protocol(prefer_leaves=True)

    for k in k_values:
        good = vertex_cover_coreset_protocol(k=k)

        def trial(s):
            g_rng, p_rng, r_rng = spawn_generators(s, 3)
            graph = bipartite_star_forest(n_stars, leaves_per_star=k)
            part = random_k_partition(graph, k, p_rng)
            bad_out = run_simultaneous(bad, part, r_rng).output
            good_out = run_simultaneous(good, part, r_rng).output
            opt = n_stars  # the centers
            return {
                "bad_ratio": bad_out.shape[0] / opt,
                "good_ratio": good_out.shape[0] / opt,
                "feasible": float(
                    is_vertex_cover(graph, bad_out)
                    and is_vertex_cover(graph, good_out)
                ),
            }

        m = run_trials(trial, n_trials, seed)
        table.add_row(
            k=k,
            opt=n_stars,
            minvc_ratio=float(m["bad_ratio"].mean()),
            peeling_ratio=float(m["good_ratio"].mean()),
            both_feasible=bool(m["feasible"].all()),
        )
    return table


# --------------------------------------------------------------------- #
# E5 — Theorem 3: matching coresets need Ω(n/α²) edges
# --------------------------------------------------------------------- #
def e5_matching_size_lb(
    n: int = 8000,
    alpha: float = 8.0,
    k: int = 8,
    budget_factors: tuple[float, ...] = (0.125, 0.5, 1.0, 4.0, 16.0),
    n_trials: int = 3,
    seed: RandomState = 55,
) -> ExperimentTable:
    """Budget-limited coresets on D_Matching, budgets around n/α².

    Expected shape: achieved ratio crosses α as the per-machine budget
    crosses ~n/α² (the Theorem 3 threshold).
    """
    from repro.dist.coordinator import run_simultaneous
    from repro.graph.partition import random_k_partition
    from repro.lowerbounds.dmatching import (
        budget_limited_matching_protocol,
        hidden_edges_recovered,
        sample_dmatching,
    )
    from repro.utils.rng import spawn_generators

    table = ExperimentTable(
        name="E5: matching coreset size lower bound (Theorem 3)",
        description=f"D_Matching(n={n}, alpha={alpha:g}, k={k}); "
                    f"threshold budget n/alpha^2 = {n / alpha**2:.0f}",
        columns=["budget", "budget_over_threshold", "ratio_mean",
                 "hidden_recovered_mean", "beats_alpha"],
    )
    threshold = n / alpha**2
    for factor in budget_factors:
        budget = max(1, int(round(factor * threshold)))
        protocol = budget_limited_matching_protocol(budget)

        def trial(s):
            from repro.matching.api import matching_number

            i_rng, p_rng, r_rng = spawn_generators(s, 3)
            inst = sample_dmatching(n, alpha, k, i_rng)
            part = random_k_partition(inst.graph, k, p_rng)
            res = run_simultaneous(protocol, part, r_rng)
            opt = matching_number(inst.graph)
            out = int(res.output.shape[0])
            return {
                "ratio": opt / max(1, out),
                "hidden": hidden_edges_recovered(inst, res.output),
            }

        m = run_trials(trial, n_trials, seed)
        ratio = float(m["ratio"].mean())
        table.add_row(
            budget=budget,
            budget_over_threshold=factor,
            ratio_mean=ratio,
            hidden_recovered_mean=float(m["hidden"].mean()),
            beats_alpha=bool(ratio < alpha),
        )
    return table


# --------------------------------------------------------------------- #
# E6 — Theorem 4: VC coresets need Ω(n/α) size
# --------------------------------------------------------------------- #
def e6_vc_size_lb(
    n: int = 8000,
    alpha: float = 8.0,
    k: int = 8,
    budget_factors: tuple[float, ...] = (0.05, 0.25, 1.0, 4.0),
    n_trials: int = 5,
    seed: RandomState = 66,
) -> ExperimentTable:
    """Budget-limited coresets on D_VC, budgets around n/α.

    Expected shape: P[e* covered] (hence feasibility) collapses once the
    budget drops below ~n/α.
    """
    from repro.cover import is_vertex_cover
    from repro.dist.coordinator import run_simultaneous
    from repro.graph.partition import random_k_partition
    from repro.lowerbounds.dvc import (
        budget_limited_cover_protocol,
        covers_estar,
        sample_dvc,
    )
    from repro.utils.rng import spawn_generators

    table = ExperimentTable(
        name="E6: vertex-cover coreset size lower bound (Theorem 4)",
        description=f"D_VC(n={n}, alpha={alpha:g}, k={k}); "
                    f"threshold budget n/alpha = {n / alpha:.0f}",
        columns=["budget", "budget_over_threshold", "p_estar_covered",
                 "p_feasible", "cover_size_mean"],
    )
    threshold = n / alpha
    for factor in budget_factors:
        budget = max(1, int(round(factor * threshold)))
        protocol = budget_limited_cover_protocol(budget, budget, k=k)

        def trial(s):
            i_rng, p_rng, r_rng = spawn_generators(s, 3)
            inst = sample_dvc(n, alpha, k, i_rng)
            part = random_k_partition(inst.graph, k, p_rng)
            res = run_simultaneous(protocol, part, r_rng)
            return {
                "covered": float(covers_estar(inst, res.output)),
                "feasible": float(is_vertex_cover(inst.graph, res.output)),
                "size": res.output.shape[0],
            }

        m = run_trials(trial, n_trials, seed)
        table.add_row(
            budget=budget,
            budget_over_threshold=factor,
            p_estar_covered=float(m["covered"].mean()),
            p_feasible=float(m["feasible"].mean()),
            cover_size_mean=float(m["size"].mean()),
        )
    return table


# --------------------------------------------------------------------- #
# E7 — headline: random vs adversarial partitioning
# --------------------------------------------------------------------- #
def e7_random_vs_adversarial(
    k_values: tuple[int, ...] = (4, 8, 16),
    n_hidden_per_k: int = 48,
    n_trials: int = 3,
    seed: RandomState = 77,
) -> ExperimentTable:
    """Same graph, same Theorem 1 coreset, two partitionings.

    Expected shape: random ratio O(1); adversarial ratio ≈ (k+1)/2.
    """
    from repro.lowerbounds.adversary import contrast_partitionings
    from repro.utils.rng import spawn_seeds

    table = ExperimentTable(
        name="E7: random vs adversarial partitioning (headline contrast)",
        description="decoy-gadget instance; predicted adversarial ratio (k+1)/2",
        columns=["k", "opt_mean", "random_ratio", "adversarial_ratio",
                 "predicted_adversarial"],
    )
    for k in k_values:
        n_hidden = n_hidden_per_k * k

        def trial(s):
            c = contrast_partitionings(n_hidden, k, s)
            return {
                "opt": c.optimum,
                "rand": c.random_ratio,
                "adv": c.adversarial_ratio,
            }

        m = run_trials(trial, n_trials, seed)
        table.add_row(
            k=k,
            opt_mean=float(m["opt"].mean()),
            random_ratio=float(m["rand"].mean()),
            adversarial_ratio=float(m["adv"].mean()),
            predicted_adversarial=(k + 1) / 2,
        )
    return table


# --------------------------------------------------------------------- #
# E8 — MapReduce: rounds and memory vs the filtering baseline
# --------------------------------------------------------------------- #
def e8_mapreduce_rounds(
    n: int = 4000,
    avg_degree: float = 24.0,
    n_trials: int = 3,
    seed: RandomState = 88,
) -> ExperimentTable:
    """2-round coreset MapReduce vs the [46] filtering algorithm at the
    paper's memory budget Õ(n^1.5).

    Expected shape: coreset = 2 rounds (1 when pre-randomized), ratio ≤ ~3;
    filtering ≥ 3 rounds with ratio ≤ 2.
    """
    from repro.baselines.filtering import filtering_matching
    from repro.core.mapreduce_algos import mapreduce_matching
    from repro.graph.generators import planted_matching_gnp
    from repro.matching.api import matching_number
    from repro.utils.rng import spawn_generators

    table = ExperimentTable(
        name="E8: MapReduce rounds (paper MR corollary vs filtering [46])",
        description=f"n={n}, m≈{int(n * avg_degree / 2)}, memory n^1.5≈"
                    f"{int(n**1.5)} edges",
        columns=["algorithm", "rounds_mean", "ratio_mean",
                 "peak_machine_edges", "memory_cap"],
    )
    memory = int(n**1.5)

    def trial(s):
        g_rng, mr_rng, mr2_rng, f_rng = spawn_generators(s, 4)
        graph, _ = planted_matching_gnp(
            n // 2, n // 2, p=avg_degree / n, rng=g_rng
        )
        opt = matching_number(graph)
        coreset = mapreduce_matching(
            graph, rng=mr_rng, memory_cap_edges=memory
        )
        coreset1 = mapreduce_matching(
            graph, rng=mr2_rng, memory_cap_edges=memory,
            assume_random_input=True,
        )
        # Filtering must iterate: give it the same memory budget but note
        # it only ever uses the central machine.
        filt = filtering_matching(graph, memory_edges=max(64, graph.n_edges // 8),
                                  rng=f_rng)
        return {
            "c_rounds": coreset.job.n_rounds,
            "c_ratio": opt / max(1, coreset.matching.shape[0]),
            "c_peak": coreset.job.peak_machine_edges,
            "c1_rounds": coreset1.job.n_rounds,
            "c1_ratio": opt / max(1, coreset1.matching.shape[0]),
            "c1_peak": coreset1.job.peak_machine_edges,
            "f_rounds": filt.n_rounds,
            "f_ratio": opt / max(1, filt.matching_size),
            "f_peak": filt.peak_central_edges,
        }

    m = run_trials(trial, n_trials, seed)
    table.add_row(
        algorithm="coreset-2round",
        rounds_mean=float(m["c_rounds"].mean()),
        ratio_mean=float(m["c_ratio"].mean()),
        peak_machine_edges=float(m["c_peak"].mean()),
        memory_cap=memory,
    )
    table.add_row(
        algorithm="coreset-prerandomized",
        rounds_mean=float(m["c1_rounds"].mean()),
        ratio_mean=float(m["c1_ratio"].mean()),
        peak_machine_edges=float(m["c1_peak"].mean()),
        memory_cap=memory,
    )
    table.add_row(
        algorithm="filtering[46]",
        rounds_mean=float(m["f_rounds"].mean()),
        ratio_mean=float(m["f_ratio"].mean()),
        peak_machine_edges=float(m["f_peak"].mean()),
        memory_cap=memory,
    )
    return table


# --------------------------------------------------------------------- #
# E9 — Remark 5.2: subsampled matching, Õ(nk/α²) communication
# --------------------------------------------------------------------- #
def e9_subsampled_matching(
    n: int = 8000,
    k: int = 8,
    alpha_values: tuple[float, ...] = (2.0, 4.0, 8.0, 16.0),
    n_trials: int = 3,
    seed: RandomState = 99,
) -> ExperimentTable:
    """Sweep α on D_Matching(n, α, k) — the regime of Remark 5.2/Theorem 5,
    where each player's maximum matching is Θ(n/α) — and check ratio ≤ O(α)
    with communication ∝ nk/α².

    Expected shape: bits·α²/(nk) roughly constant across the sweep (the Õ
    hides log factors); ratio stays below ~3α.  On generic workloads where
    per-player matchings are Θ(n) the subsampling only buys a 1/α factor —
    the α² rate is specific to the hard regime, which is why this table
    samples D_Matching rather than a planted Gnp graph.
    """
    from repro.core.protocols import subsampled_matching_protocol
    from repro.dist.coordinator import run_simultaneous
    from repro.graph.partition import random_k_partition
    from repro.lowerbounds.dmatching import sample_dmatching
    from repro.matching.api import matching_number
    from repro.utils.rng import spawn_generators

    table = ExperimentTable(
        name="E9: subsampled matching protocol (Remark 5.2)",
        description=f"D_Matching(n={n}, alpha, k={k}); claim: alpha-approx, "
                    "Õ(nk/alpha²) bits",
        columns=["alpha", "ratio_mean", "total_bits_mean",
                 "bits_x_alpha2_over_nk", "within_3alpha"],
    )
    for alpha in alpha_values:
        protocol = subsampled_matching_protocol(alpha)

        def trial(s):
            g_rng, p_rng, r_rng = spawn_generators(s, 3)
            inst = sample_dmatching(n, alpha, k, g_rng)
            part = random_k_partition(inst.graph, k, p_rng)
            res = run_simultaneous(protocol, part, r_rng)
            opt = matching_number(inst.graph)
            return {
                "ratio": opt / max(1, res.output.shape[0]),
                "bits": res.total_bits,
            }

        m = run_trials(trial, n_trials, seed)
        ratio = float(m["ratio"].mean())
        bits = float(m["bits"].mean())
        table.add_row(
            alpha=alpha,
            ratio_mean=ratio,
            total_bits_mean=bits,
            bits_x_alpha2_over_nk=bits * alpha**2 / (n * k),
            within_3alpha=bool(ratio <= 3 * alpha),
        )
    return table


# --------------------------------------------------------------------- #
# E10 — Remark 5.8: grouped VC, Õ(nk/α) communication
# --------------------------------------------------------------------- #
def e10_grouped_vc(
    n: int = 8000,
    k: int = 8,
    alpha_values: tuple[float, ...] = (16.0, 32.0, 64.0),
    n_trials: int = 3,
    seed: RandomState = 1010,
) -> ExperimentTable:
    """Sweep α; check feasibility, ratio O(α), and communication ∝ nk/α.

    Expected shape: bits scale like 1/α; ratio grows at most linearly in α.
    """
    from repro.core.protocols import grouped_vertex_cover_protocol
    from repro.cover import is_vertex_cover, konig_cover
    from repro.dist.coordinator import run_simultaneous
    from repro.graph.generators import skewed_bipartite
    from repro.graph.partition import random_k_partition
    from repro.utils.rng import spawn_generators

    table = ExperimentTable(
        name="E10: grouped vertex cover protocol (Remark 5.8)",
        description=f"n={n}, k={k}; claim: alpha-approx, Õ(nk/alpha) bits",
        columns=["alpha", "ratio_mean", "feasible", "total_bits_mean",
                 "bits_x_alpha_over_nk"],
    )
    for alpha in alpha_values:
        protocol = grouped_vertex_cover_protocol(k=k, alpha=alpha)

        def trial(s):
            g_rng, p_rng, r_rng = spawn_generators(s, 3)
            half = n // 2
            # Dense enough that the coreset's Õ(n'·log n') message bound is
            # what limits communication (otherwise every protocol just
            # sends its whole sparse piece and the 1/alpha scaling hides).
            graph = skewed_bipartite(
                half, half, hub_count=half // 50, hub_degree=half // 10,
                leaf_p=16.0 / half, rng=g_rng,
            )
            part = random_k_partition(graph, k, p_rng)
            res = run_simultaneous(protocol, part, r_rng)
            opt = int(konig_cover(graph).shape[0])
            return {
                "ratio": res.output.shape[0] / max(1, opt),
                "feasible": float(is_vertex_cover(graph, res.output)),
                "bits": res.total_bits,
            }

        m = run_trials(trial, n_trials, seed)
        bits = float(m["bits"].mean())
        table.add_row(
            alpha=alpha,
            ratio_mean=float(m["ratio"].mean()),
            feasible=bool(m["feasible"].all()),
            total_bits_mean=bits,
            bits_x_alpha_over_nk=bits * alpha / (n * k),
        )
    return table


# --------------------------------------------------------------------- #
# E11 — Appendix A: induced matchings in G(n, n, 1/n)
# --------------------------------------------------------------------- #
def e11_induced_matching(
    n_values: tuple[int, ...] = (1000, 4000, 16000),
    n_trials: int = 5,
    seed: RandomState = 1111,
) -> ExperimentTable:
    """Induced-matching density vs the 1/e³ constant; degree-1 fraction vs
    1/e (Prop A.2 / Lemma A.3)."""
    from repro.graph.generators import bipartite_gnp
    from repro.lowerbounds.induced import (
        degree_one_left_fraction_theory,
        induced_matching,
        induced_matching_density_exact,
        induced_matching_density_theory,
    )
    from repro.utils.rng import spawn_generators

    table = ExperimentTable(
        name="E11: induced matching in G(n,n,1/n) (Appendix A)",
        description="density -> 1/e^2 ≈ 0.1353 exactly, >= 1/e^3 ≈ 0.0498 "
                    "(Lemma A.3 bound); degree-1 fraction -> 1/e ≈ 0.3679",
        columns=["n", "induced_density_mean", "exact_theory", "lemma_a3_bound",
                 "deg1_fraction_mean", "theory_deg1"],
    )
    for n in n_values:
        def trial(s):
            (g_rng,) = spawn_generators(s, 1)
            g = bipartite_gnp(n, n, 1.0 / n, g_rng)
            m = induced_matching(g)
            deg_left = g.degrees[: n]
            return {
                "density": m.shape[0] / n,
                "deg1": float((deg_left == 1).mean()),
            }

        m = run_trials(trial, n_trials, seed)
        table.add_row(
            n=n,
            induced_density_mean=float(m["density"].mean()),
            exact_theory=induced_matching_density_exact(),
            lemma_a3_bound=induced_matching_density_theory(),
            deg1_fraction_mean=float(m["deg1"].mean()),
            theory_deg1=degree_one_left_fraction_theory(),
        )
    return table


# --------------------------------------------------------------------- #
# E12 — §1.1: Crouch–Stubbs weighted extension
# --------------------------------------------------------------------- #
def e12_weighted_matching(
    n: int = 2000,
    k: int = 8,
    weight_spread: float = 100.0,
    n_trials: int = 3,
    seed: RandomState = 1212,
) -> ExperimentTable:
    """Weighted coreset protocol vs the centralized greedy 2-approximation
    and (via it) the optimum.

    Expected shape: protocol weight within a small constant (≈ 4–6 total:
    2 from greedy merge × O(1) from the unweighted coreset) of centralized
    greedy, which itself is ≥ OPT/2.
    """
    from repro.core.weighted import weighted_matching_coreset_protocol
    from repro.graph.generators import bipartite_gnp
    from repro.graph.weights import WeightedGraph
    from repro.matching.weighted import greedy_weighted_matching
    from repro.utils.rng import spawn_generators

    table = ExperimentTable(
        name="E12: weighted matching via Crouch–Stubbs classes (paper §1.1)",
        description=f"weights log-uniform in [1, {weight_spread:g}]",
        columns=["epsilon", "protocol_weight", "central_greedy_weight",
                 "weight_ratio", "classes_bits_mean"],
    )
    for epsilon in (0.5, 1.0):
        def trial(s):
            g_rng, w_rng, p_rng = spawn_generators(s, 3)
            base = bipartite_gnp(n // 2, n // 2, p=4.0 / n, rng=g_rng)
            weights = np.exp(
                w_rng.uniform(0, math.log(weight_spread), size=base.n_edges)
            )
            wg = WeightedGraph(base.n_vertices, base.edges, weights,
                               validated=True)
            res = weighted_matching_coreset_protocol(
                wg, k=k, epsilon=epsilon, rng=p_rng
            )
            _, central = greedy_weighted_matching(wg)
            return {
                "proto": res.weight,
                "central": central,
                "bits": res.ledger.total_bits(),
            }

        m = run_trials(trial, n_trials, seed)
        table.add_row(
            epsilon=epsilon,
            protocol_weight=float(m["proto"].mean()),
            central_greedy_weight=float(m["central"].mean()),
            weight_ratio=float((m["central"] / m["proto"]).mean()),
            classes_bits_mean=float(m["bits"].mean()),
        )
    return table


# --------------------------------------------------------------------- #
# E13 — Result 1→3: total communication Õ(nk)
# --------------------------------------------------------------------- #
def e13_communication_scaling(
    n: int = 4000,
    k_values: tuple[int, ...] = (2, 4, 8, 16, 32),
    n_trials: int = 3,
    seed: RandomState = 1313,
) -> ExperimentTable:
    """Total bits of both coreset protocols as k grows at fixed n.

    Expected shape: total bits ≈ linear in k (Õ(nk)), per-player bits Õ(n),
    and far below the send-everything baseline.
    """
    from repro.baselines.naive import send_everything_protocol
    from repro.core.protocols import (
        matching_coreset_protocol,
        vertex_cover_coreset_protocol,
    )
    from repro.dist.coordinator import run_simultaneous
    from repro.graph.generators import skewed_bipartite
    from repro.graph.partition import random_k_partition
    from repro.utils.rng import spawn_generators

    table = ExperimentTable(
        name="E13: communication scaling (Results 1 and 3)",
        description=f"n={n}; totals in bits; naive = send everything",
        columns=["k", "matching_total_bits", "vc_total_bits",
                 "naive_total_bits", "matching_bits_per_nk",
                 "max_player_bits"],
    )
    match_p = matching_coreset_protocol()
    naive_p = send_everything_protocol("matching")

    for k in k_values:
        vc_p = vertex_cover_coreset_protocol(k=k)

        def trial(s):
            g_rng, p_rng, r_rng = spawn_generators(s, 3)
            half = n // 2
            # A hub-heavy dense workload: hub degrees ~n/4 exceed the
            # peeling thresholds so the VC coreset genuinely compresses,
            # and m ≫ n so the Õ(nk) coreset cost separates from the Θ(m)
            # send-everything baseline.
            graph = skewed_bipartite(
                half, half, hub_count=half // 10, hub_degree=half // 2,
                leaf_p=8.0 / half, rng=g_rng,
            )
            part = random_k_partition(graph, k, p_rng)
            rm = run_simultaneous(match_p, part, r_rng)
            rv = run_simultaneous(vc_p, part, r_rng)
            rn = run_simultaneous(naive_p, part, r_rng)
            return {
                "m_bits": rm.total_bits,
                "v_bits": rv.total_bits,
                "n_bits": rn.total_bits,
                "m_max": rm.ledger.max_player_bits(),
            }

        m = run_trials(trial, n_trials, seed)
        table.add_row(
            k=k,
            matching_total_bits=float(m["m_bits"].mean()),
            vc_total_bits=float(m["v_bits"].mean()),
            naive_total_bits=float(m["n_bits"].mean()),
            matching_bits_per_nk=float(m["m_bits"].mean()) / (n * k),
            max_player_bits=float(m["m_max"].mean()),
        )
    return table


# --------------------------------------------------------------------- #
# E14 — Claim 3.3 / Lemma 3.2: GreedyMatch dynamics
# --------------------------------------------------------------------- #
def e14_greedymatch_dynamics(
    n: int = 4000,
    k: int = 16,
    n_trials: int = 3,
    seed: RandomState = 1414,
) -> ExperimentTable:
    """Instrumented GreedyMatch: per-step prefix concentration (Claim 3.3)
    and per-step gains (Lemma 3.2).

    Expected shape: |M*_{<i}| ≈ (i-1)/k · MM(G); early-step gains
    ≈ Ω(MM/k) while |M| ≤ MM/9.
    """
    from repro.core.greedy_match import greedy_match
    from repro.graph.generators import planted_matching_gnp
    from repro.graph.partition import random_k_partition
    from repro.matching.api import maximum_matching
    from repro.utils.rng import spawn_generators

    table = ExperimentTable(
        name="E14: GreedyMatch dynamics (Claim 3.3, Lemma 3.2)",
        description=f"n={n}, k={k}; prefix_dev = max_i |prefix_i - (i/k)·MM| / MM",
        columns=["k", "final_ratio", "prefix_deviation_max",
                 "first_third_gain_over_mm_per_k", "final_over_mm"],
    )

    def trial(s):
        g_rng, p_rng = spawn_generators(s, 2)
        graph, _ = planted_matching_gnp(n // 2, n // 2, p=3.0 / n, rng=g_rng)
        part = random_k_partition(graph, k, p_rng)
        opt_matching = maximum_matching(graph)
        mm = opt_matching.shape[0]
        _, trace = greedy_match(part, reference_optimum=opt_matching)
        prefix = np.asarray(trace.optimal_assigned_prefix, dtype=np.float64)
        ideal = np.arange(k, dtype=np.float64) / k * mm
        dev = float(np.abs(prefix - ideal).max() / mm)
        gains = np.asarray(trace.gains[: max(1, k // 3)], dtype=np.float64)
        return {
            "ratio": mm / max(1, trace.final_size),
            "dev": dev,
            "gain": float(gains.mean() / (mm / k)),
            "final_frac": trace.final_size / mm,
        }

    m = run_trials(trial, n_trials, seed)
    table.add_row(
        k=k,
        final_ratio=float(m["ratio"].mean()),
        prefix_deviation_max=float(m["dev"].max()),
        first_third_gain_over_mm_per_k=float(m["gain"].mean()),
        final_over_mm=float(m["final_frac"].mean()),
    )
    return table


# --------------------------------------------------------------------- #
# E15 — ablation: summarizer × combiner grid
# --------------------------------------------------------------------- #
def e15_ablation(
    n: int = 4000,
    k: int = 8,
    n_trials: int = 3,
    seed: RandomState = 1515,
) -> ExperimentTable:
    """One workload, all summarizer/combiner variants side by side.

    Expected shape: maximum+exact ≈ maximum+greedy ≫ maximal (random order)
    on trap-free inputs maximal is fine; subsampled degrades gracefully;
    send-everything is exact but orders of magnitude more bits.
    """
    from repro.baselines.bad_coresets import maximal_matching_coreset_protocol
    from repro.baselines.naive import send_everything_protocol
    from repro.core.protocols import (
        matching_coreset_protocol,
        subsampled_matching_protocol,
    )
    from repro.dist.coordinator import run_simultaneous
    from repro.graph.generators import planted_matching_gnp
    from repro.graph.partition import random_k_partition
    from repro.matching.api import matching_number
    from repro.utils.rng import spawn_generators

    variants = [
        ("maximum+exact", matching_coreset_protocol(combiner="exact")),
        ("maximum+greedy", matching_coreset_protocol(combiner="greedy")),
        ("maximal(random)+exact",
         maximal_matching_coreset_protocol(order="random")),
        ("subsampled(alpha=4)+exact", subsampled_matching_protocol(4.0)),
        ("send-everything", send_everything_protocol("matching")),
    ]
    table = ExperimentTable(
        name="E15: summarizer/combiner ablation",
        description=f"bipartite planted workload, n={n}, k={k}",
        columns=["variant", "ratio_mean", "total_bits_mean"],
    )
    for name, protocol in variants:
        def trial(s):
            g_rng, p_rng, r_rng = spawn_generators(s, 3)
            graph, _ = planted_matching_gnp(n // 2, n // 2, p=3.0 / n, rng=g_rng)
            part = random_k_partition(graph, k, p_rng)
            res = run_simultaneous(protocol, part, r_rng)
            opt = matching_number(graph)
            return {
                "ratio": opt / max(1, res.output.shape[0]),
                "bits": res.total_bits,
            }

        m = run_trials(trial, n_trials, seed)
        table.add_row(
            variant=name,
            ratio_mean=float(m["ratio"].mean()),
            total_bits_mean=float(m["bits"].mean()),
        )
    return table


# --------------------------------------------------------------------- #
# E16 — §1.3 connection: random-arrival streaming
# --------------------------------------------------------------------- #
def e16_streaming_orders(
    n: int = 8000,
    noise_degree: float = 3.0,
    n_trials: int = 3,
    seed: RandomState = 1616,
) -> ExperimentTable:
    """The streaming shadow of random partitioning: one-pass greedy under
    random vs adversarial arrival, plus the two-phase random-arrival
    matcher.

    Expected shape: greedy ≥ 0.5·OPT always (maximality); random order
    beats adversarial order; two-phase beats greedy on random order.
    """
    from repro.graph.generators import planted_matching_gnp
    from repro.matching.api import maximum_matching
    from repro.streaming import (
        StreamingGreedyMatcher,
        TwoPhaseStreamingMatcher,
        adversarial_order,
        random_order,
    )
    from repro.utils.rng import spawn_generators

    table = ExperimentTable(
        name="E16: streaming arrival orders (paper §1.3 connection)",
        description=f"n={n}; one-pass semi-streaming, ratios vs MM(G)",
        columns=["order", "greedy_ratio", "two_phase_ratio",
                 "memory_words_over_n"],
    )
    results: dict[str, list[dict[str, float]]] = {"random": [], "adversarial": []}

    def trial(s):
        g_rng, o_rng, o2_rng = spawn_generators(s, 3)
        graph, _ = planted_matching_gnp(
            n // 2, n // 2, p=noise_degree / n, rng=g_rng
        )
        opt_matching = maximum_matching(graph)
        opt = opt_matching.shape[0]
        out = {}
        orders = {
            "random": random_order(graph, o_rng),
            "adversarial": adversarial_order(graph, opt_matching, o2_rng),
        }
        for name, order in orders.items():
            greedy = StreamingGreedyMatcher(graph.n_vertices)
            g_m = greedy.run(graph, order)
            two = TwoPhaseStreamingMatcher(graph.n_vertices)
            t_m = two.run(graph, order)
            out[f"{name}_greedy"] = g_m.shape[0] / max(1, opt)
            out[f"{name}_two"] = t_m.shape[0] / max(1, opt)
            out[f"{name}_mem"] = two.memory_words / graph.n_vertices
        return out

    m = run_trials(trial, n_trials, seed)
    for name in ("random", "adversarial"):
        table.add_row(
            order=name,
            greedy_ratio=float(m[f"{name}_greedy"].mean()),
            two_phase_ratio=float(m[f"{name}_two"].mean()),
            memory_words_over_n=float(m[f"{name}_mem"].mean()),
        )
    return table


# --------------------------------------------------------------------- #
# E17 — footnote 3: exact kernel coresets for small optima
# --------------------------------------------------------------------- #
def e17_exact_kernel(
    opt_values: tuple[int, ...] = (32, 128, 512),
    n: int = 8000,
    k: int = 8,
    n_trials: int = 3,
    seed: RandomState = 1717,
) -> ExperimentTable:
    """Exact matching via composable kernels when MM(G) ≤ K (footnote 3).

    Expected shape: output exactly MM(G) under *both* random and
    adversarial partitioning; kernel size grows ~O(K²), not with n.
    """
    from repro.core.kernel_coreset import exact_matching_kernel_protocol
    from repro.dist.coordinator import run_simultaneous
    from repro.graph.generators import planted_matching_gnp
    from repro.graph.partition import (
        adversarial_degree_partition,
        random_k_partition,
    )
    from repro.matching.api import matching_number
    from repro.utils.rng import spawn_generators

    table = ExperimentTable(
        name="E17: exact kernel coresets for small optima (footnote 3)",
        description=f"n={n}, k={k}; kernel = maximal matching core + "
                    "3K+2 extra edges per matched vertex",
        columns=["opt_bound", "mm", "exact_random", "exact_adversarial",
                 "graph_edges", "kernel_edges_total"],
    )
    for opt_bound in opt_values:
        protocol = exact_matching_kernel_protocol(opt_bound)

        def trial(s):
            g_rng, p_rng, r_rng = spawn_generators(s, 3)
            # MM(G) = opt_bound: planted matching on opt_bound left
            # vertices plus dense noise touching only those lefts, so the
            # kernel's O(K²) size bound is what binds (not the graph size).
            graph, _ = planted_matching_gnp(
                opt_bound, n, p=16.0 / opt_bound, rng=g_rng
            )
            mm = matching_number(graph)
            rand = run_simultaneous(
                protocol, random_k_partition(graph, k, p_rng), r_rng
            )
            adv = run_simultaneous(
                protocol, adversarial_degree_partition(graph, k), r_rng
            )
            return {
                "mm": mm,
                "rand_exact": float(rand.output.shape[0] == mm),
                "adv_exact": float(adv.output.shape[0] == mm),
                "graph_edges": graph.n_edges,
                "kernel_edges": rand.ledger.total_edges(),
            }

        m = run_trials(trial, n_trials, seed)
        table.add_row(
            opt_bound=opt_bound,
            mm=float(m["mm"].mean()),
            exact_random=bool(m["rand_exact"].all()),
            exact_adversarial=bool(m["adv_exact"].all()),
            graph_edges=float(m["graph_edges"].mean()),
            kernel_edges_total=float(m["kernel_edges"].mean()),
        )
    return table


# --------------------------------------------------------------------- #
# E18 — robustness: both coresets across graph families
# --------------------------------------------------------------------- #
def e18_family_robustness(
    n: int = 4000,
    k: int = 8,
    n_trials: int = 3,
    seed: RandomState = 1818,
) -> ExperimentTable:
    """Theorem 1/2 coresets across structurally different workloads:
    Gnp, planted matching, power-law, community-clustered, star-heavy.

    The theorems are worst-case over graphs (only the partitioning is
    random), so the ratios should stay inside the bounds on *every*
    family.  Expected shape: matching ratio ≤ ~3 and VC ratio ≤ O(log n)
    across the board, with heavy-tailed families the hardest.
    """
    from repro.core.protocols import (
        matching_coreset_protocol,
        vertex_cover_coreset_protocol,
    )
    from repro.cover import is_vertex_cover, konig_cover
    from repro.dist.coordinator import run_simultaneous
    from repro.graph.generators import (
        bipartite_gnp,
        bipartite_star_forest,
        clustered_bipartite,
        planted_matching_gnp,
        power_law_bipartite,
    )
    from repro.graph.partition import random_k_partition
    from repro.matching.api import matching_number
    from repro.utils.rng import spawn_generators

    half = n // 2
    families = {
        "gnp": lambda r: bipartite_gnp(half, half, 3.0 / half, r),
        "planted": lambda r: planted_matching_gnp(
            half, half, 2.0 / n, rng=r
        )[0],
        "power_law": lambda r: power_law_bipartite(
            half, half, avg_degree=4.0, exponent=2.2, rng=r
        ),
        "clustered": lambda r: clustered_bipartite(
            n_blocks=max(2, half // 100), block_size=100,
            p_in=0.08, p_out=0.2 / half, rng=r,
        ),
        "stars+noise": lambda r: bipartite_star_forest(
            half // 8, 8
        ).union(bipartite_gnp(half // 8, half, 1.0 / half, r)),
    }

    table = ExperimentTable(
        name="E18: coreset robustness across graph families",
        description=f"n≈{n}, k={k}; Theorem 1 + Theorem 2 on five families",
        columns=["family", "matching_ratio_mean", "matching_ratio_max",
                 "vc_ratio_mean", "vc_feasible"],
    )
    match_p = matching_coreset_protocol()

    for family, make in families.items():
        vc_p = vertex_cover_coreset_protocol(k=k)

        def trial(s):
            g_rng, p_rng, r_rng = spawn_generators(s, 3)
            graph = make(g_rng)
            part = random_k_partition(graph, k, p_rng)
            rm = run_simultaneous(match_p, part, r_rng)
            rv = run_simultaneous(vc_p, part, r_rng)
            mm = matching_number(graph)
            vc = int(konig_cover(graph).shape[0])
            return {
                "m_ratio": mm / max(1, rm.output.shape[0]),
                "v_ratio": rv.output.shape[0] / max(1, vc),
                "v_feasible": float(is_vertex_cover(graph, rv.output)),
            }

        m = run_trials(trial, n_trials, seed)
        table.add_row(
            family=family,
            matching_ratio_mean=float(m["m_ratio"].mean()),
            matching_ratio_max=float(m["m_ratio"].max()),
            vc_ratio_mean=float(m["v_ratio"].mean()),
            vc_feasible=bool(m["v_feasible"].all()),
        )
    return table


# --------------------------------------------------------------------- #
# E19 — §1.3: edge-partition vs vertex-partition simultaneous models
# --------------------------------------------------------------------- #
def e19_vertex_partition_model(
    n: int = 4000,
    k_values: tuple[int, ...] = (4, 16),
    n_trials: int = 3,
    seed: RandomState = 1919,
) -> ExperimentTable:
    """Run the Theorem 1 coreset in both simultaneous models.

    In the paper's edge-partition model each edge lives on one machine; in
    the [10] vertex-partition model each machine sees all edges incident on
    its vertices (cross edges are duplicated, duplication factor → 2−1/k).
    Expected shape: quality comparable on benign inputs (the [10] hardness
    needs Ruzsa–Szemerédi instances), but the vertex model pays the
    duplication factor in communication — and each machine's piece is a
    constant fraction of the graph, so the per-player Õ(n) budget is simply
    bypassed rather than met.
    """
    from repro.core.protocols import matching_coreset_protocol
    from repro.dist.coordinator import run_simultaneous
    from repro.graph.generators import planted_matching_gnp
    from repro.graph.partition import (
        random_k_partition,
        random_vertex_partition,
    )
    from repro.matching.api import matching_number
    from repro.utils.rng import spawn_generators

    table = ExperimentTable(
        name="E19: edge-partition vs vertex-partition models (§1.3 / [10])",
        description=f"n={n}; same Theorem 1 summarizer in both models",
        columns=["k", "edge_model_ratio", "vertex_model_ratio",
                 "edge_model_bits", "vertex_model_bits",
                 "duplication_factor"],
    )
    protocol = matching_coreset_protocol()

    for k in k_values:
        def trial(s):
            g_rng, p_rng, v_rng, r_rng = spawn_generators(s, 4)
            graph, _ = planted_matching_gnp(
                n // 2, n // 2, p=3.0 / n, rng=g_rng
            )
            opt = matching_number(graph)
            edge_part = random_k_partition(graph, k, p_rng)
            vertex_part = random_vertex_partition(graph, k, v_rng)
            re_ = run_simultaneous(protocol, edge_part, r_rng)
            rv = run_simultaneous(protocol, vertex_part, r_rng)
            return {
                "e_ratio": opt / max(1, re_.output.shape[0]),
                "v_ratio": opt / max(1, rv.output.shape[0]),
                "e_bits": re_.total_bits,
                "v_bits": rv.total_bits,
                "dup": vertex_part.duplication_factor(),
            }

        m = run_trials(trial, n_trials, seed)
        table.add_row(
            k=k,
            edge_model_ratio=float(m["e_ratio"].mean()),
            vertex_model_ratio=float(m["v_ratio"].mean()),
            edge_model_bits=float(m["e_bits"].mean()),
            vertex_model_bits=float(m["v_bits"].mean()),
            duplication_factor=float(m["dup"].mean()),
        )
    return table


# --------------------------------------------------------------------- #
# E20 — the "w.h.p." itself: concentration of the coreset guarantee
# --------------------------------------------------------------------- #
def e20_concentration(
    n_values: tuple[int, ...] = (500, 2000, 8000),
    k: int = 8,
    n_trials: int = 20,
    ratio_threshold: float = 1.5,
    seed: RandomState = 2020,
) -> ExperimentTable:
    """Theorem 1 and Claim 3.3 are "with high probability" statements:
    the failure probability must *vanish as n grows* (the proofs lose
    O(1/n) per Chernoff application).  This experiment estimates tail
    probabilities across many independent partitionings.

    Expected shape: P[ratio > threshold] and the spread of the per-step
    prefix deviation both shrink monotonically-ish in n.
    """
    from repro.core.greedy_match import greedy_match
    from repro.core.protocols import matching_coreset_protocol
    from repro.dist.coordinator import run_simultaneous
    from repro.graph.generators import planted_matching_gnp
    from repro.graph.partition import random_k_partition
    from repro.matching.api import maximum_matching
    from repro.utils.rng import spawn_generators

    table = ExperimentTable(
        name="E20: concentration of the w.h.p. guarantees",
        description=f"k={k}, {n_trials} independent partitionings per n; "
                    f"tail = P[ratio > {ratio_threshold:g}]",
        columns=["n", "ratio_mean", "ratio_std", "ratio_max",
                 "tail_probability", "prefix_dev_max"],
    )
    protocol = matching_coreset_protocol()

    for n in n_values:
        def trial(s):
            g_rng, p_rng, r_rng = spawn_generators(s, 3)
            graph, _ = planted_matching_gnp(
                n // 2, n // 2, p=3.0 / n, rng=g_rng
            )
            opt_matching = maximum_matching(graph)
            mm = opt_matching.shape[0]
            part = random_k_partition(graph, k, p_rng)
            res = run_simultaneous(protocol, part, r_rng)
            _, trace = greedy_match(part, reference_optimum=opt_matching)
            prefix = np.asarray(trace.optimal_assigned_prefix, float)
            ideal = np.arange(k, dtype=float) / k * mm
            dev = float(np.abs(prefix - ideal).max() / max(1, mm))
            return {
                "ratio": mm / max(1, res.output.shape[0]),
                "dev": dev,
            }

        m = run_trials(trial, n_trials, seed)
        ratios = m["ratio"]
        table.add_row(
            n=n,
            ratio_mean=float(ratios.mean()),
            ratio_std=float(ratios.std(ddof=1)),
            ratio_max=float(ratios.max()),
            tail_probability=float((ratios > ratio_threshold).mean()),
            prefix_dev_max=float(m["dev"].max()),
        )
    return table


# --------------------------------------------------------------------- #
# E21 — parallel scaling of the execution backends (E8 workload)
# --------------------------------------------------------------------- #
def e21_parallel_scaling(
    n: int = 4000,
    avg_degree: float = 24.0,
    n_trials: int = 3,
    seed: RandomState = 2121,
    executors: tuple[str, ...] = ("serial", "processes"),
    workers: int | None = None,
) -> ExperimentTable:
    """Wall-clock of the E8 MapReduce matching workload per executor backend.

    Expected shape: every backend bit-identical to the first (serial);
    process speedup grows toward min(k, cores) as pieces get heavier.
    Wall-clock columns are measurements of *this* machine, not of the
    model — only the identical_to_serial column is a correctness claim.
    """
    import time

    from repro.core.mapreduce_algos import mapreduce_matching
    from repro.dist.executor import resolve_executor
    from repro.graph.generators import planted_matching_gnp
    from repro.utils.rng import spawn_seeds

    table = ExperimentTable(
        name="E21: parallel scaling (executor backends, E8 workload)",
        description=f"n={n}, m≈{int(n * avg_degree / 2)}, {n_trials} trials; "
                    f"speedup and identity are vs a serial run of the same "
                    f"seeds",
        columns=["executor", "workers", "wall_s_mean", "wall_s_min",
                 "speedup", "matching_size_mean", "identical_to_serial"],
    )
    memory = int(n ** 1.5)

    # One workload per trial, shared by every backend: the graph is built
    # outside the timed region and the MapReduce seed is replayed per
    # backend, so rows differ only in where the machines ran.
    workloads = []
    for s in spawn_seeds(seed, n_trials):
        g_seed, mr_seed = s.spawn(2)
        graph, _ = planted_matching_gnp(
            n // 2, n // 2, p=avg_degree / n,
            rng=np.random.default_rng(g_seed),
        )
        workloads.append((graph, mr_seed))

    def measure(backend) -> tuple[list[float], list[np.ndarray]]:
        walls, matchings = [], []
        for graph, mr_seed in workloads:
            start = time.perf_counter()
            res = mapreduce_matching(
                graph, rng=mr_seed, memory_cap_edges=memory,
                executor=backend,
            )
            walls.append(time.perf_counter() - start)
            matchings.append(res.matching)
        return walls, matchings

    # The reference is always a genuine serial run — identical_to_serial
    # must mean what it says even if "serial" is not among `executors`.
    serial_walls, serial_matchings = measure(resolve_executor("serial"))
    serial_mean = float(np.mean(serial_walls))

    for spec in executors:
        backend = resolve_executor(spec, workers=workers)
        if backend.name == "serial":
            walls, matchings = serial_walls, serial_matchings
        else:
            walls, matchings = measure(backend)
        mean_wall = float(np.mean(walls))
        table.add_row(
            executor=backend.name,
            workers=getattr(backend, "max_workers", 1),
            wall_s_mean=mean_wall,
            wall_s_min=float(np.min(walls)),
            speedup=serial_mean / max(mean_wall, 1e-12),
            matching_size_mean=float(
                np.mean([m.shape[0] for m in matchings])
            ),
            identical_to_serial=all(
                np.array_equal(a, b)
                for a, b in zip(matchings, serial_matchings)
            ),
        )
    return table
