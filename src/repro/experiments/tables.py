"""E1–E23: one declarative spec per reproduced claim.

The paper is theoretical; each "table" here is the empirical rendering of
one theorem/remark/example, as indexed in DESIGN.md §4.  Every experiment
is registered with the :mod:`repro.experiments.registry` via the
:func:`~repro.experiments.registry.experiment` decorator: the spec carries
id, title, description, columns, the default parameter grid, and the seed,
while the builder below sweeps the grid, runs the picklable
:mod:`~repro.experiments.trials` dataclasses through
:func:`~repro.experiments.harness.run_trials`, and aggregates the metrics
into rows.  Every table is deterministic given its ``seed`` — on any
executor backend.

The decorated names (``e1_matching_coreset`` …) remain callable with
keyword overrides for backward compatibility; new code should resolve
experiments through the registry (``get_experiment("e1").run(...)``).  See
``docs/EXPERIMENTS_API.md``.
"""

from __future__ import annotations

import math

from repro.experiments.harness import run_trials
from repro.experiments.registry import ExperimentSpec, experiment
from repro.experiments.trials import (
    E1Trial,
    E2Trial,
    E3Trial,
    E4Trial,
    E5Trial,
    E6Trial,
    E7Trial,
    E8Trial,
    E9Trial,
    E10Trial,
    E11Trial,
    E12Trial,
    E13Trial,
    E14Trial,
    E15Trial,
    E16Trial,
    E17Trial,
    E18Trial,
    E19Trial,
    E20Trial,
    E21Trial,
    E22Trial,
    E23Trial,
    E15_VARIANTS,
    E18_FAMILIES,
)

__all__ = [
    "e1_matching_coreset",
    "e2_maximal_coreset_bad",
    "e3_vc_coreset",
    "e4_minvc_coreset_bad",
    "e5_matching_size_lb",
    "e6_vc_size_lb",
    "e7_random_vs_adversarial",
    "e8_mapreduce_rounds",
    "e9_subsampled_matching",
    "e10_grouped_vc",
    "e11_induced_matching",
    "e12_weighted_matching",
    "e13_communication_scaling",
    "e14_greedymatch_dynamics",
    "e15_ablation",
    "e16_streaming_orders",
    "e17_exact_kernel",
    "e18_family_robustness",
    "e19_vertex_partition_model",
    "e20_concentration",
    "e21_parallel_scaling",
    "e22_workload_partitions",
    "e23_bmatching_coreset",
]


# --------------------------------------------------------------------- #
# E1 — Theorem 1: max-matching coreset is O(1)-approximate
# --------------------------------------------------------------------- #
@experiment(
    "e1",
    title="E1: matching coreset approximation (Theorem 1)",
    description="ratio = MM(G) / |composed matching|; theory bound 9",
    columns=["graph", "n", "k", "ratio_mean", "ratio_max",
             "coreset_edges_mean"],
    grid=dict(n_values=(2000, 6000), k_values=(4, 16, 64), n_trials=3,
              general_graphs=False),
    seed=11,
)
def e1_matching_coreset(spec: ExperimentSpec, *, n_values, k_values,
                        n_trials, general_graphs, seed, executor):
    """Approximation ratio of the Theorem 1 coreset vs n and k.

    Expected shape: ratio ≤ ~3 (theory: ≤ 9), flat in both n and k.
    """
    table = spec.new_table()
    for n in n_values:
        for k in k_values:
            trial = E1Trial(n=n, k=k, general_graphs=general_graphs)
            m = run_trials(trial, n_trials, seed, executor=executor)
            table.add_row(
                graph="gnp" if general_graphs else "bip+planted",
                n=n,
                k=k,
                ratio_mean=float(m["ratio"].mean()),
                ratio_max=float(m["ratio"].max()),
                coreset_edges_mean=float(m["coreset_edges"].mean()),
            )
    return table


# --------------------------------------------------------------------- #
# E2 — §1.2: maximal-matching coreset is Ω(k)
# --------------------------------------------------------------------- #
@experiment(
    "e2",
    title="E2: maximal-matching coreset failure (paper §1.2)",
    description="same random partition; only the summarizer differs; "
                "opt >= N = k*width hidden edges",
    columns=["k", "opt_lb", "maximal_ratio", "maximum_ratio"],
    grid=dict(k_values=(4, 8, 16, 32), width=64, n_trials=3),
    seed=22,
)
def e2_maximal_coreset_bad(spec: ExperimentSpec, *, k_values, width,
                           n_trials, seed, executor):
    """Worst-case *maximal* matching vs *maximum* matching as coresets on
    the hidden-matching-with-hubs instance (§1.2's Ω(k) example).

    Expected shape: maximal-coreset ratio grows ~linearly with k (≈ k/2 at
    hub slack 2); the Theorem 1 coreset stays O(1) on the same inputs and
    the same random partitions.
    """
    table = spec.new_table()
    for k in k_values:
        m = run_trials(E2Trial(k=k, width=width), n_trials, seed,
                       executor=executor)
        table.add_row(
            k=k,
            opt_lb=float(m["opt"].mean()),
            maximal_ratio=float(m["bad_ratio"].mean()),
            maximum_ratio=float(m["good_ratio"].mean()),
        )
    return table


# --------------------------------------------------------------------- #
# E3 — Theorem 2: VC coreset is O(log n)-approximate, size O(n log n)
# --------------------------------------------------------------------- #
@experiment(
    "e3",
    title="E3: vertex-cover coreset approximation (Theorem 2)",
    description="ratio = |composed cover| / VC(G); theory bound O(log n)",
    columns=["n", "k", "ratio_mean", "ratio_max", "log2_n",
             "residual_edges_mean", "fixed_vertices_mean", "feasible"],
    grid=dict(n_values=(2000, 8000), k_values=(4, 16), n_trials=3),
    seed=33,
)
def e3_vc_coreset(spec: ExperimentSpec, *, n_values, k_values, n_trials,
                  seed, executor):
    """Approximation ratio and message size of the Theorem 2 coreset on
    skewed-degree bipartite workloads.

    Expected shape: ratio well below log2(n); residual size O(n log n).
    """
    table = spec.new_table()
    for n in n_values:
        for k in k_values:
            m = run_trials(E3Trial(n=n, k=k), n_trials, seed,
                           executor=executor)
            table.add_row(
                n=n, k=k,
                ratio_mean=float(m["ratio"].mean()),
                ratio_max=float(m["ratio"].max()),
                log2_n=math.log2(n),
                residual_edges_mean=float(m["residual"].mean()),
                fixed_vertices_mean=float(m["fixed"].mean()),
                feasible=bool(m["feasible"].all()),
            )
    return table


# --------------------------------------------------------------------- #
# E4 — §1.2: min-VC-as-coreset is Ω(k) (star example)
# --------------------------------------------------------------------- #
@experiment(
    "e4",
    title="E4: min-VC coreset failure (paper §1.2 star example)",
    description="stars with ~k leaves each; OPT = n_stars (the centers)",
    columns=["k", "opt", "minvc_ratio", "peeling_ratio", "both_feasible"],
    grid=dict(k_values=(4, 8, 16, 32), n_stars=64, n_trials=3),
    seed=44,
)
def e4_minvc_coreset_bad(spec: ExperimentSpec, *, k_values, n_stars,
                         n_trials, seed, executor):
    """Min-VC-of-the-piece vs the Theorem 2 peeling coreset on star forests.

    Expected shape: min-VC coreset ratio grows ~linearly in k (leaves get
    certified); the peeling coreset stays O(log n).
    """
    table = spec.new_table()
    for k in k_values:
        m = run_trials(E4Trial(k=k, n_stars=n_stars), n_trials, seed,
                       executor=executor)
        table.add_row(
            k=k,
            opt=n_stars,
            minvc_ratio=float(m["bad_ratio"].mean()),
            peeling_ratio=float(m["good_ratio"].mean()),
            both_feasible=bool(m["feasible"].all()),
        )
    return table


# --------------------------------------------------------------------- #
# E5 — Theorem 3: matching coresets need Ω(n/α²) edges
# --------------------------------------------------------------------- #
@experiment(
    "e5",
    title="E5: matching coreset size lower bound (Theorem 3)",
    description="D_Matching budget sweep around the n/alpha^2 threshold",
    columns=["budget", "budget_over_threshold", "ratio_mean",
             "hidden_recovered_mean", "beats_alpha"],
    grid=dict(n=8000, alpha=8.0, k=8,
              budget_factors=(0.125, 0.5, 1.0, 4.0, 16.0), n_trials=3),
    seed=55,
)
def e5_matching_size_lb(spec: ExperimentSpec, *, n, alpha, k,
                        budget_factors, n_trials, seed, executor):
    """Budget-limited coresets on D_Matching, budgets around n/α².

    Expected shape: achieved ratio crosses α as the per-machine budget
    crosses ~n/α² (the Theorem 3 threshold).
    """
    threshold = n / alpha**2
    table = spec.new_table(
        description=f"D_Matching(n={n}, alpha={alpha:g}, k={k}); "
                    f"threshold budget n/alpha^2 = {threshold:.0f}",
    )
    for factor in budget_factors:
        budget = max(1, int(round(factor * threshold)))
        m = run_trials(E5Trial(n=n, alpha=alpha, k=k, budget=budget),
                       n_trials, seed, executor=executor)
        ratio = float(m["ratio"].mean())
        table.add_row(
            budget=budget,
            budget_over_threshold=factor,
            ratio_mean=ratio,
            hidden_recovered_mean=float(m["hidden"].mean()),
            beats_alpha=bool(ratio < alpha),
        )
    return table


# --------------------------------------------------------------------- #
# E6 — Theorem 4: VC coresets need Ω(n/α) size
# --------------------------------------------------------------------- #
@experiment(
    "e6",
    title="E6: vertex-cover coreset size lower bound (Theorem 4)",
    description="D_VC budget sweep around the n/alpha threshold",
    columns=["budget", "budget_over_threshold", "p_estar_covered",
             "p_feasible", "cover_size_mean"],
    grid=dict(n=8000, alpha=8.0, k=8, budget_factors=(0.05, 0.25, 1.0, 4.0),
              n_trials=5),
    seed=66,
)
def e6_vc_size_lb(spec: ExperimentSpec, *, n, alpha, k, budget_factors,
                  n_trials, seed, executor):
    """Budget-limited coresets on D_VC, budgets around n/α.

    Expected shape: P[e* covered] (hence feasibility) collapses once the
    budget drops below ~n/α.
    """
    threshold = n / alpha
    table = spec.new_table(
        description=f"D_VC(n={n}, alpha={alpha:g}, k={k}); "
                    f"threshold budget n/alpha = {threshold:.0f}",
    )
    for factor in budget_factors:
        budget = max(1, int(round(factor * threshold)))
        m = run_trials(E6Trial(n=n, alpha=alpha, k=k, budget=budget),
                       n_trials, seed, executor=executor)
        table.add_row(
            budget=budget,
            budget_over_threshold=factor,
            p_estar_covered=float(m["covered"].mean()),
            p_feasible=float(m["feasible"].mean()),
            cover_size_mean=float(m["size"].mean()),
        )
    return table


# --------------------------------------------------------------------- #
# E7 — headline: random vs adversarial partitioning
# --------------------------------------------------------------------- #
@experiment(
    "e7",
    title="E7: random vs adversarial partitioning (headline contrast)",
    description="decoy-gadget instance; predicted adversarial ratio (k+1)/2",
    columns=["k", "opt_mean", "random_ratio", "adversarial_ratio",
             "predicted_adversarial"],
    grid=dict(k_values=(4, 8, 16), n_hidden_per_k=48, n_trials=3),
    seed=77,
)
def e7_random_vs_adversarial(spec: ExperimentSpec, *, k_values,
                             n_hidden_per_k, n_trials, seed, executor):
    """Same graph, same Theorem 1 coreset, two partitionings.

    Expected shape: random ratio O(1); adversarial ratio ≈ (k+1)/2.
    """
    table = spec.new_table()
    for k in k_values:
        m = run_trials(E7Trial(k=k, n_hidden=n_hidden_per_k * k),
                       n_trials, seed, executor=executor)
        table.add_row(
            k=k,
            opt_mean=float(m["opt"].mean()),
            random_ratio=float(m["rand"].mean()),
            adversarial_ratio=float(m["adv"].mean()),
            predicted_adversarial=(k + 1) / 2,
        )
    return table


# --------------------------------------------------------------------- #
# E8 — MapReduce: rounds and memory vs the filtering baseline
# --------------------------------------------------------------------- #
@experiment(
    "e8",
    title="E8: MapReduce rounds (paper MR corollary vs filtering [46])",
    description="coreset MapReduce vs filtering at memory budget n^1.5",
    columns=["algorithm", "rounds_mean", "ratio_mean",
             "peak_machine_edges", "memory_cap"],
    grid=dict(n=4000, avg_degree=24.0, n_trials=3),
    seed=88,
)
def e8_mapreduce_rounds(spec: ExperimentSpec, *, n, avg_degree, n_trials,
                        seed, executor):
    """2-round coreset MapReduce vs the [46] filtering algorithm at the
    paper's memory budget Õ(n^1.5).

    Expected shape: coreset = 2 rounds (1 when pre-randomized), ratio ≤ ~3;
    filtering ≥ 3 rounds with ratio ≤ 2.
    """
    memory = int(n**1.5)
    table = spec.new_table(
        description=f"n={n}, m≈{int(n * avg_degree / 2)}, memory n^1.5≈"
                    f"{memory} edges",
    )
    m = run_trials(
        E8Trial(n=n, avg_degree=avg_degree, memory_cap_edges=memory),
        n_trials, seed, executor=executor,
    )
    for label, prefix in (("coreset-2round", "c"),
                          ("coreset-prerandomized", "c1"),
                          ("filtering[46]", "f")):
        table.add_row(
            algorithm=label,
            rounds_mean=float(m[f"{prefix}_rounds"].mean()),
            ratio_mean=float(m[f"{prefix}_ratio"].mean()),
            peak_machine_edges=float(m[f"{prefix}_peak"].mean()),
            memory_cap=memory,
        )
    return table


# --------------------------------------------------------------------- #
# E9 — Remark 5.2: subsampled matching, Õ(nk/α²) communication
# --------------------------------------------------------------------- #
@experiment(
    "e9",
    title="E9: subsampled matching protocol (Remark 5.2)",
    description="alpha sweep on D_Matching; claim: alpha-approx, "
                "Õ(nk/alpha²) bits",
    columns=["alpha", "ratio_mean", "total_bits_mean",
             "bits_x_alpha2_over_nk", "within_3alpha"],
    grid=dict(n=8000, k=8, alpha_values=(2.0, 4.0, 8.0, 16.0), n_trials=3),
    seed=99,
)
def e9_subsampled_matching(spec: ExperimentSpec, *, n, k, alpha_values,
                           n_trials, seed, executor):
    """Sweep α on D_Matching(n, α, k) — the regime of Remark 5.2/Theorem 5,
    where each player's maximum matching is Θ(n/α) — and check ratio ≤ O(α)
    with communication ∝ nk/α².

    Expected shape: bits·α²/(nk) roughly constant across the sweep (the Õ
    hides log factors); ratio stays below ~3α.  On generic workloads where
    per-player matchings are Θ(n) the subsampling only buys a 1/α factor —
    the α² rate is specific to the hard regime, which is why this table
    samples D_Matching rather than a planted Gnp graph.
    """
    table = spec.new_table(
        description=f"D_Matching(n={n}, alpha, k={k}); claim: alpha-approx, "
                    "Õ(nk/alpha²) bits",
    )
    for alpha in alpha_values:
        m = run_trials(E9Trial(n=n, k=k, alpha=alpha), n_trials, seed,
                       executor=executor)
        ratio = float(m["ratio"].mean())
        bits = float(m["bits"].mean())
        table.add_row(
            alpha=alpha,
            ratio_mean=ratio,
            total_bits_mean=bits,
            bits_x_alpha2_over_nk=bits * alpha**2 / (n * k),
            within_3alpha=bool(ratio <= 3 * alpha),
        )
    return table


# --------------------------------------------------------------------- #
# E10 — Remark 5.8: grouped VC, Õ(nk/α) communication
# --------------------------------------------------------------------- #
@experiment(
    "e10",
    title="E10: grouped vertex cover protocol (Remark 5.8)",
    description="alpha sweep; claim: alpha-approx, Õ(nk/alpha) bits",
    columns=["alpha", "ratio_mean", "feasible", "total_bits_mean",
             "bits_x_alpha_over_nk"],
    grid=dict(n=8000, k=8, alpha_values=(16.0, 32.0, 64.0), n_trials=3),
    seed=1010,
)
def e10_grouped_vc(spec: ExperimentSpec, *, n, k, alpha_values, n_trials,
                   seed, executor):
    """Sweep α; check feasibility, ratio O(α), and communication ∝ nk/α.

    Expected shape: bits scale like 1/α; ratio grows at most linearly in α.
    """
    table = spec.new_table(
        description=f"n={n}, k={k}; claim: alpha-approx, Õ(nk/alpha) bits",
    )
    for alpha in alpha_values:
        m = run_trials(E10Trial(n=n, k=k, alpha=alpha), n_trials, seed,
                       executor=executor)
        bits = float(m["bits"].mean())
        table.add_row(
            alpha=alpha,
            ratio_mean=float(m["ratio"].mean()),
            feasible=bool(m["feasible"].all()),
            total_bits_mean=bits,
            bits_x_alpha_over_nk=bits * alpha / (n * k),
        )
    return table


# --------------------------------------------------------------------- #
# E11 — Appendix A: induced matchings in G(n, n, 1/n)
# --------------------------------------------------------------------- #
@experiment(
    "e11",
    title="E11: induced matching in G(n,n,1/n) (Appendix A)",
    description="density -> 1/e^2 ≈ 0.1353 exactly, >= 1/e^3 ≈ 0.0498 "
                "(Lemma A.3 bound); degree-1 fraction -> 1/e ≈ 0.3679",
    columns=["n", "induced_density_mean", "exact_theory", "lemma_a3_bound",
             "deg1_fraction_mean", "theory_deg1"],
    grid=dict(n_values=(1000, 4000, 16000), n_trials=5),
    seed=1111,
)
def e11_induced_matching(spec: ExperimentSpec, *, n_values, n_trials, seed,
                         executor):
    """Induced-matching density vs the 1/e³ constant; degree-1 fraction vs
    1/e (Prop A.2 / Lemma A.3)."""
    from repro.lowerbounds.induced import (
        degree_one_left_fraction_theory,
        induced_matching_density_exact,
        induced_matching_density_theory,
    )

    table = spec.new_table()
    for n in n_values:
        m = run_trials(E11Trial(n=n), n_trials, seed, executor=executor)
        table.add_row(
            n=n,
            induced_density_mean=float(m["density"].mean()),
            exact_theory=induced_matching_density_exact(),
            lemma_a3_bound=induced_matching_density_theory(),
            deg1_fraction_mean=float(m["deg1"].mean()),
            theory_deg1=degree_one_left_fraction_theory(),
        )
    return table


# --------------------------------------------------------------------- #
# E12 — §1.1: Crouch–Stubbs weighted extension
# --------------------------------------------------------------------- #
@experiment(
    "e12",
    title="E12: weighted matching via Crouch–Stubbs classes (paper §1.1)",
    description="weighted coreset vs centralized greedy 2-approximation",
    columns=["epsilon", "protocol_weight", "central_greedy_weight",
             "weight_ratio", "classes_bits_mean"],
    grid=dict(n=2000, k=8, weight_spread=100.0, epsilon_values=(0.5, 1.0),
              n_trials=3),
    seed=1212,
)
def e12_weighted_matching(spec: ExperimentSpec, *, n, k, weight_spread,
                          epsilon_values, n_trials, seed, executor):
    """Weighted coreset protocol vs the centralized greedy 2-approximation
    and (via it) the optimum.

    Expected shape: protocol weight within a small constant (≈ 4–6 total:
    2 from greedy merge × O(1) from the unweighted coreset) of centralized
    greedy, which itself is ≥ OPT/2.
    """
    table = spec.new_table(
        description=f"weights log-uniform in [1, {weight_spread:g}]",
    )
    for epsilon in epsilon_values:
        m = run_trials(
            E12Trial(n=n, k=k, weight_spread=weight_spread, epsilon=epsilon),
            n_trials, seed, executor=executor,
        )
        table.add_row(
            epsilon=epsilon,
            protocol_weight=float(m["proto"].mean()),
            central_greedy_weight=float(m["central"].mean()),
            weight_ratio=float((m["central"] / m["proto"]).mean()),
            classes_bits_mean=float(m["bits"].mean()),
        )
    return table


# --------------------------------------------------------------------- #
# E13 — Result 1→3: total communication Õ(nk)
# --------------------------------------------------------------------- #
@experiment(
    "e13",
    title="E13: communication scaling (Results 1 and 3)",
    description="total bits of both coresets vs send-everything as k grows",
    columns=["k", "matching_total_bits", "vc_total_bits",
             "naive_total_bits", "matching_bits_per_nk",
             "max_player_bits"],
    grid=dict(n=4000, k_values=(2, 4, 8, 16, 32), n_trials=3),
    seed=1313,
)
def e13_communication_scaling(spec: ExperimentSpec, *, n, k_values,
                              n_trials, seed, executor):
    """Total bits of both coreset protocols as k grows at fixed n.

    Expected shape: total bits ≈ linear in k (Õ(nk)), per-player bits Õ(n),
    and far below the send-everything baseline.
    """
    table = spec.new_table(
        description=f"n={n}; totals in bits; naive = send everything",
    )
    for k in k_values:
        m = run_trials(E13Trial(n=n, k=k), n_trials, seed,
                       executor=executor)
        table.add_row(
            k=k,
            matching_total_bits=float(m["m_bits"].mean()),
            vc_total_bits=float(m["v_bits"].mean()),
            naive_total_bits=float(m["n_bits"].mean()),
            matching_bits_per_nk=float(m["m_bits"].mean()) / (n * k),
            max_player_bits=float(m["m_max"].mean()),
        )
    return table


# --------------------------------------------------------------------- #
# E14 — Claim 3.3 / Lemma 3.2: GreedyMatch dynamics
# --------------------------------------------------------------------- #
@experiment(
    "e14",
    title="E14: GreedyMatch dynamics (Claim 3.3, Lemma 3.2)",
    description="per-step prefix concentration and per-step gains",
    columns=["k", "final_ratio", "prefix_deviation_max",
             "first_third_gain_over_mm_per_k", "final_over_mm"],
    grid=dict(n=4000, k=16, n_trials=3),
    seed=1414,
)
def e14_greedymatch_dynamics(spec: ExperimentSpec, *, n, k, n_trials, seed,
                             executor):
    """Instrumented GreedyMatch: per-step prefix concentration (Claim 3.3)
    and per-step gains (Lemma 3.2).

    Expected shape: |M*_{<i}| ≈ (i-1)/k · MM(G); early-step gains
    ≈ Ω(MM/k) while |M| ≤ MM/9.
    """
    table = spec.new_table(
        description=f"n={n}, k={k}; prefix_dev = "
                    "max_i |prefix_i - (i/k)·MM| / MM",
    )
    m = run_trials(E14Trial(n=n, k=k), n_trials, seed, executor=executor)
    table.add_row(
        k=k,
        final_ratio=float(m["ratio"].mean()),
        prefix_deviation_max=float(m["dev"].max()),
        first_third_gain_over_mm_per_k=float(m["gain"].mean()),
        final_over_mm=float(m["final_frac"].mean()),
    )
    return table


# --------------------------------------------------------------------- #
# E15 — ablation: summarizer × combiner grid
# --------------------------------------------------------------------- #
@experiment(
    "e15",
    title="E15: summarizer/combiner ablation",
    description="one workload, all summarizer/combiner variants side by side",
    columns=["variant", "ratio_mean", "total_bits_mean"],
    grid=dict(n=4000, k=8, variants=E15_VARIANTS, n_trials=3),
    seed=1515,
)
def e15_ablation(spec: ExperimentSpec, *, n, k, variants, n_trials, seed,
                 executor):
    """One workload, all summarizer/combiner variants side by side.

    Expected shape: maximum+exact ≈ maximum+greedy ≫ maximal (random order)
    on trap-free inputs maximal is fine; subsampled degrades gracefully;
    send-everything is exact but orders of magnitude more bits.
    """
    table = spec.new_table(
        description=f"bipartite planted workload, n={n}, k={k}",
    )
    for variant in variants:
        m = run_trials(E15Trial(n=n, k=k, variant=variant), n_trials, seed,
                       executor=executor)
        table.add_row(
            variant=variant,
            ratio_mean=float(m["ratio"].mean()),
            total_bits_mean=float(m["bits"].mean()),
        )
    return table


# --------------------------------------------------------------------- #
# E16 — §1.3 connection: random-arrival streaming
# --------------------------------------------------------------------- #
@experiment(
    "e16",
    title="E16: streaming arrival orders (paper §1.3 connection)",
    description="one-pass matchers under random vs adversarial arrival",
    columns=["order", "greedy_ratio", "two_phase_ratio",
             "memory_words_over_n"],
    grid=dict(n=8000, noise_degree=3.0, n_trials=3),
    seed=1616,
)
def e16_streaming_orders(spec: ExperimentSpec, *, n, noise_degree, n_trials,
                         seed, executor):
    """The streaming shadow of random partitioning: one-pass greedy under
    random vs adversarial arrival, plus the two-phase random-arrival
    matcher.

    Expected shape: greedy ≥ 0.5·OPT always (maximality); random order
    beats adversarial order; two-phase beats greedy on random order.
    """
    table = spec.new_table(
        description=f"n={n}; one-pass semi-streaming, ratios vs MM(G)",
    )
    m = run_trials(E16Trial(n=n, noise_degree=noise_degree), n_trials,
                   seed, executor=executor)
    for name in ("random", "adversarial"):
        table.add_row(
            order=name,
            greedy_ratio=float(m[f"{name}_greedy"].mean()),
            two_phase_ratio=float(m[f"{name}_two"].mean()),
            memory_words_over_n=float(m[f"{name}_mem"].mean()),
        )
    return table


# --------------------------------------------------------------------- #
# E17 — footnote 3: exact kernel coresets for small optima
# --------------------------------------------------------------------- #
@experiment(
    "e17",
    title="E17: exact kernel coresets for small optima (footnote 3)",
    description="exact composable kernels when MM(G) <= K, both partitionings",
    columns=["opt_bound", "mm", "exact_random", "exact_adversarial",
             "graph_edges", "kernel_edges_total"],
    grid=dict(opt_values=(32, 128, 512), n=8000, k=8, n_trials=3),
    seed=1717,
)
def e17_exact_kernel(spec: ExperimentSpec, *, opt_values, n, k, n_trials,
                     seed, executor):
    """Exact matching via composable kernels when MM(G) ≤ K (footnote 3).

    Expected shape: output exactly MM(G) under *both* random and
    adversarial partitioning; kernel size grows ~O(K²), not with n.
    """
    table = spec.new_table(
        description=f"n={n}, k={k}; kernel = maximal matching core + "
                    "3K+2 extra edges per matched vertex",
    )
    for opt_bound in opt_values:
        m = run_trials(E17Trial(n=n, k=k, opt_bound=opt_bound), n_trials,
                       seed, executor=executor)
        table.add_row(
            opt_bound=opt_bound,
            mm=float(m["mm"].mean()),
            exact_random=bool(m["rand_exact"].all()),
            exact_adversarial=bool(m["adv_exact"].all()),
            graph_edges=float(m["graph_edges"].mean()),
            kernel_edges_total=float(m["kernel_edges"].mean()),
        )
    return table


# --------------------------------------------------------------------- #
# E18 — robustness: both coresets across graph families
# --------------------------------------------------------------------- #
@experiment(
    "e18",
    title="E18: coreset robustness across graph families",
    description="Theorem 1 + Theorem 2 on five structurally distinct "
                "families",
    columns=["family", "matching_ratio_mean", "matching_ratio_max",
             "vc_ratio_mean", "vc_feasible"],
    grid=dict(n=4000, k=8, families=tuple(E18_FAMILIES), n_trials=3),
    seed=1818,
)
def e18_family_robustness(spec: ExperimentSpec, *, n, k, families, n_trials,
                          seed, executor):
    """Theorem 1/2 coresets across structurally different workloads:
    Gnp, planted matching, power-law, community-clustered, star-heavy.

    The theorems are worst-case over graphs (only the partitioning is
    random), so the ratios should stay inside the bounds on *every*
    family.  Expected shape: matching ratio ≤ ~3 and VC ratio ≤ O(log n)
    across the board, with heavy-tailed families the hardest.
    """
    table = spec.new_table(
        description=f"n≈{n}, k={k}; Theorem 1 + Theorem 2 on "
                    f"{len(families)} families",
    )
    for family in families:
        m = run_trials(E18Trial(n=n, k=k, family=family), n_trials, seed,
                       executor=executor)
        table.add_row(
            family=family,
            matching_ratio_mean=float(m["m_ratio"].mean()),
            matching_ratio_max=float(m["m_ratio"].max()),
            vc_ratio_mean=float(m["v_ratio"].mean()),
            vc_feasible=bool(m["v_feasible"].all()),
        )
    return table


# --------------------------------------------------------------------- #
# E19 — §1.3: edge-partition vs vertex-partition simultaneous models
# --------------------------------------------------------------------- #
@experiment(
    "e19",
    title="E19: edge-partition vs vertex-partition models (§1.3 / [10])",
    description="same Theorem 1 summarizer in both simultaneous models",
    columns=["k", "edge_model_ratio", "vertex_model_ratio",
             "edge_model_bits", "vertex_model_bits",
             "duplication_factor"],
    grid=dict(n=4000, k_values=(4, 16), n_trials=3),
    seed=1919,
)
def e19_vertex_partition_model(spec: ExperimentSpec, *, n, k_values,
                               n_trials, seed, executor):
    """Run the Theorem 1 coreset in both simultaneous models.

    In the paper's edge-partition model each edge lives on one machine; in
    the [10] vertex-partition model each machine sees all edges incident on
    its vertices (cross edges are duplicated, duplication factor → 2−1/k).
    Expected shape: quality comparable on benign inputs (the [10] hardness
    needs Ruzsa–Szemerédi instances), but the vertex model pays the
    duplication factor in communication — and each machine's piece is a
    constant fraction of the graph, so the per-player Õ(n) budget is simply
    bypassed rather than met.
    """
    table = spec.new_table(
        description=f"n={n}; same Theorem 1 summarizer in both models",
    )
    for k in k_values:
        m = run_trials(E19Trial(n=n, k=k), n_trials, seed,
                       executor=executor)
        table.add_row(
            k=k,
            edge_model_ratio=float(m["e_ratio"].mean()),
            vertex_model_ratio=float(m["v_ratio"].mean()),
            edge_model_bits=float(m["e_bits"].mean()),
            vertex_model_bits=float(m["v_bits"].mean()),
            duplication_factor=float(m["dup"].mean()),
        )
    return table


# --------------------------------------------------------------------- #
# E20 — the "w.h.p." itself: concentration of the coreset guarantee
# --------------------------------------------------------------------- #
@experiment(
    "e20",
    title="E20: concentration of the w.h.p. guarantees",
    description="tail probability of the ratio across many partitionings",
    columns=["n", "ratio_mean", "ratio_std", "ratio_max",
             "tail_probability", "prefix_dev_max"],
    grid=dict(n_values=(500, 2000, 8000), k=8, n_trials=20,
              ratio_threshold=1.5),
    seed=2020,
)
def e20_concentration(spec: ExperimentSpec, *, n_values, k, n_trials,
                      ratio_threshold, seed, executor):
    """Theorem 1 and Claim 3.3 are "with high probability" statements:
    the failure probability must *vanish as n grows* (the proofs lose
    O(1/n) per Chernoff application).  This experiment estimates tail
    probabilities across many independent partitionings.

    Expected shape: P[ratio > threshold] and the spread of the per-step
    prefix deviation both shrink monotonically-ish in n.
    """
    table = spec.new_table(
        description=f"k={k}, {n_trials} independent partitionings per n; "
                    f"tail = P[ratio > {ratio_threshold:g}]",
    )
    for n in n_values:
        m = run_trials(E20Trial(n=n, k=k), n_trials, seed,
                       executor=executor)
        ratios = m["ratio"]
        table.add_row(
            n=n,
            ratio_mean=float(ratios.mean()),
            ratio_std=float(ratios.std(ddof=1)),
            ratio_max=float(ratios.max()),
            tail_probability=float((ratios > ratio_threshold).mean()),
            prefix_dev_max=float(m["dev"].max()),
        )
    return table


# --------------------------------------------------------------------- #
# E21 — parallel scaling of the execution backends (E8 workload)
# --------------------------------------------------------------------- #
@experiment(
    "e21",
    title="E21: parallel scaling (executor backends, E8 workload)",
    description="wall-clock per executor backend; identity vs serial is "
                "the correctness claim",
    columns=["executor", "workers", "wall_s_mean", "wall_s_min",
             "speedup", "matching_size_mean", "identical_to_serial"],
    grid=dict(n=4000, avg_degree=24.0, n_trials=3,
              executors=("serial", "processes"), workers=None),
    seed=2121,
)
def e21_parallel_scaling(spec: ExperimentSpec, *, n, avg_degree, n_trials,
                         executors, workers, seed, executor):
    """Wall-clock of the E8 MapReduce matching workload per executor backend.

    Expected shape: every backend bit-identical to serial; process speedup
    grows toward min(k, cores) as pieces get heavier.  Wall-clock columns
    are measurements of *this* machine, not of the model — only the
    identical_to_serial column is a correctness claim.

    This table sweeps the *machine-level* backends itself, so the trial
    harness always runs serially here (``executor`` is ignored): fanning
    timing trials out across processes would contend for the same cores
    the measured backends use and skew every wall-clock column.
    """
    del executor
    from repro.dist.executor import resolve_executor

    table = spec.new_table(
        description=f"n={n}, m≈{int(n * avg_degree / 2)}, {n_trials} trials; "
                    f"speedup and identity are vs a serial run of the same "
                    f"seeds",
    )
    # Each non-serial trial measures its own serial reference (that is
    # what makes identical_to_serial a genuine within-trial comparison),
    # so a requested "serial" row reuses those reference measurements
    # rather than running the workload a second time.
    measured = {
        name: run_trials(
            E21Trial(n=n, avg_degree=avg_degree, executor=name,
                     workers=workers),
            n_trials, seed, executor="serial",
        )
        for name in executors
        if resolve_executor(name, workers=workers).name != "serial"
    }
    reference = next(iter(measured.values()), None)
    for name in executors:
        backend = resolve_executor(name, workers=workers)
        if backend.name == "serial":
            if reference is None:
                reference = run_trials(
                    E21Trial(n=n, avg_degree=avg_degree, executor="serial",
                             workers=workers),
                    n_trials, seed, executor="serial",
                )
            walls = reference["serial_wall_s"]
            serial_walls = reference["serial_wall_s"]
            sizes = reference["serial_size"]
            identical = True
        else:
            m = measured[name]
            walls, serial_walls = m["wall_s"], m["serial_wall_s"]
            sizes = m["size"]
            identical = bool(m["identical"].all())
        mean_wall = float(walls.mean())
        table.add_row(
            executor=backend.name,
            workers=getattr(backend, "max_workers", 1),
            wall_s_mean=mean_wall,
            wall_s_min=float(walls.min()),
            speedup=float(serial_walls.mean()) / max(mean_wall, 1e-12),
            matching_size_mean=float(sizes.mean()),
            identical_to_serial=identical,
        )
    return table


# --------------------------------------------------------------------- #
# E22 — workloads: random vs adversarial partitions on real distributions
# --------------------------------------------------------------------- #
@experiment(
    "e22",
    title="E22: workload coresets under random vs adversarial partitions",
    description="registry workloads × {maximum, greedy} summarizers; "
                "ratio = MM(G)/|composed| per partition strategy",
    columns=["workload", "summarizer", "opt_mean", "r_random",
             "r_degree_sorted", "r_community", "adversarial_gap"],
    grid=dict(workloads=("gmission", "movielens", "ba", "power_law"),
              summarizers=("maximum", "greedy"), k=4, n_trials=3),
    seed=2222,
)
def e22_workload_partitions(spec: ExperimentSpec, *, workloads, summarizers,
                            k, n_trials, seed, executor):
    """Coreset quality on registry workloads (dataset-backed families run
    offline from their bundled fixtures) when the k-partition is random
    versus degree-sorted or community-sharded.

    Expected shape: with the **maximum** summarizer (Theorem 1) every
    strategy stays near-optimal — the theorem's guarantee needs the random
    partition, but real hub structure also survives union composition.
    With the **greedy** summarizer the degree-sorted adversary concentrates
    each hub's edges on one machine; greedy keeps one edge per hub with no
    alternatives elsewhere in the union, so ``r_degree_sorted`` rises above
    ``r_random`` (positive ``adversarial_gap``) — the §1.2 failure mode on
    natural graphs rather than gadgets.
    """
    table = spec.new_table(
        description=f"k={k}, {n_trials} trials; ratio = opt/composed "
                    f"(1.0 = optimal), gap = max adversarial − random",
    )
    for workload in workloads:
        for summarizer in summarizers:
            m = run_trials(
                E22Trial(workload=workload, k=k, summarizer=summarizer),
                n_trials, seed, executor=executor,
            )
            r_random = float(m["ratio_random"].mean())
            r_degree = float(m["ratio_degree_sorted"].mean())
            r_community = float(m["ratio_community"].mean())
            table.add_row(
                workload=workload,
                summarizer=summarizer,
                opt_mean=float(m["opt"].mean()),
                r_random=r_random,
                r_degree_sorted=r_degree,
                r_community=r_community,
                adversarial_gap=max(r_degree, r_community) - r_random,
            )
    return table


# --------------------------------------------------------------------- #
# E23 — capacitated coreset: b-matching on the AdWords workload
# --------------------------------------------------------------------- #
@experiment(
    "e23",
    title="E23: capacitated (b-matching) coreset on the AdWords workload",
    description="greedy-summary b-matching coreset vs exact optimum on "
                "ba_adwords, per partition strategy",
    columns=["k", "opt_mean", "r_random", "r_degree_sorted", "r_community",
             "feasible"],
    grid=dict(k_values=(4, 8), u=200, v=800, p=4.0, n_trials=3),
    seed=2323,
)
def e23_bmatching_coreset(spec: ExperimentSpec, *, k_values, u, v, p,
                          n_trials, seed, executor):
    """The composable-coreset recipe applied beyond the paper's setting:
    per-machine greedy b-matching summaries composed by an exact
    b-matching on the union, on the capacitated preferential-attachment
    workload.

    Expected shape: ratios modestly above 1 for the random partition and
    degrading under the adversarial strategies; ``feasible`` must hold
    everywhere — capacity violations would mean the composition step
    broke the budget constraints, not just the approximation.
    """
    table = spec.new_table(
        description=f"ba_adwords u={u} v={v} p={p}, {n_trials} trials; "
                    f"opt = exact max-cardinality b-matching",
    )
    for k in k_values:
        m = run_trials(E23Trial(k=k, u=u, v=v, p=p), n_trials, seed,
                       executor=executor)
        feasible = all(
            m[f"feasible_{s}"].all()
            for s in ("random", "degree_sorted", "community")
        )
        table.add_row(
            k=k,
            opt_mean=float(m["opt"].mean()),
            r_random=float(m["ratio_random"].mean()),
            r_degree_sorted=float(m["ratio_degree_sorted"].mean()),
            r_community=float(m["ratio_community"].mean()),
            feasible=bool(feasible),
        )
    return table
