"""Regenerate a results report from archived benchmark tables.

``pytest benchmarks/ --benchmark-only`` archives every experiment table
under ``benchmarks/results/``.  This module stitches those text tables back
into a single markdown report — the mechanical half of EXPERIMENTS.md —
so re-running the benchmarks and refreshing the report is one command:

    python -m repro report --results benchmarks/results -o report.md
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "ArchivedTable",
    "collect_artifacts",
    "collect_results",
    "render_diff",
    "render_report",
]

@dataclass(frozen=True)
class ArchivedTable:
    """One archived benchmark table."""

    stem: str
    title: str
    body: str


def _stem_order() -> list[str]:
    """Archived-stem prefixes in registry (paper) order, e.g. ``"e1_"``.

    Derived from the experiment registry rather than a hand-maintained
    list, so a newly registered experiment sorts correctly with no edit
    here.
    """
    from repro.experiments.registry import experiment_ids

    return [f"{exp_id}_" for exp_id in experiment_ids()]


def _sort_key(stem: str, order: list[str]) -> tuple[int, str]:
    for i, prefix in enumerate(order):
        if stem.startswith(prefix):
            return (i, stem)
    return (len(order), stem)


def collect_results(results_dir: str | Path) -> list[ArchivedTable]:
    """Load all archived tables from a results directory, in E-order."""
    directory = Path(results_dir)
    if not directory.is_dir():
        raise FileNotFoundError(
            f"results directory {directory} does not exist — run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    out = []
    order = _stem_order()
    for path in sorted(directory.glob("*.txt"),
                       key=lambda p: _sort_key(p.stem, order)):
        text = path.read_text().rstrip("\n")
        lines = text.splitlines()
        title = lines[0].strip("= ").strip() if lines else path.stem
        out.append(ArchivedTable(stem=path.stem, title=title, body=text))
    return out


def collect_artifacts(results_dir: str | Path) -> list[dict]:
    """Load all structured run artifacts from a results directory.

    Artifacts are the JSON siblings of the text archives (see
    :mod:`repro.experiments.artifacts`); a malformed, truncated, or
    foreign-schema file is skipped with a :class:`UserWarning` naming it
    rather than aborting the whole report — one corrupt write (a killed
    sweep cell, a partial download) must not take every other result down
    with it.
    """
    import warnings

    from repro.experiments.artifacts import ArtifactError, load_artifact

    from repro.experiments.registry import experiment_ids

    directory = Path(results_dir)
    if not directory.is_dir():
        return []
    docs = []
    for path in sorted(directory.glob("*.json")):
        try:
            doc = load_artifact(path)
        except ArtifactError as exc:
            warnings.warn(f"skipping unreadable run artifact: {exc}",
                          stacklevel=2)
            continue
        doc["_path"] = str(path)
        docs.append(doc)
    # E-order by the *loaded* experiment id (artifact stems carry a
    # timestamp, so stem-prefix matching cannot order them), then by
    # creation time within an experiment.
    ids = {exp_id: i for i, exp_id in enumerate(experiment_ids())}
    docs.sort(key=lambda d: (ids.get(d.get("experiment"), len(ids)),
                             str(d.get("created_at", "")), d["_path"]))
    return docs


def render_diff(old_path: str | Path, new_path: str | Path) -> str:
    """Diff two archived run artifacts (``repro report --diff OLD NEW``)."""
    from repro.experiments.artifacts import diff_artifacts, load_artifact

    return diff_artifacts(load_artifact(old_path), load_artifact(new_path))


def render_report(
    results: list[ArchivedTable],
    heading: str = "Benchmark results",
    artifacts: list[dict] | None = None,
) -> str:
    """Render the archived tables as one markdown document.

    When ``artifacts`` is given, a closing index lists every structured
    run artifact (experiment, timestamp, seed, file) so readers know which
    JSON files ``repro report --diff`` can compare.
    """
    parts = [f"# {heading}", ""]
    if not results:
        parts.append("*(no archived results found)*")
    for table in results:
        parts.append(f"## {table.title}")
        parts.append("")
        parts.append("```")
        parts.append(table.body)
        parts.append("```")
        parts.append("")
    if artifacts:
        parts.append("## Run artifacts")
        parts.append("")
        for doc in artifacts:
            parts.append(
                f"- `{doc.get('experiment')}` @ {doc.get('created_at')} "
                f"(seed {doc.get('seed')}): `{doc.get('_path')}`"
            )
        parts.append("")
    return "\n".join(parts)
