"""The substrate performance harness behind ``repro bench``.

Every claim the executor substrate makes — persistent pools beat per-call
pools, shared-memory piece transfer beats pickled transfer, the greedy
scan rewrite beats the list-append scan — is measured here, on the same
scenario sizes the experiment suite uses (E1's small grids, E8's MapReduce
workload, E21's parallel-scaling size), and written to a structured
``BENCH_substrate.json`` artifact that CI uploads and future commits can
compare against.  ``--check`` turns the two load-bearing claims into hard
assertions (exit code 1 on regression), which is what the
``substrate-perf`` CI job runs.

The sections:

``pool_lifecycle``
    Per-barrier *substrate overhead* of R back-to-back
    ``run_simultaneous`` barriers per backend variant: ``serial``,
    ``threads-persistent``, ``processes-cold`` (a fresh pool per barrier
    — the pre-lifecycle behavior, reconstructed by resolving the
    executor by name inside the loop) and ``processes-persistent`` (one
    :class:`~repro.dist.executor.ProcessExecutor` reused across all R
    barriers).  The barriers run the transfer probe (compute-light), so
    the column *is* the pool cost: on a compute-heavy workload a ±5%
    compute wobble would drown the ~10ms/barrier pool start-up being
    measured — real-workload backend scaling is E21's table, not this
    one.  Every variant's outputs are asserted bit-identical to serial
    before its row is recorded.

``piece_transfer``
    Transfer *overhead* isolated: the same persistent process pool runs a
    probe protocol whose per-machine compute is one pass over the piece
    (a checksum — every byte is touched, so both modes really move the
    data) and whose messages are tiny.  What remains of the barrier is
    the cost of getting pieces to workers: pickled into each task, vs
    mapped from a :class:`~repro.dist.shm.SharedEdgeStore` segment
    (``transfer="shared"``).  The real-workload rounds in
    ``pool_lifecycle`` would hide a ~10ms transfer delta under ~300ms of
    matching compute; the probe is what makes the overhead measurable.

``matching_scan``
    The sequential greedy-matching scan
    (:func:`repro.matching.maximal.greedy_maximal_matching`) against a
    reference implementation of the pre-optimization scan (two Python
    lists + ``np.stack``, one edge at a time), asserted output-identical.

``solver_facade``
    One representative solver per execution model (offline, coreset,
    mapreduce, streaming) run through the unified :mod:`repro.solve`
    facade on the smallest scenario, timed via ``SolveResult`` —
    ``wall_time_s`` for the end-to-end solve plus each solver's own
    ``stats`` — with every certificate's ``verified`` flag asserted.
    This keeps the facade's overhead and verification contract on the
    same regression radar as the substrate itself.

``remote_exec``
    The ``remote`` backend (socket coordinator + ``repro worker``
    subprocesses, :mod:`repro.dist.remote`) on the smallest scenario:
    per-barrier seconds over a persistent two-worker fleet with the fleet
    spawn paid untimed, the bit-identical-to-serial flag, and the
    :class:`~repro.dist.remote.RemotePieceCache` counters — which let the
    artifact *prove* the serialize-once/fetch-and-pin claim (stored bytes
    constant across barriers, shipped bytes bounded by pieces × workers)
    rather than assert it in prose.

Wall-clock numbers describe the machine the bench ran on; only the
``identical`` columns and the relative orderings are claims.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.utils.provenance import provenance_stamp

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "add_bench_arguments",
    "main",
    "run_from_args",
    "run_substrate_bench",
]

#: Version 4 added the shared provenance stamp (``git_commit`` /
#: ``git_dirty`` next to the existing ``host`` / ``created_at``, all from
#: :func:`repro.utils.provenance.provenance_stamp`), which is what lets
#: ``repro report --trend`` place each committed bench file on a
#: per-commit timeline.  Version-3 files (no git fields) still trend,
#: under commit ``"unknown"``.
BENCH_SCHEMA_VERSION = 4

#: One solver per execution model, timed through the facade in the
#: ``solver_facade`` section (matching side; the vertex-cover solvers
#: share the same engines).
_FACADE_SOLVERS = (
    "matching.maximum",
    "matching.coreset",
    "matching.mapreduce",
    "matching.streaming_greedy",
)

#: Scenario sizes mirror the experiment grids: e1-small is E1's lower grid
#: cell, e8-mid is the E8 MapReduce workload at reduced n, e21 is exactly
#: E21's registered size (n=4000, avg_degree=24).
_SCENARIOS: Dict[str, List[Dict[str, Any]]] = {
    "quick": [
        dict(name="e1-small", n=1200, k=4, avg_degree=8.0, repeats=4),
        dict(name="e8-mid", n=2400, k=8, avg_degree=12.0, repeats=4),
    ],
    "full": [
        dict(name="e1-small", n=1200, k=4, avg_degree=8.0, repeats=6),
        dict(name="e8-mid", n=2400, k=8, avg_degree=12.0, repeats=6),
        dict(name="e21", n=4000, k=8, avg_degree=24.0, repeats=6),
    ],
}


def _build_workload(scenario: Dict[str, Any], seed: int = 1701):
    """The partitioned graph for a scenario size."""
    from repro.graph.generators import bipartite_gnp
    from repro.graph.partition import random_k_partition

    n, k, deg = scenario["n"], scenario["k"], scenario["avg_degree"]
    side = n // 2
    graph = bipartite_gnp(side, side, p=min(1.0, deg / side), rng=seed)
    return random_k_partition(graph, k, rng=seed + 1)


def _warm_task(x):
    return x


def _global_warmup(workers: int) -> None:
    """Pay every one-time cost before anything is timed.

    Creating the first shared-memory segment spawns the multiprocessing
    resource tracker, and the first process pool primes fork/import
    machinery; both are per-interpreter costs that would otherwise land
    inside whichever timed loop happened to run first and skew that one
    variant.  (Order matters: tracker first, so every pool's workers fork
    with it inherited.)
    """
    from repro.dist.executor import ProcessExecutor
    from repro.dist.shm import SharedEdgeStore

    with SharedEdgeStore() as store:
        store.put_arrays([np.zeros((4, 2), dtype=np.int64)])
    with ProcessExecutor(max_workers=workers) as pool:
        pool.map(_warm_task, list(range(max(2, workers))))


def _time_rounds(fn, repeats: int) -> float:
    """Total wall-clock of ``repeats`` calls of ``fn`` (first call included:
    pool start-up is exactly the cost under test)."""
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return time.perf_counter() - start


def _run_pool_lifecycle(
    scenarios: Sequence[Dict[str, Any]], workers: int, repeats_override: Optional[int]
) -> List[Dict[str, Any]]:
    from repro.dist.coordinator import run_simultaneous
    from repro.dist.executor import ProcessExecutor, ThreadExecutor

    proto = _probe_protocol()
    rows: List[Dict[str, Any]] = []
    for scenario in scenarios:
        part = _build_workload(scenario)
        # Probe barriers are milliseconds, so stability is cheap: raise the
        # scenario default to ten rounds.  An explicit --repeats override
        # is honored exactly, here and in every other section.
        repeats = repeats_override or max(scenario["repeats"], 10)
        seed = 42

        def run(executor, transfer="pickle"):
            return run_simultaneous(proto, part, seed, executor=executor,
                                    transfer=transfer)

        reference = run("serial").output

        variants: Dict[str, float] = {}
        identical: Dict[str, bool] = {}

        variants["serial"] = _time_rounds(lambda: run("serial"), repeats)
        identical["serial"] = True

        with ThreadExecutor(max_workers=workers) as threads:
            run(threads)  # steady-state warmup, untimed
            variants["threads-persistent"] = _time_rounds(
                lambda: run(threads), repeats)
        identical["threads-persistent"] = bool(
            np.array_equal(run("threads").output, reference))

        # Cold: the engine resolves "processes" by name each barrier, so it
        # builds and tears down one pool per call — the pre-lifecycle cost.
        variants["processes-cold"] = _time_rounds(
            lambda: run("processes"), repeats)
        identical["processes-cold"] = bool(
            np.array_equal(run("processes").output, reference))

        with ProcessExecutor(max_workers=workers) as persistent:
            run(persistent)  # pool creation paid here, steady state timed
            variants["processes-persistent"] = _time_rounds(
                lambda: run(persistent), repeats)
            identical["processes-persistent"] = bool(
                np.array_equal(run(persistent).output, reference))

        for variant, total in variants.items():
            rows.append(dict(
                scenario=scenario["name"],
                variant=variant,
                rounds=repeats,
                total_s=round(total, 6),
                per_round_s=round(total / repeats, 6),
                speedup_vs_serial=round(variants["serial"] / total, 4),
                identical=identical[variant],
            ))
    return rows


def _probe_protocol():
    """A transfer-bound protocol: full data touch, negligible compute."""
    from repro.dist.coordinator import SimultaneousProtocol

    return SimultaneousProtocol(
        "transfer-probe", _probe_summarize, _probe_combine
    )


def _probe_summarize(piece, machine_index, rng, public=None):
    """Checksum the piece (touching every edge byte) and reply tiny.

    Module-level so the ``processes`` backend can pickle it.  The one-row
    message is copied out of the piece so it never aliases a shared
    segment (workers can release their attachments each round).
    """
    from repro.dist.message import Message

    edges = piece.edges
    # One full pass over the data, echoed in the reply so it cannot be
    # skipped: both transfer modes must actually deliver every byte.
    checksum = int(edges.sum()) % max(piece.n_vertices, 1) if edges.size else 0
    probe = np.array([[0, checksum]], dtype=np.int64)
    return Message(sender=machine_index, edges=probe)


def _probe_combine(coordinator, messages):
    return np.vstack([m.edges for m in messages]) if messages else None


def _run_piece_transfer(
    scenarios: Sequence[Dict[str, Any]], workers: int, repeats_override: Optional[int]
) -> List[Dict[str, Any]]:
    from repro.dist.coordinator import run_simultaneous
    from repro.dist.executor import ProcessExecutor

    from repro.dist.shm import SharedPartitionView

    proto = _probe_protocol()
    rows: List[Dict[str, Any]] = []
    for scenario in scenarios:
        part = _build_workload(scenario)
        repeats = repeats_override or scenario["repeats"]
        seed = 43

        def run(executor, transfer, partition=part):
            return run_simultaneous(proto, partition, seed,
                                    executor=executor, transfer=transfer)

        reference = run("serial", "pickle").output
        serial_total = _time_rounds(lambda: run("serial", "pickle"), repeats)

        def record(transfer_label, total, identical):
            rows.append(dict(
                scenario=scenario["name"],
                transfer=transfer_label,
                rounds=repeats,
                total_edge_bytes=int(part.graph.edge_nbytes),
                per_round_s=round(total / repeats, 6),
                overhead_vs_serial_s=round(
                    (total - serial_total) / repeats, 6),
                identical=identical,
            ))

        with ProcessExecutor(max_workers=workers) as pool:
            for transfer in ("pickle", "shared"):
                run(pool, transfer)  # steady-state warmup, untimed
                total = _time_rounds(lambda: run(pool, transfer), repeats)
                record(
                    transfer if transfer == "pickle" else "shared-ephemeral",
                    total,
                    bool(np.array_equal(run(pool, transfer).output,
                                        reference)),
                )
            # The pay-once path: pieces pinned in one segment, handles
            # reused by every barrier — the deployment shape of a sweep.
            with SharedPartitionView(part) as pinned:
                run(pool, "shared", pinned)  # warmup, untimed
                total = _time_rounds(
                    lambda: run(pool, "shared", pinned), repeats)
                record(
                    "shared-persistent",
                    total,
                    bool(np.array_equal(run(pool, "shared", pinned).output,
                                        reference)),
                )
    return rows


# --------------------------------------------------------------------- #
# the remote backend
# --------------------------------------------------------------------- #
def _run_remote_exec(
    scenario: Dict[str, Any], workers: int, repeats_override: Optional[int]
) -> List[Dict[str, Any]]:
    """Steady-state remote barriers on the smallest scenario.

    The fleet (listener + two local ``repro worker`` subprocesses) is
    spawned and fed one untimed warmup barrier — which is also where the
    piece cache serializes each piece once and the workers fetch-and-pin
    them — so the timed rounds measure the steady state a sweep actually
    runs in: digest-only task payloads over a warm socket fleet.
    """
    from repro.dist.coordinator import run_simultaneous
    from repro.dist.remote import RemoteExecutor

    proto = _probe_protocol()
    part = _build_workload(scenario)
    repeats = repeats_override or scenario["repeats"]
    seed = 44

    def run(executor):
        return run_simultaneous(proto, part, seed, executor=executor)

    reference = run("serial").output
    serial_total = _time_rounds(lambda: run("serial"), repeats)

    fleet = min(workers, 2)
    with RemoteExecutor(max_workers=fleet, connect_timeout=60,
                        cache_min_bytes=0) as ex:
        run(ex)  # fleet spawn + piece fetch-and-pin paid here, untimed
        total = _time_rounds(lambda: run(ex), repeats)
        identical = bool(np.array_equal(run(ex).output, reference))
        cache = ex.piece_cache.stats()
    return [dict(
        scenario=scenario["name"],
        variant="remote-persistent",
        workers=fleet,
        rounds=repeats,
        total_s=round(total, 6),
        per_round_s=round(total / repeats, 6),
        serial_per_round_s=round(serial_total / repeats, 6),
        identical=identical,
        piece_cache=cache,
    )]


# --------------------------------------------------------------------- #
# the greedy-scan microbenchmark
# --------------------------------------------------------------------- #
def _baseline_scan(n_vertices: int, eu: np.ndarray, ev: np.ndarray) -> np.ndarray:
    """The pre-optimization scan, kept verbatim as the comparison baseline:
    one numpy bool read per endpoint per edge, two growing Python lists,
    one ``np.stack`` at the end."""
    taken = np.zeros(n_vertices, dtype=bool)
    out_u: List[int] = []
    out_v: List[int] = []
    for u, v in zip(eu.tolist(), ev.tolist()):
        if not taken[u] and not taken[v]:
            taken[u] = True
            taken[v] = True
            out_u.append(u)
            out_v.append(v)
    if not out_u:
        return np.zeros((0, 2), dtype=np.int64)
    return np.stack(
        [np.asarray(out_u, dtype=np.int64),
         np.asarray(out_v, dtype=np.int64)], axis=1)


def _run_matching_scan(mode: str) -> List[Dict[str, Any]]:
    from repro.graph.generators import gnp
    from repro.matching.maximal import _sequential_scan

    sizes = [(20_000, 8.0)] if mode == "quick" else [(20_000, 8.0),
                                                     (100_000, 10.0)]
    rows: List[Dict[str, Any]] = []
    for n, deg in sizes:
        graph = gnp(n, deg / n, 5)
        e = graph.edges
        eu, ev = np.ascontiguousarray(e[:, 0]), np.ascontiguousarray(e[:, 1])

        t0 = time.perf_counter()
        base = _baseline_scan(n, eu, ev)
        baseline_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        opt = _sequential_scan(n, eu, ev)
        optimized_s = time.perf_counter() - t0

        rows.append(dict(
            n=n,
            m=int(e.shape[0]),
            baseline_s=round(baseline_s, 6),
            optimized_s=round(optimized_s, 6),
            speedup=round(baseline_s / optimized_s, 4)
            if optimized_s else float("inf"),
            identical=bool(np.array_equal(base, opt)),
        ))
    return rows


# --------------------------------------------------------------------- #
# solver facade
# --------------------------------------------------------------------- #
def _run_solver_facade(
    scenario: Dict[str, Any], repeats_override: Optional[int]
) -> List[Dict[str, Any]]:
    """Time one solver per model through ``repro.solve`` on one scenario.

    Per-solver wall clock comes from ``SolveResult.wall_time_s`` (the
    facade's own timing of the adapter), averaged over the scenario's
    repeat count; ``stats`` keys are recorded so consumers can see which
    metrics each model reports without running anything.
    """
    from repro.solve import RunContext, get_solver, solve

    graph = _build_workload(scenario).graph
    repeats = repeats_override or scenario["repeats"]
    rows: List[Dict[str, Any]] = []
    for name in _FACADE_SOLVERS:
        spec = get_solver(name)
        ctx = RunContext(seed=7, k=scenario["k"])
        walls = []
        reference = None
        identical = True
        verified = True
        for _ in range(repeats):
            res = solve(graph, name, ctx)
            walls.append(res.wall_time_s)
            verified = verified and res.verified
            if reference is None:
                reference = res.certificate
            else:
                identical = identical and np.array_equal(
                    reference, res.certificate
                )
        last = res
        rows.append(dict(
            scenario=scenario["name"],
            solver=name,
            model=spec.model,
            value=float(last.value),
            wall_s=round(float(np.mean(walls)), 6),
            stats_keys=sorted(last.stats),
            verified=bool(verified),
            identical=bool(identical),
        ))
    return rows


# --------------------------------------------------------------------- #
# driver
# --------------------------------------------------------------------- #
def run_substrate_bench(
    mode: str = "full",
    workers: Optional[int] = None,
    repeats: Optional[int] = None,
    out: Optional[str | Path] = None,
) -> Dict[str, Any]:
    """Run all three sections and (optionally) write the JSON artifact."""
    if mode not in _SCENARIOS:
        raise ValueError(f"mode must be one of {sorted(_SCENARIOS)}, "
                         f"got {mode!r}")
    scenarios = _SCENARIOS[mode]
    workers = workers or min(os.cpu_count() or 1, 8)

    _global_warmup(workers)
    pool_rows = _run_pool_lifecycle(scenarios, workers, repeats)
    transfer_rows = _run_piece_transfer(scenarios, workers, repeats)
    scan_rows = _run_matching_scan(mode)
    facade_rows = _run_solver_facade(scenarios[0], repeats)
    remote_rows = _run_remote_exec(scenarios[0], workers, repeats)

    largest = scenarios[-1]["name"]
    checks = _evaluate_checks(pool_rows, transfer_rows, scan_rows, largest,
                              facade_rows, remote_rows)

    doc: Dict[str, Any] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "substrate_bench",
        "mode": mode,
        **provenance_stamp(),
        "workers": workers,
        "scenarios": [
            {k: s[k] for k in ("name", "n", "k", "avg_degree")}
            for s in scenarios
        ],
        "pool_lifecycle": pool_rows,
        "piece_transfer": transfer_rows,
        "matching_scan": scan_rows,
        "solver_facade": facade_rows,
        "remote_exec": remote_rows,
        "checks": checks,
    }
    if out is not None:
        Path(out).write_text(json.dumps(doc, indent=2) + "\n")
    return doc


def _evaluate_checks(
    pool_rows: List[Dict[str, Any]],
    transfer_rows: List[Dict[str, Any]],
    scan_rows: List[Dict[str, Any]],
    largest_scenario: str,
    facade_rows: List[Dict[str, Any]],
    remote_rows: List[Dict[str, Any]],
) -> Dict[str, Any]:
    """The assertable facts: each maps to one acceptance claim."""
    per = {
        (r["scenario"], r["variant"]): r["per_round_s"] for r in pool_rows
    }
    scenarios = sorted({r["scenario"] for r in pool_rows})
    persistent_faster = all(
        per[(s, "processes-persistent")] < per[(s, "processes-cold")]
        for s in scenarios
    )
    shared = {
        (r["scenario"], r["transfer"]): r["per_round_s"]
        for r in transfer_rows
    }
    # The claim is about the deployment shape: pinned segment + reused
    # handles vs per-task pickling, at the largest scenario size.
    shared_faster_at_largest = (
        shared[(largest_scenario, "shared-persistent")]
        < shared[(largest_scenario, "pickle")]
    )
    # Serialize-once, fetch-and-pin: across every barrier of the run each
    # piece was stored exactly once, and shipped at most once per worker.
    cache_bounded = all(
        r["piece_cache"]["bytes_shipped"]
        <= r["workers"] * r["piece_cache"]["bytes_stored"]
        and r["piece_cache"]["store_hits"] > 0  # later barriers deduped
        for r in remote_rows
    )
    return {
        "persistent_pool_faster_than_cold": bool(persistent_faster),
        "shared_transfer_lower_overhead_at_largest": bool(
            shared_faster_at_largest),
        "all_outputs_identical": bool(
            all(r["identical"] for r in pool_rows)
            and all(r["identical"] for r in transfer_rows)
            and all(r["identical"] for r in scan_rows)
            and all(r["identical"] for r in facade_rows)
            and all(r["identical"] for r in remote_rows)
        ),
        "scan_min_speedup": min(r["speedup"] for r in scan_rows),
        "solver_facade_all_verified": bool(
            all(r["verified"] for r in facade_rows)
        ),
        "remote_outputs_identical": bool(
            all(r["identical"] for r in remote_rows)
        ),
        "remote_cache_ships_each_piece_once_per_worker": bool(cache_bounded),
    }


def _format_summary(doc: Dict[str, Any]) -> str:
    lines = [f"substrate bench [{doc['mode']}] — workers={doc['workers']}, "
             f"python {doc['host']['python']}"]
    lines.append("pool_lifecycle (probe barriers, per-round seconds):")
    for r in doc["pool_lifecycle"]:
        lines.append(
            f"  {r['scenario']:>10s}  {r['variant']:<22s}"
            f"{r['per_round_s']:>10.4f}s  x{r['speedup_vs_serial']:<6.3g}"
            f"{'' if r['identical'] else '  OUTPUT MISMATCH'}"
        )
    lines.append("piece_transfer (per-round seconds, process pool):")
    for r in doc["piece_transfer"]:
        lines.append(
            f"  {r['scenario']:>10s}  {r['transfer']:<22s}"
            f"{r['per_round_s']:>10.4f}s  overhead "
            f"{r['overhead_vs_serial_s']:+.4f}s"
            f"{'' if r['identical'] else '  OUTPUT MISMATCH'}"
        )
    lines.append("matching_scan:")
    for r in doc["matching_scan"]:
        lines.append(
            f"  n={r['n']:>7d} m={r['m']:>8d}  baseline {r['baseline_s']:.4f}s"
            f"  optimized {r['optimized_s']:.4f}s  x{r['speedup']:.3g}"
            f"{'' if r['identical'] else '  OUTPUT MISMATCH'}"
        )
    lines.append("solver_facade (one solver per model, repro.solve):")
    for r in doc["solver_facade"]:
        lines.append(
            f"  {r['scenario']:>10s}  {r['solver']:<28s}"
            f"{r['wall_s']:>10.4f}s  value {r['value']:g}"
            f"{'' if r['verified'] else '  NOT VERIFIED'}"
            f"{'' if r['identical'] else '  OUTPUT MISMATCH'}"
        )
    lines.append("remote_exec (socket fleet, steady-state barriers):")
    for r in doc["remote_exec"]:
        cache = r["piece_cache"]
        lines.append(
            f"  {r['scenario']:>10s}  {r['variant']:<22s}"
            f"{r['per_round_s']:>10.4f}s  serial "
            f"{r['serial_per_round_s']:.4f}s  workers={r['workers']}  "
            f"cache {cache['pieces_stored']}p/"
            f"{cache['bytes_stored']}B stored, "
            f"{cache['bytes_shipped']}B shipped"
            f"{'' if r['identical'] else '  OUTPUT MISMATCH'}"
        )
    lines.append("checks:")
    for key, value in doc["checks"].items():
        lines.append(f"  {key}: {value}")
    return "\n".join(lines)


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Declare the bench flags on ``parser``.

    The single source of truth for the interface: the ``repro bench``
    subcommand and this module's standalone ``main`` both call it, so the
    two entry points cannot drift.
    """
    parser.add_argument("--quick", action="store_true",
                        help="small scenario sizes (the CI smoke mode)")
    parser.add_argument("--out", default="BENCH_substrate.json",
                        metavar="PATH",
                        help="artifact path (default: %(default)s; "
                             "'-' skips writing)")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool worker count (default: min(cpus, 8))")
    parser.add_argument("--repeats", type=int, default=None,
                        help="override rounds per variant")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless persistent >= cold throughput "
                             "and all outputs are bit-identical")


def run_from_args(args: argparse.Namespace) -> int:
    """Execute the bench from parsed :func:`add_bench_arguments` flags."""
    if args.workers is not None:
        from repro.dist.executor import validate_workers

        validate_workers(args.workers)  # ValueError on bad counts

    doc = run_substrate_bench(
        mode="quick" if args.quick else "full",
        workers=args.workers,
        repeats=args.repeats,
        out=None if args.out == "-" else args.out,
    )
    print(_format_summary(doc))
    if args.out != "-":
        print(f"[wrote {args.out}]")

    if args.check:
        checks = doc["checks"]
        failed = [
            key for key in ("persistent_pool_faster_than_cold",
                            "all_outputs_identical",
                            "solver_facade_all_verified",
                            "remote_outputs_identical",
                            "remote_cache_ships_each_piece_once_per_worker")
            if not checks[key]
        ]
        # The shared-transfer claim is asserted on full runs; quick sizes
        # are too small for mapping overhead to separate from noise.
        if doc["mode"] == "full" and not checks[
                "shared_transfer_lower_overhead_at_largest"]:
            failed.append("shared_transfer_lower_overhead_at_largest")
        if failed:
            print(f"CHECK FAILED: {', '.join(failed)}", file=sys.stderr)
            return 1
        print("all checks passed")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Time the executor substrate (pool lifecycle, piece "
                    "transfer, greedy scan) and write BENCH_substrate.json",
    )
    add_bench_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run_from_args(args)
    except ValueError as exc:
        parser.error(str(exc))


if __name__ == "__main__":  # pragma: no cover - module execution hook
    raise SystemExit(main())
