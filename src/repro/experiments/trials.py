"""E1–E23 trial bodies as module-level, picklable dataclasses.

Each class here is one grid cell of one experiment: parameters live in
frozen dataclass fields, and ``__call__(seed)`` runs a single independent
trial and returns a flat ``dict[str, float]`` of metrics (the
:class:`~repro.experiments.registry.Trial` contract).  Being plain data,
every trial pickles — which is what lets
:func:`~repro.experiments.harness.run_trials` fan trials out across worker
*processes*, the parallelism grain ROADMAP flagged as the biggest win for
the benchmark suite.

The spec definitions that sweep these trials over their grids and
aggregate the metrics into table rows live in
:mod:`repro.experiments.tables`; heavyweight library imports stay inside
``__call__`` so importing this module (or unpickling a trial in a worker)
stays cheap.

Trials whose body is "run one registered algorithm, measure it" (E1, E3,
E8, E9, E10) resolve that algorithm from the :mod:`repro.solve` registry
by name and read their metrics from ``SolveResult.stats``, rather than
importing protocol factories directly — the same inversion the experiment
registry applied to experiments.  Trials that orchestrate *several*
interacting algorithms or instrument internals (adversarial orders, trace
objects, ablation grids) keep calling the library directly.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.experiments.registry import Trial
from repro.utils.rng import RandomState, spawn_generators

__all__ = [
    "E1Trial", "E2Trial", "E3Trial", "E4Trial", "E5Trial", "E6Trial",
    "E7Trial", "E8Trial", "E9Trial", "E10Trial", "E11Trial", "E12Trial",
    "E13Trial", "E14Trial", "E15Trial", "E16Trial", "E17Trial", "E18Trial",
    "E19Trial", "E20Trial", "E21Trial", "E22Trial", "E23Trial",
]


# --------------------------------------------------------------------- #
# E1 — Theorem 1: max-matching coreset is O(1)-approximate
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class E1Trial(Trial):
    """Ratio of MM(G) to the composed Theorem 1 coreset matching."""

    n: int
    k: int
    general_graphs: bool = False

    def __call__(self, seed: RandomState) -> Dict[str, float]:
        from repro.graph.generators import gnp, planted_matching_gnp
        from repro.matching.api import matching_number
        from repro.solve import RunContext, solve

        g_rng, s_rng = spawn_generators(seed, 2)
        if self.general_graphs:
            graph = gnp(self.n, 3.0 / self.n, g_rng)
        else:
            graph, _ = planted_matching_gnp(
                self.n // 2, self.n // 2, p=3.0 / self.n, rng=g_rng
            )
        res = solve(graph, "matching.coreset",
                    RunContext(seed=s_rng, k=self.k), combiner="exact")
        opt = matching_number(graph)
        return {
            "ratio": opt / max(1, int(res.value)),
            "coreset_edges": res.stats["total_edges"] / self.k,
        }


# --------------------------------------------------------------------- #
# E2 — §1.2: maximal-matching coreset is Ω(k)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class E2Trial(Trial):
    """Maximal vs maximum matching as coresets on the §1.2 hub instance."""

    k: int
    width: int

    def __call__(self, seed: RandomState) -> Dict[str, float]:
        from repro.baselines.bad_coresets import blocking_maximal_protocol
        from repro.core.protocols import matching_coreset_protocol
        from repro.dist.coordinator import run_simultaneous
        from repro.graph.generators import hidden_matching_with_hubs
        from repro.graph.partition import random_k_partition

        g_rng, p_rng, r_rng = spawn_generators(seed, 3)
        good = matching_coreset_protocol(combiner="exact")
        graph, n_pairs, _ = hidden_matching_with_hubs(
            self.k, self.width, rng=g_rng
        )
        bad = blocking_maximal_protocol(hub_boundary=2 * n_pairs)
        part = random_k_partition(graph, self.k, p_rng)
        bad_out = run_simultaneous(bad, part, r_rng).output
        good_out = run_simultaneous(good, part, r_rng).output
        return {
            "opt": n_pairs,
            "bad_ratio": n_pairs / max(1, bad_out.shape[0]),
            "good_ratio": n_pairs / max(1, good_out.shape[0]),
        }


# --------------------------------------------------------------------- #
# E3 — Theorem 2: VC coreset is O(log n)-approximate
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class E3Trial(Trial):
    """Theorem 2 coreset ratio/size on a skewed-degree bipartite workload."""

    n: int
    k: int

    def __call__(self, seed: RandomState) -> Dict[str, float]:
        from repro.cover import konig_cover
        from repro.graph.generators import skewed_bipartite
        from repro.solve import RunContext, solve

        g_rng, s_rng = spawn_generators(seed, 2)
        half = self.n // 2
        graph = skewed_bipartite(
            half, half,
            hub_count=max(4, half // 50),
            hub_degree=max(8, half // 10),
            leaf_p=2.0 / half,
            rng=g_rng,
        )
        res = solve(graph, "vertex_cover.coreset",
                    RunContext(seed=s_rng, k=self.k))
        opt = int(konig_cover(graph).shape[0])
        return {
            "ratio": res.value / max(1, opt),
            "residual": res.stats["total_edges"] / self.k,
            "fixed": res.stats["total_fixed_vertices"] / self.k,
            "feasible": float(res.verified),
        }


# --------------------------------------------------------------------- #
# E4 — §1.2: min-VC-as-coreset is Ω(k) (star example)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class E4Trial(Trial):
    """Min-VC-of-the-piece vs the peeling coreset on star forests."""

    k: int
    n_stars: int

    def __call__(self, seed: RandomState) -> Dict[str, float]:
        from repro.baselines.bad_coresets import min_vc_coreset_protocol
        from repro.core.protocols import vertex_cover_coreset_protocol
        from repro.cover import is_vertex_cover
        from repro.dist.coordinator import run_simultaneous
        from repro.graph.generators import bipartite_star_forest
        from repro.graph.partition import random_k_partition

        g_rng, p_rng, r_rng = spawn_generators(seed, 3)
        bad = min_vc_coreset_protocol(prefer_leaves=True)
        good = vertex_cover_coreset_protocol(k=self.k)
        graph = bipartite_star_forest(self.n_stars, leaves_per_star=self.k)
        part = random_k_partition(graph, self.k, p_rng)
        bad_out = run_simultaneous(bad, part, r_rng).output
        good_out = run_simultaneous(good, part, r_rng).output
        opt = self.n_stars  # the centers
        return {
            "bad_ratio": bad_out.shape[0] / opt,
            "good_ratio": good_out.shape[0] / opt,
            "feasible": float(
                is_vertex_cover(graph, bad_out)
                and is_vertex_cover(graph, good_out)
            ),
        }


# --------------------------------------------------------------------- #
# E5 — Theorem 3: matching coresets need Ω(n/α²) edges
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class E5Trial(Trial):
    """Budget-limited coreset on one D_Matching instance."""

    n: int
    alpha: float
    k: int
    budget: int

    def __call__(self, seed: RandomState) -> Dict[str, float]:
        from repro.dist.coordinator import run_simultaneous
        from repro.graph.partition import random_k_partition
        from repro.lowerbounds.dmatching import (
            budget_limited_matching_protocol,
            hidden_edges_recovered,
            sample_dmatching,
        )
        from repro.matching.api import matching_number

        i_rng, p_rng, r_rng = spawn_generators(seed, 3)
        protocol = budget_limited_matching_protocol(self.budget)
        inst = sample_dmatching(self.n, self.alpha, self.k, i_rng)
        part = random_k_partition(inst.graph, self.k, p_rng)
        res = run_simultaneous(protocol, part, r_rng)
        opt = matching_number(inst.graph)
        out = int(res.output.shape[0])
        return {
            "ratio": opt / max(1, out),
            "hidden": hidden_edges_recovered(inst, res.output),
        }


# --------------------------------------------------------------------- #
# E6 — Theorem 4: VC coresets need Ω(n/α) size
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class E6Trial(Trial):
    """Budget-limited cover coreset on one D_VC instance."""

    n: int
    alpha: float
    k: int
    budget: int

    def __call__(self, seed: RandomState) -> Dict[str, float]:
        from repro.cover import is_vertex_cover
        from repro.dist.coordinator import run_simultaneous
        from repro.graph.partition import random_k_partition
        from repro.lowerbounds.dvc import (
            budget_limited_cover_protocol,
            covers_estar,
            sample_dvc,
        )

        i_rng, p_rng, r_rng = spawn_generators(seed, 3)
        protocol = budget_limited_cover_protocol(
            self.budget, self.budget, k=self.k
        )
        inst = sample_dvc(self.n, self.alpha, self.k, i_rng)
        part = random_k_partition(inst.graph, self.k, p_rng)
        res = run_simultaneous(protocol, part, r_rng)
        return {
            "covered": float(covers_estar(inst, res.output)),
            "feasible": float(is_vertex_cover(inst.graph, res.output)),
            "size": res.output.shape[0],
        }


# --------------------------------------------------------------------- #
# E7 — headline: random vs adversarial partitioning
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class E7Trial(Trial):
    """Same graph, same coreset, random vs adversarial partitioning."""

    k: int
    n_hidden: int

    def __call__(self, seed: RandomState) -> Dict[str, float]:
        from repro.lowerbounds.adversary import contrast_partitionings

        c = contrast_partitionings(self.n_hidden, self.k, seed)
        return {
            "opt": c.optimum,
            "rand": c.random_ratio,
            "adv": c.adversarial_ratio,
        }


# --------------------------------------------------------------------- #
# E8 — MapReduce: rounds and memory vs the filtering baseline
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class E8Trial(Trial):
    """Coreset MapReduce (2-round and pre-randomized) vs filtering [46]."""

    n: int
    avg_degree: float
    memory_cap_edges: int

    def __call__(self, seed: RandomState) -> Dict[str, float]:
        from repro.graph.generators import planted_matching_gnp
        from repro.matching.api import matching_number
        from repro.solve import RunContext, solve

        g_rng, mr_rng, mr2_rng, f_rng = spawn_generators(seed, 4)
        graph, _ = planted_matching_gnp(
            self.n // 2, self.n // 2, p=self.avg_degree / self.n, rng=g_rng
        )
        opt = matching_number(graph)
        coreset = solve(graph, "matching.mapreduce", RunContext(seed=mr_rng),
                        memory_cap_edges=self.memory_cap_edges)
        coreset1 = solve(graph, "matching.mapreduce", RunContext(seed=mr2_rng),
                         memory_cap_edges=self.memory_cap_edges,
                         assume_random_input=True)
        # Filtering must iterate: give it the same memory budget but note
        # it only ever uses the central machine.
        filt = solve(graph, "matching.filtering", RunContext(seed=f_rng),
                     memory_edges=max(64, graph.n_edges // 8))
        return {
            "c_rounds": coreset.stats["n_rounds"],
            "c_ratio": opt / max(1, int(coreset.value)),
            "c_peak": coreset.stats["peak_machine_edges"],
            "c1_rounds": coreset1.stats["n_rounds"],
            "c1_ratio": opt / max(1, int(coreset1.value)),
            "c1_peak": coreset1.stats["peak_machine_edges"],
            "f_rounds": filt.stats["n_rounds"],
            "f_ratio": opt / max(1, int(filt.value)),
            "f_peak": filt.stats["peak_central_edges"],
        }


# --------------------------------------------------------------------- #
# E9 — Remark 5.2: subsampled matching, Õ(nk/α²) communication
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class E9Trial(Trial):
    """Subsampled matching protocol on one D_Matching instance."""

    n: int
    k: int
    alpha: float

    def __call__(self, seed: RandomState) -> Dict[str, float]:
        from repro.lowerbounds.dmatching import sample_dmatching
        from repro.matching.api import matching_number
        from repro.solve import RunContext, solve

        g_rng, s_rng = spawn_generators(seed, 2)
        inst = sample_dmatching(self.n, self.alpha, self.k, g_rng)
        res = solve(inst.graph, "matching.subsampled_coreset",
                    RunContext(seed=s_rng, k=self.k), alpha=self.alpha)
        opt = matching_number(inst.graph)
        return {
            "ratio": opt / max(1, int(res.value)),
            "bits": res.stats["total_bits"],
        }


# --------------------------------------------------------------------- #
# E10 — Remark 5.8: grouped VC, Õ(nk/α) communication
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class E10Trial(Trial):
    """Grouped vertex-cover protocol on a dense skewed workload."""

    n: int
    k: int
    alpha: float

    def __call__(self, seed: RandomState) -> Dict[str, float]:
        from repro.cover import konig_cover
        from repro.graph.generators import skewed_bipartite
        from repro.solve import RunContext, solve

        g_rng, s_rng = spawn_generators(seed, 2)
        half = self.n // 2
        # Dense enough that the coreset's Õ(n'·log n') message bound is
        # what limits communication (otherwise every protocol just
        # sends its whole sparse piece and the 1/alpha scaling hides).
        graph = skewed_bipartite(
            half, half, hub_count=half // 50, hub_degree=half // 10,
            leaf_p=16.0 / half, rng=g_rng,
        )
        res = solve(graph, "vertex_cover.grouped_coreset",
                    RunContext(seed=s_rng, k=self.k), alpha=self.alpha)
        opt = int(konig_cover(graph).shape[0])
        return {
            "ratio": res.value / max(1, opt),
            "feasible": float(res.verified),
            "bits": res.stats["total_bits"],
        }


# --------------------------------------------------------------------- #
# E11 — Appendix A: induced matchings in G(n, n, 1/n)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class E11Trial(Trial):
    """Induced-matching density and degree-1 fraction in G(n, n, 1/n)."""

    n: int

    def __call__(self, seed: RandomState) -> Dict[str, float]:
        from repro.graph.generators import bipartite_gnp
        from repro.lowerbounds.induced import induced_matching

        (g_rng,) = spawn_generators(seed, 1)
        g = bipartite_gnp(self.n, self.n, 1.0 / self.n, g_rng)
        m = induced_matching(g)
        deg_left = g.degrees[: self.n]
        return {
            "density": m.shape[0] / self.n,
            "deg1": float((deg_left == 1).mean()),
        }


# --------------------------------------------------------------------- #
# E12 — §1.1: Crouch–Stubbs weighted extension
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class E12Trial(Trial):
    """Weighted coreset protocol vs centralized greedy at one epsilon."""

    n: int
    k: int
    weight_spread: float
    epsilon: float

    def __call__(self, seed: RandomState) -> Dict[str, float]:
        from repro.core.weighted import weighted_matching_coreset_protocol
        from repro.graph.generators import bipartite_gnp
        from repro.graph.weights import WeightedGraph
        from repro.matching.weighted import greedy_weighted_matching

        g_rng, w_rng, p_rng = spawn_generators(seed, 3)
        base = bipartite_gnp(
            self.n // 2, self.n // 2, p=4.0 / self.n, rng=g_rng
        )
        weights = np.exp(
            w_rng.uniform(0, math.log(self.weight_spread), size=base.n_edges)
        )
        wg = WeightedGraph(base.n_vertices, base.edges, weights,
                           validated=True)
        res = weighted_matching_coreset_protocol(
            wg, k=self.k, epsilon=self.epsilon, rng=p_rng
        )
        _, central = greedy_weighted_matching(wg)
        return {
            "proto": res.weight,
            "central": central,
            "bits": res.ledger.total_bits(),
        }


# --------------------------------------------------------------------- #
# E13 — Result 1→3: total communication Õ(nk)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class E13Trial(Trial):
    """Total bits of both coresets (and send-everything) at one k."""

    n: int
    k: int

    def __call__(self, seed: RandomState) -> Dict[str, float]:
        from repro.baselines.naive import send_everything_protocol
        from repro.core.protocols import (
            matching_coreset_protocol,
            vertex_cover_coreset_protocol,
        )
        from repro.dist.coordinator import run_simultaneous
        from repro.graph.generators import skewed_bipartite
        from repro.graph.partition import random_k_partition

        g_rng, p_rng, r_rng = spawn_generators(seed, 3)
        match_p = matching_coreset_protocol()
        vc_p = vertex_cover_coreset_protocol(k=self.k)
        naive_p = send_everything_protocol("matching")
        half = self.n // 2
        # A hub-heavy dense workload: hub degrees ~n/4 exceed the
        # peeling thresholds so the VC coreset genuinely compresses,
        # and m ≫ n so the Õ(nk) coreset cost separates from the Θ(m)
        # send-everything baseline.
        graph = skewed_bipartite(
            half, half, hub_count=half // 10, hub_degree=half // 2,
            leaf_p=8.0 / half, rng=g_rng,
        )
        part = random_k_partition(graph, self.k, p_rng)
        rm = run_simultaneous(match_p, part, r_rng)
        rv = run_simultaneous(vc_p, part, r_rng)
        rn = run_simultaneous(naive_p, part, r_rng)
        return {
            "m_bits": rm.total_bits,
            "v_bits": rv.total_bits,
            "n_bits": rn.total_bits,
            "m_max": rm.ledger.max_player_bits(),
        }


# --------------------------------------------------------------------- #
# E14 — Claim 3.3 / Lemma 3.2: GreedyMatch dynamics
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class E14Trial(Trial):
    """Instrumented GreedyMatch prefix concentration and per-step gains."""

    n: int
    k: int

    def __call__(self, seed: RandomState) -> Dict[str, float]:
        from repro.core.greedy_match import greedy_match
        from repro.graph.generators import planted_matching_gnp
        from repro.graph.partition import random_k_partition
        from repro.matching.api import maximum_matching

        g_rng, p_rng = spawn_generators(seed, 2)
        graph, _ = planted_matching_gnp(
            self.n // 2, self.n // 2, p=3.0 / self.n, rng=g_rng
        )
        part = random_k_partition(graph, self.k, p_rng)
        opt_matching = maximum_matching(graph)
        mm = opt_matching.shape[0]
        _, trace = greedy_match(part, reference_optimum=opt_matching)
        prefix = np.asarray(trace.optimal_assigned_prefix, dtype=np.float64)
        ideal = np.arange(self.k, dtype=np.float64) / self.k * mm
        dev = float(np.abs(prefix - ideal).max() / mm)
        gains = np.asarray(
            trace.gains[: max(1, self.k // 3)], dtype=np.float64
        )
        return {
            "ratio": mm / max(1, trace.final_size),
            "dev": dev,
            "gain": float(gains.mean() / (mm / self.k)),
            "final_frac": trace.final_size / mm,
        }


# --------------------------------------------------------------------- #
# E15 — ablation: summarizer × combiner grid
# --------------------------------------------------------------------- #
def _e15_protocol(variant: str):
    """Build the protocol for one named E15 ablation variant."""
    from repro.baselines.bad_coresets import maximal_matching_coreset_protocol
    from repro.baselines.naive import send_everything_protocol
    from repro.core.protocols import (
        matching_coreset_protocol,
        subsampled_matching_protocol,
    )

    factories = {
        "maximum+exact": lambda: matching_coreset_protocol(combiner="exact"),
        "maximum+greedy": lambda: matching_coreset_protocol(combiner="greedy"),
        "maximal(random)+exact":
            lambda: maximal_matching_coreset_protocol(order="random"),
        "subsampled(alpha=4)+exact":
            lambda: subsampled_matching_protocol(4.0),
        "send-everything": lambda: send_everything_protocol("matching"),
    }
    if variant not in factories:
        raise ValueError(
            f"unknown E15 variant {variant!r}; available: "
            f"{', '.join(factories)}"
        )
    return factories[variant]()


E15_VARIANTS = (
    "maximum+exact",
    "maximum+greedy",
    "maximal(random)+exact",
    "subsampled(alpha=4)+exact",
    "send-everything",
)


@dataclass(frozen=True)
class E15Trial(Trial):
    """One summarizer/combiner ablation variant on the planted workload."""

    n: int
    k: int
    variant: str

    def __call__(self, seed: RandomState) -> Dict[str, float]:
        from repro.dist.coordinator import run_simultaneous
        from repro.graph.generators import planted_matching_gnp
        from repro.graph.partition import random_k_partition
        from repro.matching.api import matching_number

        g_rng, p_rng, r_rng = spawn_generators(seed, 3)
        protocol = _e15_protocol(self.variant)
        graph, _ = planted_matching_gnp(
            self.n // 2, self.n // 2, p=3.0 / self.n, rng=g_rng
        )
        part = random_k_partition(graph, self.k, p_rng)
        res = run_simultaneous(protocol, part, r_rng)
        opt = matching_number(graph)
        return {
            "ratio": opt / max(1, res.output.shape[0]),
            "bits": res.total_bits,
        }


# --------------------------------------------------------------------- #
# E16 — §1.3 connection: random-arrival streaming
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class E16Trial(Trial):
    """One-pass matchers under random and adversarial arrival orders."""

    n: int
    noise_degree: float

    def __call__(self, seed: RandomState) -> Dict[str, float]:
        from repro.graph.generators import planted_matching_gnp
        from repro.matching.api import maximum_matching
        from repro.streaming import (
            StreamingGreedyMatcher,
            TwoPhaseStreamingMatcher,
            adversarial_order,
            random_order,
        )

        g_rng, o_rng, o2_rng = spawn_generators(seed, 3)
        graph, _ = planted_matching_gnp(
            self.n // 2, self.n // 2, p=self.noise_degree / self.n, rng=g_rng
        )
        opt_matching = maximum_matching(graph)
        opt = opt_matching.shape[0]
        out: Dict[str, float] = {}
        orders = {
            "random": random_order(graph, o_rng),
            "adversarial": adversarial_order(graph, opt_matching, o2_rng),
        }
        for name, order in orders.items():
            greedy = StreamingGreedyMatcher(graph.n_vertices)
            g_m = greedy.run(graph, order)
            two = TwoPhaseStreamingMatcher(graph.n_vertices)
            t_m = two.run(graph, order)
            out[f"{name}_greedy"] = g_m.shape[0] / max(1, opt)
            out[f"{name}_two"] = t_m.shape[0] / max(1, opt)
            out[f"{name}_mem"] = two.memory_words / graph.n_vertices
        return out


# --------------------------------------------------------------------- #
# E17 — footnote 3: exact kernel coresets for small optima
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class E17Trial(Trial):
    """Exact composable kernels at one optimum bound, both partitionings."""

    n: int
    k: int
    opt_bound: int

    def __call__(self, seed: RandomState) -> Dict[str, float]:
        from repro.core.kernel_coreset import exact_matching_kernel_protocol
        from repro.dist.coordinator import run_simultaneous
        from repro.graph.generators import planted_matching_gnp
        from repro.graph.partition import (
            adversarial_degree_partition,
            random_k_partition,
        )
        from repro.matching.api import matching_number

        g_rng, p_rng, r_rng = spawn_generators(seed, 3)
        protocol = exact_matching_kernel_protocol(self.opt_bound)
        # MM(G) = opt_bound: planted matching on opt_bound left
        # vertices plus dense noise touching only those lefts, so the
        # kernel's O(K²) size bound is what binds (not the graph size).
        graph, _ = planted_matching_gnp(
            self.opt_bound, self.n, p=16.0 / self.opt_bound, rng=g_rng
        )
        mm = matching_number(graph)
        rand = run_simultaneous(
            protocol, random_k_partition(graph, self.k, p_rng), r_rng
        )
        adv = run_simultaneous(
            protocol, adversarial_degree_partition(graph, self.k), r_rng
        )
        return {
            "mm": mm,
            "rand_exact": float(rand.output.shape[0] == mm),
            "adv_exact": float(adv.output.shape[0] == mm),
            "graph_edges": graph.n_edges,
            "kernel_edges": rand.ledger.total_edges(),
        }


# --------------------------------------------------------------------- #
# E18 — robustness: both coresets across graph families
# --------------------------------------------------------------------- #
def _family_gnp(n: int, rng):
    from repro.graph.generators import bipartite_gnp

    half = n // 2
    return bipartite_gnp(half, half, 3.0 / half, rng)


def _family_planted(n: int, rng):
    from repro.graph.generators import planted_matching_gnp

    half = n // 2
    return planted_matching_gnp(half, half, 2.0 / n, rng=rng)[0]


def _family_power_law(n: int, rng):
    from repro.graph.generators import power_law_bipartite

    half = n // 2
    return power_law_bipartite(half, half, avg_degree=4.0, exponent=2.2,
                               rng=rng)


def _family_clustered(n: int, rng):
    from repro.graph.generators import clustered_bipartite

    half = n // 2
    return clustered_bipartite(
        n_blocks=max(2, half // 100), block_size=100,
        p_in=0.08, p_out=0.2 / half, rng=rng,
    )


def _family_stars_noise(n: int, rng):
    from repro.graph.generators import bipartite_gnp, bipartite_star_forest

    half = n // 2
    return bipartite_star_forest(half // 8, 8).union(
        bipartite_gnp(half // 8, half, 1.0 / half, rng)
    )


E18_FAMILIES = {
    "gnp": _family_gnp,
    "planted": _family_planted,
    "power_law": _family_power_law,
    "clustered": _family_clustered,
    "stars+noise": _family_stars_noise,
}


@dataclass(frozen=True)
class E18Trial(Trial):
    """Both coresets on one structurally distinct graph family."""

    n: int
    k: int
    family: str

    def __call__(self, seed: RandomState) -> Dict[str, float]:
        from repro.core.protocols import (
            matching_coreset_protocol,
            vertex_cover_coreset_protocol,
        )
        from repro.cover import is_vertex_cover, konig_cover
        from repro.dist.coordinator import run_simultaneous
        from repro.graph.partition import random_k_partition
        from repro.matching.api import matching_number

        if self.family not in E18_FAMILIES:
            raise ValueError(
                f"unknown E18 family {self.family!r}; available: "
                f"{', '.join(E18_FAMILIES)}"
            )
        g_rng, p_rng, r_rng = spawn_generators(seed, 3)
        match_p = matching_coreset_protocol()
        vc_p = vertex_cover_coreset_protocol(k=self.k)
        graph = E18_FAMILIES[self.family](self.n, g_rng)
        part = random_k_partition(graph, self.k, p_rng)
        rm = run_simultaneous(match_p, part, r_rng)
        rv = run_simultaneous(vc_p, part, r_rng)
        mm = matching_number(graph)
        vc = int(konig_cover(graph).shape[0])
        return {
            "m_ratio": mm / max(1, rm.output.shape[0]),
            "v_ratio": rv.output.shape[0] / max(1, vc),
            "v_feasible": float(is_vertex_cover(graph, rv.output)),
        }


# --------------------------------------------------------------------- #
# E19 — §1.3: edge-partition vs vertex-partition simultaneous models
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class E19Trial(Trial):
    """Theorem 1 coreset in the edge- and vertex-partition models."""

    n: int
    k: int

    def __call__(self, seed: RandomState) -> Dict[str, float]:
        from repro.core.protocols import matching_coreset_protocol
        from repro.dist.coordinator import run_simultaneous
        from repro.graph.generators import planted_matching_gnp
        from repro.graph.partition import (
            random_k_partition,
            random_vertex_partition,
        )
        from repro.matching.api import matching_number

        g_rng, p_rng, v_rng, r_rng = spawn_generators(seed, 4)
        protocol = matching_coreset_protocol()
        graph, _ = planted_matching_gnp(
            self.n // 2, self.n // 2, p=3.0 / self.n, rng=g_rng
        )
        opt = matching_number(graph)
        edge_part = random_k_partition(graph, self.k, p_rng)
        vertex_part = random_vertex_partition(graph, self.k, v_rng)
        re_ = run_simultaneous(protocol, edge_part, r_rng)
        rv = run_simultaneous(protocol, vertex_part, r_rng)
        return {
            "e_ratio": opt / max(1, re_.output.shape[0]),
            "v_ratio": opt / max(1, rv.output.shape[0]),
            "e_bits": re_.total_bits,
            "v_bits": rv.total_bits,
            "dup": vertex_part.duplication_factor(),
        }


# --------------------------------------------------------------------- #
# E20 — the "w.h.p." itself: concentration of the coreset guarantee
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class E20Trial(Trial):
    """One independent partitioning for the tail-probability estimate."""

    n: int
    k: int

    def __call__(self, seed: RandomState) -> Dict[str, float]:
        from repro.core.greedy_match import greedy_match
        from repro.core.protocols import matching_coreset_protocol
        from repro.dist.coordinator import run_simultaneous
        from repro.graph.generators import planted_matching_gnp
        from repro.graph.partition import random_k_partition
        from repro.matching.api import maximum_matching

        g_rng, p_rng, r_rng = spawn_generators(seed, 3)
        protocol = matching_coreset_protocol()
        graph, _ = planted_matching_gnp(
            self.n // 2, self.n // 2, p=3.0 / self.n, rng=g_rng
        )
        opt_matching = maximum_matching(graph)
        mm = opt_matching.shape[0]
        part = random_k_partition(graph, self.k, p_rng)
        res = run_simultaneous(protocol, part, r_rng)
        _, trace = greedy_match(part, reference_optimum=opt_matching)
        prefix = np.asarray(trace.optimal_assigned_prefix, float)
        ideal = np.arange(self.k, dtype=float) / self.k * mm
        dev = float(np.abs(prefix - ideal).max() / max(1, mm))
        return {
            "ratio": mm / max(1, res.output.shape[0]),
            "dev": dev,
        }


# --------------------------------------------------------------------- #
# E21 — parallel scaling of the execution backends (E8 workload)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class E21Trial(Trial):
    """Wall-clock of one E8 MapReduce workload on one executor backend.

    Each trial builds its workload from the seed, runs it serially for
    the reference, and re-runs it on the requested backend with the same
    MapReduce seed — so ``identical`` is a genuine serial-vs-backend
    comparison and ``wall_s`` / ``serial_wall_s`` time the same work.
    """

    n: int
    avg_degree: float
    executor: str
    workers: Optional[int] = None

    def __call__(self, seed: RandomState) -> Dict[str, float]:
        from repro.core.mapreduce_algos import mapreduce_matching
        from repro.dist.executor import resolve_executor
        from repro.graph.generators import planted_matching_gnp

        g_seed, mr_seed = seed.spawn(2) if isinstance(
            seed, np.random.SeedSequence
        ) else np.random.SeedSequence(seed).spawn(2)
        memory = int(self.n ** 1.5)
        graph, _ = planted_matching_gnp(
            self.n // 2, self.n // 2, p=self.avg_degree / self.n,
            rng=np.random.default_rng(g_seed),
        )

        def timed(backend):
            start = time.perf_counter()
            res = mapreduce_matching(
                graph, rng=mr_seed, memory_cap_edges=memory,
                executor=backend,
            )
            return time.perf_counter() - start, res.matching

        serial_wall, serial_matching = timed(resolve_executor("serial"))
        backend = resolve_executor(self.executor, workers=self.workers)
        if backend.name == "serial":
            wall, matching = serial_wall, serial_matching
        else:
            wall, matching = timed(backend)
        return {
            "wall_s": wall,
            "serial_wall_s": serial_wall,
            "size": float(matching.shape[0]),
            "serial_size": float(serial_matching.shape[0]),
            "identical": float(np.array_equal(matching, serial_matching)),
        }


# --------------------------------------------------------------------- #
# E22 — workloads: coreset quality under random vs adversarial partitions
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class E22Trial(Trial):
    """One registry workload × one summarizer, all partition strategies.

    The guarantee of Theorem 1 is conditioned on the *random* k-partition;
    this trial measures what a non-random sharding costs on real degree
    distributions.  The graph comes from the :mod:`repro.workloads`
    registry (dataset-backed loaders run offline from their bundled
    fixtures), each machine summarizes its piece with either a **maximum**
    matching (the Theorem 1 coreset) or a **greedy** maximal matching (the
    §1.2 naive coreset), and the coordinator takes a maximum matching of
    the union.  ``ratio_<strategy> = MM(G) / |composed|`` for every
    strategy in :data:`~repro.workloads.partitions.PARTITION_STRATEGIES`.
    """

    workload: str
    k: int
    summarizer: str = "greedy"

    def __call__(self, seed: RandomState) -> Dict[str, float]:
        from repro.graph.bipartite import BipartiteGraph
        from repro.matching.api import matching_number, maximum_matching
        from repro.matching.maximal import greedy_maximal_matching
        from repro.workloads.partitions import (
            PARTITION_STRATEGIES,
            partition_workload,
        )
        from repro.workloads.registry import build_workload

        if self.summarizer not in ("maximum", "greedy"):
            raise ValueError(
                f"summarizer must be 'maximum' or 'greedy', "
                f"got {self.summarizer!r}"
            )
        g_rng, p_rng, o_rng = spawn_generators(seed, 3)
        graph = build_workload(self.workload, rng=g_rng)
        opt = matching_number(graph)
        part_rngs = spawn_generators(p_rng, len(PARTITION_STRATEGIES))
        order_rngs = spawn_generators(o_rng, len(PARTITION_STRATEGIES))
        out: Dict[str, float] = {"opt": float(opt)}
        for strategy, s_rng, ord_rng in zip(
            PARTITION_STRATEGIES, part_rngs, order_rngs
        ):
            part = partition_workload(graph, self.k, strategy, s_rng)
            summaries = []
            for piece in part.pieces():
                if self.summarizer == "maximum":
                    summary = maximum_matching(piece)
                else:
                    summary = greedy_maximal_matching(
                        piece, order="random", rng=ord_rng
                    )
                if summary.shape[0]:
                    summaries.append(summary)
            if summaries:
                union = BipartiteGraph(
                    graph.n_left, graph.n_right, np.concatenate(summaries)
                )
                composed = maximum_matching(union).shape[0]
            else:
                composed = 0
            out[f"ratio_{strategy}"] = opt / max(1, composed)
        return out


# --------------------------------------------------------------------- #
# E23 — capacitated coreset: b-matching on the AdWords workload
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class E23Trial(Trial):
    """b-matching coreset quality on ``ba_adwords``, all strategies.

    Optimum is the exact maximum-cardinality b-matching
    (``matching.b_exact``); each strategy runs the ``matching.b_coreset``
    heuristic (per-machine greedy b-matching summaries, exact b-matching
    on the union) and reports its ratio plus capacity feasibility as
    verified by the solve facade.
    """

    k: int
    u: int = 200
    v: int = 800
    p: float = 4.0

    def __call__(self, seed: RandomState) -> Dict[str, float]:
        from repro.solve import RunContext, solve
        from repro.workloads.partitions import PARTITION_STRATEGIES
        from repro.workloads.registry import build_workload

        g_rng, s_rng = spawn_generators(seed, 2)
        graph = build_workload(
            "ba_adwords", rng=g_rng, u=self.u, v=self.v, p=self.p
        )
        opt = solve(graph, "matching.b_exact").value
        out: Dict[str, float] = {
            "opt": float(opt),
            "total_capacity": float(graph.total_capacity()),
        }
        strategy_rngs = spawn_generators(s_rng, len(PARTITION_STRATEGIES))
        for strategy, rng in zip(PARTITION_STRATEGIES, strategy_rngs):
            res = solve(graph, "matching.b_coreset",
                        RunContext(seed=rng, k=self.k), strategy=strategy)
            out[f"ratio_{strategy}"] = opt / max(1.0, res.value)
            out[f"feasible_{strategy}"] = float(res.verified)
        return out
