"""The frozen per-run execution context.

Before this facade existed, every algorithm entry point grew its own
``rng=`` / ``executor=`` / ``workers=`` / ``transfer=`` / ``k=`` keyword
soup, each with slightly different resolution rules.  :class:`RunContext`
replaces all of them with one immutable, picklable value object:

* **seed** — the single source of randomness for the whole solve, following
  the library-wide discipline (:mod:`repro.utils.rng`): each solver derives
  the independent streams it needs via :meth:`RunContext.generators`, in an
  order documented by that solver's adapter, so the same context reproduces
  the run bit for bit.
* **k** — machine count for the distributed models (coreset, mapreduce).
  Offline and streaming solvers ignore it.
* **executor / workers / transfer** — the substrate knobs of
  :mod:`repro.dist.executor` and :mod:`repro.dist.shm`, resolved through
  :meth:`RunContext.executor_scope` with exactly the ownership rules the
  engines document: a context that *names* a backend owns (and closes) the
  pool it creates; a context carrying an :class:`~repro.dist.executor.Executor`
  instance leaves its lifetime to the caller.

The dataclass is frozen so a context can be shared between solvers, hashed
into cache keys, and shipped to worker processes without aliasing worries.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator, Optional

import numpy as np

from repro.dist.executor import Executor, ExecutorSpec, resolve_executor
from repro.utils.rng import RandomState, as_generator, spawn_generators

__all__ = ["RunContext"]


@dataclass(frozen=True)
class RunContext:
    """Immutable execution context shared by every registered solver.

    Parameters
    ----------
    seed:
        Root randomness (int, ``None``, ``Generator``, or ``SeedSequence``
        — the :data:`~repro.utils.rng.RandomState` union).  Solvers never
        touch it directly; they call :meth:`generators`.
    k:
        Machine count for coreset/mapreduce solvers.  ``None`` means "not
        specified": solvers that *require* a machine count raise
        :class:`~repro.solve.registry.SolverCapabilityError`, solvers with
        a natural default (MapReduce's ``k = √n``) use it.
    executor:
        Execution backend spec (``"serial"`` / ``"threads"`` /
        ``"processes"`` / an :class:`~repro.dist.executor.Executor`
        instance / ``None`` for ``$REPRO_EXECUTOR``).
    workers:
        Worker count for thread/process backends (``None`` →
        ``$REPRO_WORKERS`` or the CPU count).
    transfer:
        Piece-transfer mode for the simultaneous engine (``"pickle"`` /
        ``"shared"`` / ``None`` for ``$REPRO_TRANSFER``).
    """

    seed: RandomState = None
    k: Optional[int] = None
    executor: ExecutorSpec = None
    workers: Optional[int] = None
    transfer: Optional[str] = None

    def __post_init__(self) -> None:
        if self.k is not None and self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")

    # ------------------------------------------------------------------ #
    # randomness
    # ------------------------------------------------------------------ #
    def generator(self) -> np.random.Generator:
        """The context's seed coerced into a single generator."""
        return as_generator(self.seed)

    def generators(self, n: int) -> list[np.random.Generator]:
        """``n`` independent generators derived from the seed.

        This is the one randomness access path for solver adapters: each
        adapter documents how many streams it draws and what each one is
        for, which is what makes ``solve`` runs reproducible from the
        context alone.

        Unlike raw :func:`~repro.utils.rng.spawn_generators`, this method
        never mutates the stored seed: a ``SeedSequence`` is re-derived
        from its identity (``SeedSequence.spawn`` would advance its child
        counter), and a ``Generator`` has its entropy drawn from a copy of
        its current state.  Two solves with the same context therefore see
        the same streams — the facade's determinism contract.
        """
        seed = self.seed
        if isinstance(seed, np.random.SeedSequence):
            # A fresh sequence with the same identity spawns the same
            # children every time, leaving the caller's object untouched.
            root = np.random.SeedSequence(
                entropy=seed.entropy, spawn_key=seed.spawn_key,
                pool_size=seed.pool_size,
            )
            return [np.random.default_rng(s) for s in root.spawn(n)]
        if isinstance(seed, np.random.Generator):
            import copy

            seed = copy.deepcopy(seed)
        return spawn_generators(seed, n)

    # ------------------------------------------------------------------ #
    # machine count
    # ------------------------------------------------------------------ #
    def require_k(self, solver: str) -> int:
        """The machine count, or a uniform error naming the solver."""
        if self.k is None:
            from repro.solve.registry import SolverCapabilityError

            raise SolverCapabilityError(
                f"solver {solver!r} runs in a k-machine model and needs "
                f"RunContext.k (e.g. RunContext(seed=0, k=8))"
            )
        return self.k

    # ------------------------------------------------------------------ #
    # substrate
    # ------------------------------------------------------------------ #
    @contextmanager
    def executor_scope(self) -> Iterator[ExecutorSpec]:
        """Resolve the context's executor for the duration of one solve.

        Yields a value suitable for the engines' ``executor=`` parameter.
        Ownership follows the substrate contract (docs/PARALLELISM.md):

        * ``executor`` is an :class:`~repro.dist.executor.Executor`
          instance — yielded as-is, caller keeps ownership;
        * ``executor`` is ``None`` and no explicit ``workers`` — yield
          ``None`` and let each engine resolve ``$REPRO_EXECUTOR`` itself
          (the engine then owns and closes what it resolves);
        * otherwise — resolve a backend here (honouring ``workers``) and
          close it when the scope exits, so one pool is shared by every
          barrier inside a single solve.
        """
        if isinstance(self.executor, Executor):
            yield self.executor
            return
        if self.executor is None and self.workers is None:
            yield None
            return
        backend = resolve_executor(self.executor, workers=self.workers)
        try:
            yield backend
        finally:
            backend.close()

    # ------------------------------------------------------------------ #
    def with_options(self, **changes) -> "RunContext":
        """A copy of the context with the given fields replaced."""
        return replace(self, **changes)
