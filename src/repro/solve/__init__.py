"""``repro.solve`` — the unified solver facade.

One API over every matching and vertex-cover algorithm in the library,
mirroring the paper's own abstraction (every algorithm is a black box that
"outputs an arbitrary maximum matching") and the experiment registry's
design (algorithms are registered, capability-tagged objects — not import
paths)::

    from repro.solve import RunContext, solve

    result = solve(graph, "matching.coreset", RunContext(seed=0, k=8))
    result.value            # matching size
    result.verified         # certificate checked against the input
    result.stats["total_bits"]

Surface:

* :func:`solve` — run a registered solver, get a uniform
  :class:`SolveResult` (value, certificate, verified flag, stats, timing);
* :class:`RunContext` — the frozen seed/executor/workers/transfer/k
  context replacing per-function keyword soup;
* :func:`solver` / :func:`get_solver` / :func:`all_solvers` /
  :func:`solvers_for` — the capability-tagged registry
  (``repro solve --list`` on the command line);
* :func:`resolve_capability` / :func:`rank_candidates` — capability-driven
  selection: state problem/model/guarantee and get the best registered
  solver deterministically (the ``repro serve`` front door);
* :func:`load_graph` — file-or-generator-spec graph inputs for the CLI.

The per-module entry points (``repro.matching.api``, ``repro.cover``,
``repro.core.protocols``, ``repro.core.mapreduce_algos``,
``repro.baselines``, ``repro.streaming``) remain the algorithm
implementations and keep working, but new call sites should go through
this facade — see ``docs/SOLVER_API.md``.
"""

from repro.solve.capabilities import (
    CapabilityQuery,
    CapabilityResolutionError,
    rank_candidates,
    resolve_capability,
)
from repro.solve.context import RunContext
from repro.solve.graphs import load_graph
from repro.solve.registry import (
    DuplicateSolverError,
    SolverCapabilityError,
    SolverSpec,
    UnknownSolverError,
    all_solvers,
    get_solver,
    solve,
    solver,
    solver_ids,
    solvers_for,
)
from repro.solve.result import SolveResult

__all__ = [
    "CapabilityQuery",
    "CapabilityResolutionError",
    "DuplicateSolverError",
    "RunContext",
    "SolveResult",
    "SolverCapabilityError",
    "SolverSpec",
    "UnknownSolverError",
    "all_solvers",
    "get_solver",
    "load_graph",
    "rank_candidates",
    "resolve_capability",
    "solve",
    "solver",
    "solver_ids",
    "solvers_for",
]
