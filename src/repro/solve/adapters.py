"""Adapter registrations: every algorithm entry point, behind one API.

Each function here is a thin, module-level adapter that ports one legacy
entry point onto the :mod:`repro.solve.registry` contract
``fn(graph, ctx, **params) -> (certificate, stats)``.  The adapters do not
reimplement anything — the legacy functions remain the single source of
truth for each algorithm — they only normalize three things:

* **randomness** — each adapter documents how many independent streams it
  draws from ``ctx.generators(...)`` and what each one is for.  Given the
  same :class:`~repro.solve.context.RunContext` seed, a solve is
  bit-identical to calling the legacy entry point with the same derived
  generators (``tests/test_solve_api.py`` asserts exactly this equivalence
  for every registered solver);
* **substrate** — executor/workers/transfer resolve once per solve through
  ``ctx.executor_scope()``;
* **metrics** — model-specific result objects (ledgers, MapReduce jobs,
  filtering logs) flatten into the common ``stats`` dict.

Stream conventions by model:

========== =============================================================
offline    deterministic solvers draw nothing; randomized greedy draws 1
coreset    2 streams: ``(partition_rng, run_rng)`` — partition first
mapreduce  1 stream, handed to the legacy function's ``rng=`` (which
           spawns its own internal children, exactly as before)
streaming  1 stream for the arrival order
========== =============================================================
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from repro.solve.context import RunContext
from repro.solve.registry import solver

Certificate = np.ndarray
Stats = Dict[str, Any]
Adapted = Tuple[Certificate, Stats]


# --------------------------------------------------------------------- #
# shared helpers
# --------------------------------------------------------------------- #
def _run_protocol(protocol, graph, ctx: RunContext, k: int,
                  partition=None) -> Adapted:
    """Partition + run one simultaneous protocol (the coreset-model core).

    Streams: ``(partition_rng, run_rng) = ctx.generators(2)`` — *both*
    drawn even when ``partition`` is supplied, so a pre-built partition
    (e.g. a pinned :class:`~repro.dist.shm.SharedPartitionView` the
    serving layer reuses across requests) leaves ``run_rng`` untouched:
    supplying the partition ``random_k_partition`` *would* have built is
    bit-identical to letting this function build it.
    """
    from repro.dist.coordinator import run_simultaneous
    from repro.graph.partition import random_k_partition

    partition_rng, run_rng = ctx.generators(2)
    if partition is None:
        partition = random_k_partition(graph, k, partition_rng)
    else:
        if not (hasattr(partition, "piece") and hasattr(partition, "k")):
            raise ValueError(
                f"partition= must be a partitioned graph (piece()/k), "
                f"got {type(partition).__name__}"
            )
        if partition.k != k:
            raise ValueError(
                f"partition has k={partition.k}, context asks k={k}"
            )
        if partition.graph is not graph and (
            partition.graph.n_vertices != graph.n_vertices
            or partition.graph.n_edges != graph.n_edges
        ):
            raise ValueError(
                "partition= was built over a different graph"
            )
    with ctx.executor_scope() as backend:
        res = run_simultaneous(
            protocol, partition, run_rng,
            executor=backend, transfer=ctx.transfer,
        )
    stats: Stats = {
        "k": k,
        "protocol": protocol.name,
        "total_bits": res.ledger.total_bits(),
        "total_edges": res.ledger.total_edges(),
        "total_fixed_vertices": res.ledger.total_fixed_vertices(),
        "max_player_bits": res.ledger.max_player_bits(),
    }
    return res.output, stats


# --------------------------------------------------------------------- #
# matching — offline
# --------------------------------------------------------------------- #
@solver(
    "matching.maximum",
    problem="matching", model="offline", guarantee="exact",
    description="Maximum matching (Hopcroft–Karp on bipartite inputs, "
                "blossom otherwise) — the paper's black-box ALG",
    params={"algorithm": "auto"},
)
def _maximum_matching(graph, ctx: RunContext, algorithm: str) -> Adapted:
    """Deterministic; draws no streams."""
    from repro.matching.api import maximum_matching

    return maximum_matching(graph, algorithm=algorithm), {}


@solver(
    "matching.hopcroft_karp",
    problem="matching", model="offline", guarantee="exact",
    bipartite_only=True,
    description="Hopcroft–Karp maximum bipartite matching",
)
def _hopcroft_karp(graph, ctx: RunContext) -> Adapted:
    """Deterministic; draws no streams."""
    from repro.matching.api import maximum_matching

    return maximum_matching(graph, algorithm="hopcroft_karp"), {}


@solver(
    "matching.blossom",
    problem="matching", model="offline", guarantee="exact",
    description="Blossom maximum matching on general graphs",
)
def _blossom(graph, ctx: RunContext) -> Adapted:
    """Deterministic; draws no streams."""
    from repro.matching.api import maximum_matching

    return maximum_matching(graph, algorithm="blossom"), {}


@solver(
    "matching.augmenting",
    problem="matching", model="offline", guarantee="exact",
    bipartite_only=True,
    description="Single-path augmenting bipartite matcher (reference "
                "implementation)",
)
def _augmenting(graph, ctx: RunContext) -> Adapted:
    """Deterministic; draws no streams."""
    from repro.matching.api import maximum_matching

    return maximum_matching(graph, algorithm="augmenting"), {}


@solver(
    "matching.greedy_maximal",
    problem="matching", model="offline", guarantee="2-approx",
    description="Greedy maximal matching under a chosen edge-order policy",
    params={"order": "random"},
)
def _greedy_maximal(graph, ctx: RunContext, order: str) -> Adapted:
    """Streams: 1 (the edge-order shuffle; unused for order='input')."""
    from repro.matching.api import maximal_matching

    (rng,) = ctx.generators(1)
    return maximal_matching(graph, rng=rng, order=order), {"order": order}


# --------------------------------------------------------------------- #
# matching — coreset (simultaneous-communication model)
# --------------------------------------------------------------------- #
@solver(
    "matching.coreset",
    problem="matching", model="coreset", guarantee="O(1)-approx",
    uses_k=True,
    description="Theorem 1 randomized composable coreset: each machine "
                "sends a maximum matching of its piece (Õ(nk) bits total)",
    params={"combiner": "exact", "algorithm": "auto", "partition": None},
)
def _matching_coreset(graph, ctx: RunContext, combiner: str,
                      algorithm: str, partition=None) -> Adapted:
    """Streams: 2 — see :func:`_run_protocol`."""
    from repro.core.protocols import matching_coreset_protocol

    protocol = matching_coreset_protocol(combiner=combiner,
                                         algorithm=algorithm)
    return _run_protocol(protocol, graph, ctx,
                         ctx.require_k("matching.coreset"),
                         partition=partition)


@solver(
    "matching.subsampled_coreset",
    problem="matching", model="coreset", guarantee="O(alpha)-approx",
    uses_k=True,
    description="Remark 5.2 subsampled coreset: Õ(nk/α²) bits for an "
                "O(α)-approximation",
    params={"alpha": 4.0, "combiner": "exact", "algorithm": "auto",
            "partition": None},
)
def _subsampled_coreset(graph, ctx: RunContext, alpha: float, combiner: str,
                        algorithm: str, partition=None) -> Adapted:
    """Streams: 2 — see :func:`_run_protocol`."""
    from repro.core.protocols import subsampled_matching_protocol

    protocol = subsampled_matching_protocol(alpha, combiner=combiner,
                                            algorithm=algorithm)
    certificate, stats = _run_protocol(
        protocol, graph, ctx, ctx.require_k("matching.subsampled_coreset"),
        partition=partition,
    )
    stats["alpha"] = alpha
    return certificate, stats


@solver(
    "matching.send_everything",
    problem="matching", model="coreset", guarantee="exact",
    uses_k=True, baseline=True,
    description="Naive baseline: every machine ships its whole piece "
                "(Θ(m) bits — the upper reference line)",
    params={"partition": None},
)
def _send_everything_matching(graph, ctx: RunContext,
                              partition=None) -> Adapted:
    """Streams: 2 — see :func:`_run_protocol`."""
    from repro.baselines.naive import send_everything_protocol

    return _run_protocol(send_everything_protocol("matching"), graph, ctx,
                         ctx.require_k("matching.send_everything"),
                         partition=partition)


@solver(
    "matching.weighted_coreset",
    problem="matching", model="coreset", guarantee="O(log W)-approx",
    uses_k=True, weighted=True, objective="weight",
    description="Crouch–Stubbs weighted extension: Theorem 1 inside "
                "geometric weight classes, greedy merge heaviest-first",
    params={"epsilon": 1.0},
)
def _weighted_matching_coreset(graph, ctx: RunContext,
                               epsilon: float) -> Adapted:
    """Streams: 1, handed to the legacy protocol's ``rng=`` (which spawns
    its own k+2 children, exactly as before)."""
    from repro.core.weighted import weighted_matching_coreset_protocol

    (rng,) = ctx.generators(1)
    res = weighted_matching_coreset_protocol(
        graph, k=ctx.require_k("matching.weighted_coreset"),
        epsilon=epsilon, rng=rng,
    )
    stats: Stats = {
        "k": ctx.k,
        "epsilon": epsilon,
        "weight": float(res.weight),
        "total_bits": res.ledger.total_bits(),
        "total_edges": res.ledger.total_edges(),
    }
    return res.matching, stats


# --------------------------------------------------------------------- #
# matching — capacitated (b-matching / AdWords)
# --------------------------------------------------------------------- #
def _b_stats(graph, indices: np.ndarray) -> Stats:
    from repro.workloads.bmatching import b_matching_weight

    return {
        "weight": b_matching_weight(graph, indices),
        "total_capacity": int(graph.total_capacity()),
        "capacity_upper_bound": int(graph.b_matching_upper_bound()),
    }


@solver(
    "matching.b_greedy",
    problem="matching", model="offline", guarantee="2-approx",
    bipartite_only=True, weighted=True, capacitated=True,
    description="Weight-descending greedy b-matching (AdWords budgets "
                "b(u) per left vertex)",
)
def _b_greedy(graph, ctx: RunContext) -> Adapted:
    """Deterministic; draws no streams (ties break by edge order)."""
    from repro.workloads.bmatching import greedy_b_matching

    idx = greedy_b_matching(graph)
    return graph.edges[idx], _b_stats(graph, idx)


@solver(
    "matching.b_exact",
    problem="matching", model="offline", guarantee="exact",
    bipartite_only=True, weighted=True, capacitated=True,
    description="Maximum-cardinality b-matching, exact via left-vertex "
                "cloning + Hopcroft–Karp",
)
def _b_exact(graph, ctx: RunContext) -> Adapted:
    """Deterministic; draws no streams."""
    from repro.workloads.bmatching import exact_b_matching

    idx = exact_b_matching(graph)
    return graph.edges[idx], _b_stats(graph, idx)


@solver(
    "matching.b_coreset",
    problem="matching", model="coreset", guarantee="heuristic",
    bipartite_only=True, weighted=True, capacitated=True, uses_k=True,
    description="Composable-coreset heuristic for b-matching: per-machine "
                "greedy b-matching summaries, exact b-matching on the "
                "union (random or named adversarial partition)",
    params={"strategy": "random"},
)
def _b_coreset(graph, ctx: RunContext, strategy: str) -> Adapted:
    """Streams: 2 — ``(partition_rng, run_rng)``, both drawn for parity
    with :func:`_run_protocol` even though the per-piece summarizer is
    deterministic (adversarial strategies leave both untouched)."""
    from repro.workloads.bmatching import exact_b_matching, greedy_b_matching
    from repro.workloads.partitions import partition_workload

    k = ctx.require_k("matching.b_coreset")
    partition_rng, _run_rng = ctx.generators(2)
    part = partition_workload(graph, k, strategy, partition_rng)
    union_mask = np.zeros(graph.n_edges, dtype=bool)
    coreset_edges = 0
    for i in range(part.k):
        piece_mask = part.assignment == i
        piece = graph.subgraph_from_mask(piece_mask)
        local = greedy_b_matching(piece)
        coreset_edges += local.size
        if local.size:
            from repro.workloads.bmatching import edge_indices

            union_mask[edge_indices(graph, piece.edges[local])] = True
    union = graph.subgraph_from_mask(union_mask)
    local_idx = exact_b_matching(union)
    from repro.workloads.bmatching import edge_indices

    idx = edge_indices(graph, union.edges[local_idx])
    stats = _b_stats(graph, idx)
    stats.update({
        "k": k,
        "strategy": strategy,
        "coreset_edges": int(coreset_edges),
    })
    return graph.edges[idx], stats


# --------------------------------------------------------------------- #
# matching — MapReduce
# --------------------------------------------------------------------- #
@solver(
    "matching.mapreduce",
    problem="matching", model="mapreduce", guarantee="O(1)-approx",
    uses_k=True,
    description="§1.1 MapReduce algorithm: ≤ 2 rounds with k = √n "
                "machines of memory Õ(n√n) (k defaults to √n)",
    params={"memory_cap_edges": None, "assume_random_input": False,
            "initial_placement": "contiguous", "combiner_algorithm": "auto"},
)
def _mapreduce_matching(graph, ctx: RunContext, memory_cap_edges,
                        assume_random_input: bool, initial_placement: str,
                        combiner_algorithm: str) -> Adapted:
    """Streams: 1, handed to ``mapreduce_matching``'s ``rng=``."""
    from repro.core.mapreduce_algos import mapreduce_matching

    (rng,) = ctx.generators(1)
    with ctx.executor_scope() as backend:
        res = mapreduce_matching(
            graph, k=ctx.k, rng=rng, memory_cap_edges=memory_cap_edges,
            assume_random_input=assume_random_input,
            combiner_algorithm=combiner_algorithm,
            initial_placement=initial_placement, executor=backend,
            transfer=ctx.transfer,
        )
    stats: Stats = {
        "k": res.k,
        "n_rounds": res.job.n_rounds,
        "peak_machine_edges": res.job.peak_machine_edges,
        "total_shuffled_edges": res.job.total_shuffled_edges,
    }
    return res.matching, stats


@solver(
    "matching.filtering",
    problem="matching", model="mapreduce", guarantee="2-approx",
    baseline=True,
    description="Filtering baseline [46]: iterated sample-and-filter on "
                "one central machine (O(log n) rounds)",
    params={"memory_edges": None, "max_rounds": 100},
)
def _filtering_matching(graph, ctx: RunContext, memory_edges,
                        max_rounds: int) -> Adapted:
    """Streams: 1 (sampling + tie-breaking).  ``memory_edges`` defaults
    to ``max(64, m // 8)`` — the budget experiment E8 uses."""
    from repro.baselines.filtering import filtering_matching

    (rng,) = ctx.generators(1)
    if memory_edges is None:
        memory_edges = max(64, graph.n_edges // 8)
    res = filtering_matching(graph, memory_edges=memory_edges, rng=rng,
                             max_rounds=max_rounds)
    stats: Stats = {
        "memory_edges": int(memory_edges),
        "n_rounds": res.n_rounds,
        "peak_central_edges": res.peak_central_edges,
        "n_sampling_rounds": len(res.sample_sizes),
    }
    return res.matching, stats


# --------------------------------------------------------------------- #
# matching — streaming
# --------------------------------------------------------------------- #
def _arrival_order(graph, arrival: str, rng) -> np.ndarray:
    from repro.matching.api import maximum_matching
    from repro.streaming import adversarial_order, random_order

    if arrival == "random":
        return random_order(graph, rng)
    if arrival == "adversarial":
        return adversarial_order(graph, maximum_matching(graph), rng)
    raise ValueError(f"unknown arrival order {arrival!r}")


@solver(
    "matching.streaming_greedy",
    problem="matching", model="streaming", guarantee="2-approx",
    description="One-pass greedy semi-streaming matcher (O(n) words)",
    params={"arrival": "random"},
)
def _streaming_greedy(graph, ctx: RunContext, arrival: str) -> Adapted:
    """Streams: 1 (the arrival order)."""
    from repro.streaming import StreamingGreedyMatcher

    (rng,) = ctx.generators(1)
    order = _arrival_order(graph, arrival, rng)
    matcher = StreamingGreedyMatcher(graph.n_vertices)
    certificate = matcher.run(graph, order)
    return certificate, {"arrival": arrival,
                         "memory_words": matcher.memory_words}


@solver(
    "matching.streaming_two_phase",
    problem="matching", model="streaming", guarantee="2-approx",
    description="Konrad–Magniez–Mathieu two-phase matcher: greedy prefix "
                "then 3-augmentations (beats ½ on random arrivals)",
    params={"arrival": "random", "phase1_fraction": 0.5},
)
def _streaming_two_phase(graph, ctx: RunContext, arrival: str,
                         phase1_fraction: float) -> Adapted:
    """Streams: 1 (the arrival order)."""
    from repro.streaming import TwoPhaseStreamingMatcher

    (rng,) = ctx.generators(1)
    order = _arrival_order(graph, arrival, rng)
    matcher = TwoPhaseStreamingMatcher(graph.n_vertices,
                                       phase1_fraction=phase1_fraction)
    certificate = matcher.run(graph, order)
    return certificate, {"arrival": arrival,
                         "memory_words": matcher.memory_words}


# --------------------------------------------------------------------- #
# vertex cover — offline
# --------------------------------------------------------------------- #
@solver(
    "vertex_cover.two_approx",
    problem="vertex_cover", model="offline", guarantee="2-approx",
    description="Both endpoints of a maximal matching (the coordinator's "
                "combine step in Theorem 2)",
    params={"randomized": False},
)
def _two_approx_cover(graph, ctx: RunContext, randomized: bool) -> Adapted:
    """Streams: 1 when ``randomized`` (the matching's edge order), else 0."""
    from repro.cover import matching_based_cover

    if randomized:
        (rng,) = ctx.generators(1)
        return matching_based_cover(graph, rng=rng), {"randomized": True}
    return matching_based_cover(graph), {"randomized": False}


@solver(
    "vertex_cover.greedy",
    problem="vertex_cover", model="offline", guarantee="ln(n)-approx",
    description="Max-degree greedy cover (H_Δ approximation)",
)
def _greedy_cover(graph, ctx: RunContext) -> Adapted:
    """Deterministic; draws no streams."""
    from repro.cover import greedy_cover

    return greedy_cover(graph), {}


@solver(
    "vertex_cover.konig",
    problem="vertex_cover", model="offline", guarantee="exact",
    bipartite_only=True,
    description="Exact bipartite minimum vertex cover via König's theorem",
)
def _konig_cover(graph, ctx: RunContext) -> Adapted:
    """Deterministic; draws no streams."""
    from repro.cover import konig_cover

    return konig_cover(graph), {}


@solver(
    "vertex_cover.exact",
    problem="vertex_cover", model="offline", guarantee="exact",
    description="Branch-and-bound exact cover (small general graphs; "
                "the test oracle)",
    params={"node_budget": 2_000_000},
)
def _exact_cover(graph, ctx: RunContext, node_budget: int) -> Adapted:
    """Deterministic; draws no streams."""
    from repro.cover import exact_cover

    return exact_cover(graph, node_budget=node_budget), {}


@solver(
    "vertex_cover.lp",
    problem="vertex_cover", model="offline", guarantee="2-approx",
    description="Half-integral LP rounding with a fractional lower-bound "
                "certificate",
    params={"threshold": 0.5},
)
def _lp_cover(graph, ctx: RunContext, threshold: float) -> Adapted:
    """Deterministic; draws no streams.  The LP solves once — the rounded
    cover and the lower-bound stat come from the same solution vector."""
    from repro.cover import lp_cover, lp_lower_bound
    from repro.cover.lp import lp_solution

    x = lp_solution(graph)
    certificate = lp_cover(graph, threshold=threshold, solution=x)
    return certificate, {
        "lp_lower_bound": lp_lower_bound(graph, solution=x)
    }


# --------------------------------------------------------------------- #
# vertex cover — coreset
# --------------------------------------------------------------------- #
@solver(
    "vertex_cover.coreset",
    problem="vertex_cover", model="coreset", guarantee="O(log n)-approx",
    uses_k=True,
    description="Theorem 2 randomized composable coreset: peeled vertices "
                "+ sparse residual per machine (Õ(nk) bits total)",
    params={"combiner": "auto", "log_slack": 4.0, "partition": None},
)
def _vc_coreset(graph, ctx: RunContext, combiner: str,
                log_slack: float, partition=None) -> Adapted:
    """Streams: 2 — see :func:`_run_protocol`."""
    from repro.core.protocols import vertex_cover_coreset_protocol

    k = ctx.require_k("vertex_cover.coreset")
    protocol = vertex_cover_coreset_protocol(k=k, combiner=combiner,
                                             log_slack=log_slack)
    return _run_protocol(protocol, graph, ctx, k, partition=partition)


@solver(
    "vertex_cover.grouped_coreset",
    problem="vertex_cover", model="coreset", guarantee="O(alpha)-approx",
    uses_k=True,
    description="Remark 5.8 grouped coreset: super-vertices of size "
                "Θ(α/log n), Õ(nk/α) bits total",
    params={"alpha": 4.0, "combiner": "two_approx", "log_slack": 4.0,
            "partition": None},
)
def _grouped_vc_coreset(graph, ctx: RunContext, alpha: float, combiner: str,
                        log_slack: float, partition=None) -> Adapted:
    """Streams: 2 — see :func:`_run_protocol`."""
    from repro.core.protocols import grouped_vertex_cover_protocol

    k = ctx.require_k("vertex_cover.grouped_coreset")
    protocol = grouped_vertex_cover_protocol(k=k, alpha=alpha,
                                             combiner=combiner,
                                             log_slack=log_slack)
    certificate, stats = _run_protocol(protocol, graph, ctx, k,
                                       partition=partition)
    stats["alpha"] = alpha
    return certificate, stats


@solver(
    "vertex_cover.send_everything",
    problem="vertex_cover", model="coreset", guarantee="exact-bipartite",
    uses_k=True, baseline=True,
    description="Naive baseline: ship every piece whole, solve centrally "
                "(König on bipartite inputs, 2-approx otherwise)",
    params={"partition": None},
)
def _send_everything_cover(graph, ctx: RunContext,
                           partition=None) -> Adapted:
    """Streams: 2 — see :func:`_run_protocol`."""
    from repro.baselines.naive import send_everything_protocol

    return _run_protocol(send_everything_protocol("vertex_cover"), graph,
                         ctx, ctx.require_k("vertex_cover.send_everything"),
                         partition=partition)


@solver(
    "vertex_cover.weighted_coreset",
    problem="vertex_cover", model="coreset",
    guarantee="O(log n · log W)-approx", uses_k=True, objective="weight",
    description="Reconstructed weighted-VC extension: per-weight-class "
                "peeling, edges assigned to their cheaper endpoint's class",
    params={"epsilon": 1.0, "log_slack": 4.0, "vertex_weights": None},
)
def _weighted_vc_coreset(graph, ctx: RunContext, epsilon: float,
                         log_slack: float, vertex_weights) -> Adapted:
    """Streams: 1, handed to the legacy protocol's ``rng=``.  Vertex
    weights default to all-ones (cover weight then equals cover size)."""
    from repro.core.weighted import weighted_vertex_cover_protocol

    if vertex_weights is None:
        vertex_weights = np.ones(graph.n_vertices, dtype=np.float64)
    (rng,) = ctx.generators(1)
    res = weighted_vertex_cover_protocol(
        graph, vertex_weights, k=ctx.require_k("vertex_cover.weighted_coreset"),
        epsilon=epsilon, rng=rng, log_slack=log_slack,
    )
    stats: Stats = {
        "k": ctx.k,
        "epsilon": epsilon,
        "weight": float(res.weight),
        "total_bits": res.ledger.total_bits(),
        "total_edges": res.ledger.total_edges(),
    }
    return res.cover, stats


# --------------------------------------------------------------------- #
# vertex cover — MapReduce
# --------------------------------------------------------------------- #
@solver(
    "vertex_cover.mapreduce",
    problem="vertex_cover", model="mapreduce", guarantee="O(log n)-approx",
    uses_k=True,
    description="§1.1 MapReduce algorithm for vertex cover: ≤ 2 rounds, "
                "VC peeling per machine (k defaults to √n)",
    params={"memory_cap_edges": None, "assume_random_input": False,
            "log_slack": 4.0, "initial_placement": "contiguous"},
)
def _mapreduce_vc(graph, ctx: RunContext, memory_cap_edges,
                  assume_random_input: bool, log_slack: float,
                  initial_placement: str) -> Adapted:
    """Streams: 1, handed to ``mapreduce_vertex_cover``'s ``rng=``."""
    from repro.core.mapreduce_algos import mapreduce_vertex_cover

    (rng,) = ctx.generators(1)
    with ctx.executor_scope() as backend:
        res = mapreduce_vertex_cover(
            graph, k=ctx.k, rng=rng, memory_cap_edges=memory_cap_edges,
            assume_random_input=assume_random_input, log_slack=log_slack,
            initial_placement=initial_placement, executor=backend,
            transfer=ctx.transfer,
        )
    stats: Stats = {
        "k": res.k,
        "n_rounds": res.job.n_rounds,
        "peak_machine_edges": res.job.peak_machine_edges,
        "total_shuffled_edges": res.job.total_shuffled_edges,
    }
    return res.cover, stats
