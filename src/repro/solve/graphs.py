"""Graph inputs for ``repro solve``: files or named generator specs.

The CLI's positional ``GRAPH`` argument accepts either

* a **path** — ``.npz`` written by :func:`repro.graph.io.save_npz`, or the
  human-readable edge-list text format; or
* a **generator spec** — ``name`` or ``name:key=value,key=value``, e.g.
  ``planted:n=2000`` or ``skewed:n=4000,leaf_p=0.004`` — mapping onto the
  library's workload generators with the same defaults the experiment
  suite uses.  Generation consumes the spec's own RNG stream, so a seeded
  ``repro solve`` run is reproducible end to end; or
* a **registry workload** — ``workload:NAME[:k=v,...]``, e.g.
  ``workload:gmission`` or ``workload:ba:u=1000,v=2000,p=3`` — resolving
  through the :mod:`repro.workloads` registry (dataset-backed loaders
  included; offline-safe).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict

import numpy as np

from repro.utils.rng import RandomState, as_generator

__all__ = ["GENERATOR_SPECS", "load_graph", "parse_scalar", "parse_spec_args"]


def _require_n(n, minimum: int = 4) -> int:
    """Validate a spec's vertex count before it reaches any arithmetic."""
    n = int(n)
    if n < minimum:
        raise ValueError(f"graph spec needs n >= {minimum}, got {n}")
    return n


def _gen_planted(rng, n: int = 2000, p: float | None = None):
    """Bipartite planted-matching G(n/2, n/2, p) — the E1 workload."""
    from repro.graph.generators import planted_matching_gnp

    n = _require_n(n)
    half = n // 2
    graph, _ = planted_matching_gnp(
        half, half, p=(3.0 / n if p is None else p), rng=rng
    )
    return graph


def _gen_gnp(rng, n: int = 2000, p: float | None = None):
    """General (non-bipartite) G(n, p)."""
    from repro.graph.generators import gnp

    n = _require_n(n)
    return gnp(n, 3.0 / n if p is None else p, rng)


def _gen_bipartite(rng, n: int = 2000, p: float | None = None):
    """Plain bipartite G(n/2, n/2, p)."""
    from repro.graph.generators import bipartite_gnp

    n = _require_n(n)
    half = n // 2
    return bipartite_gnp(half, half, 3.0 / n if p is None else p, rng)


def _gen_skewed(rng, n: int = 2000, leaf_p: float | None = None):
    """Skewed-degree bipartite workload — the E3 vertex-cover shape."""
    from repro.graph.generators import skewed_bipartite

    half = max(4, _require_n(n) // 2)
    return skewed_bipartite(
        half, half,
        hub_count=max(4, half // 50),
        hub_degree=max(8, half // 10),
        leaf_p=(2.0 / half if leaf_p is None else leaf_p),
        rng=rng,
    )


def _gen_weighted(rng, n: int = 2000, p: float | None = None,
                  spread: float = 100.0):
    """Bipartite G(n/2, n/2, p) with log-uniform edge weights in
    [1, spread] — the E12 weighted-matching workload."""
    import math

    from repro.graph.generators import bipartite_gnp
    from repro.graph.weights import WeightedGraph

    n = _require_n(n)
    half = n // 2
    base = bipartite_gnp(half, half, 4.0 / n if p is None else p, rng)
    weights = np.exp(rng.uniform(0, math.log(spread), size=base.n_edges))
    return WeightedGraph(base.n_vertices, base.edges, weights, validated=True)


GENERATOR_SPECS: Dict[str, Callable[..., Any]] = {
    "planted": _gen_planted,
    "gnp": _gen_gnp,
    "bipartite": _gen_bipartite,
    "skewed": _gen_skewed,
    "weighted": _gen_weighted,
}


def parse_scalar(text: str) -> Any:
    """Best-effort typing of a command-line scalar.

    The one grammar shared by ``repro solve --param KEY=VALUE`` and
    generator-spec arguments: bool words, ``none``/``null``, int, float,
    falling back to the raw string.
    """
    lowered = text.lower()
    if lowered in {"true", "yes", "on"}:
        return True
    if lowered in {"false", "no", "off"}:
        return False
    if lowered in {"none", "null"}:
        return None
    for parse in (int, float):
        try:
            return parse(text)
        except ValueError:
            pass
    return text


def parse_spec_args(arg_text: str) -> Dict[str, Any]:
    """Parse the ``k=v,k=v`` tail of a graph spec into typed kwargs."""
    kwargs: Dict[str, Any] = {}
    if arg_text.strip():
        for item in arg_text.split(","):
            key, sep, value = item.partition("=")
            if not sep or not key.strip():
                raise ValueError(
                    f"graph spec argument {item!r} is not KEY=VALUE"
                )
            kwargs[key.strip()] = parse_scalar(value.strip())
    return kwargs


def load_graph(spec: str, rng: RandomState = None):
    """Resolve a CLI ``GRAPH`` argument into a graph object.

    Existing paths load (``.npz`` by suffix, edge-list text otherwise);
    ``workload:NAME[:k=v,...]`` resolves through the workload registry;
    anything else must be a ``name[:k=v,...]`` generator spec.
    """
    path = Path(spec)
    if path.exists():
        from repro.graph.io import load_npz, loads_edgelist

        if path.suffix == ".npz":
            return load_npz(path)
        return loads_edgelist(path.read_text())

    name, _, arg_text = spec.partition(":")
    name = name.strip().lower()
    if name == "workload":
        from repro.workloads.registry import build_workload

        wname, _, w_args = arg_text.partition(":")
        wname = wname.strip().lower()
        if not wname:
            raise ValueError(
                "workload spec needs a name: workload:NAME[:k=v,...]"
            )
        try:
            return build_workload(wname, rng=rng, **parse_spec_args(w_args))
        except TypeError as exc:
            raise ValueError(f"graph spec {spec!r}: {exc}") from exc
    if name not in GENERATOR_SPECS:
        raise ValueError(
            f"graph spec {spec!r} is neither an existing file nor a known "
            f"generator; generators: {', '.join(sorted(GENERATOR_SPECS))} "
            f"(e.g. planted:n=2000), or workload:NAME[:k=v,...]"
        )
    kwargs = parse_spec_args(arg_text)
    try:
        return GENERATOR_SPECS[name](as_generator(rng), **kwargs)
    except TypeError as exc:
        raise ValueError(f"graph spec {spec!r}: {exc}") from exc
