"""The common result type every registered solver returns.

The paper treats algorithms as black boxes ("ALG outputs an arbitrary
maximum matching"); :class:`SolveResult` is that black box's output made
concrete and uniform: a numeric **value**, a **certificate** that can be
checked against the input graph by the library's verifiers
(:mod:`repro.matching.verify`, :mod:`repro.cover.verify`), a **verified**
flag recording that the facade actually ran that check, a solver-specific
**stats** dict (communication bits, MapReduce rounds, memory high-water
marks, ...) and the wall-clock time of the solve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

import numpy as np

from repro.utils.jsonable import jsonable_deep

__all__ = ["SolveResult"]


@dataclass
class SolveResult:
    """Uniform output of :func:`repro.solve.solve`.

    Attributes
    ----------
    problem:
        ``"matching"`` or ``"vertex_cover"``.
    solver:
        The registered solver name that produced this result.
    value:
        The solution's objective value: matching size (or total weight for
        weighted solvers), cover size (or cover weight).
    certificate:
        The solution itself — an ``(s, 2)`` int64 edge array for matchings,
        a sorted int64 vertex-id array for covers.
    verified:
        True iff the certificate passed the problem's verifier against the
        input graph (``is_matching`` / ``is_vertex_cover``).  ``False``
        only when verification was explicitly skipped *or* failed; see
        ``stats["verify_skipped"]`` for the former.
    stats:
        Solver-specific metrics.  Distributed solvers report at least
        ``k`` plus their communication/rounds numbers; every solver may add
        its own keys.  Consumers (benchmarks, experiments) read metrics
        from here instead of reaching into model-specific result objects.
    wall_time_s:
        Wall-clock seconds spent inside the solver adapter (excludes
        verification).
    """

    problem: str
    solver: str
    value: float
    certificate: np.ndarray
    verified: bool
    stats: Dict[str, Any] = field(default_factory=dict)
    wall_time_s: float = 0.0

    @property
    def size(self) -> int:
        """Number of certificate rows (matched edges / cover vertices)."""
        return int(self.certificate.shape[0])

    def to_dict(self, include_certificate: bool = False) -> Dict[str, Any]:
        """A JSON-ready dict (certificate included only on request —
        it can dwarf the rest of the document)."""
        doc: Dict[str, Any] = {
            "problem": self.problem,
            "solver": self.solver,
            "value": _plain(self.value),
            "size": self.size,
            "verified": bool(self.verified),
            "stats": {k: _plain(v) for k, v in self.stats.items()},
            "wall_time_s": round(float(self.wall_time_s), 6),
        }
        if include_certificate:
            doc["certificate"] = self.certificate.tolist()
        return doc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolveResult({self.solver!r}, value={self.value:g}, "
            f"size={self.size}, verified={self.verified})"
        )


# Numpy-to-plain-python coercion is the shared utils helper (one rule for
# tables, artifacts, and results alike).
_plain = jsonable_deep
