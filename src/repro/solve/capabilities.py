"""Capability-driven solver selection: ask for *what*, not *who*.

The registry (:mod:`repro.solve.registry`) tags every solver with its
capability tuple — ``problem`` × ``model`` × ``guarantee`` plus the
bipartite-only / weighted / uses-k flags.  This module closes the loop:
instead of naming a solver (``"matching.coreset"``), a caller states the
capabilities it needs and gets the *best* registered match::

    from repro.solve import resolve_capability

    spec = resolve_capability("matching", model="coreset")
    spec.name                      # -> "matching.coreset"

Resolution is the serving layer's front door (``POST /solve`` with
``{"problem": ..., "model": ...}`` instead of a solver name — see
``docs/SERVING.md``), but it is plain library surface: the CLI, notebooks,
and tests can use it directly.

Ranking
-------
Candidates are filtered by the query's hard constraints, then ranked by
three keys: **real algorithms before baselines** (a ``baseline=True``
spec like ``matching.send_everything`` is exact, but "ship every edge"
must never win a best-solver query — baselines resolve only when nothing
else matches or when named explicitly), then **guarantee quality** — the
total order in :data:`GUARANTEE_ORDER`, exact before constant-factor
before logarithmic approximations — then registration order as the
deterministic tiebreak.  Two calls with the same query always return the
same spec, and among non-baseline candidates the winner's guarantee rank
is never worse than any other's (``tests/test_solve_capabilities.py``
asserts both properties for every registered solver).

Graph awareness
---------------
Passing ``graph=`` makes resolution input-aware: bipartite-only solvers
are dropped unless the graph is a
:class:`~repro.graph.bipartite.BipartiteGraph`, weighted solvers unless it
carries edge weights, and capacitated (b-matching) solvers unless it is a
:class:`~repro.graph.capacity.CapacitatedBipartiteGraph` — with the
reverse gate too: a capacitated input only resolves to capacitated
solvers, never to one that would silently drop budgets.  Likewise ``k=None``
drops coreset-model solvers, which cannot run without a machine count
(MapReduce solvers stay: they default ``k`` to √n).  The result is a spec
that can actually *solve the input at hand*, not merely one whose tags
match.

Failures are always the typed :class:`CapabilityResolutionError` — never a
bare ``KeyError`` — carrying the query and a reason naming the constraint
that emptied the candidate pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.solve.registry import (
    MODELS,
    PROBLEMS,
    SolverCapabilityError,
    SolverSpec,
    all_solvers,
)

__all__ = [
    "GUARANTEE_ORDER",
    "CapabilityQuery",
    "CapabilityResolutionError",
    "guarantee_rank",
    "rank_candidates",
    "resolve_capability",
]

#: Guarantee strings from best to worst.  Exact solutions beat any
#: approximation; among approximations, constant factors beat parameter-
#: and log-dependent ones.  Guarantees not listed rank after all of these
#: (alphabetically, for determinism), so a new solver with a novel
#: guarantee string is resolvable without touching this table.
GUARANTEE_ORDER: Tuple[str, ...] = (
    "exact",
    "exact-bipartite",
    "2-approx",
    "O(1)-approx",
    "O(alpha)-approx",
    "O(log W)-approx",
    "O(log n)-approx",
    "ln(n)-approx",
    "O(log n · log W)-approx",
)

_GUARANTEE_RANK: Dict[str, int] = {g: i for i, g in enumerate(GUARANTEE_ORDER)}


def guarantee_rank(guarantee: str) -> Tuple[int, str]:
    """Sort key for a guarantee string: table position, unknowns last."""
    return (_GUARANTEE_RANK.get(guarantee, len(GUARANTEE_ORDER)), guarantee)


class CapabilityResolutionError(SolverCapabilityError):
    """No registered solver satisfies a capability query.

    Carries the structured context the serving layer turns into its error
    document: the offending :class:`CapabilityQuery`, a ``reason`` naming
    the constraint that emptied the pool, and the candidate names that
    survived up to that constraint (so the message suggests what *would*
    have matched).
    """

    def __init__(self, message: str, query: "CapabilityQuery",
                 reason: str, candidates: Tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.query = query
        self.reason = reason
        self.candidates = candidates


@dataclass(frozen=True)
class CapabilityQuery:
    """A declarative request for solver capabilities.

    ``problem`` is mandatory; every other field is an optional hard
    constraint (``None`` means "don't care").  ``weighted=True`` demands a
    weighted-objective solver, ``weighted=False`` excludes them;
    ``has_k=False`` records that the caller cannot supply a machine count,
    which rules out the coreset model.
    """

    problem: str
    model: Optional[str] = None
    guarantee: Optional[str] = None
    weighted: Optional[bool] = None
    has_k: bool = True

    def to_dict(self) -> Dict[str, Any]:
        return {
            "problem": self.problem,
            "model": self.model,
            "guarantee": self.guarantee,
            "weighted": self.weighted,
            "has_k": self.has_k,
        }


@dataclass
class _Pool:
    """The shrinking candidate pool, remembering its last non-empty state."""

    specs: List[SolverSpec]
    last_alive: List[SolverSpec] = field(default_factory=list)

    def narrow(self, keep, query: CapabilityQuery, reason: str) -> None:
        self.last_alive = self.specs
        self.specs = [s for s in self.specs if keep(s)]
        if not self.specs:
            names = tuple(s.name for s in self.last_alive)
            raise CapabilityResolutionError(
                f"no solver satisfies {query.to_dict()}: {reason} "
                f"(closest candidates: {', '.join(names)})",
                query=query, reason=reason, candidates=names,
            )


def _validated_query(
    problem: str,
    model: Optional[str],
    guarantee: Optional[str],
    weighted: Optional[bool],
    has_k: bool,
) -> CapabilityQuery:
    query = CapabilityQuery(problem=problem, model=model,
                            guarantee=guarantee, weighted=weighted,
                            has_k=has_k)
    if problem not in PROBLEMS:
        raise CapabilityResolutionError(
            f"unknown problem {problem!r}; problems: {', '.join(PROBLEMS)}",
            query=query, reason="unknown problem",
        )
    if model is not None and model not in MODELS:
        raise CapabilityResolutionError(
            f"unknown model {model!r}; models: {', '.join(MODELS)}",
            query=query, reason="unknown model",
        )
    return query


def rank_candidates(
    problem: str,
    *,
    model: Optional[str] = None,
    guarantee: Optional[str] = None,
    weighted: Optional[bool] = None,
    graph: Any = None,
    has_k: bool = True,
) -> List[SolverSpec]:
    """All specs satisfying the query, best first.

    The same filters and ordering as :func:`resolve_capability` (whose
    result is element 0), but returning the whole ranked list — what the
    server's ``GET /solvers`` uses to show resolution order, and what a
    side-by-side ``/compare`` across "everything that could solve this"
    fans out over.  Raises :class:`CapabilityResolutionError` when the
    pool empties.
    """
    query = _validated_query(problem, model, guarantee, weighted, has_k)
    order = {s.name: i for i, s in enumerate(all_solvers())}
    pool = _Pool([s for s in all_solvers() if s.problem == problem])
    if not pool.specs:  # pragma: no cover - registry always covers both
        raise CapabilityResolutionError(
            f"no solver registered for problem {problem!r}",
            query=query, reason="no solver for problem",
        )
    if model is not None:
        pool.narrow(lambda s: s.model == model, query,
                    f"none of the {problem} solvers runs in the "
                    f"{model!r} model")
    if guarantee is not None:
        pool.narrow(lambda s: s.guarantee == guarantee, query,
                    f"no candidate offers guarantee {guarantee!r}")
    if weighted is not None:
        pool.narrow(lambda s: s.weighted == weighted, query,
                    "no candidate has a weighted objective" if weighted
                    else "every candidate requires edge weights")
    if not has_k:
        pool.narrow(lambda s: s.model != "coreset", query,
                    "coreset solvers need a machine count k and none "
                    "was supplied")
    if graph is not None:
        from repro.graph.bipartite import BipartiteGraph
        from repro.graph.capacity import CapacitatedBipartiteGraph
        from repro.graph.weights import WeightedGraph, has_edge_weights

        if not isinstance(graph, BipartiteGraph):
            pool.narrow(lambda s: not s.bipartite_only, query,
                        f"every candidate is bipartite-only but the graph "
                        f"is a {type(graph).__name__}")
        if not (isinstance(graph, WeightedGraph) or has_edge_weights(graph)):
            pool.narrow(lambda s: not s.weighted, query,
                        f"every candidate needs edge weights, got "
                        f"{type(graph).__name__}")
        # Capacitated gating is two-way, mirroring the solve() facade: a
        # budgeted input must not resolve to a solver that would silently
        # drop the budgets, and capacitated solvers need the budgets.
        if isinstance(graph, CapacitatedBipartiteGraph):
            pool.narrow(lambda s: s.capacitated, query,
                        f"the graph is capacitated "
                        f"({type(graph).__name__}) and every candidate "
                        f"ignores capacities")
        else:
            pool.narrow(lambda s: not s.capacitated, query,
                        f"every candidate needs a "
                        f"CapacitatedBipartiteGraph, got "
                        f"{type(graph).__name__}")
    return sorted(
        pool.specs,
        key=lambda s: (s.baseline, guarantee_rank(s.guarantee),
                       order[s.name]),
    )


def resolve_capability(
    problem: str,
    *,
    model: Optional[str] = None,
    guarantee: Optional[str] = None,
    weighted: Optional[bool] = None,
    graph: Any = None,
    has_k: bool = True,
) -> SolverSpec:
    """The best registered solver satisfying a capability query.

    "Best" means: a non-baseline algorithm if any survives the filters,
    then the strongest guarantee (per :data:`GUARANTEE_ORDER`), then
    registration order — so resolution is deterministic for a fixed
    registry.  Raises :class:`CapabilityResolutionError` (a
    :class:`~repro.solve.registry.SolverCapabilityError` subclass) when no
    solver qualifies.
    """
    return rank_candidates(
        problem, model=model, guarantee=guarantee, weighted=weighted,
        graph=graph, has_k=has_k,
    )[0]
